//! End-to-end GNN integration: training through the FlashSparse kernels
//! learns, matches the FP32 path, and produces sensible kernel accounting.

use fs_gnn::ops::{GnnBackend, SparseOps};
use fs_gnn::train::{train_agnn, train_gcn, TrainConfig};
use fs_matrix::gen::{sbm, SbmConfig};
use fs_matrix::DenseMatrix;
use fs_tcu::GpuSpec;

fn dataset(seed: u64) -> fs_matrix::gen::SbmDataset {
    sbm(
        SbmConfig {
            nodes: 160,
            classes: 4,
            feature_dim: 24,
            feature_signal: 1.4,
            ..Default::default()
        },
        seed,
    )
}

#[test]
fn gcn_all_backends_learn_the_sbm() {
    let ds = dataset(42);
    let config = TrainConfig { epochs: 60, hidden: 24, layers: 2, lr: 0.01, seed: 3 };
    let mut accs = Vec::new();
    for backend in [
        GnnBackend::CudaFp32,
        GnnBackend::CudaFp32Edge,
        GnnBackend::TcGnnTf32,
        GnnBackend::FlashFp16,
        GnnBackend::FlashTf32,
    ] {
        let r = train_gcn(&ds, backend, GpuSpec::RTX4090, config);
        assert!(r.test_accuracy > 0.55, "{}: {} (chance 0.25)", backend.name(), r.test_accuracy);
        accs.push((backend.name(), r.test_accuracy));
    }
    // All backends converge to comparable accuracy (Table 8's claim).
    let best = accs.iter().map(|a| a.1).fold(0.0, f64::max);
    let worst = accs.iter().map(|a| a.1).fold(1.0, f64::min);
    assert!(best - worst < 0.2, "spread too large: {accs:?}");
}

#[test]
fn agnn_trains_and_uses_sddmm() {
    let ds = dataset(7);
    let config = TrainConfig { epochs: 20, hidden: 16, layers: 1, lr: 0.02, seed: 5 };
    let r = train_agnn(&ds, GnnBackend::FlashFp16, GpuSpec::RTX4090, config);
    assert!(r.test_accuracy > 0.4, "accuracy {}", r.test_accuracy);
    // AGNN must have issued stores into the sparse attention output
    // (the SDDMM writeback) in addition to SpMM traffic.
    assert!(r.counters.mma_count > 0);
    assert!(r.counters.store_transactions > 0);
    assert!(r.sim_kernel_time > 0.0);
}

#[test]
fn flashsparse_backends_are_faster_than_cuda_in_simulated_time() {
    let ds = dataset(13);
    let config = TrainConfig { epochs: 5, hidden: 32, layers: 2, lr: 0.01, seed: 1 };
    let fp32 = train_gcn(&ds, GnnBackend::CudaFp32, GpuSpec::RTX4090, config);
    let fp16 = train_gcn(&ds, GnnBackend::FlashFp16, GpuSpec::RTX4090, config);
    assert!(
        fp16.sim_kernel_time < fp32.sim_kernel_time,
        "FlashSparse {} vs CUDA {}",
        fp16.sim_kernel_time,
        fp32.sim_kernel_time
    );
}

#[test]
fn sparse_ops_backends_numerically_consistent_in_training_context() {
    let ds = dataset(21);
    let adj = fs_gnn::ops::normalize_adjacency(&ds.adjacency);
    let x =
        DenseMatrix::<f32>::from_fn(ds.features.rows(), 8, |r, c| ((r * 3 + c) % 9) as f32 * 0.1);
    let gold = SparseOps::new(GnnBackend::CudaFp32, GpuSpec::RTX4090).spmm(&adj, &x);
    for backend in [GnnBackend::FlashFp16, GnnBackend::FlashTf32, GnnBackend::TcGnnTf32] {
        let out = SparseOps::new(backend, GpuSpec::RTX4090).spmm(&adj, &x);
        let diff = gold.rel_frob_diff(&out);
        assert!(diff < 5e-3, "{}: rel diff {diff}", backend.name());
    }
}
