//! Whole-pipeline invariants: counters, cost-model ordering, and the
//! paper's headline qualitative claims at integration scope.

use flashsparse::TcuPrecision;
use flashsparse::{FlashSparseMatrix, ThreadMapping};
use fs_baselines::cuda;
use fs_baselines::tcu16::{dtc, SPEC16};
use fs_baselines::BaselineRun;
use fs_format::{MeBcrs, SrBcrs, TcFormatSpec};
use fs_matrix::gen::{rmat, RmatConfig};
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_precision::{Tf32, F16};
use fs_tcu::cost::ComputeClass;
use fs_tcu::GpuSpec;

fn graph() -> CsrMatrix<f32> {
    CsrMatrix::from_coo(&rmat::<f32>(9, 8, RmatConfig::GRAPH500, true, 77))
}

/// Paper headline: FlashSparse beats DTC-SpMM (16×1 TCU SOTA) and RoDe
/// (CUDA-core SOTA) on typical graph matrices, on both GPUs.
#[test]
fn headline_speedups_hold() {
    let csr = graph();
    let n = 128;
    let csr16: CsrMatrix<F16> = csr.cast();
    let fs = FlashSparseMatrix::from_csr(&csr16);
    let b16 = DenseMatrix::<F16>::zeros(csr.cols(), n);
    let (_, k_flash) = fs.spmm(&b16, ThreadMapping::MemoryEfficient);
    let flash = BaselineRun::balanced(k_flash, ComputeClass::TcuFp16);

    let me16 = MeBcrs::from_csr(&csr.cast::<Tf32>(), SPEC16);
    let (_, dtc_run) = dtc::spmm_16x1::<Tf32>(&me16, &DenseMatrix::<Tf32>::zeros(csr.cols(), n));
    let bf = DenseMatrix::<f32>::zeros(csr.cols(), n);
    let (_, rode_run) = cuda::rode::spmm(&csr, &bf);

    for gpu in [GpuSpec::H100_PCIE, GpuSpec::RTX4090] {
        let t_flash = flash.simulated_time(gpu);
        let t_dtc = dtc_run.simulated_time(gpu);
        let t_rode = rode_run.simulated_time(gpu);
        assert!(t_dtc / t_flash > 1.5, "{}: vs DTC only {:.2}x", gpu.name, t_dtc / t_flash);
        assert!(t_rode / t_flash > 1.5, "{}: vs RoDe only {:.2}x", gpu.name, t_rode / t_flash);
    }
}

/// Counter conservation: bytes moved are never less than ideal bytes, and
/// the coalesced mapping reaches ~100% load efficiency on dense blocks.
#[test]
fn transaction_accounting_invariants() {
    let csr: CsrMatrix<F16> = graph().cast();
    let me = MeBcrs::from_csr(&csr, F16::SPEC);
    let b = DenseMatrix::<F16>::zeros(csr.cols(), 128);
    for mapping in [ThreadMapping::Direct, ThreadMapping::MemoryEfficient] {
        let (_, k) = flashsparse::spmm(&me, &b, mapping);
        assert!(k.bytes_loaded >= k.ideal_bytes_loaded, "{mapping:?}");
        assert!(k.bytes_stored >= k.ideal_bytes_stored, "{mapping:?}");
        assert!(k.load_efficiency() <= 1.0 + 1e-9);
    }
    let (_, k_eff) = flashsparse::spmm(&me, &b, ThreadMapping::MemoryEfficient);
    assert!(k_eff.load_efficiency() > 0.8, "coalesced efficiency {}", k_eff.load_efficiency());
}

/// ME-BCRS stores strictly less than SR-BCRS on ragged sparse inputs and
/// both decode to the same matrix.
#[test]
fn format_equivalence_and_footprint() {
    let csr: CsrMatrix<F16> = graph().cast();
    for spec in [TcFormatSpec::FLASH_FP16, TcFormatSpec::SOTA16_FP16] {
        let me = MeBcrs::from_csr(&csr, spec);
        let sr = SrBcrs::from_csr(&csr, spec);
        assert_eq!(me.to_dense(), sr.to_dense(), "{spec:?}");
        assert!(me.footprint_bytes() <= sr.footprint_bytes(), "{spec:?}");
    }
}

/// Useful-FLOP accounting: executed TCU FLOPs always exceed the useful
/// operator FLOPs (zero fill is redundant work), and the 8×1 granularity
/// wastes less than 16×1.
#[test]
fn redundancy_is_reduced_not_eliminated() {
    let csr = graph();
    let n = 128;
    let useful = 2 * csr.nnz() as u64 * n as u64;
    let fs = FlashSparseMatrix::from_csr(&csr.cast::<F16>());
    let (_, k8) =
        fs.spmm(&DenseMatrix::<F16>::zeros(csr.cols(), n), ThreadMapping::MemoryEfficient);
    let me16 = MeBcrs::from_csr(&csr.cast::<F16>(), SPEC16);
    let (_, r16) = dtc::spmm_16x1::<F16>(&me16, &DenseMatrix::<F16>::zeros(csr.cols(), n));
    assert!(k8.tcu_flops >= useful, "TCU work includes padding");
    assert!(r16.counters.tcu_flops >= useful);
    assert!(
        k8.tcu_flops < r16.counters.tcu_flops,
        "8x1 must execute fewer total FLOPs: {} vs {}",
        k8.tcu_flops,
        r16.counters.tcu_flops
    );
}

/// The translation preprocessing is cheap relative to a single SpMM's
/// simulated GPU time amortized over typical reuse (the paper's <1%
/// end-to-end claim needs ~100 reuses at our scales).
#[test]
fn translation_is_amortizable() {
    let csr: CsrMatrix<F16> = graph().cast();
    let start = std::time::Instant::now();
    let me = MeBcrs::from_csr(&csr, F16::SPEC);
    let translate_host = start.elapsed();
    assert!(me.num_vectors() > 0);
    // Host-side translation of a ~100k-nnz matrix stays well under a
    // second — the preprocessing is one parallel pass.
    assert!(translate_host.as_secs_f64() < 2.0, "translation took {translate_host:?}");
}
