//! Cross-crate integration tests: FlashSparse SpMM against the gold
//! reference and every baseline, over matrices from every generator.

use flashsparse::{FlashSparseMatrix, TcuPrecision, ThreadMapping};
use fs_baselines::cuda;
use fs_baselines::tcu16::{dtc, SPEC16};
use fs_format::MeBcrs;
use fs_matrix::gen::{banded, block_sparse, random_uniform, rmat, RmatConfig};
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_precision::{Scalar, Tf32, F16};
use proptest::prelude::*;

fn generators() -> Vec<(&'static str, CsrMatrix<f32>)> {
    vec![
        ("rmat", CsrMatrix::from_coo(&rmat::<f32>(7, 6, RmatConfig::GRAPH500, true, 1))),
        ("uniform", CsrMatrix::from_coo(&random_uniform::<f32>(100, 90, 700, 2))),
        ("banded", CsrMatrix::from_coo(&banded::<f32>(120, &[-7, -1, 0, 1, 7], 0.9, 3))),
        ("blocks", CsrMatrix::from_coo(&block_sparse::<f32>(96, 96, 8, 8, 0.1, 0.8, 4))),
        ("empty", CsrMatrix::empty(64, 64)),
    ]
}

fn dense_b<S: Scalar>(rows: usize, n: usize) -> DenseMatrix<S> {
    DenseMatrix::from_fn(rows, n, |r, c| (((r * 5 + c * 3) % 15) as f32 - 7.0) * 0.125)
}

#[test]
fn flashsparse_matches_reference_across_generators_fp16() {
    for (name, csr) in generators() {
        for n in [1usize, 16, 33, 128] {
            let csr16: CsrMatrix<F16> = csr.cast();
            let fs = FlashSparseMatrix::from_csr(&csr16);
            let b = dense_b::<F16>(csr.cols(), n);
            let (out, _) = fs.spmm(&b, ThreadMapping::MemoryEfficient);
            let reference = csr16.spmm_reference(&b);
            let diff = out.max_abs_diff(&reference);
            assert!(diff <= 0.6, "{name} n={n}: diff {diff}");
        }
    }
}

#[test]
fn flashsparse_matches_reference_across_generators_tf32() {
    for (name, csr) in generators() {
        let csr32: CsrMatrix<Tf32> = csr.cast();
        let fs = FlashSparseMatrix::from_csr(&csr32);
        let b = dense_b::<Tf32>(csr.cols(), 64);
        let (out, _) = fs.spmm(&b, ThreadMapping::MemoryEfficient);
        let reference = csr32.spmm_reference(&b);
        let diff = out.rel_frob_diff(&reference);
        assert!(diff <= 1e-3, "{name}: rel diff {diff}");
    }
}

#[test]
fn all_spmm_implementations_agree() {
    let csr = CsrMatrix::from_coo(&rmat::<f32>(7, 8, RmatConfig::GRAPH500, true, 9));
    let n = 64;
    let b = dense_b::<f32>(csr.cols(), n);
    let gold = csr.spmm_reference(&b);

    // CUDA-core baselines (exact f32 numerics, different decompositions).
    for (name, out) in [
        ("cusparse", cuda::cusparse_like::spmm(&csr, &b).0),
        ("gespmm", cuda::gespmm::spmm(&csr, &b).0),
        ("sputnik", cuda::sputnik::spmm(&csr, &b).0),
        ("rode", cuda::rode::spmm(&csr, &b).0),
        ("gnnadvisor", cuda::gnnadvisor::spmm(&csr, &b).0),
    ] {
        assert!(out.max_abs_diff(&gold) < 1e-3, "{name}");
    }

    // Tensor-core paths (FP16 rounding).
    let csr16: CsrMatrix<F16> = csr.cast();
    let b16: DenseMatrix<F16> = b.cast();
    let fs = FlashSparseMatrix::from_csr(&csr16);
    let (flash, _) = fs.spmm(&b16, ThreadMapping::MemoryEfficient);
    let me16 = MeBcrs::from_csr(&csr16, SPEC16);
    let (dtc_out, _) = dtc::spmm_16x1::<F16>(&me16, &b16);
    assert!(flash.max_abs_diff(&gold) < 1.0);
    assert!(dtc_out.max_abs_diff(&flash) < 0.6, "8x1 and 16x1 agree");
}

#[test]
fn thread_mapping_never_changes_results() {
    for (name, csr) in generators() {
        let csr16: CsrMatrix<F16> = csr.cast();
        let me = MeBcrs::from_csr(&csr16, F16::SPEC);
        let b = dense_b::<F16>(csr.cols(), 48);
        let (direct, kd) = flashsparse::spmm(&me, &b, ThreadMapping::Direct);
        let (eff, ke) = flashsparse::spmm(&me, &b, ThreadMapping::MemoryEfficient);
        assert_eq!(direct.max_abs_diff(&eff), 0.0, "{name}");
        assert_eq!(kd.mma_count, ke.mma_count, "{name}");
        assert!(ke.transactions() <= kd.transactions(), "{name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random patterns: FlashSparse FP16 SpMM equals the reference.
    #[test]
    fn prop_spmm_matches_reference(
        rows in 1usize..80,
        cols in 1usize..80,
        nnz in 0usize..400,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let csr: CsrMatrix<F16> =
            CsrMatrix::from_coo(&random_uniform::<f32>(rows, cols, nnz, seed)).cast();
        let fs = FlashSparseMatrix::from_csr(&csr);
        let b = dense_b::<F16>(cols, n);
        let (out, counters) = fs.spmm(&b, ThreadMapping::MemoryEfficient);
        let reference = csr.spmm_reference(&b);
        prop_assert!(out.max_abs_diff(&reference) <= 0.6);
        // Counter sanity: MMAs follow the analytic formula.
        let expected: u64 = (0..fs.format().num_windows())
            .map(|w| fs.format().blocks_in_window(w) as u64)
            .sum::<u64>() * (n as u64).div_ceil(16);
        prop_assert_eq!(counters.mma_count, expected);
    }

    /// The ME-BCRS translation roundtrips for arbitrary patterns.
    #[test]
    fn prop_mebcrs_roundtrip(
        rows in 1usize..100,
        cols in 1usize..100,
        nnz in 0usize..500,
        seed in 0u64..1000,
    ) {
        let csr: CsrMatrix<F16> =
            CsrMatrix::from_coo(&random_uniform::<f32>(rows, cols, nnz, seed)).cast();
        let me = MeBcrs::from_csr(&csr, F16::SPEC);
        prop_assert_eq!(me.to_dense(), csr.to_dense());
        let back = me.to_csr();
        prop_assert_eq!(back.to_dense(), csr.to_dense());
    }
}
