//! Cross-crate integration tests for SDDMM: FlashSparse vs the gold
//! reference, the baselines, and the SDDMM→SpMM chaining invariant.

use flashsparse::{FlashSparseMatrix, ThreadMapping};
use fs_baselines::cuda;
use fs_baselines::tcu16::{dtc, tcgnn, SPEC16};
use fs_format::MeBcrs;
use fs_matrix::gen::{random_uniform, rmat, RmatConfig};
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_precision::{Scalar, Tf32, F16};
use proptest::prelude::*;

fn dense<S: Scalar>(rows: usize, k: usize, salt: usize) -> DenseMatrix<S> {
    DenseMatrix::from_fn(rows, k, |r, c| (((r * 7 + c * 11 + salt) % 19) as f32 - 9.0) * 0.0625)
}

#[test]
fn sddmm_matches_reference_all_k() {
    let mask: CsrMatrix<F16> =
        CsrMatrix::from_coo(&rmat::<f32>(6, 6, RmatConfig::GRAPH500, true, 5))
            .with_unit_values()
            .cast();
    for k in [1usize, 7, 8, 32, 100] {
        let a = dense::<F16>(mask.rows(), k, 0);
        let b = dense::<F16>(mask.cols(), k, 1);
        let fs = FlashSparseMatrix::from_csr(&mask);
        let (out, _) = fs.sddmm(&a, &b);
        let reference = mask.sddmm_reference(&a, &b);
        let out_dense = out.to_dense();
        for (r, c, v) in reference.iter() {
            let got = out_dense.get_f32(r, c);
            assert!(
                (got - v).abs() <= 0.05f32.max(v.abs() * 2e-3),
                "k={k} ({r},{c}): {got} vs {v}"
            );
        }
    }
}

#[test]
fn all_sddmm_implementations_agree() {
    let mask = CsrMatrix::from_coo(&random_uniform::<f32>(64, 64, 400, 3)).with_unit_values();
    let k = 32;
    let a = dense::<f32>(64, k, 0);
    let b = dense::<f32>(64, k, 1);
    let gold = mask.sddmm_reference(&a, &b);

    let (rode, _) = cuda::rode::sddmm(&mask, &a, &b);
    let (sput, _) = cuda::sputnik::sddmm(&mask, &a, &b);
    for (name, out) in [("rode", rode), ("sputnik", sput)] {
        for (x, y) in out.values().iter().zip(gold.values()) {
            assert!((x - y).abs() < 1e-3, "{name}: {x} vs {y}");
        }
    }

    // Tensor-core paths.
    let mask16: CsrMatrix<F16> = mask.cast();
    let fs = FlashSparseMatrix::from_csr(&mask16);
    let (flash, _) = fs.sddmm(&dense::<F16>(64, k, 0), &dense::<F16>(64, k, 1));
    let flash_dense = flash.to_dense();
    let mask_tf: CsrMatrix<Tf32> = mask.cast();
    let me16 = MeBcrs::from_csr(&mask_tf, SPEC16);
    let (tcg, _) = tcgnn::sddmm_tcgnn(&me16, &dense::<Tf32>(64, k, 0), &dense::<Tf32>(64, k, 1));
    let tcg_dense = tcg.to_dense();
    for (r, c, v) in gold.iter() {
        assert!((flash_dense.get_f32(r, c) - v).abs() < 0.05, "flash ({r},{c})");
        assert!((tcg_dense.get_f32(r, c) - v).abs() < 0.01, "tcgnn ({r},{c})");
    }
}

#[test]
fn sddmm_output_chains_into_spmm_without_conversion() {
    // The Figure 9 invariant at integration scope: ME-BCRS out of SDDMM
    // is bit-identical in structure to a fresh translation of the same
    // values.
    let mask: CsrMatrix<F16> =
        CsrMatrix::from_coo(&random_uniform::<f32>(72, 72, 500, 9)).with_unit_values().cast();
    let h = dense::<F16>(72, 16, 2);
    let fs = FlashSparseMatrix::from_csr(&mask);
    let (att, _) = fs.sddmm(&h, &h);

    // Chain directly.
    let att_fs = FlashSparseMatrix::from_mebcrs(att.clone());
    let (direct, _) = att_fs.spmm(&h, ThreadMapping::MemoryEfficient);

    // Round-trip through CSR and retranslate.
    let att_csr = att.to_csr();
    let retranslated = FlashSparseMatrix::from_csr(&att_csr);
    let (via_csr, _) = retranslated.spmm(&h, ThreadMapping::MemoryEfficient);

    // Identical pattern and values ⇒ identical output (up to the zero
    // entries to_csr drops, which contribute nothing).
    assert!(direct.max_abs_diff(&via_csr) < 1e-6);
}

#[test]
fn ablation_16x1_sddmm_agrees_with_8x1() {
    let mask: CsrMatrix<F16> =
        CsrMatrix::from_coo(&rmat::<f32>(6, 8, RmatConfig::GRAPH500, true, 4))
            .with_unit_values()
            .cast();
    let k = 16;
    let a = dense::<F16>(mask.rows(), k, 0);
    let b = dense::<F16>(mask.cols(), k, 3);
    let fs = FlashSparseMatrix::from_csr(&mask);
    let (out8, k8) = fs.sddmm(&a, &b);
    let me16 = MeBcrs::from_csr(&mask, SPEC16);
    let (out16, r16) = dtc::sddmm_16x1::<F16>(&me16, &a, &b);
    assert!(out8.to_dense().max_abs_diff(&out16.to_dense()) < 0.05);
    assert!(
        k8.mma_count <= r16.counters.mma_count,
        "8x1 {} vs 16x1 {}",
        k8.mma_count,
        r16.counters.mma_count
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random masks and inner dims: SDDMM equals the reference within
    /// FP16 rounding.
    #[test]
    fn prop_sddmm_matches_reference(
        rows in 1usize..60,
        cols in 1usize..60,
        nnz in 0usize..300,
        k in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mask: CsrMatrix<F16> =
            CsrMatrix::from_coo(&random_uniform::<f32>(rows, cols, nnz, seed))
                .with_unit_values()
                .cast();
        let a = dense::<F16>(rows, k, 0);
        let b = dense::<F16>(cols, k, 5);
        let fs = FlashSparseMatrix::from_csr(&mask);
        let (out, _) = fs.sddmm(&a, &b);
        let reference = mask.sddmm_reference(&a, &b);
        let out_dense = out.to_dense();
        for (r, c, v) in reference.iter() {
            prop_assert!(
                (out_dense.get_f32(r, c) - v).abs() <= 0.05f32.max(v.abs() * 2e-3),
                "({},{}) {} vs {}", r, c, out_dense.get_f32(r, c), v
            );
        }
    }
}
