#!/usr/bin/env bash
# CI gate for the workspace: formatting, the custom lint pass, a release
# build, and the full test suite. Any failure aborts the run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo run -p xtask -- lint"
cargo run -p xtask --quiet -- lint

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "ci: all gates passed"
