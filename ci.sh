#!/usr/bin/env bash
# CI gate for the workspace: formatting, the custom lint pass, a release
# build, and the full test suite. Any failure aborts the run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo run -p xtask -- lint"
cargo run -p xtask --quiet -- lint

echo "== cargo run -p analyze -- check (baseline gate)"
# Token-level workspace analyses (lock-order, atomic-ordering, protocol,
# trace-site, counter parity) gated against the committed baseline:
# findings not in analyze-baseline.json fail, and so do stale baseline
# entries that no longer fire. After reviewing a finding you intend to
# accept, run:
#   cargo run -p analyze -- check --baseline analyze-baseline.json --update-baseline
# and commit the regenerated file.
cargo run -p analyze --quiet -- check --json ANALYZE_findings.json \
    --baseline analyze-baseline.json

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== cargo doc (warnings denied) + doctests"
# Every crate front page must document itself cleanly, and the runnable
# examples in those pages must actually run.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
cargo test -q --workspace --doc

echo "== exec-mode perf baseline"
# Record the fast-path vs simulator wall-clock baseline. The fast path
# is bit-identical (enforced by the exec_mode_props suite above), so the
# only question here is how much host time it saves; the JSON keeps a
# tracked record per dataset x precision x mode.
./target/release/spmm_cli --bench-json BENCH_spmm.json
MIN_SPEEDUP=$(sed -n 's/.*"min_speedup":\([0-9.]*\).*/\1/p' BENCH_spmm.json)
if ! awk -v s="$MIN_SPEEDUP" 'BEGIN { exit !(s >= 3.0) }'; then
  echo "ci: fast-path speedup regressed below 3x (min ${MIN_SPEEDUP}x)" >&2
  exit 1
fi
echo "ci: fast-path min speedup ${MIN_SPEEDUP}x"

echo "== tracing overhead gate"
# The zero-cost claim, measured: a disarmed span site is one relaxed
# atomic load and must stay in the low tens of nanoseconds per call.
# (The armed/disarmed fast-path ratio is recorded in the JSON for the
# report; the wall-clock gate is the deterministic per-site bound.)
./target/release/spmm_cli --trace-ab-json BENCH_trace.json
SITE_NS=$(sed -n 's/.*"site_disarmed_ns":\([0-9.]*\).*/\1/p' BENCH_trace.json)
if ! awk -v n="$SITE_NS" 'BEGIN { exit !(n <= 100.0) }'; then
  echo "ci: disarmed span site costs ${SITE_NS} ns/call (budget 100)" >&2
  exit 1
fi
echo "ci: disarmed span site ${SITE_NS} ns/call"

echo "== pipelined cold-path gate"
# Cold-request latency with the overlapped engine vs the classic
# tune+translate-then-execute path, measured in-process at the serving
# layer. The pipelined path must keep cold p95 at least 1.5x better —
# the ISSUE's acceptance bar for taking auto-tune off the miss path.
./target/release/pipeline_bench --out BENCH_pipeline.json
COLD_SPEEDUP=$(sed -n 's/.*"cold_speedup_p95":\([0-9.]*\).*/\1/p' BENCH_pipeline.json)
if ! awk -v s="$COLD_SPEEDUP" 'BEGIN { exit !(s >= 1.5) }'; then
  echo "ci: pipelined cold p95 speedup regressed below 1.5x (${COLD_SPEEDUP}x)" >&2
  exit 1
fi
echo "ci: pipelined cold p95 speedup ${COLD_SPEEDUP}x"

echo "== serving smoke test (tracing armed)"
# Start fs-serve on a loopback port with tracing armed, fire a short
# loadgen burst, and require zero errors plus a clean acknowledged
# shutdown. The loadgen fetches the server's trace exports: the
# Prometheus text must carry a full quantile summary for every
# serve-stage span site, and the chrome timeline must be non-empty.
SERVE_PORT="${SERVE_PORT:-7949}"
# Fail fast if a stray server (e.g. a leaked fs-serve from an aborted
# run) is already bound to any port this script is about to use —
# otherwise the smoke tests would talk to the wrong process and fail
# with baffling errors, or worse, pass against stale code.
for OFFSET in $(seq 0 10); do
  PORT=$((SERVE_PORT + OFFSET))
  if (exec 3<>"/dev/tcp/127.0.0.1/${PORT}") 2>/dev/null; then
    echo "ci: port ${PORT} is already in use (stray fs-serve from a previous run?);" \
         "kill it or set SERVE_PORT to a free range" >&2
    exit 1
  fi
done
SMOKE_LOG=$(mktemp)
./target/release/fs-serve --addr "127.0.0.1:${SERVE_PORT}" --workers 2 --trace &
SERVE_PID=$!
SMOKE_OK=0
if ./target/release/loadgen \
    --addr "127.0.0.1:${SERVE_PORT}" \
    --matrix uniform:256x256x4096 --n 16 \
    --requests 40 --concurrency 2 \
    --wait-ready-ms 10000 --shutdown --expect-zero-errors \
    --trace --trace-out TRACE_serve.json | tee "$SMOKE_LOG"; then
  SMOKE_OK=1
fi
if ! wait "$SERVE_PID"; then
  echo "ci: fs-serve exited uncleanly" >&2
  exit 1
fi
if [ "$SMOKE_OK" != 1 ]; then
  echo "ci: serving smoke test failed" >&2
  exit 1
fi
for STAGE in serve.decode serve.queue serve.batch serve.execute serve.encode; do
  for Q in 0.5 0.95 0.99; do
    if ! grep -q "fs_span_seconds{site=\"${STAGE}\",quantile=\"${Q}\"}" "$SMOKE_LOG"; then
      echo "ci: trace export missing ${STAGE} quantile ${Q}" >&2
      exit 1
    fi
  done
  STAGE_COUNT=$(sed -n "s/^fs_span_seconds_count{site=\"${STAGE}\"} //p" "$SMOKE_LOG")
  if ! awk -v c="${STAGE_COUNT:-0}" 'BEGIN { exit !(c > 0) }'; then
    echo "ci: trace export recorded no ${STAGE} spans" >&2
    exit 1
  fi
done
if ! grep -q '"traceEvents":\[{' TRACE_serve.json; then
  echo "ci: chrome trace timeline is empty" >&2
  exit 1
fi
rm -f "$SMOKE_LOG"
echo "ci: armed serving smoke exported all serve-stage spans"

echo "== chaos soak smoke test"
# Same stack under a seeded fault plan: worker kills, frame corruption,
# and fragment bit flips all active. The loadgen --chaos contract exits
# nonzero if any completed response was silently wrong (errors are fine),
# and the server must still drain and exit cleanly afterwards.
CHAOS_PORT=$((SERVE_PORT + 1))
./target/release/fs-serve --addr "127.0.0.1:${CHAOS_PORT}" --workers 2 \
    --chaos "seed=7;frag-bit=0.001;worker-kill=0.02;frame-corrupt=0.02" &
CHAOS_PID=$!
CHAOS_OK=0
if ./target/release/loadgen \
    --addr "127.0.0.1:${CHAOS_PORT}" \
    --matrix uniform:256x256x4096 --n 16 \
    --requests 200 --concurrency 2 \
    --wait-ready-ms 10000 --shutdown --chaos; then
  CHAOS_OK=1
fi
if ! wait "$CHAOS_PID"; then
  echo "ci: fs-serve exited uncleanly under chaos" >&2
  exit 1
fi
if [ "$CHAOS_OK" != 1 ]; then
  echo "ci: chaos soak smoke test failed" >&2
  exit 1
fi

echo "== gnn serving gate (REQ_GNN_INFER, tracing armed)"
# End-to-end GNN inference: loadgen trains a GCN client-side, registers
# the normalized adjacency and the trained weights over the wire, then
# soaks REQ_GNN_INFER with cycling feature variants. Every served logit
# vector is bit-compared against the offline fs-gnn forward pass —
# --expect-zero-errors exits nonzero on wrong > 0 — and the armed trace
# export must carry quantile summaries for both GNN span sites plus
# nonzero embedding-cache traffic.
GNN_PORT=$((SERVE_PORT + 10))
GNN_LOG=$(mktemp)
./target/release/fs-serve --addr "127.0.0.1:${GNN_PORT}" --workers 2 --trace &
GNN_PID=$!
GNN_OK=0
if ./target/release/loadgen \
    --addr "127.0.0.1:${GNN_PORT}" \
    --gnn --gnn-precision 2 --gnn-nodes 128 --gnn-train-epochs 10 --gnn-variants 2 \
    --requests 40 --concurrency 2 \
    --wait-ready-ms 10000 --shutdown --expect-zero-errors --trace | tee "$GNN_LOG"; then
  GNN_OK=1
fi
if ! wait "$GNN_PID"; then
  echo "ci: fs-serve exited uncleanly under the gnn gate" >&2
  exit 1
fi
if [ "$GNN_OK" != 1 ]; then
  echo "ci: gnn serving gate failed" >&2
  exit 1
fi
if ! grep -q '"mode":"gnn"' "$GNN_LOG"; then
  echo "ci: gnn gate did not produce a gnn-mode report" >&2
  exit 1
fi
if ! grep -q '"gnn_layer_p95_us":\[' "$GNN_LOG"; then
  echo "ci: gnn gate report carries no per-layer latencies" >&2
  exit 1
fi
for STAGE in serve.gnn_layer serve.gnn_cache; do
  for Q in 0.5 0.95 0.99; do
    if ! grep -q "fs_span_seconds{site=\"${STAGE}\",quantile=\"${Q}\"}" "$GNN_LOG"; then
      echo "ci: trace export missing ${STAGE} quantile ${Q}" >&2
      exit 1
    fi
  done
done
GNN_HITS=$(sed -n 's/^fs_trace_counter{name="gnn_cache_hits"} //p' "$GNN_LOG")
GNN_MISSES=$(sed -n 's/^fs_trace_counter{name="gnn_cache_misses"} //p' "$GNN_LOG")
if ! awk -v h="${GNN_HITS:-0}" -v m="${GNN_MISSES:-0}" 'BEGIN { exit !(h > 0 && m > 0) }'; then
  echo "ci: gnn soak exercised no embedding-cache traffic (hits=${GNN_HITS:-0}" \
       "misses=${GNN_MISSES:-0})" >&2
  exit 1
fi
rm -f "$GNN_LOG"
echo "ci: gnn gate served bit-exact scores (cache hits=${GNN_HITS} misses=${GNN_MISSES})"

echo "== cluster smoke test"
# Three plain fs-serve shards behind an fs-cluster router carrying a
# seeded shard-kill plan. loadgen --cluster --chaos verifies every
# completed response row-by-row against its local reference (present
# rows within tolerance, lost rows exactly zero) and exits nonzero on
# any silently wrong row; the seeded kills must surface as degraded
# responses in the report. The slab-exact bitmap assertions live in
# crates/cluster/tests/cluster_e2e.rs.
SHARD1_PORT=$((SERVE_PORT + 2))
SHARD2_PORT=$((SERVE_PORT + 3))
SHARD3_PORT=$((SERVE_PORT + 4))
ROUTER_PORT=$((SERVE_PORT + 5))
CLUSTER_LOG=$(mktemp)
./target/release/fs-serve --addr "127.0.0.1:${SHARD1_PORT}" --workers 1 &
SHARD1_PID=$!
./target/release/fs-serve --addr "127.0.0.1:${SHARD2_PORT}" --workers 1 &
SHARD2_PID=$!
./target/release/fs-serve --addr "127.0.0.1:${SHARD3_PORT}" --workers 1 &
SHARD3_PID=$!
./target/release/fs-cluster --addr "127.0.0.1:${ROUTER_PORT}" \
    --shards "127.0.0.1:${SHARD1_PORT},127.0.0.1:${SHARD2_PORT},127.0.0.1:${SHARD3_PORT}" \
    --connect-timeout-ms 10000 \
    --chaos "seed=11;shard-kill=0.05;shard-stall=0.05;stall-ms=1" &
ROUTER_PID=$!
CLUSTER_OK=0
if ./target/release/loadgen \
    --addr "127.0.0.1:${ROUTER_PORT}" --cluster \
    --matrix uniform:256x256x4096 --n 16 \
    --requests 120 --concurrency 2 \
    --wait-ready-ms 15000 --shutdown --chaos | tee "$CLUSTER_LOG"; then
  CLUSTER_OK=1
fi
if ! wait "$ROUTER_PID"; then
  echo "ci: fs-cluster exited uncleanly" >&2
  exit 1
fi
for PID in "$SHARD1_PID" "$SHARD2_PID" "$SHARD3_PID"; do
  if ! wait "$PID"; then
    echo "ci: a cluster shard exited uncleanly" >&2
    exit 1
  fi
done
if [ "$CLUSTER_OK" != 1 ]; then
  echo "ci: cluster smoke test failed" >&2
  exit 1
fi
DEGRADED=$(sed -n 's/.*"degraded":\([0-9]*\).*/\1/p' "$CLUSTER_LOG")
if ! awk -v d="${DEGRADED:-0}" 'BEGIN { exit !(d > 0) }'; then
  echo "ci: seeded shard kills produced no degraded responses" >&2
  exit 1
fi
rm -f "$CLUSTER_LOG"
echo "ci: cluster smoke survived ${DEGRADED} degraded responses with zero wrong rows"

echo "== heal gate (kill -> degrade -> repair -> router restart)"
# The fs-heal acceptance story end-to-end: a replicated 3-shard cluster
# under a seeded kill plan (rate 1.0 — every primary attempt is
# injected-killed, so every slab serves from its replica and a real
# shard death is observable as degradation the moment it happens).
# Phase 1 must be clean, phase 2 (one shard really dead) must degrade,
# phase 3 (after the heal loop re-replicates onto the survivors) must
# be clean again with repairs on the books, and phase 4 (a fresh router
# recovering the manifest from the journal, never re-sent a Load) must
# serve the same matrix with zero wrong rows. Every loadgen run is
# --chaos: exit is nonzero on any silently wrong row.
HEAL1_PORT=$((SERVE_PORT + 6))
HEAL2_PORT=$((SERVE_PORT + 7))
HEAL3_PORT=$((SERVE_PORT + 8))
HEAL_ROUTER_PORT=$((SERVE_PORT + 9))
HEAL_JOURNAL=$(mktemp)
HEAL_LOG=$(mktemp)
HEAL_ROUTER_LOG=$(mktemp)
./target/release/fs-serve --addr "127.0.0.1:${HEAL1_PORT}" --workers 1 &
HEAL1_PID=$!
./target/release/fs-serve --addr "127.0.0.1:${HEAL2_PORT}" --workers 1 &
HEAL2_PID=$!
./target/release/fs-serve --addr "127.0.0.1:${HEAL3_PORT}" --workers 1 &
HEAL3_PID=$!
./target/release/fs-cluster --addr "127.0.0.1:${HEAL_ROUTER_PORT}" \
    --shards "127.0.0.1:${HEAL1_PORT},127.0.0.1:${HEAL2_PORT},127.0.0.1:${HEAL3_PORT}" \
    --replicate --connect-timeout-ms 10000 \
    --probe-interval-ms 200 --suspect-after 1 --down-after 2 \
    --journal "$HEAL_JOURNAL" --keep-shards \
    --chaos "seed=13;shard-kill=1.0" &
HEAL_ROUTER_PID=$!

# Phase 1: all shards up — the replicas absorb every injected kill.
./target/release/loadgen \
    --addr "127.0.0.1:${HEAL_ROUTER_PORT}" --cluster \
    --matrix uniform:256x256x4096 --n 16 \
    --requests 40 --concurrency 2 \
    --wait-ready-ms 15000 --chaos | tee "$HEAL_LOG"
DEGRADED=$(sed -n 's/.*"degraded":\([0-9]*\).*/\1/p' "$HEAL_LOG")
if [ "${DEGRADED:-1}" != 0 ]; then
  echo "ci: heal gate degraded before any real kill (${DEGRADED})" >&2
  exit 1
fi

# Kill one shard for real (clean drain, so its exit status stays checkable).
./target/release/loadgen --addr "127.0.0.1:${HEAL3_PORT}" \
    --matrix uniform:64x64x512 --n 4 --requests 1 --concurrency 1 \
    --wait-ready-ms 10000 --shutdown > /dev/null
if ! wait "$HEAL3_PID"; then
  echo "ci: killed shard exited uncleanly" >&2
  exit 1
fi

# Phase 2: the dead shard backed a replica; with primaries
# injected-killed that slab has no copies — degradation must appear.
./target/release/loadgen \
    --addr "127.0.0.1:${HEAL_ROUTER_PORT}" --cluster \
    --matrix uniform:256x256x4096 --n 16 \
    --requests 40 --concurrency 2 \
    --wait-ready-ms 15000 --chaos | tee "$HEAL_LOG"
DEGRADED=$(sed -n 's/.*"degraded":\([0-9]*\).*/\1/p' "$HEAL_LOG")
if ! awk -v d="${DEGRADED:-0}" 'BEGIN { exit !(d > 0) }'; then
  echo "ci: real shard kill produced no degraded responses" >&2
  exit 1
fi
if ! grep -q '"degraded_timeline":\[' "$HEAL_LOG"; then
  echo "ci: loadgen report carries no degraded_timeline" >&2
  exit 1
fi

# Phase 3: give the heal loop a beat (probe 200ms, Down after 2 misses,
# repair on the Down tick) — responses must be clean again and the
# echoed heal section must show the repair and the Down shard.
sleep 2
./target/release/loadgen \
    --addr "127.0.0.1:${HEAL_ROUTER_PORT}" --cluster \
    --matrix uniform:256x256x4096 --n 16 \
    --requests 40 --concurrency 2 \
    --wait-ready-ms 15000 --chaos --shutdown | tee "$HEAL_LOG"
DEGRADED=$(sed -n 's/.*"degraded":\([0-9]*\).*/\1/p' "$HEAL_LOG")
if [ "${DEGRADED:-1}" != 0 ]; then
  echo "ci: responses still degraded after repair (${DEGRADED})" >&2
  exit 1
fi
REPAIRS=$(sed -n 's/.*"heal_repairs_completed":\([0-9]*\).*/\1/p' "$HEAL_LOG")
if ! awk -v r="${REPAIRS:-0}" 'BEGIN { exit !(r > 0) }'; then
  echo "ci: router reported no completed repairs" >&2
  exit 1
fi
if ! grep -q '"heal_shard_states":\[.*"down"' "$HEAL_LOG"; then
  echo "ci: heal echo does not show the dead shard as down" >&2
  exit 1
fi
if ! wait "$HEAL_ROUTER_PID"; then
  echo "ci: fs-cluster (heal, first router) exited uncleanly" >&2
  exit 1
fi

# Phase 4: a fresh router on the same journal — the manifest must come
# back from the journal's valid prefix (the survivors are the only
# static shards; the dead one is re-joined from the journal and stays
# Down). The loadgen re-sends its registration, which must resolve
# idempotently; rows are verified against the reference as always.
./target/release/fs-cluster --addr "127.0.0.1:${HEAL_ROUTER_PORT}" \
    --shards "127.0.0.1:${HEAL1_PORT},127.0.0.1:${HEAL2_PORT}" \
    --replicate --connect-timeout-ms 10000 \
    --probe-interval-ms 200 --suspect-after 1 --down-after 2 \
    --journal "$HEAL_JOURNAL" \
    --chaos "seed=13;shard-kill=1.0" > "$HEAL_ROUTER_LOG" &
HEAL_ROUTER_PID=$!
./target/release/loadgen \
    --addr "127.0.0.1:${HEAL_ROUTER_PORT}" --cluster \
    --matrix uniform:256x256x4096 --n 16 \
    --requests 40 --concurrency 2 \
    --wait-ready-ms 15000 --chaos --shutdown | tee "$HEAL_LOG"
DEGRADED=$(sed -n 's/.*"degraded":\([0-9]*\).*/\1/p' "$HEAL_LOG")
if [ "${DEGRADED:-1}" != 0 ]; then
  echo "ci: restarted router served degraded responses (${DEGRADED})" >&2
  exit 1
fi
if ! wait "$HEAL_ROUTER_PID"; then
  echo "ci: fs-cluster (heal, restarted router) exited uncleanly" >&2
  exit 1
fi
if ! grep -q "1 matrix(es) recovered" "$HEAL_ROUTER_LOG"; then
  echo "ci: restarted router did not recover the manifest from the journal" >&2
  cat "$HEAL_ROUTER_LOG" >&2
  exit 1
fi
for PID in "$HEAL1_PID" "$HEAL2_PID"; do
  if ! wait "$PID"; then
    echo "ci: a heal-gate shard exited uncleanly" >&2
    exit 1
  fi
done
rm -f "$HEAL_LOG" "$HEAL_ROUTER_LOG" "$HEAL_JOURNAL"
echo "ci: heal gate passed (degrade -> repair -> journal-recovered restart, zero wrong rows)"

echo "ci: all gates passed"
