#!/usr/bin/env bash
# CI gate for the workspace: formatting, the custom lint pass, a release
# build, and the full test suite. Any failure aborts the run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo run -p xtask -- lint"
cargo run -p xtask --quiet -- lint

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== serving smoke test"
# Start fs-serve on a loopback port, fire a short loadgen burst, and
# require zero errors plus a clean acknowledged shutdown.
SERVE_PORT="${SERVE_PORT:-7949}"
./target/release/fs-serve --addr "127.0.0.1:${SERVE_PORT}" --workers 2 &
SERVE_PID=$!
SMOKE_OK=0
if ./target/release/loadgen \
    --addr "127.0.0.1:${SERVE_PORT}" \
    --matrix uniform:256x256x4096 --n 16 \
    --requests 40 --concurrency 2 \
    --wait-ready-ms 10000 --shutdown --expect-zero-errors; then
  SMOKE_OK=1
fi
if ! wait "$SERVE_PID"; then
  echo "ci: fs-serve exited uncleanly" >&2
  exit 1
fi
if [ "$SMOKE_OK" != 1 ]; then
  echo "ci: serving smoke test failed" >&2
  exit 1
fi

echo "ci: all gates passed"
