//! Integration tests for the chaos hooks in the TCU simulator.
//!
//! These live in their own test binary (own process): unlike the
//! sanitizer, chaos changes *results*, so it must never be active while
//! the regular unit tests run. Every test here holds a `ChaosScope` —
//! including the chaos-off test, via an all-zero plan — because the
//! scope's lock is what serializes tests against the process-global
//! injector (an unscoped MMA would consume draw indices from a
//! neighboring test's plan).

use fs_chaos::{ChaosScope, FaultPlan, FaultReport, FaultSite};
use fs_tcu::mma::mma_execute;
use fs_tcu::sanitize::{take_reports, Violation};
use fs_tcu::{
    FragKind, Fragment, KernelCounters, MmaShape, SanitizeScope, ShadowRegion, TrafficClass,
    TransactionCounter,
};

/// f32 tiles as raw bit patterns: flipped exponent bits can make NaN,
/// and NaN != NaN would break an `assert_eq!` on float values.
fn bits(tiles: &[Vec<f32>]) -> Vec<Vec<u32>> {
    tiles.iter().map(|t| t.iter().map(|v| v.to_bits()).collect()).collect()
}

fn run_mmas(count: usize) -> (Vec<Vec<f32>>, KernelCounters) {
    let shape = MmaShape::M16N8K8_F16;
    let a_tile: Vec<f32> = (0..128).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.25).collect();
    let b_tile: Vec<f32> = (0..64).map(|i| ((i * 5 % 11) as f32 - 5.0) * 0.5).collect();
    let a = Fragment::from_tile(shape, FragKind::A, &a_tile);
    let b = Fragment::from_tile(shape, FragKind::B, &b_tile);
    let c = Fragment::zeros(shape, FragKind::CD);
    let mut counters = KernelCounters::default();
    let outs =
        (0..count).map(|_| mma_execute(shape, &a, &b, &c, &mut counters).to_tile()).collect();
    (outs, counters)
}

#[test]
fn frag_bit_flips_fire_and_replay_identically() {
    let plan = FaultPlan::new(42).with_rate(FaultSite::FragBitFlip, 0.25);
    let run = |p: &FaultPlan| -> (Vec<Vec<f32>>, FaultReport) {
        let _scope = ChaosScope::install(p.clone());
        let (outs, _) = run_mmas(64);
        (outs, fs_chaos::report())
    };
    let (outs_a, report_a) = run(&plan);
    let (outs_b, report_b) = run(&plan);

    let (eval, inj) = report_a.site(FaultSite::FragBitFlip);
    assert_eq!(eval, 64, "one draw per MMA");
    assert!(inj > 4 && inj < 32, "rate 0.25 over 64 draws: got {inj}");
    assert_eq!(report_a, report_b, "same plan replays identical counters");
    assert_eq!(bits(&outs_a), bits(&outs_b), "same plan replays bit-identical corrupted outputs");

    // And the clean run differs from the corrupted one somewhere.
    let (clean, _) = run(&FaultPlan::new(42));
    assert_ne!(bits(&outs_a), bits(&clean), "injected flips must perturb at least one output");
}

#[test]
fn accum_bit_flips_perturb_after_the_multiply() {
    let corrupted = {
        let _scope = ChaosScope::install(FaultPlan::new(9).with_rate(FaultSite::AccumBitFlip, 1.0));
        run_mmas(4).0
    };
    let clean = {
        let _scope = ChaosScope::install(FaultPlan::new(9));
        run_mmas(4).0
    };
    for (bad, good) in bits(&corrupted).iter().zip(&bits(&clean)) {
        assert_ne!(bad, good, "rate-1.0 accumulator flip must land in every MMA");
    }
}

#[test]
fn chaos_off_is_bit_identical_to_clean() {
    let _scope = ChaosScope::install(FaultPlan::new(0));
    let (a, ka) = run_mmas(8);
    let (b, kb) = run_mmas(8);
    assert_eq!(bits(&a), bits(&b));
    assert_eq!(ka.mma_count, kb.mma_count);
    assert_eq!(fs_chaos::report(), FaultReport::default(), "zero-rate plan evaluates nothing");
}

#[test]
fn txn_drop_loses_one_transaction_per_fired_draw() {
    let _scope = ChaosScope::install(FaultPlan::new(5).with_rate(FaultSite::TxnDrop, 1.0));
    let accesses: Vec<(u64, u32)> = (0..32u64).map(|t| (t * 4, 4)).collect();
    let mut k = KernelCounters::default();
    let tx = TransactionCounter::new().warp_load(accesses, &mut k);
    // A clean fully-coalesced 32×f32 warp load is 4 sectors (see the
    // memory module's doctest); the rate-1.0 drop removes exactly one.
    assert_eq!(tx, 3);
    assert_eq!(k.load_transactions, 3);
    assert_eq!(k.bytes_loaded, 3 * 32);
    assert_eq!(k.ideal_bytes_loaded, 128, "ideal accounting is not perturbed");
    let (eval, inj) = fs_chaos::report().site(FaultSite::TxnDrop);
    assert_eq!((eval, inj), (1, 1));
}

#[test]
fn shadow_poison_surfaces_as_uninit_load_under_sanitizer() {
    let _chaos = ChaosScope::install(FaultPlan::new(3).with_rate(FaultSite::ShadowPoison, 1.0));
    let _sanitize = SanitizeScope::record();

    // A prefilled region would load clean; the poison draw must flip one
    // accessed byte back to uninitialized before the check runs.
    let region = ShadowRegion::prefilled("poisoned", 256);
    let mut tc = TransactionCounter::new();
    let mut k = KernelCounters::default();
    let accesses: Vec<(u64, u32)> = (0..32u64).map(|t| (t * 4, 4)).collect();
    tc.warp_load_shadowed(TrafficClass::DenseOperand, Some((&region, 0)), accesses, &mut k);

    let reports = take_reports();
    assert!(
        reports.iter().any(|v| matches!(v, Violation::UninitLoad { buffer: "poisoned", .. })),
        "poisoned byte must be caught by the sanitizer: {reports:?}"
    );
    let (eval, inj) = fs_chaos::report().site(FaultSite::ShadowPoison);
    assert_eq!((eval, inj), (1, 1));
}
