//! Acceptance tests for the fragment sanitizer: a deliberately broken
//! swap-and-transpose kernel whose index arithmetic is off by one in a
//! single lane. With sanitize on, the bug is reported with the lane, the
//! register, and the `(row, col)` the PTX layout expected; with sanitize
//! off the same kernel runs silently.

use fs_tcu::mma::mma_execute_accum;
use fs_tcu::sanitize::{recorded_count, take_reports, Violation};
use fs_tcu::{
    mma_execute, AccumMode, FragKind, Fragment, KernelCounters, MmaShape, SanitizeScope, WARP_SIZE,
};

const SHAPE: MmaShape = MmaShape::M16N8K8_F16;

/// A miniature swap-and-transpose operand load: every lane stores the
/// B-operand (the transposed sparse block, k×8) elements its registers
/// carry, recomputing the PTX mapping (`row = t·2 + reg`, `col = g`) by
/// hand — the arithmetic a real kernel performs. `broken_lane` injects
/// the classic bug: that lane's row index is off by one.
fn load_b_operand(at_tile: &[f32], broken_lane: Option<usize>) -> Fragment {
    let mut frag = Fragment::uninit(SHAPE, FragKind::B);
    let (rows, cols) = frag.layout().dims(); // 8×8
    for lane in 0..WARP_SIZE {
        for reg in 0..frag.regs_per_lane() {
            let g = lane >> 2;
            let t = lane & 3;
            let mut row = t * 2 + reg;
            let col = g;
            if Some(lane) == broken_lane {
                row = (row + 1) % rows;
            }
            frag.store_rc(lane, reg, row, col, at_tile[row * cols + col]);
        }
    }
    frag
}

fn run_kernel(broken_lane: Option<usize>) -> Fragment {
    let at_tile: Vec<f32> = (0..64).map(|i| (i % 9) as f32 - 4.0).collect();
    let bt_tile: Vec<f32> = (0..128).map(|i| ((i % 5) as f32) * 0.5).collect();
    let a = Fragment::from_tile(SHAPE, FragKind::A, &bt_tile);
    let b = load_b_operand(&at_tile, broken_lane);
    let c = Fragment::zeros(SHAPE, FragKind::CD);
    let mut counters = KernelCounters::default();
    mma_execute(SHAPE, &a, &b, &c, &mut counters)
}

#[test]
fn broken_lane_caught_with_full_diagnostic() {
    let _scope = SanitizeScope::record();
    run_kernel(Some(5));
    let reports = take_reports();
    // Lane 5 (g=1, t=1) holds registers (2,1) and (3,1); the off-by-one
    // shifts both claims down a row.
    assert_eq!(reports.len(), 2, "{reports:?}");
    assert_eq!(
        reports[0],
        Violation::LaneOwnership {
            kind: FragKind::B,
            lane: 5,
            reg: 0,
            claimed: (3, 1),
            expected: (2, 1),
        }
    );
    assert_eq!(
        reports[1],
        Violation::LaneOwnership {
            kind: FragKind::B,
            lane: 5,
            reg: 1,
            claimed: (4, 1),
            expected: (3, 1),
        }
    );
    // The diagnostic names the lane, the register, and the expected
    // position — enough to locate the index bug without a debugger.
    let msg = reports[0].to_string();
    assert!(msg.contains("lane 5"), "{msg}");
    assert!(msg.contains("register 0"), "{msg}");
    assert!(msg.contains("(2, 1)"), "{msg}");
    assert!(msg.contains("(3, 1)"), "{msg}");
}

#[test]
fn correct_kernel_is_clean_under_sanitize() {
    let _scope = SanitizeScope::record();
    let before = recorded_count();
    run_kernel(None);
    assert_eq!(recorded_count(), before);
    assert!(take_reports().is_empty());
}

#[test]
fn broken_lane_runs_silently_with_sanitize_off() {
    let _scope = SanitizeScope::off();
    let before = recorded_count();
    run_kernel(Some(5));
    assert_eq!(recorded_count(), before, "off-path must not record");
    assert!(take_reports().is_empty());
}

#[test]
fn partially_written_operand_reported_before_mma() {
    let _scope = SanitizeScope::record();
    let a = Fragment::from_tile(SHAPE, FragKind::A, &vec![1.0; 128]);
    let mut b = Fragment::uninit(SHAPE, FragKind::B);
    // Only lane 0 writes its registers; 31 lanes never do.
    b.set(0, 0, 1.0);
    b.set(0, 1, 2.0);
    let c = Fragment::zeros(SHAPE, FragKind::CD);
    let mut counters = KernelCounters::default();
    mma_execute(SHAPE, &a, &b, &c, &mut counters);
    let reports = take_reports();
    assert_eq!(reports.len(), 1, "{reports:?}");
    assert_eq!(reports[0], Violation::UninitFragmentRead { kind: FragKind::B, lane: 1, reg: 0 });
}

#[test]
fn accumulator_mode_aliasing_reported() {
    let _scope = SanitizeScope::record();
    let a = Fragment::from_tile(SHAPE, FragKind::A, &vec![0.5; 128]);
    let b = Fragment::from_tile(SHAPE, FragKind::B, &vec![0.25; 64]);
    let c = Fragment::zeros(SHAPE, FragKind::CD);
    let mut counters = KernelCounters::default();
    let d = mma_execute_accum(SHAPE, &a, &b, &c, AccumMode::F32, &mut counters);
    assert!(take_reports().is_empty(), "first accumulation is clean");
    // Feeding the f32-accumulated fragment back through an f16 MMA mixes
    // accumulation lattices — the aliasing the sanitizer flags.
    mma_execute_accum(SHAPE, &a, &b, &d, AccumMode::F16, &mut counters);
    let reports = take_reports();
    assert_eq!(
        reports,
        vec![Violation::AccumAliasing { previous: AccumMode::F32, requested: AccumMode::F16 }]
    );
}

#[test]
fn chained_accumulation_same_mode_is_clean() {
    let _scope = SanitizeScope::record();
    let a = Fragment::from_tile(SHAPE, FragKind::A, &vec![0.5; 128]);
    let b = Fragment::from_tile(SHAPE, FragKind::B, &vec![0.25; 64]);
    let mut c = Fragment::zeros(SHAPE, FragKind::CD);
    let mut counters = KernelCounters::default();
    for _ in 0..4 {
        c = mma_execute(SHAPE, &a, &b, &c, &mut counters);
    }
    assert!(take_reports().is_empty());
}

#[test]
#[should_panic(expected = "lane-ownership violation: lane 5")]
fn panic_mode_aborts_on_first_violation() {
    let _scope = SanitizeScope::panicking();
    run_kernel(Some(5));
}
