//! Property-based tests for the tensor-core simulator: MMA numerics
//! against a scalar reference, fragment-layout invariants, coalescer
//! bounds, cost-model monotonicity.

use fs_tcu::cost::{ComputeClass, CostModel};
use fs_tcu::mma::round_operand;
use fs_tcu::{
    mma_execute, FragKind, Fragment, GpuSpec, KernelCounters, MmaShape, TransactionCounter,
    WARP_SIZE,
};
use proptest::prelude::*;

const SHAPES: [MmaShape; 4] =
    [MmaShape::M16N8K8_F16, MmaShape::M16N8K16_F16, MmaShape::M16N8K4_TF32, MmaShape::M16N8K8_TF32];

fn shape_strategy() -> impl Strategy<Value = MmaShape> {
    prop::sample::select(SHAPES.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// MMA over random operands equals the rounded scalar reference for
    /// every supported shape.
    #[test]
    fn mma_matches_scalar_reference(
        shape in shape_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let (m, n, k) = (shape.m, shape.n, shape.k);
        // Cheap deterministic pseudo-random values from the seed.
        let val = |i: usize| (((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % 23) as f32 * 0.125 - 1.25;
        let a_tile: Vec<f32> = (0..m * k).map(val).collect();
        let b_tile: Vec<f32> = (0..k * n).map(|i| val(i + 1000)).collect();
        let c_tile: Vec<f32> = (0..m * n).map(|i| val(i + 2000)).collect();
        let mut counters = KernelCounters::default();
        let d = mma_execute(
            shape,
            &Fragment::from_tile(shape, FragKind::A, &a_tile),
            &Fragment::from_tile(shape, FragKind::B, &b_tile),
            &Fragment::from_tile(shape, FragKind::CD, &c_tile),
            &mut counters,
        );
        let d_tile = d.to_tile();
        for i in 0..m {
            for j in 0..n {
                let mut acc = c_tile[i * n + j];
                let mut prod = 0.0f32;
                for t in 0..k {
                    prod += round_operand(a_tile[i * k + t], shape.precision)
                        * round_operand(b_tile[t * n + j], shape.precision);
                }
                acc += prod;
                prop_assert!(
                    (d_tile[i * n + j] - acc).abs() < 1e-4 * (1.0 + acc.abs()),
                    "({i},{j}): {} vs {acc}", d_tile[i * n + j]
                );
            }
        }
        prop_assert_eq!(counters.mma_count, 1);
    }

    /// Fragment set/get and tile round-trips agree for arbitrary data.
    #[test]
    fn fragment_tile_roundtrip(shape in shape_strategy(), kind_idx in 0usize..3, seed in 0u64..1000) {
        let kind = [FragKind::A, FragKind::B, FragKind::CD][kind_idx];
        let mut frag = Fragment::zeros(shape, kind);
        let regs = frag.regs_per_lane();
        for lane in 0..WARP_SIZE {
            for reg in 0..regs {
                frag.set(lane, reg, (seed as f32) + (lane * regs + reg) as f32);
            }
        }
        let tile = frag.to_tile();
        let back = Fragment::from_tile(shape, kind, &tile);
        prop_assert_eq!(back, frag);
    }

    /// Coalescer bounds: transactions ≥ ⌈ideal/32⌉ and ≤ total accesses
    /// (each access touches at most 2 sectors here since sizes ≤ 16).
    #[test]
    fn coalescer_bounds(
        accesses in prop::collection::vec((0u64..4096, 1u32..16), 1..64),
    ) {
        let mut tc = TransactionCounter::new();
        let mut k = KernelCounters::default();
        let tx = tc.warp_load(accesses.clone(), &mut k);
        let ideal: u64 = accesses.iter().map(|&(_, s)| s as u64).sum();
        prop_assert!(tx >= ideal.div_ceil(32), "tx={tx} ideal={ideal}");
        prop_assert!(tx <= 2 * accesses.len() as u64);
        prop_assert_eq!(k.bytes_loaded, tx * 32);
        prop_assert_eq!(k.ideal_bytes_loaded, ideal);
    }

    /// Coalescing can only help: sorting accesses by address never
    /// increases the transaction count (it's order-independent).
    #[test]
    fn coalescer_order_independent(
        accesses in prop::collection::vec((0u64..1024, 1u32..8), 1..48),
    ) {
        let mut tc = TransactionCounter::new();
        let mut k = KernelCounters::default();
        let tx = tc.warp_load(accesses.clone(), &mut k);
        let mut sorted = accesses.clone();
        sorted.sort();
        let tx_sorted = tc.warp_load(sorted, &mut k);
        prop_assert_eq!(tx, tx_sorted);
    }

    /// Kernel time is monotone in both bytes and FLOPs.
    #[test]
    fn cost_model_monotone(
        bytes in 0u64..1_000_000_000,
        flops in 0u64..1_000_000_000_000,
        extra in 1u64..1_000_000,
    ) {
        let model = CostModel::new(GpuSpec::H100_PCIE);
        let base = KernelCounters { bytes_loaded: bytes, tcu_flops: flops, ..Default::default() };
        let more_bytes = KernelCounters { bytes_loaded: bytes + extra, ..base };
        let more_flops = KernelCounters { tcu_flops: flops + extra, ..base };
        let t0 = model.kernel_time(&base, ComputeClass::TcuFp16);
        prop_assert!(model.kernel_time(&more_bytes, ComputeClass::TcuFp16) >= t0);
        prop_assert!(model.kernel_time(&more_flops, ComputeClass::TcuFp16) >= t0);
    }

    /// Counter merging is associative and commutative.
    #[test]
    fn counters_monoid(
        a in 0u64..1000, b in 0u64..1000, c in 0u64..1000,
    ) {
        let ka = KernelCounters { mma_count: a, bytes_loaded: a * 3, ..Default::default() };
        let kb = KernelCounters { mma_count: b, bytes_stored: b * 5, ..Default::default() };
        let kc = KernelCounters { wmma_count: c, cuda_flops: c * 7, ..Default::default() };
        prop_assert_eq!((ka + kb) + kc, ka + (kb + kc));
        prop_assert_eq!(ka + kb, kb + ka);
        prop_assert_eq!(ka + KernelCounters::default(), ka);
    }
}
