//! The global-memory transaction model.
//!
//! NVIDIA GPUs service a warp's global-memory request in 32-byte *sectors*:
//! however few bytes a warp actually touches inside a sector, the whole
//! sector is transferred (the paper: "NVIDIA GPUs support three memory
//! transaction sizes, including 32 bytes, 64 bytes, and 128 bytes" — i.e.
//! 1, 2 or 4 sectors). The coalescer below reproduces that accounting:
//! a warp-wide access touching `s` distinct sectors costs `s` 32-byte
//! transactions, which is exactly the arithmetic behind Figure 7's
//! 16-vs-8-transaction comparison and the Figure 15 ablation.

use fs_chaos::{chaos_enabled, FaultSite};

use crate::counters::{KernelCounters, TrafficClass};
use crate::sanitize::shadow::ShadowRegion;

/// Sector (minimum transaction) size in bytes on NVIDIA GPUs.
pub const SECTOR_BYTES: u64 = 32;

/// Counts coalesced memory transactions for warp-wide accesses.
///
/// Stateless between requests (models a streaming workload where separate
/// warp requests rarely hit the same open sector); intra-request coalescing
/// is exact.
#[derive(Clone, Debug, Default)]
pub struct TransactionCounter {
    scratch: Vec<u64>,
}

impl TransactionCounter {
    /// A fresh counter.
    ///
    /// ```
    /// use fs_tcu::{KernelCounters, TransactionCounter};
    ///
    /// let mut tc = TransactionCounter::new();
    /// let mut k = KernelCounters::default();
    /// // A fully coalesced warp load of 32 consecutive f32: 4 sectors.
    /// let tx = tc.warp_load((0..32u64).map(|t| (t * 4, 4)), &mut k);
    /// assert_eq!(tx, 4);
    /// // The same bytes with a 64-byte stride: one sector per lane.
    /// let tx = tc.warp_load((0..32u64).map(|t| (t * 64, 4)), &mut k);
    /// assert_eq!(tx, 32);
    /// ```
    pub fn new() -> Self {
        Self::default()
    }

    /// Count the sectors touched by one warp-wide request given each
    /// participating thread's `(byte_address, byte_size)` accesses.
    fn sectors(&mut self, accesses: impl IntoIterator<Item = (u64, u32)>) -> u64 {
        self.scratch.clear();
        for (addr, size) in accesses {
            if size == 0 {
                continue;
            }
            let first = addr / SECTOR_BYTES;
            let last = (addr + size as u64 - 1) / SECTOR_BYTES;
            for s in first..=last {
                self.scratch.push(s);
            }
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        self.scratch.len() as u64
    }

    /// Record a warp-wide **load**. Returns the number of 32-byte
    /// transactions it generated; updates `counters`.
    pub fn warp_load(
        &mut self,
        accesses: impl IntoIterator<Item = (u64, u32), IntoIter: Clone>,
        counters: &mut KernelCounters,
    ) -> u64 {
        let _span = fs_trace::span(fs_trace::Site::Coalesce);
        let iter = accesses.into_iter();
        let ideal: u64 = iter.clone().map(|(_, s)| s as u64).sum();
        let mut tx = self.sectors(iter);
        // Chaos hook: a fired txn-drop draw loses one 32-byte transaction
        // from this warp request (the coalescer "forgets" a sector).
        if chaos_enabled() && tx > 0 && fs_chaos::draw(FaultSite::TxnDrop).is_some() {
            tx -= 1;
        }
        counters.load_transactions += tx;
        counters.bytes_loaded += tx * SECTOR_BYTES;
        counters.ideal_bytes_loaded += ideal;
        tx
    }

    /// [`TransactionCounter::warp_load`] tagged with a [`TrafficClass`],
    /// additionally attributing the ideal bytes to the class breakdown.
    pub fn warp_load_as(
        &mut self,
        class: TrafficClass,
        accesses: impl IntoIterator<Item = (u64, u32), IntoIter: Clone>,
        counters: &mut KernelCounters,
    ) -> u64 {
        let iter = accesses.into_iter();
        let ideal: u64 = iter.clone().map(|(_, s)| s as u64).sum();
        match class {
            TrafficClass::SparseValues => counters.sparse_value_bytes += ideal,
            TrafficClass::DenseOperand => counters.dense_operand_bytes += ideal,
            TrafficClass::Indices => counters.index_bytes += ideal,
        }
        self.warp_load(iter, counters)
    }

    /// [`TransactionCounter::warp_load_as`] with an optional sanitizer
    /// hook: when `shadow` carries a [`ShadowRegion`] and the issuing warp
    /// id, the accesses are first checked for bounds and initialization
    /// (see [`crate::sanitize::shadow`]). With `shadow == None` — the
    /// sanitize-off path — this is one branch on top of `warp_load_as`.
    #[inline]
    pub fn warp_load_shadowed(
        &mut self,
        class: TrafficClass,
        shadow: Option<(&ShadowRegion, u32)>,
        accesses: impl IntoIterator<Item = (u64, u32), IntoIter: Clone>,
        counters: &mut KernelCounters,
    ) -> u64 {
        let iter = accesses.into_iter();
        if let Some((region, warp)) = shadow {
            // Chaos hook: poison one accessed shadow byte first, so the
            // sanitizer observes the fault as an uninitialized load.
            if chaos_enabled() {
                if let Some(d) = fs_chaos::draw(FaultSite::ShadowPoison) {
                    region.chaos_poison(&d, iter.clone());
                }
            }
            region.check_load(warp, iter.clone());
        }
        self.warp_load_as(class, iter, counters)
    }

    /// Record a warp-wide **store**. Returns the number of 32-byte
    /// transactions; updates `counters`.
    pub fn warp_store(
        &mut self,
        accesses: impl IntoIterator<Item = (u64, u32), IntoIter: Clone>,
        counters: &mut KernelCounters,
    ) -> u64 {
        let _span = fs_trace::span(fs_trace::Site::Coalesce);
        let iter = accesses.into_iter();
        let ideal: u64 = iter.clone().map(|(_, s)| s as u64).sum();
        let tx = self.sectors(iter);
        counters.store_transactions += tx;
        counters.bytes_stored += tx * SECTOR_BYTES;
        counters.ideal_bytes_stored += ideal;
        tx
    }

    /// [`TransactionCounter::warp_store`] with the optional sanitizer hook
    /// of [`TransactionCounter::warp_load_shadowed`]: checked stores mark
    /// shadow bytes initialized and report write-write conflicts between
    /// warps.
    #[inline]
    pub fn warp_store_shadowed(
        &mut self,
        shadow: Option<(&ShadowRegion, u32)>,
        accesses: impl IntoIterator<Item = (u64, u32), IntoIter: Clone>,
        counters: &mut KernelCounters,
    ) -> u64 {
        let iter = accesses.into_iter();
        if let Some((region, warp)) = shadow {
            region.check_store(warp, iter.clone());
        }
        self.warp_store(iter, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_warp_load_of_f32() {
        // 32 threads × 4 bytes, consecutive: 128 bytes = 4 sectors.
        let mut tc = TransactionCounter::new();
        let mut k = KernelCounters::default();
        let accesses: Vec<(u64, u32)> = (0..32).map(|t| (t * 4, 4)).collect();
        assert_eq!(tc.warp_load(accesses, &mut k), 4);
        assert_eq!(k.bytes_loaded, 128);
        assert_eq!(k.ideal_bytes_loaded, 128);
    }

    #[test]
    fn strided_access_wastes_sectors() {
        // 32 threads × 4 bytes with a 64-byte stride: every access its own
        // sector → 32 transactions, 1024 bytes moved for 128 useful.
        let mut tc = TransactionCounter::new();
        let mut k = KernelCounters::default();
        let accesses: Vec<(u64, u32)> = (0..32).map(|t| (t * 64, 4)).collect();
        assert_eq!(tc.warp_load(accesses, &mut k), 32);
        assert_eq!(k.bytes_loaded, 1024);
        assert_eq!(k.ideal_bytes_loaded, 128);
    }

    #[test]
    fn paper_figure7_direct_mapping_costs_16_transactions() {
        // Figure 7 (b): the dense 8×16 FP16 TC block B, row-major in global
        // memory with row stride 16 halves (32 bytes). Direct mapping: lane
        // l = g*4+t (g = l>>2 "column group", t = l&3) loads 4 halves:
        // rows t*2, t*2+1 at columns g and g+8 — 2 bytes each, strides of 16
        // bytes between the two columns. Each element access by the 8-lane
        // group {T0,T4,...,T28} covers 16 bytes — half a sector. Result per
        // the paper: 16 transactions for the whole block.
        let row_bytes = 32u64;
        let mut accesses = Vec::new();
        for lane in 0..32u64 {
            let g = lane >> 2;
            let t = lane & 3;
            for (dr, dc) in [(0, 0), (1, 0), (0, 8), (1, 8)] {
                let row = t * 2 + dr;
                let col = g + dc;
                accesses.push((row * row_bytes + col * 2, 2u32));
            }
        }
        let mut tc = TransactionCounter::new();
        let mut k = KernelCounters::default();
        let tx = tc.warp_load(accesses, &mut k);
        assert_eq!(tx, 8, "8 rows × 32 bytes each = 8 sectors when counted jointly");
        // The paper's 16-transaction figure counts each of the four per-lane
        // element accesses as a separate warp request (the hardware issues
        // LDG.E.16 per element). Model that:
        let mut k2 = KernelCounters::default();
        let mut total = 0;
        for (dr, dc) in [(0, 0), (1, 0), (0, 8), (1, 8)] {
            let accesses: Vec<(u64, u32)> = (0..32u64)
                .map(|lane| {
                    let g = lane >> 2;
                    let t = lane & 3;
                    ((t * 2 + dr) * row_bytes + (g + dc) * 2, 2u32)
                })
                .collect();
            total += tc.warp_load(accesses, &mut k2);
        }
        assert_eq!(total, 16, "per-element requests: 4 requests × 4 half-sectors");
    }

    #[test]
    fn paper_figure7_coalesced_mapping_costs_8_transactions() {
        // Figure 7 (c): memory-efficient mapping. Lane l handles a 2×2 block
        // read as two 4-byte (f32) loads: rows t*2, t*2+1 at column pair
        // 2g. Issued as two warp requests (one per row of the 2×2 block),
        // each request covers 8 full rows → 8 sectors total.
        let row_bytes = 32u64;
        let mut tc = TransactionCounter::new();
        let mut k = KernelCounters::default();
        let mut total = 0;
        for dr in 0..2u64 {
            let accesses: Vec<(u64, u32)> = (0..32u64)
                .map(|lane| {
                    let g = lane >> 2;
                    let t = lane & 3;
                    ((t * 2 + dr) * row_bytes + g * 2 * 2, 4u32)
                })
                .collect();
            total += tc.warp_load(accesses, &mut k);
        }
        assert_eq!(total, 8, "coalesced mapping halves the transactions");
        assert_eq!(k.ideal_bytes_loaded, 256, "8×16 halves = 256 bytes");
        assert_eq!(k.bytes_loaded, 256, "no waste in coalesced mode");
    }

    #[test]
    fn access_spanning_sector_boundary_counts_both() {
        let mut tc = TransactionCounter::new();
        let mut k = KernelCounters::default();
        assert_eq!(tc.warp_load([(30u64, 4u32)], &mut k), 2);
    }

    #[test]
    fn stores_tracked_separately() {
        let mut tc = TransactionCounter::new();
        let mut k = KernelCounters::default();
        tc.warp_store((0..32).map(|t| (t * 4, 4u32)), &mut k);
        assert_eq!(k.store_transactions, 4);
        assert_eq!(k.load_transactions, 0);
        assert_eq!(k.bytes_stored, 128);
    }

    #[test]
    fn empty_request_is_free() {
        let mut tc = TransactionCounter::new();
        let mut k = KernelCounters::default();
        assert_eq!(tc.warp_load(std::iter::empty::<(u64, u32)>(), &mut k), 0);
        assert_eq!(tc.warp_load([(100u64, 0u32)], &mut k), 0);
    }
}
