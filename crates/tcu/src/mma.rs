//! Execution of MMA instructions over warp fragments.

use fs_chaos::{chaos_enabled, FaultDraw, FaultSite};
use fs_precision::{f32_through_f16, f32_to_tf32};

use crate::counters::KernelCounters;
use crate::fragment::{FragKind, Fragment};
use crate::sanitize::{record, sanitize_enabled, Violation};
use crate::shape::{MmaShape, Precision};

/// Round a value to the operand lattice of `precision` — what the tensor
/// core datapath does to its inputs.
#[inline]
pub fn round_operand(x: f32, precision: Precision) -> f32 {
    match precision {
        Precision::Fp16 => f32_through_f16(x),
        Precision::Tf32 => f32_to_tf32(x),
    }
}

/// Accumulator precision of an FP16 MMA.
///
/// `mma.sync...f32.f16.f16.f32` accumulates in f32;
/// `mma.sync...f16.f16.f16.f16` accumulates in f16, which doubles
/// throughput on consumer GPUs (the RTX 4090's 330 vs 165 TFLOPS split)
/// at the cost of rounding every partial sum to half precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AccumMode {
    /// f32 accumulator (the mode FlashSparse and this reproduction use).
    #[default]
    F32,
    /// f16 accumulator (fast but lossy; available for the accuracy
    /// ablation — see the `fp16_accumulate_loses_precision` test).
    F16,
}

/// Execute `D = A×B + C` over warp fragments, with hardware numeric
/// semantics: inputs rounded to the operand precision, products and
/// accumulation in f32. Increments `counters`.
///
/// The returned fragment has the C/D layout of `shape`.
pub fn mma_execute(
    shape: MmaShape,
    a: &Fragment,
    b: &Fragment,
    c: &Fragment,
    counters: &mut KernelCounters,
) -> Fragment {
    mma_execute_accum(shape, a, b, c, AccumMode::F32, counters)
}

/// [`mma_execute`] with an explicit accumulator mode.
///
/// # Panics
/// Panics if `AccumMode::F16` is requested for a TF32 shape (the hardware
/// has no such instruction).
pub fn mma_execute_accum(
    shape: MmaShape,
    a: &Fragment,
    b: &Fragment,
    c: &Fragment,
    accum: AccumMode,
    counters: &mut KernelCounters,
) -> Fragment {
    let _span = fs_trace::span(fs_trace::Site::Mma);
    if accum == AccumMode::F16 {
        assert_eq!(
            shape.precision,
            crate::shape::Precision::Fp16,
            "f16 accumulation exists only for FP16 MMA shapes"
        );
    }
    if sanitize_enabled() {
        sanitize_operands(a, b, c, accum);
    }
    let (m, n, k) = (shape.m, shape.n, shape.k);
    let mut a_tile = a.to_tile();
    if chaos_enabled() {
        if let Some(d) = fs_chaos::draw(FaultSite::FragBitFlip) {
            chaos_flip_bit(&mut a_tile, &d);
        }
    }
    let b_tile = b.to_tile();
    let c_tile = c.to_tile();
    debug_assert_eq!(a_tile.len(), m * k);
    debug_assert_eq!(b_tile.len(), k * n);
    debug_assert_eq!(c_tile.len(), m * n);

    let mut d_tile = c_tile;
    for i in 0..m {
        for j in 0..n {
            match accum {
                AccumMode::F32 => {
                    let mut acc = 0.0f32;
                    for t in 0..k {
                        let av = round_operand(a_tile[i * k + t], shape.precision);
                        let bv = round_operand(b_tile[t * n + j], shape.precision);
                        acc += av * bv;
                    }
                    d_tile[i * n + j] += acc;
                }
                AccumMode::F16 => {
                    // Hardware f16 accumulation: every partial sum is
                    // rounded back to binary16.
                    let mut acc = fs_precision::F16::from_f32(d_tile[i * n + j]);
                    for t in 0..k {
                        let av = round_operand(a_tile[i * k + t], shape.precision);
                        let bv = round_operand(b_tile[t * n + j], shape.precision);
                        acc += fs_precision::F16::from_f32(av * bv);
                    }
                    d_tile[i * n + j] = acc.to_f32();
                }
            }
        }
    }

    if chaos_enabled() {
        if let Some(d) = fs_chaos::draw(FaultSite::AccumBitFlip) {
            chaos_flip_bit(&mut d_tile, &d);
        }
    }

    counters.mma_count += 1;
    counters.tcu_flops += shape.flops();

    let mut d = Fragment::from_tile(shape, FragKind::CD, &d_tile);
    if let Some(shadow) = d.shadow_mut() {
        shadow.stamp_accum(accum);
    }
    d
}

/// Apply one fired bit-flip draw to a tile: the draw's payload picks the
/// element (slot 0) and the bit (slot 1), so a replayed plan lands the
/// identical fault.
#[cold]
fn chaos_flip_bit(tile: &mut [f32], d: &FaultDraw) {
    if tile.is_empty() {
        return;
    }
    let elem = d.select(0, tile.len() as u64) as usize;
    let bit = d.select(1, 32) as u32; // lint: checked-cast - select(_, 32) < 32
    tile[elem] = f32::from_bits(tile[elem].to_bits() ^ (1u32 << bit));
}

/// Sanitize-on pre-checks of one MMA's operands: every consumed
/// `(lane, reg)` must have been written, and a reused accumulator must
/// keep its accumulation mode.
#[cold]
fn sanitize_operands(a: &Fragment, b: &Fragment, c: &Fragment, accum: AccumMode) {
    for frag in [a, b, c] {
        if let Some(shadow) = frag.shadow() {
            if let Some((lane, reg)) = shadow.first_uninit(frag.regs_per_lane()) {
                record(Violation::UninitFragmentRead { kind: frag.layout().kind(), lane, reg });
            }
        }
    }
    if let Some(prev) = c.shadow().and_then(|s| s.accum_mode()) {
        if prev != accum {
            record(Violation::AccumAliasing { previous: prev, requested: accum });
        }
    }
}

/// Execute a WMMA `m16n16k8` TF32 operation on whole tiles (the C++ WMMA
/// API hides per-lane layouts, so TC-GNN-style kernels work on tiles).
///
/// `a` is 16×8 row-major, `b` is 8×16 row-major, `c` is 16×16 row-major
/// (modified in place). Increments `counters` as one WMMA invocation.
pub fn wmma_execute_tf32(a: &[f32], b: &[f32], c: &mut [f32], counters: &mut KernelCounters) {
    let _span = fs_trace::span(fs_trace::Site::Mma);
    const M: usize = 16;
    const N: usize = 16;
    const K: usize = 8;
    assert_eq!(a.len(), M * K);
    assert_eq!(b.len(), K * N);
    assert_eq!(c.len(), M * N);
    for i in 0..M {
        for j in 0..N {
            let mut acc = 0.0f32;
            for t in 0..K {
                acc += f32_to_tf32(a[i * K + t]) * f32_to_tf32(b[t * N + j]);
            }
            c[i * N + j] += acc;
        }
    }
    counters.wmma_count += 1;
    counters.tcu_flops += MmaShape::M16N16K8_WMMA_TF32.flops();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_ref(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], prec: Precision) -> Vec<f32> {
        let mut d = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for t in 0..k {
                    d[i * n + j] +=
                        round_operand(a[i * k + t], prec) * round_operand(b[t * n + j], prec);
                }
            }
        }
        d
    }

    fn check_shape(shape: MmaShape) {
        let (m, n, k) = (shape.m, shape.n, shape.k);
        let a_tile: Vec<f32> = (0..m * k).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.25).collect();
        let b_tile: Vec<f32> = (0..k * n).map(|i| ((i * 5 % 11) as f32 - 5.0) * 0.5).collect();
        let a = Fragment::from_tile(shape, FragKind::A, &a_tile);
        let b = Fragment::from_tile(shape, FragKind::B, &b_tile);
        let c = Fragment::zeros(shape, FragKind::CD);
        let mut counters = KernelCounters::default();
        let d = mma_execute(shape, &a, &b, &c, &mut counters);
        let expected = dense_ref(m, n, k, &a_tile, &b_tile, shape.precision);
        assert_eq!(d.to_tile(), expected, "{shape:?}");
        assert_eq!(counters.mma_count, 1);
        assert_eq!(counters.tcu_flops, shape.flops());
    }

    #[test]
    fn mma_matches_dense_reference_all_shapes() {
        check_shape(MmaShape::M16N8K8_F16);
        check_shape(MmaShape::M16N8K16_F16);
        check_shape(MmaShape::M16N8K4_TF32);
        check_shape(MmaShape::M16N8K8_TF32);
    }

    #[test]
    fn accumulator_is_added() {
        let shape = MmaShape::M16N8K8_F16;
        let a = Fragment::from_tile(shape, FragKind::A, &vec![0.0; 128]);
        let b = Fragment::from_tile(shape, FragKind::B, &vec![0.0; 64]);
        let c_tile: Vec<f32> = (0..128).map(|i| i as f32).collect();
        let c = Fragment::from_tile(shape, FragKind::CD, &c_tile);
        let mut counters = KernelCounters::default();
        let d = mma_execute(shape, &a, &b, &c, &mut counters);
        assert_eq!(d.to_tile(), c_tile, "zero product leaves C unchanged");
    }

    #[test]
    fn fp16_inputs_are_rounded() {
        // 2049 is not representable in f16 (rounds to 2048): the MMA must see
        // the rounded operand.
        let shape = MmaShape::M16N8K8_F16;
        let mut a_tile = vec![0.0f32; 128];
        a_tile[0] = 2049.0;
        let mut b_tile = vec![0.0f32; 64];
        b_tile[0] = 1.0;
        let a = Fragment::from_tile(shape, FragKind::A, &a_tile);
        let b = Fragment::from_tile(shape, FragKind::B, &b_tile);
        let c = Fragment::zeros(shape, FragKind::CD);
        let mut counters = KernelCounters::default();
        let d = mma_execute(shape, &a, &b, &c, &mut counters);
        assert_eq!(d.to_tile()[0], 2048.0);
    }

    #[test]
    fn tf32_inputs_are_rounded() {
        let shape = MmaShape::M16N8K4_TF32;
        let mut a_tile = vec![0.0f32; 64];
        let x = 1.0 + 2.0f32.powi(-11); // rounds to 1.0 in TF32
        a_tile[0] = x;
        let mut b_tile = vec![0.0f32; 32];
        b_tile[0] = 1.0;
        let a = Fragment::from_tile(shape, FragKind::A, &a_tile);
        let b = Fragment::from_tile(shape, FragKind::B, &b_tile);
        let c = Fragment::zeros(shape, FragKind::CD);
        let mut counters = KernelCounters::default();
        let d = mma_execute(shape, &a, &b, &c, &mut counters);
        assert_eq!(d.to_tile()[0], 1.0);
    }

    #[test]
    fn wmma_matches_reference() {
        let a: Vec<f32> = (0..16 * 8).map(|i| (i % 5) as f32).collect();
        let b: Vec<f32> = (0..8 * 16).map(|i| (i % 3) as f32 - 1.0).collect();
        let mut c = vec![1.0f32; 16 * 16];
        let mut counters = KernelCounters::default();
        wmma_execute_tf32(&a, &b, &mut c, &mut counters);
        let mut expected = vec![1.0f32; 16 * 16];
        for i in 0..16 {
            for j in 0..16 {
                for t in 0..8 {
                    expected[i * 16 + j] += a[i * 8 + t] * b[t * 16 + j];
                }
            }
        }
        assert_eq!(c, expected);
        assert_eq!(counters.wmma_count, 1);
    }

    #[test]
    fn fp16_accumulate_loses_precision() {
        // 2048 + 1 sticks at 2048 in f16 accumulation but not in f32.
        let shape = MmaShape::M16N8K8_F16;
        let mut a_tile = vec![0.0f32; 128];
        a_tile[0] = 2048.0; // (0,0)
        a_tile[1] = 1.0; // (0,1)
        let mut b_tile = vec![0.0f32; 64];
        b_tile[0] = 1.0; // (0,0)
        b_tile[8] = 1.0; // (1,0)
        let a = Fragment::from_tile(shape, FragKind::A, &a_tile);
        let b = Fragment::from_tile(shape, FragKind::B, &b_tile);
        let c = Fragment::zeros(shape, FragKind::CD);
        let mut counters = KernelCounters::default();
        let d32 = mma_execute_accum(shape, &a, &b, &c, AccumMode::F32, &mut counters);
        let d16 = mma_execute_accum(shape, &a, &b, &c, AccumMode::F16, &mut counters);
        assert_eq!(d32.to_tile()[0], 2049.0, "f32 accumulation is exact");
        assert_eq!(d16.to_tile()[0], 2048.0, "f16 accumulation rounds away the +1");
    }

    #[test]
    #[should_panic(expected = "f16 accumulation exists only for FP16")]
    fn fp16_accumulate_rejected_for_tf32() {
        let shape = MmaShape::M16N8K4_TF32;
        let a = Fragment::zeros(shape, FragKind::A);
        let b = Fragment::zeros(shape, FragKind::B);
        let c = Fragment::zeros(shape, FragKind::CD);
        let mut counters = KernelCounters::default();
        mma_execute_accum(shape, &a, &b, &c, AccumMode::F16, &mut counters);
    }

    /// The swap-and-transpose identity at the heart of FlashSparse:
    /// computing Bᵀ×Aᵀ with the MMA gives (A×B)ᵀ exactly.
    #[test]
    fn swap_and_transpose_identity() {
        let shape = MmaShape::M16N8K8_F16;
        // A_orig: 8×8 sparse-ish block; B_orig: 8×16 dense block.
        let a_orig: Vec<f32> =
            (0..64).map(|i| if i % 3 == 0 { (i % 7) as f32 } else { 0.0 }).collect();
        let b_orig: Vec<f32> = (0..128).map(|i| ((i % 9) as f32 - 4.0) * 0.5).collect();
        // Direct product C = A_orig(8×8) × B_orig(8×16).
        let mut c_direct = vec![0.0f32; 8 * 16];
        for i in 0..8 {
            for j in 0..16 {
                for t in 0..8 {
                    c_direct[i * 16 + j] +=
                        f32_through_f16(a_orig[i * 8 + t]) * f32_through_f16(b_orig[t * 16 + j]);
                }
            }
        }
        // Swap-and-transpose: MMA left operand = B_origᵀ (16×8), right = A_origᵀ (8×8).
        let mut bt = vec![0.0f32; 16 * 8];
        for r in 0..8 {
            for c in 0..16 {
                bt[c * 8 + r] = b_orig[r * 16 + c];
            }
        }
        let mut at = vec![0.0f32; 8 * 8];
        for r in 0..8 {
            for c in 0..8 {
                at[c * 8 + r] = a_orig[r * 8 + c];
            }
        }
        let a_frag = Fragment::from_tile(shape, FragKind::A, &bt);
        let b_frag = Fragment::from_tile(shape, FragKind::B, &at);
        let c_frag = Fragment::zeros(shape, FragKind::CD);
        let mut counters = KernelCounters::default();
        let d = mma_execute(shape, &a_frag, &b_frag, &c_frag, &mut counters);
        let d_tile = d.to_tile(); // 16×8 = Cᵀ
        for i in 0..8 {
            for j in 0..16 {
                assert_eq!(d_tile[j * 8 + i], c_direct[i * 16 + j], "({i},{j})");
            }
        }
    }
}
