//! Per-thread register fragments and their PTX-documented layouts.
//!
//! An MMA operand is distributed over the 32 lanes of a warp: lane `l`
//! holds `regs_per_lane` values, and the PTX ISA specifies exactly which
//! `(row, col)` of the tile each `(lane, reg)` pair carries (see "Matrix
//! Fragments for mma.m16n8k8" in the PTX documentation, reference \[33\] of
//! the paper). FlashSparse's thread-mapping optimization (Section 3.3)
//! reasons directly about these layouts, so the simulator reproduces them
//! exactly.

use crate::sanitize::fragment::{check_lane_claim, FragShadow};
use crate::sanitize::{record, sanitize_enabled, Violation};
use crate::shape::{MmaShape, Precision};
use crate::WARP_SIZE;

/// Which operand of the MMA a fragment holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FragKind {
    /// Left operand, `m×k`, row-major logical layout.
    A,
    /// Right operand, `k×n`, column-major logical layout.
    B,
    /// Accumulator / result, `m×n`.
    CD,
}

/// The register layout of one operand of one MMA shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragmentLayout {
    shape: MmaShape,
    kind: FragKind,
}

impl FragmentLayout {
    /// The layout of operand `kind` for `shape`.
    ///
    /// # Panics
    /// Panics for shapes the simulator does not model per-lane (the WMMA
    /// shape `m16n16k8`, which the C++ API treats as an opaque tile).
    pub fn of(shape: MmaShape, kind: FragKind) -> Self {
        assert!(
            shape.m == 16 && shape.n == 8,
            "per-lane layouts are defined for the m16n8k* family, got {shape:?}"
        );
        FragmentLayout { shape, kind }
    }

    /// Registers each lane contributes to this operand.
    pub fn regs_per_lane(&self) -> usize {
        let s = &self.shape;
        match self.kind {
            FragKind::A => s.a_elems() / WARP_SIZE,
            FragKind::B => s.b_elems() / WARP_SIZE,
            FragKind::CD => s.cd_elems() / WARP_SIZE,
        }
    }

    /// Which operand this layout describes.
    #[inline]
    pub fn kind(&self) -> FragKind {
        self.kind
    }

    /// The MMA shape this layout belongs to.
    #[inline]
    pub fn shape(&self) -> MmaShape {
        self.shape
    }

    /// Tile dimensions `(rows, cols)` of this operand.
    pub fn dims(&self) -> (usize, usize) {
        let s = &self.shape;
        match self.kind {
            FragKind::A => (s.m, s.k),
            FragKind::B => (s.k, s.n),
            FragKind::CD => (s.m, s.n),
        }
    }

    /// The `(row, col)` of the tile element held in register `reg` of lane
    /// `lane`, exactly as documented in the PTX ISA.
    pub fn pos(&self, lane: usize, reg: usize) -> (usize, usize) {
        debug_assert!(lane < WARP_SIZE && reg < self.regs_per_lane());
        let g = lane >> 2; // "groupID" in the PTX docs
        let t = lane & 3; // "threadID_in_group"
        let k = self.shape.k;
        match (self.kind, self.shape.precision, k) {
            // ---- FP16, m16n8k8 ----
            (FragKind::A, Precision::Fp16, 8) => {
                // 4 halves: a0,a1 in the top 16×8 half-rows, a2,a3 offset +8.
                let row = g + if reg >= 2 { 8 } else { 0 };
                let col = t * 2 + (reg & 1);
                (row, col)
            }
            (FragKind::B, Precision::Fp16, 8) => (t * 2 + reg, g),
            // ---- FP16, m16n8k16 ----
            (FragKind::A, Precision::Fp16, 16) => {
                let row = g + if reg % 4 >= 2 { 8 } else { 0 };
                let col = t * 2 + (reg & 1) + if reg >= 4 { 8 } else { 0 };
                (row, col)
            }
            (FragKind::B, Precision::Fp16, 16) => {
                let row = t * 2 + (reg & 1) + if reg >= 2 { 8 } else { 0 };
                (row, g)
            }
            // ---- TF32, m16n8k4 ----
            (FragKind::A, Precision::Tf32, 4) => (g + reg * 8, t),
            (FragKind::B, Precision::Tf32, 4) => (t, g),
            // ---- TF32, m16n8k8 ----
            (FragKind::A, Precision::Tf32, 8) => {
                let row = g + if reg & 1 == 1 { 8 } else { 0 };
                let col = t + if reg >= 2 { 4 } else { 0 };
                (row, col)
            }
            (FragKind::B, Precision::Tf32, 8) => (t + reg * 4, g),
            // ---- C/D is always 16×8 f32, shared across shapes ----
            (FragKind::CD, _, _) => {
                let row = g + if reg >= 2 { 8 } else { 0 };
                let col = t * 2 + (reg & 1);
                (row, col)
            }
            other => unreachable!("unsupported fragment layout {other:?}"),
        }
    }
}

/// A warp's register storage for one MMA operand: `WARP_SIZE ×
/// regs_per_lane` f32 values (FP16/TF32 operands are stored widened; the
/// rounding to the operand lattice happens at load time, as on hardware).
#[derive(Clone, Debug)]
pub struct Fragment {
    layout: FragmentLayout,
    regs: Vec<f32>,
    /// Sanitizer shadow; allocated only while sanitizing (see
    /// [`crate::sanitize`]), never part of value equality.
    shadow: Option<Box<FragShadow>>,
}

impl PartialEq for Fragment {
    fn eq(&self, other: &Self) -> bool {
        self.layout == other.layout && self.regs == other.regs
    }
}

impl Fragment {
    /// A zero-filled fragment for `shape`/`kind`. Models registers the
    /// kernel explicitly cleared, so every slot counts as initialized.
    pub fn zeros(shape: MmaShape, kind: FragKind) -> Self {
        Self::with_shadow_fill(shape, kind, true)
    }

    /// A fragment whose registers were never written — a fresh register
    /// allocation. Register values read as zero (as [`Self::zeros`]), but
    /// under sanitize the slots count as uninitialized until stored to, so
    /// consuming them in an MMA is reported.
    pub fn uninit(shape: MmaShape, kind: FragKind) -> Self {
        Self::with_shadow_fill(shape, kind, false)
    }

    fn with_shadow_fill(shape: MmaShape, kind: FragKind, initialized: bool) -> Self {
        let layout = FragmentLayout::of(shape, kind);
        Fragment {
            layout,
            regs: vec![0.0; WARP_SIZE * layout.regs_per_lane()],
            shadow: sanitize_enabled().then(|| FragShadow::new(layout, initialized)),
        }
    }

    /// The layout this fragment follows.
    #[inline]
    pub fn layout(&self) -> FragmentLayout {
        self.layout
    }

    /// Registers per lane.
    #[inline]
    pub fn regs_per_lane(&self) -> usize {
        self.layout.regs_per_lane()
    }

    /// Read register `reg` of lane `lane`.
    #[inline]
    pub fn get(&self, lane: usize, reg: usize) -> f32 {
        self.regs[lane * self.layout.regs_per_lane() + reg]
    }

    /// Write register `reg` of lane `lane`.
    #[inline]
    pub fn set(&mut self, lane: usize, reg: usize, value: f32) {
        let slot = lane * self.layout.regs_per_lane() + reg;
        if let Some(shadow) = &mut self.shadow {
            shadow.mark_written(slot);
        }
        self.regs[slot] = value;
    }

    /// Store `value` as tile element `(row, col)` from the thread owning
    /// `(lane, reg)` — the lane-level write a kernel's swap-and-transpose
    /// index arithmetic performs. Under sanitize, the claimed `(row, col)`
    /// is checked against the PTX layout's assignment for `(lane, reg)`
    /// and a mismatch is reported with both positions ([`Violation::LaneOwnership`]).
    ///
    /// The store always lands in `(lane, reg)` — exactly like hardware,
    /// where a thread can only write its own register, so a wrong index
    /// silently corrupts the tile unless the sanitizer is watching.
    ///
    /// [`Violation::LaneOwnership`]: crate::sanitize::Violation::LaneOwnership
    #[inline]
    pub fn store_rc(&mut self, lane: usize, reg: usize, row: usize, col: usize, value: f32) {
        if self.shadow.is_some() {
            check_lane_claim(self.layout, lane, reg, (row, col));
        }
        self.set(lane, reg, value);
    }

    /// Read tile element `(row, col)` from the thread owning `(lane, reg)`
    /// — the checked dual of [`Self::store_rc`]. Under sanitize, reports a
    /// wrong ownership claim and a read of a never-written slot.
    #[inline]
    pub fn read_rc(&self, lane: usize, reg: usize, row: usize, col: usize) -> f32 {
        if let Some(shadow) = &self.shadow {
            check_lane_claim(self.layout, lane, reg, (row, col));
            if shadow.is_uninit(lane * self.layout.regs_per_lane() + reg) {
                record(Violation::UninitFragmentRead { kind: self.layout.kind(), lane, reg });
            }
        }
        self.get(lane, reg)
    }

    /// Gather the fragment into a dense row-major tile.
    pub fn to_tile(&self) -> Vec<f32> {
        let (rows, cols) = self.layout.dims();
        let mut tile = vec![0.0f32; rows * cols];
        for lane in 0..WARP_SIZE {
            for reg in 0..self.layout.regs_per_lane() {
                let (r, c) = self.layout.pos(lane, reg);
                tile[r * cols + c] = self.get(lane, reg);
            }
        }
        tile
    }

    /// Scatter a dense row-major tile into the fragment. Every slot is
    /// written, so the whole fragment counts as initialized.
    pub fn load_tile(&mut self, tile: &[f32]) {
        let (rows, cols) = self.layout.dims();
        assert_eq!(tile.len(), rows * cols, "tile must match operand dims");
        for lane in 0..WARP_SIZE {
            for reg in 0..self.layout.regs_per_lane() {
                let (r, c) = self.layout.pos(lane, reg);
                self.set(lane, reg, tile[r * cols + c]);
            }
        }
        if let Some(shadow) = &mut self.shadow {
            shadow.mark_all_written();
        }
    }

    /// Sanitizer shadow, if this fragment carries one.
    #[inline]
    pub(crate) fn shadow(&self) -> Option<&FragShadow> {
        self.shadow.as_deref()
    }

    /// Mutable sanitizer shadow.
    #[inline]
    pub(crate) fn shadow_mut(&mut self) -> Option<&mut FragShadow> {
        self.shadow.as_deref_mut()
    }

    /// Build a fragment directly from a tile.
    pub fn from_tile(shape: MmaShape, kind: FragKind, tile: &[f32]) -> Self {
        let mut f = Fragment::zeros(shape, kind);
        f.load_tile(tile);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LANE_SHAPES: &[MmaShape] = &[
        MmaShape::M16N8K8_F16,
        MmaShape::M16N8K16_F16,
        MmaShape::M16N8K4_TF32,
        MmaShape::M16N8K8_TF32,
    ];

    /// Every tile element must be held by exactly one (lane, reg) pair.
    #[test]
    fn layouts_are_bijective() {
        for &shape in LANE_SHAPES {
            for kind in [FragKind::A, FragKind::B, FragKind::CD] {
                let layout = FragmentLayout::of(shape, kind);
                let (rows, cols) = layout.dims();
                let mut seen = vec![false; rows * cols];
                for lane in 0..WARP_SIZE {
                    for reg in 0..layout.regs_per_lane() {
                        let (r, c) = layout.pos(lane, reg);
                        assert!(r < rows && c < cols, "{shape:?} {kind:?} ({r},{c})");
                        let idx = r * cols + c;
                        assert!(
                            !seen[idx],
                            "{shape:?} {kind:?}: ({r},{c}) covered twice (lane {lane} reg {reg})"
                        );
                        seen[idx] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "{shape:?} {kind:?}: tile not covered");
            }
        }
    }

    #[test]
    fn regs_per_lane_match_ptx() {
        // m16n8k8 f16: A = 4 halves, B = 2 halves, C = 4 floats per lane.
        let s = MmaShape::M16N8K8_F16;
        assert_eq!(FragmentLayout::of(s, FragKind::A).regs_per_lane(), 4);
        assert_eq!(FragmentLayout::of(s, FragKind::B).regs_per_lane(), 2);
        assert_eq!(FragmentLayout::of(s, FragKind::CD).regs_per_lane(), 4);
        // m16n8k4 tf32: A = 2, B = 1, C = 4.
        let s = MmaShape::M16N8K4_TF32;
        assert_eq!(FragmentLayout::of(s, FragKind::A).regs_per_lane(), 2);
        assert_eq!(FragmentLayout::of(s, FragKind::B).regs_per_lane(), 1);
        // m16n8k16 f16: A = 8, B = 4.
        let s = MmaShape::M16N8K16_F16;
        assert_eq!(FragmentLayout::of(s, FragKind::A).regs_per_lane(), 8);
        assert_eq!(FragmentLayout::of(s, FragKind::B).regs_per_lane(), 4);
    }

    #[test]
    fn documented_anchor_positions() {
        // Spot-check against the PTX ISA figure for mma.m16n8k8 (f16):
        // lane 0 holds a0=(0,0), a1=(0,1), a2=(8,0), a3=(8,1);
        // lane 5 (g=1, t=1) holds b0=(2,1), b1=(3,1);
        // lane 31 (g=7, t=3) holds c3=(15,7).
        let a = FragmentLayout::of(MmaShape::M16N8K8_F16, FragKind::A);
        assert_eq!(a.pos(0, 0), (0, 0));
        assert_eq!(a.pos(0, 1), (0, 1));
        assert_eq!(a.pos(0, 2), (8, 0));
        assert_eq!(a.pos(0, 3), (8, 1));
        let b = FragmentLayout::of(MmaShape::M16N8K8_F16, FragKind::B);
        assert_eq!(b.pos(5, 0), (2, 1));
        assert_eq!(b.pos(5, 1), (3, 1));
        let c = FragmentLayout::of(MmaShape::M16N8K8_F16, FragKind::CD);
        assert_eq!(c.pos(31, 3), (15, 7));
        // TF32 m16n8k4: lane 0 a0=(0,0), a1=(8,0); b of lane 9 (g=2,t=1) = (1,2).
        let a4 = FragmentLayout::of(MmaShape::M16N8K4_TF32, FragKind::A);
        assert_eq!(a4.pos(0, 0), (0, 0));
        assert_eq!(a4.pos(0, 1), (8, 0));
        let b4 = FragmentLayout::of(MmaShape::M16N8K4_TF32, FragKind::B);
        assert_eq!(b4.pos(9, 0), (1, 2));
    }

    #[test]
    fn tile_roundtrip() {
        for &shape in LANE_SHAPES {
            for kind in [FragKind::A, FragKind::B, FragKind::CD] {
                let layout = FragmentLayout::of(shape, kind);
                let (rows, cols) = layout.dims();
                let tile: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
                let frag = Fragment::from_tile(shape, kind, &tile);
                assert_eq!(frag.to_tile(), tile, "{shape:?} {kind:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "m16n8k*")]
    fn wmma_shape_has_no_lane_layout() {
        FragmentLayout::of(MmaShape::M16N16K8_WMMA_TF32, FragKind::A);
    }
}
