//! Shadow memory: per-buffer init bitmaps, bounds metadata, and a
//! per-byte write log for race detection between simulated warps.
//!
//! The transaction model addresses every array from byte 0 of its own
//! synthetic address space, so shadow state is kept **per buffer** (one
//! [`ShadowRegion`] per logical array of a kernel launch) rather than in a
//! single flat heap.
//!
//! A region's write log is scoped to an *epoch*: all warps of one kernel
//! launch are logically concurrent, so two distinct warps storing the same
//! byte within an epoch is a write-write conflict (on hardware, a data
//! race with an undefined winner). [`ShadowRegion::advance_epoch`] starts
//! the next launch over the same buffer.

use std::collections::HashMap;

use parking_lot::Mutex;

use super::{record, AccessOp, Violation};

/// Violation reports per region are capped so one systematic bug doesn't
/// flood the report with thousands of identical entries.
const REPORT_CAP: u32 = 16;

/// Shadow state for one logical buffer of a kernel launch.
#[derive(Debug)]
pub struct ShadowRegion {
    name: &'static str,
    len: u64,
    state: Mutex<RegionState>,
}

#[derive(Debug)]
struct RegionState {
    /// One bit per byte: has the byte ever been written (or prefilled)?
    init: Vec<u64>,
    /// Byte address → warp that last stored it, within the current epoch.
    writers: HashMap<u64, u32>,
    epoch: u64,
    reported: u32,
}

impl RegionState {
    #[inline]
    fn is_init(&self, byte: u64) -> bool {
        let word = (byte / 64) as usize;
        self.init.get(word).is_some_and(|w| w >> (byte % 64) & 1 == 1)
    }

    #[inline]
    fn set_init(&mut self, byte: u64) {
        let word = (byte / 64) as usize;
        if let Some(w) = self.init.get_mut(word) {
            *w |= 1 << (byte % 64);
        }
    }

    fn report(&mut self, v: Violation) {
        if self.reported < REPORT_CAP {
            self.reported += 1;
            record(v);
        }
    }
}

impl ShadowRegion {
    /// A region of `len_bytes` with every byte *uninitialized* (a fresh
    /// device allocation, e.g. a kernel's output buffer).
    pub fn new(name: &'static str, len_bytes: u64) -> Self {
        Self::with_fill(name, len_bytes, false)
    }

    /// A region of `len_bytes` with every byte already initialized (a
    /// buffer the host filled before launch, e.g. the input arrays).
    pub fn prefilled(name: &'static str, len_bytes: u64) -> Self {
        Self::with_fill(name, len_bytes, true)
    }

    fn with_fill(name: &'static str, len_bytes: u64, filled: bool) -> Self {
        let words = (len_bytes).div_ceil(64) as usize;
        ShadowRegion {
            name,
            len: len_bytes,
            state: Mutex::new(RegionState {
                init: vec![if filled { u64::MAX } else { 0 }; words],
                writers: HashMap::new(),
                epoch: 0,
                reported: 0,
            }),
        }
    }

    /// Buffer name used in diagnostics.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Buffer length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Begin the next kernel launch over this buffer: clears the write
    /// log (stores from different epochs are ordered by the launch
    /// boundary, so they never conflict) and re-arms the report cap.
    pub fn advance_epoch(&self) {
        let mut st = self.state.lock();
        st.writers.clear();
        st.epoch += 1;
        st.reported = 0;
    }

    /// Check one warp-wide load: bounds and byte-level initialization.
    pub fn check_load(&self, warp: u32, accesses: impl IntoIterator<Item = (u64, u32)>) {
        let mut st = self.state.lock();
        for (addr, size) in accesses {
            if size == 0 {
                continue;
            }
            if addr + u64::from(size) > self.len {
                st.report(Violation::OutOfBounds {
                    buffer: self.name,
                    op: AccessOp::Load,
                    addr,
                    size,
                    len: self.len,
                });
                continue;
            }
            if let Some(byte) = (addr..addr + u64::from(size)).find(|&b| !st.is_init(b)) {
                st.report(Violation::UninitLoad { buffer: self.name, addr: byte, warp });
            }
        }
    }

    /// Fault-injection hook: clear the init bit of one in-bounds byte of
    /// `accesses` so a following [`ShadowRegion::check_load`] observes the
    /// fault as an [`Violation::UninitLoad`]. The draw's payload picks
    /// which byte, so a replayed plan poisons the identical address.
    pub fn chaos_poison(
        &self,
        draw: &fs_chaos::FaultDraw,
        accesses: impl IntoIterator<Item = (u64, u32)>,
    ) {
        let bytes: Vec<u64> = accesses
            .into_iter()
            .flat_map(|(addr, size)| addr..addr + u64::from(size))
            .filter(|&b| b < self.len)
            .collect();
        if bytes.is_empty() {
            return;
        }
        let byte = bytes[draw.select(0, bytes.len() as u64) as usize];
        let mut st = self.state.lock();
        let word = (byte / 64) as usize;
        if let Some(w) = st.init.get_mut(word) {
            *w &= !(1u64 << (byte % 64));
        }
    }

    /// Check one warp-wide store: bounds, then mark bytes initialized and
    /// log the writer, reporting write-write conflicts with other warps in
    /// the current epoch.
    pub fn check_store(&self, warp: u32, accesses: impl IntoIterator<Item = (u64, u32)>) {
        let mut st = self.state.lock();
        let epoch = st.epoch;
        for (addr, size) in accesses {
            if size == 0 {
                continue;
            }
            if addr + u64::from(size) > self.len {
                st.report(Violation::OutOfBounds {
                    buffer: self.name,
                    op: AccessOp::Store,
                    addr,
                    size,
                    len: self.len,
                });
                continue;
            }
            for byte in addr..addr + u64::from(size) {
                st.set_init(byte);
                match st.writers.insert(byte, warp) {
                    Some(prev) if prev != warp => {
                        st.report(Violation::WriteConflict {
                            buffer: self.name,
                            addr: byte,
                            epoch,
                            first_warp: prev,
                            second_warp: warp,
                        });
                    }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::{take_reports, SanitizeScope};

    #[test]
    fn clean_store_then_load_reports_nothing() {
        let _scope = SanitizeScope::record();
        let region = ShadowRegion::new("buf", 128);
        region.check_store(0, [(0u64, 64u32)]);
        region.check_load(1, [(0u64, 64u32)]);
        assert!(take_reports().is_empty());
    }

    #[test]
    fn uninitialized_load_detected() {
        let _scope = SanitizeScope::record();
        let region = ShadowRegion::new("out", 128);
        region.check_store(0, [(0u64, 8u32)]);
        region.check_load(0, [(4u64, 8u32)]); // bytes 8..12 never stored
        let reports = take_reports();
        assert_eq!(reports.len(), 1);
        assert!(
            matches!(&reports[0], Violation::UninitLoad { buffer: "out", addr: 8, .. }),
            "{reports:?}"
        );
    }

    #[test]
    fn prefilled_region_loads_clean() {
        let _scope = SanitizeScope::record();
        let region = ShadowRegion::prefilled("input", 96);
        region.check_load(0, [(0u64, 96u32)]);
        assert!(take_reports().is_empty());
    }

    #[test]
    fn out_of_bounds_load_and_store_detected() {
        let _scope = SanitizeScope::record();
        let region = ShadowRegion::prefilled("vals", 100);
        region.check_load(0, [(98u64, 4u32)]);
        region.check_store(0, [(100u64, 2u32)]);
        let reports = take_reports();
        assert_eq!(reports.len(), 2);
        assert!(matches!(
            reports[0],
            Violation::OutOfBounds { op: AccessOp::Load, addr: 98, size: 4, len: 100, .. }
        ));
        assert!(matches!(
            reports[1],
            Violation::OutOfBounds { op: AccessOp::Store, addr: 100, .. }
        ));
    }

    #[test]
    fn write_write_conflict_between_warps() {
        let _scope = SanitizeScope::record();
        let region = ShadowRegion::new("c", 64);
        region.check_store(0, [(0u64, 4u32)]);
        region.check_store(7, [(2u64, 4u32)]); // bytes 2,3 overlap warp 0's store
        let reports = take_reports();
        assert!(!reports.is_empty());
        assert!(
            matches!(
                reports[0],
                Violation::WriteConflict { addr: 2, first_warp: 0, second_warp: 7, .. }
            ),
            "{reports:?}"
        );
    }

    #[test]
    fn same_warp_rewrites_freely_and_epochs_reset_conflicts() {
        let _scope = SanitizeScope::record();
        let region = ShadowRegion::new("c", 64);
        region.check_store(3, [(0u64, 8u32)]);
        region.check_store(3, [(0u64, 8u32)]); // same warp: no conflict
        assert!(take_reports().is_empty());
        region.advance_epoch();
        region.check_store(4, [(0u64, 8u32)]); // new epoch: no conflict either
        assert!(take_reports().is_empty());
        region.check_store(5, [(0u64, 1u32)]); // same epoch as warp 4: conflict
        assert_eq!(take_reports().len(), 1);
    }

    #[test]
    fn report_cap_bounds_the_flood() {
        let _scope = SanitizeScope::record();
        let region = ShadowRegion::new("flood", 8);
        for i in 0..100u64 {
            region.check_load(0, [(i % 8, 1u32)]); // all uninitialized
        }
        let reports = take_reports();
        assert_eq!(reports.len(), REPORT_CAP as usize);
    }

    #[test]
    fn zero_sized_accesses_ignored() {
        let _scope = SanitizeScope::record();
        let region = ShadowRegion::new("z", 8);
        region.check_load(0, [(1000u64, 0u32)]);
        region.check_store(0, [(1000u64, 0u32)]);
        assert!(take_reports().is_empty());
    }
}
