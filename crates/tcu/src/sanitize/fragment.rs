//! Shadow state for [`crate::Fragment`]: which `(lane, reg)` slots have
//! been written, and which accumulation mode last produced the fragment.
//!
//! Allocated only while sanitizing (a fragment created with the mode off
//! carries no shadow, so the off-path cost is one `Option` branch).

use crate::fragment::FragmentLayout;
use crate::mma::AccumMode;
use crate::WARP_SIZE;

use super::{record, Violation};

/// Per-fragment shadow: one init flag per `(lane, reg)` slot plus the
/// accumulator-mode stamp.
#[derive(Clone, Debug)]
pub struct FragShadow {
    init: Vec<bool>,
    accum: Option<AccumMode>,
}

impl FragShadow {
    /// A shadow for `layout` with every slot marked per `initialized`.
    pub(crate) fn new(layout: FragmentLayout, initialized: bool) -> Box<FragShadow> {
        Box::new(FragShadow {
            init: vec![initialized; WARP_SIZE * layout.regs_per_lane()],
            accum: None,
        })
    }

    #[inline]
    pub(crate) fn mark_written(&mut self, slot: usize) {
        self.init[slot] = true;
    }

    pub(crate) fn mark_all_written(&mut self) {
        self.init.iter_mut().for_each(|b| *b = true);
    }

    #[inline]
    pub(crate) fn is_uninit(&self, slot: usize) -> bool {
        !self.init[slot]
    }

    /// The first never-written `(lane, reg)`, if any.
    pub(crate) fn first_uninit(&self, regs_per_lane: usize) -> Option<(usize, usize)> {
        self.init.iter().position(|&b| !b).map(|slot| (slot / regs_per_lane, slot % regs_per_lane))
    }

    #[inline]
    pub(crate) fn accum_mode(&self) -> Option<AccumMode> {
        self.accum
    }

    pub(crate) fn stamp_accum(&mut self, mode: AccumMode) {
        self.accum = Some(mode);
    }
}

/// Check a thread's claim that `(lane, reg)` of a fragment with `layout`
/// carries tile element `(row, col)`; records a [`Violation::LaneOwnership`]
/// with the layout's actual assignment when the claim is wrong.
///
/// Returns `true` when the claim matches the PTX layout.
pub fn check_lane_claim(
    layout: FragmentLayout,
    lane: usize,
    reg: usize,
    claimed: (usize, usize),
) -> bool {
    let expected = layout.pos(lane, reg);
    if expected == claimed {
        true
    } else {
        record(Violation::LaneOwnership { kind: layout.kind(), lane, reg, claimed, expected });
        false
    }
}
