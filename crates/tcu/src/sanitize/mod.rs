//! A compute-sanitizer analogue for the software TCU.
//!
//! Real CUDA development leans on `compute-sanitizer` (memcheck /
//! initcheck / racecheck) to catch the bug classes the hardware silently
//! tolerates. This module reproduces that safety net for the simulator:
//!
//! * **Fragment checks** ([`fragment`]) — shadow state per [`crate::Fragment`]
//!   detecting reads of never-written lanes before an MMA, lane-ownership
//!   violations (a thread storing to a `(row, col)` the PTX layout does not
//!   map to its lane), and accumulator aliasing across [`crate::AccumMode`]s.
//! * **Shadow memory** ([`shadow`]) — per-buffer init bitmaps and bounds
//!   metadata behind the transaction counter, detecting out-of-bounds
//!   sectors, uninitialized loads, and write-write conflicts between
//!   concurrently simulated warps.
//!
//! Everything is gated on a process-wide [`SanitizeMode`]; with the mode
//! `Off` (the default) every hook is a single inlined branch on a relaxed
//! atomic load or a `None` shadow handle, so the fast path stays intact
//! (verified by the `sanitize` Criterion A/B benchmark in `fs-bench`).
//!
//! Violations are recorded to a thread-local report (the simulator's Rayon
//! shim executes windows on the calling thread, so a kernel's violations
//! land on its caller's report). Kernel entry points fold the report delta
//! into [`crate::KernelCounters::sanitizer_violations`], so violations
//! surface in `fs-bench` output like any other counter.

pub mod fragment;
pub mod shadow;

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::LazyLock;

use parking_lot::Mutex;

use crate::fragment::FragKind;
use crate::mma::AccumMode;

/// How the sanitizer responds to instrumented operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SanitizeMode {
    /// No checking: shadows are not allocated, hooks early-return.
    #[default]
    Off,
    /// Check and record violations to the thread-local report.
    Record,
    /// Check and panic on the first violation (useful under `proptest`).
    Panic,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// The current process-wide sanitize mode.
pub fn sanitize_mode() -> SanitizeMode {
    // lint: relaxed-ok - MODE gates thread-local report state only; no cross-thread publication
    match MODE.load(Ordering::Relaxed) {
        1 => SanitizeMode::Record,
        2 => SanitizeMode::Panic,
        _ => SanitizeMode::Off,
    }
}

/// Set the process-wide sanitize mode. Prefer [`SanitizeScope`] in tests —
/// it serializes against other sanitizing tests and restores the previous
/// mode on drop.
pub fn set_sanitize_mode(mode: SanitizeMode) {
    let v = match mode {
        SanitizeMode::Off => 0,
        SanitizeMode::Record => 1,
        SanitizeMode::Panic => 2,
    };
    // lint: relaxed-ok - SanitizeScope serializes mode changes; violations land thread-locally
    MODE.store(v, Ordering::Relaxed);
}

/// Whether any checking is active. The single branch every off-path hook
/// pays.
#[inline]
pub fn sanitize_enabled() -> bool {
    // lint: relaxed-ok - one-branch off-path check; gates no shared non-atomic data
    MODE.load(Ordering::Relaxed) != 0
}

/// Whether a memory access stumbled on a load or a store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOp {
    Load,
    Store,
}

impl fmt::Display for AccessOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessOp::Load => "load",
            AccessOp::Store => "store",
        })
    }
}

/// One detected violation, with enough context to locate the bug.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// An MMA consumed a fragment with a lane/register that was never
    /// written.
    UninitFragmentRead { kind: FragKind, lane: usize, reg: usize },
    /// A thread claimed a `(row, col)` for a register that the PTX layout
    /// assigns elsewhere.
    LaneOwnership {
        kind: FragKind,
        lane: usize,
        reg: usize,
        /// The `(row, col)` the thread claimed to be handling.
        claimed: (usize, usize),
        /// The `(row, col)` the PTX layout actually assigns to this
        /// `(lane, reg)`.
        expected: (usize, usize),
    },
    /// The same accumulator fragment was fed through MMAs with different
    /// accumulation modes.
    AccumAliasing { previous: AccumMode, requested: AccumMode },
    /// An access fell outside its buffer.
    OutOfBounds { buffer: &'static str, op: AccessOp, addr: u64, size: u32, len: u64 },
    /// A load touched bytes no store (and no host prefill) ever wrote.
    UninitLoad { buffer: &'static str, addr: u64, warp: u32 },
    /// Two different simulated warps stored to the same byte within one
    /// epoch (no ordering between them → a data race on hardware).
    WriteConflict { buffer: &'static str, addr: u64, epoch: u64, first_warp: u32, second_warp: u32 },
    /// A sparse-format invariant failed (reported by the layer that owns
    /// the format types; carried here as text).
    Format { detail: String },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UninitFragmentRead { kind, lane, reg } => write!(
                f,
                "uninitialized fragment read: {kind:?} operand consumed with lane {lane} \
                 register {reg} never written"
            ),
            Violation::LaneOwnership { kind, lane, reg, claimed, expected } => write!(
                f,
                "lane-ownership violation: lane {lane} register {reg} of the {kind:?} operand \
                 holds ({}, {}) per the PTX layout, but the thread addressed ({}, {})",
                expected.0, expected.1, claimed.0, claimed.1
            ),
            Violation::AccumAliasing { previous, requested } => write!(
                f,
                "accumulator aliasing: fragment previously accumulated with {previous:?} \
                 reused with {requested:?}"
            ),
            Violation::OutOfBounds { buffer, op, addr, size, len } => write!(
                f,
                "out-of-bounds {op}: [{addr}, {}) exceeds buffer `{buffer}` of {len} bytes",
                addr + u64::from(*size)
            ),
            Violation::UninitLoad { buffer, addr, warp } => write!(
                f,
                "uninitialized load: warp {warp} read byte {addr} of `{buffer}` before any store"
            ),
            Violation::WriteConflict { buffer, addr, epoch, first_warp, second_warp } => write!(
                f,
                "write-write conflict: warps {first_warp} and {second_warp} both stored byte \
                 {addr} of `{buffer}` in epoch {epoch}"
            ),
            Violation::Format { detail } => write!(f, "format invariant violated: {detail}"),
        }
    }
}

thread_local! {
    static REPORT: RefCell<Vec<Violation>> = const { RefCell::new(Vec::new()) };
    static RECORDED: Cell<u64> = const { Cell::new(0) };
}

/// Record one violation according to the current mode. No-op when `Off`.
#[cold]
pub fn record(v: Violation) {
    match sanitize_mode() {
        SanitizeMode::Off => {}
        SanitizeMode::Record => {
            RECORDED.with(|c| c.set(c.get() + 1));
            REPORT.with(|r| r.borrow_mut().push(v));
        }
        SanitizeMode::Panic => {
            RECORDED.with(|c| c.set(c.get() + 1));
            panic!("sanitizer violation: {v}");
        }
    }
}

/// Monotone count of violations recorded on this thread. Kernel entry
/// points snapshot it before/after a launch and attribute the delta to
/// [`crate::KernelCounters::sanitizer_violations`].
pub fn recorded_count() -> u64 {
    RECORDED.with(Cell::get)
}

/// Drain this thread's violation report.
pub fn take_reports() -> Vec<Violation> {
    REPORT.with(|r| std::mem::take(&mut *r.borrow_mut()))
}

static SCOPE_LOCK: LazyLock<Mutex<()>> = LazyLock::new(|| Mutex::new(()));

/// RAII sanitize activation for tests: serializes against other scopes
/// (the mode is process-wide), clears the thread report on entry, and
/// restores the previous mode (and drains leftovers) on drop.
pub struct SanitizeScope {
    prev: SanitizeMode,
    _lock: parking_lot::MutexGuard<'static, ()>,
}

impl SanitizeScope {
    /// Enter [`SanitizeMode::Record`].
    pub fn record() -> Self {
        Self::with_mode(SanitizeMode::Record)
    }

    /// Enter [`SanitizeMode::Panic`].
    pub fn panicking() -> Self {
        Self::with_mode(SanitizeMode::Panic)
    }

    /// Force [`SanitizeMode::Off`] — for tests asserting the silent
    /// off-path while still serializing against sanitizing tests.
    pub fn off() -> Self {
        Self::with_mode(SanitizeMode::Off)
    }

    fn with_mode(mode: SanitizeMode) -> Self {
        let lock = SCOPE_LOCK.lock();
        let prev = sanitize_mode();
        let _ = take_reports();
        set_sanitize_mode(mode);
        SanitizeScope { prev, _lock: lock }
    }
}

impl Drop for SanitizeScope {
    fn drop(&mut self) {
        set_sanitize_mode(self.prev);
        let _ = take_reports();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrip_and_scope_restores() {
        let _scope = SanitizeScope::record();
        assert_eq!(sanitize_mode(), SanitizeMode::Record);
        assert!(sanitize_enabled());
        {
            // Nested manual set; the scope restores on drop regardless.
            set_sanitize_mode(SanitizeMode::Panic);
            assert_eq!(sanitize_mode(), SanitizeMode::Panic);
            set_sanitize_mode(SanitizeMode::Record);
        }
        drop(_scope);
        assert_eq!(sanitize_mode(), SanitizeMode::Off);
        assert!(!sanitize_enabled());
    }

    #[test]
    fn record_mode_accumulates_reports() {
        let _scope = SanitizeScope::record();
        let before = recorded_count();
        record(Violation::Format { detail: "test".into() });
        record(Violation::AccumAliasing { previous: AccumMode::F32, requested: AccumMode::F16 });
        assert_eq!(recorded_count() - before, 2);
        let reports = take_reports();
        assert_eq!(reports.len(), 2);
        assert!(reports[0].to_string().contains("format invariant"));
        assert!(reports[1].to_string().contains("accumulator aliasing"));
    }

    #[test]
    fn off_mode_drops_reports() {
        let _scope = SanitizeScope::record();
        set_sanitize_mode(SanitizeMode::Off);
        let before = recorded_count();
        record(Violation::Format { detail: "dropped".into() });
        assert_eq!(recorded_count(), before);
        assert!(take_reports().is_empty());
    }

    #[test]
    #[should_panic(expected = "sanitizer violation: uninitialized load")]
    fn panic_mode_panics_with_diagnostic() {
        let _scope = SanitizeScope::panicking();
        record(Violation::UninitLoad { buffer: "test-buffer", addr: 42, warp: 3 });
    }

    #[test]
    fn display_has_full_diagnostics() {
        let v = Violation::LaneOwnership {
            kind: FragKind::B,
            lane: 5,
            reg: 1,
            claimed: (4, 1),
            expected: (3, 1),
        };
        let s = v.to_string();
        assert!(s.contains("lane 5"), "{s}");
        assert!(s.contains("register 1"), "{s}");
        assert!(s.contains("(3, 1)"), "{s}");
        assert!(s.contains("(4, 1)"), "{s}");
        let v = Violation::OutOfBounds {
            buffer: "values",
            op: AccessOp::Load,
            addr: 100,
            size: 4,
            len: 96,
        };
        assert!(v.to_string().contains("[100, 104)"), "{v}");
    }
}
