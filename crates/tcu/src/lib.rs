//! A warp-level software simulator of NVIDIA Tensor Core Units (TCUs).
//!
//! The FlashSparse kernels are written against the `mma.sync` warp-level
//! matrix-multiply-accumulate abstraction: 32 threads cooperatively hold
//! operand *fragments* in registers, issue an MMA, and receive the result
//! distributed across their registers in a fixed, documented layout. This
//! crate reproduces that abstraction in software:
//!
//! * [`shape`] — the MMA/WMMA operand shapes of the paper's Table 1.
//! * [`fragment`] — the per-thread register layouts from the PTX ISA
//!   ("Matrix Fragments for mma.m16n8k8" etc.), bit-for-bit: lane `i`,
//!   register `j` maps to a specific `(row, col)` of the tile.
//! * [`mma`] — executes an MMA over a warp's fragments with the hardware's
//!   numeric semantics (FP16/TF32 inputs, f32 products and accumulation).
//! * [`memory`] — the global-memory transaction model: warp-wide accesses
//!   are coalesced into 32-byte sectors, the quantity Section 3.3 of the
//!   paper optimizes.
//! * [`counters`] — MMA / transaction / byte counters accumulated by every
//!   simulated kernel.
//! * [`exec`] / [`analytic`] — the dual-mode execution engine: kernels
//!   run in [`ExecMode::Fast`] when sanitize and chaos are both off,
//!   computing bit-identical numerics without fragment materialization
//!   and deriving the same counters from a closed-form coalescer model.
//! * [`sanitize`] — a compute-sanitizer analogue: fragment shadow state
//!   (uninitialized lanes, lane-ownership, accumulator aliasing) and
//!   shadow memory (bounds, init bitmaps, warp write conflicts), all free
//!   when switched off.
//! * [`gpu`] — spec sheets for the paper's two evaluation GPUs (H100 PCIe,
//!   RTX 4090).
//! * [`cost`] — a roofline cost model translating counters into simulated
//!   kernel time and GFLOPS, which reproduces the *shape* of the paper's
//!   performance plots without the hardware.
//!
//! # Example
//!
//! The paper's key instruction is `mma.sync.m16n8k8` with FP16 operands
//! — 16×8×8 = 1024 multiply-adds per issue — and with the sanitizer and
//! chaos layers both off, kernels select the fast execution path:
//!
//! ```
//! use fs_tcu::{ExecMode, MmaShape};
//!
//! let shape = MmaShape::M16N8K8_F16;
//! assert_eq!((shape.m, shape.n, shape.k), (16, 8, 8));
//! assert_eq!(shape.flops(), 2 * 16 * 8 * 8);
//! assert!(ExecMode::auto().is_fast());
//! ```

pub mod analytic;
pub mod cost;
pub mod counters;
pub mod exec;
pub mod fragment;
pub mod gpu;
pub mod memory;
pub mod mma;
pub mod sanitize;
pub mod shape;

pub use analytic::AnalyticCounter;
pub use counters::{KernelCounters, TrafficClass};
pub use exec::ExecMode;
pub use fragment::{FragKind, Fragment, FragmentLayout};
pub use gpu::GpuSpec;
pub use memory::TransactionCounter;
pub use mma::{mma_execute, mma_execute_accum, wmma_execute_tf32, AccumMode};
pub use sanitize::shadow::ShadowRegion;
pub use sanitize::{SanitizeMode, SanitizeScope};
pub use shape::{MmaShape, Precision};

/// Number of threads in a warp, fixed by the CUDA execution model.
pub const WARP_SIZE: usize = 32;
