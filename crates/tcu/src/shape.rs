//! MMA operand shapes and precisions (the paper's Table 1).

/// Input precision of an MMA instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// IEEE binary16 inputs, f32 accumulate (`mma.sync...f32.f16.f16.f32`).
    Fp16,
    /// TF32 inputs (f32 with 10-bit mantissa), f32 accumulate.
    Tf32,
}

impl Precision {
    /// Bytes per element as stored in memory/registers.
    #[inline]
    pub const fn bytes(self) -> usize {
        match self {
            Precision::Fp16 => 2,
            Precision::Tf32 => 4,
        }
    }

    /// Human-readable name.
    #[inline]
    pub const fn name(self) -> &'static str {
        match self {
            Precision::Fp16 => "fp16",
            Precision::Tf32 => "tf32",
        }
    }
}

/// An `mma.sync` operand shape: `D(m×n) = A(m×k) × B(k×n) + C(m×n)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MmaShape {
    /// Rows of A and C/D.
    pub m: usize,
    /// Columns of B and C/D.
    pub n: usize,
    /// Inner dimension (columns of A, rows of B).
    pub k: usize,
    /// Input precision.
    pub precision: Precision,
}

impl MmaShape {
    /// `mma.sync.aligned.m16n8k8.row.col.f32.f16.f16.f32` — the FP16 shape
    /// used by FlashSparse and DTC-SpMM.
    pub const M16N8K8_F16: MmaShape = MmaShape { m: 16, n: 8, k: 8, precision: Precision::Fp16 };

    /// `mma.sync.aligned.m16n8k16...f16` — the larger FP16 shape.
    pub const M16N8K16_F16: MmaShape = MmaShape { m: 16, n: 8, k: 16, precision: Precision::Fp16 };

    /// `mma.sync.aligned.m16n8k4...tf32` — the TF32 shape FlashSparse uses.
    pub const M16N8K4_TF32: MmaShape = MmaShape { m: 16, n: 8, k: 4, precision: Precision::Tf32 };

    /// `mma.sync.aligned.m16n8k8...tf32` — the TF32 shape DTC-SpMM uses.
    pub const M16N8K8_TF32: MmaShape = MmaShape { m: 16, n: 8, k: 8, precision: Precision::Tf32 };

    /// WMMA `m16n16k8` TF32 — the C++-API shape TC-GNN uses.
    pub const M16N16K8_WMMA_TF32: MmaShape =
        MmaShape { m: 16, n: 16, k: 8, precision: Precision::Tf32 };

    /// Floating point operations performed by one invocation (2·m·n·k:
    /// a multiply and an add per inner-product step).
    #[inline]
    pub const fn flops(&self) -> u64 {
        2 * (self.m * self.n * self.k) as u64
    }

    /// Elements in the A operand.
    #[inline]
    pub const fn a_elems(&self) -> usize {
        self.m * self.k
    }

    /// Elements in the B operand.
    #[inline]
    pub const fn b_elems(&self) -> usize {
        self.k * self.n
    }

    /// Elements in the C/D operand.
    #[inline]
    pub const fn cd_elems(&self) -> usize {
        self.m * self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        assert_eq!(
            (MmaShape::M16N8K8_F16.m, MmaShape::M16N8K8_F16.n, MmaShape::M16N8K8_F16.k),
            (16, 8, 8)
        );
        assert_eq!(MmaShape::M16N8K4_TF32.k, 4);
        assert_eq!(MmaShape::M16N8K16_F16.k, 16);
        assert_eq!(MmaShape::M16N16K8_WMMA_TF32.n, 16);
    }

    #[test]
    fn flops() {
        assert_eq!(MmaShape::M16N8K8_F16.flops(), 2 * 16 * 8 * 8);
        assert_eq!(MmaShape::M16N8K4_TF32.flops(), 2 * 16 * 8 * 4);
    }

    #[test]
    fn element_counts() {
        let s = MmaShape::M16N8K8_F16;
        assert_eq!(s.a_elems(), 128);
        assert_eq!(s.b_elems(), 64);
        assert_eq!(s.cd_elems(), 128);
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Tf32.bytes(), 4);
    }
}
