//! Spec sheets for the paper's evaluation GPUs.

/// Published specifications of a GPU, plus the calibration factors the
/// roofline cost model applies (real sparse kernels reach a fraction of
/// peak; the factors are constant per engine so *relative* comparisons —
/// the quantity the reproduction targets — are unaffected).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Number of tensor core units (paper Section 4).
    pub tensor_cores: u32,
    /// Number of CUDA cores.
    pub cuda_cores: u32,
    /// Dense FP16 tensor-core peak, TFLOPS (f32 accumulate).
    pub fp16_tcu_tflops: f64,
    /// Dense TF32 tensor-core peak, TFLOPS.
    pub tf32_tcu_tflops: f64,
    /// FP32 CUDA-core peak, TFLOPS.
    pub fp32_cuda_tflops: f64,
    /// DRAM bandwidth, GB/s.
    pub dram_gbs: f64,
    /// Fraction of tensor-core peak a well-tuned sparse kernel sustains.
    pub tcu_efficiency: f64,
    /// Fraction of CUDA-core peak a well-tuned sparse kernel sustains.
    pub cuda_efficiency: f64,
    /// Fraction of DRAM bandwidth sustained under irregular access.
    pub mem_efficiency: f64,
    /// Fixed kernel-launch + tail latency, seconds.
    pub launch_overhead_s: f64,
}

impl GpuSpec {
    /// NVIDIA H100 PCIe (456 TCUs, 14592 CUDA cores, 80 GB HBM2e).
    /// Peaks from the NVIDIA datasheet (dense, i.e. without 2:4 sparsity).
    pub const H100_PCIE: GpuSpec = GpuSpec {
        name: "H100-PCIe",
        tensor_cores: 456,
        cuda_cores: 14592,
        fp16_tcu_tflops: 756.0,
        tf32_tcu_tflops: 378.0,
        fp32_cuda_tflops: 51.2,
        dram_gbs: 2000.0,
        tcu_efficiency: 0.30,
        cuda_efficiency: 0.45,
        mem_efficiency: 0.75,
        launch_overhead_s: 4e-6,
    };

    /// NVIDIA GeForce RTX 4090 (512 TCUs, 16384 CUDA cores, 24 GB GDDR6X).
    pub const RTX4090: GpuSpec = GpuSpec {
        name: "RTX4090",
        tensor_cores: 512,
        cuda_cores: 16384,
        fp16_tcu_tflops: 330.3,
        tf32_tcu_tflops: 82.6,
        fp32_cuda_tflops: 82.6,
        dram_gbs: 1008.0,
        tcu_efficiency: 0.30,
        cuda_efficiency: 0.30,
        mem_efficiency: 0.75,
        launch_overhead_s: 4e-6,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section4_unit_counts() {
        assert_eq!(GpuSpec::H100_PCIE.tensor_cores, 456);
        assert_eq!(GpuSpec::H100_PCIE.cuda_cores, 14592);
        assert_eq!(GpuSpec::RTX4090.tensor_cores, 512);
        assert_eq!(GpuSpec::RTX4090.cuda_cores, 16384);
    }

    #[test]
    fn tcu_peak_dwarfs_cuda_peak() {
        // The premise of the paper: TCUs offer much higher matrix throughput.
        let h = GpuSpec::H100_PCIE;
        assert!(h.fp16_tcu_tflops / h.fp32_cuda_tflops > 10.0);
        let r = GpuSpec::RTX4090;
        assert!(r.fp16_tcu_tflops / r.fp32_cuda_tflops > 3.0);
    }
}
