//! Dual-mode execution selection.
//!
//! Every FlashSparse kernel can run in one of two modes:
//!
//! * [`ExecMode::Simulate`] — full simulator fidelity: per-lane
//!   [`Fragment`](crate::Fragment) materialization, every warp request
//!   replayed through [`TransactionCounter`](crate::TransactionCounter),
//!   and the sanitize / chaos hooks live at every site.
//! * [`ExecMode::Fast`] — a fused per-window kernel that computes
//!   **bit-identical** numerics (same [`round_operand`](crate::mma)
//!   rounding, same f32 accumulation order per MMA) and **identical**
//!   [`KernelCounters`](crate::KernelCounters), but derives the counters
//!   analytically from block geometry and a closed-form coalescer model
//!   ([`crate::analytic`]) instead of simulating fragments and replaying
//!   memory requests.
//!
//! [`ExecMode::auto`] picks the mode: `Fast` is only legal when both the
//! sanitizer and chaos injection are disabled, because the fast path has
//! no fragment shadow state to check and no per-request hooks for faults
//! to land on. Whenever either subsystem is armed, the kernels fall back
//! to full simulation.

/// Which execution engine a kernel launch uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Full simulator fidelity (fragments, transaction replay, hooks).
    Simulate,
    /// Fused bit-identical kernel with analytic counters.
    #[default]
    Fast,
}

impl ExecMode {
    /// The mode the current process state allows: [`ExecMode::Fast`] iff
    /// both the sanitizer and chaos injection are off, otherwise
    /// [`ExecMode::Simulate`].
    #[inline]
    pub fn auto() -> ExecMode {
        if crate::sanitize::sanitize_enabled() || fs_chaos::chaos_enabled() {
            ExecMode::Simulate
        } else {
            ExecMode::Fast
        }
    }

    /// `true` for [`ExecMode::Fast`].
    #[inline]
    pub fn is_fast(self) -> bool {
        matches!(self, ExecMode::Fast)
    }

    /// Stable lowercase name for logs and metrics.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Simulate => "simulate",
            ExecMode::Fast => "fast",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SanitizeScope;
    use fs_chaos::{ChaosScope, FaultPlan, FaultSite};

    // One test, not three: the mode flag is process-wide, and splitting
    // the assertions across parallel test threads would race it.
    #[test]
    fn mode_selection_follows_the_sanitize_and_chaos_switches() {
        // Hold the sanitize scope lock in Off mode so no concurrently
        // running sanitizing test can flip the global underneath us.
        let off = SanitizeScope::off();
        assert_eq!(ExecMode::auto(), ExecMode::Fast);
        assert!(ExecMode::auto().is_fast());
        {
            let _chaos = ChaosScope::install(FaultPlan::new(7).with_rate(FaultSite::TxnDrop, 1.0));
            assert_eq!(ExecMode::auto(), ExecMode::Simulate, "chaos must force Simulate");
            assert!(!ExecMode::auto().is_fast());
        }
        assert_eq!(ExecMode::auto(), ExecMode::Fast, "chaos scope restored Fast");
        drop(off);

        let _record = SanitizeScope::record();
        assert_eq!(ExecMode::auto(), ExecMode::Simulate, "sanitize must force Simulate");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ExecMode::Fast.name(), "fast");
        assert_eq!(ExecMode::Simulate.name(), "simulate");
        assert_eq!(ExecMode::default(), ExecMode::Fast);
    }
}
