//! The roofline cost model: counters → simulated kernel time → GFLOPS.
//!
//! A kernel's simulated time is the classic roofline maximum of its compute
//! time (counted FLOPs over the engine's sustained throughput) and its
//! memory time (counted 32-byte transactions over sustained DRAM
//! bandwidth), plus a fixed launch overhead. This is deliberately simple:
//! the experiments the paper reports are driven by *ratios* of operation
//! and transaction counts between algorithms on identical inputs, which a
//! roofline preserves.

use crate::counters::KernelCounters;
use crate::gpu::GpuSpec;
use crate::shape::Precision;

/// Which execution engine (and input precision) a kernel ran on —
/// determines the peak-throughput line of the roofline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComputeClass {
    /// Tensor cores with FP16 operands.
    TcuFp16,
    /// Tensor cores with TF32 operands.
    TcuTf32,
    /// CUDA cores with FP32 operands (all the non-TCU baselines).
    CudaFp32,
}

impl ComputeClass {
    /// The tensor-core class for an input precision.
    pub fn tcu(precision: Precision) -> Self {
        match precision {
            Precision::Fp16 => ComputeClass::TcuFp16,
            Precision::Tf32 => ComputeClass::TcuTf32,
        }
    }
}

/// Roofline cost model for one GPU.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// The GPU being modelled.
    pub gpu: GpuSpec,
}

impl CostModel {
    /// A model for the given GPU.
    pub fn new(gpu: GpuSpec) -> Self {
        CostModel { gpu }
    }

    /// Sustained compute throughput (FLOP/s) for a compute class.
    pub fn sustained_flops(&self, class: ComputeClass) -> f64 {
        let g = &self.gpu;
        match class {
            ComputeClass::TcuFp16 => g.fp16_tcu_tflops * 1e12 * g.tcu_efficiency,
            ComputeClass::TcuTf32 => g.tf32_tcu_tflops * 1e12 * g.tcu_efficiency,
            ComputeClass::CudaFp32 => g.fp32_cuda_tflops * 1e12 * g.cuda_efficiency,
        }
    }

    /// Sustained memory bandwidth (bytes/s).
    pub fn sustained_bandwidth(&self) -> f64 {
        self.gpu.dram_gbs * 1e9 * self.gpu.mem_efficiency
    }

    /// Simulated kernel time in seconds.
    pub fn kernel_time(&self, counters: &KernelCounters, class: ComputeClass) -> f64 {
        let flops = match class {
            ComputeClass::CudaFp32 => counters.cuda_flops,
            _ => counters.tcu_flops,
        } as f64;
        let compute = flops / self.sustained_flops(class);
        let memory = counters.bytes_moved() as f64 / self.sustained_bandwidth();
        compute.max(memory) + self.gpu.launch_overhead_s
    }

    /// Simulated kernel time accounting for **both** engines: the maximum
    /// of tensor-core compute time (at `tcu_class`), CUDA-core compute
    /// time, and memory time. Kernels that do scalar bookkeeping alongside
    /// MMAs (e.g. TC-GNN's per-element position checks) are limited by
    /// whichever engine saturates first.
    pub fn kernel_time_full(&self, counters: &KernelCounters, tcu_class: ComputeClass) -> f64 {
        let tcu = counters.tcu_flops as f64
            / self.sustained_flops(match tcu_class {
                ComputeClass::CudaFp32 => ComputeClass::TcuFp16, // no TCU work anyway
                c => c,
            });
        let cuda = counters.cuda_flops as f64 / self.sustained_flops(ComputeClass::CudaFp32);
        let memory = counters.bytes_moved() as f64 / self.sustained_bandwidth();
        tcu.max(cuda).max(memory) + self.gpu.launch_overhead_s
    }

    /// Effective throughput in GFLOPS given the *useful* work of the
    /// operator (2·nnz·N for SpMM — the paper's y-axis), not the redundant
    /// FLOPs actually executed.
    pub fn gflops(&self, useful_flops: u64, time_s: f64) -> f64 {
        useful_flops as f64 / time_s / 1e9
    }
}

/// Useful FLOPs of an SpMM: 2 ops per nonzero per output column.
#[inline]
pub fn spmm_useful_flops(nnz: usize, n: usize) -> u64 {
    2 * nnz as u64 * n as u64
}

/// Useful FLOPs of an SDDMM: 2·k ops per sampled output nonzero.
#[inline]
pub fn sddmm_useful_flops(nnz: usize, k: usize) -> u64 {
    2 * nnz as u64 * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuSpec;

    fn model() -> CostModel {
        CostModel::new(GpuSpec::RTX4090)
    }

    #[test]
    fn memory_bound_kernel_time_scales_with_bytes() {
        let m = model();
        let a = KernelCounters { bytes_loaded: 1 << 20, ..Default::default() };
        let b = KernelCounters { bytes_loaded: 1 << 21, ..Default::default() };
        let ta = m.kernel_time(&a, ComputeClass::TcuFp16) - m.gpu.launch_overhead_s;
        let tb = m.kernel_time(&b, ComputeClass::TcuFp16) - m.gpu.launch_overhead_s;
        assert!((tb / ta - 2.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_kernel_uses_engine_peak() {
        let m = model();
        let k = KernelCounters { tcu_flops: 10u64.pow(12), ..Default::default() };
        let t_fp16 = m.kernel_time(&k, ComputeClass::TcuFp16);
        let t_tf32 = m.kernel_time(&k, ComputeClass::TcuTf32);
        assert!(t_tf32 > t_fp16, "TF32 peak is lower so the same FLOPs take longer");
    }

    #[test]
    fn cuda_class_reads_cuda_flops() {
        let m = model();
        let k = KernelCounters { cuda_flops: 10u64.pow(12), tcu_flops: 0, ..Default::default() };
        let t = m.kernel_time(&k, ComputeClass::CudaFp32);
        assert!(t > m.gpu.launch_overhead_s * 2.0);
        // Same counters on the TCU class see zero compute.
        let t2 = m.kernel_time(&k, ComputeClass::TcuFp16);
        assert!((t2 - m.gpu.launch_overhead_s).abs() < 1e-12);
    }

    #[test]
    fn roofline_takes_the_max() {
        let m = model();
        // Huge compute, tiny memory → compute-dominated.
        let k = KernelCounters { tcu_flops: 10u64.pow(13), bytes_loaded: 32, ..Default::default() };
        let t = m.kernel_time(&k, ComputeClass::TcuFp16);
        let compute_only =
            10f64.powi(13) / m.sustained_flops(ComputeClass::TcuFp16) + m.gpu.launch_overhead_s;
        assert!((t - compute_only).abs() / compute_only < 1e-9);
    }

    #[test]
    fn gflops_helper() {
        let m = model();
        assert!((m.gflops(2_000_000_000, 1.0) - 2.0).abs() < 1e-12);
        assert_eq!(spmm_useful_flops(1000, 128), 256_000);
        assert_eq!(sddmm_useful_flops(1000, 32), 64_000);
    }
}
