//! Closed-form transaction accounting for the fast execution path.
//!
//! [`TransactionCounter`](crate::TransactionCounter) replays every
//! per-lane `(address, size)` access of a warp request and counts the
//! distinct 32-byte sectors touched. The fast path exploits a structural
//! fact about the FlashSparse kernels: within one warp request, the
//! accesses of each block *row* cover one contiguous byte range (the
//! lanes of a column group read adjacent elements, and the
//! memory-efficient mapping's widened/split pairs cover the same bytes
//! either way). A request is therefore fully described by a handful of
//! byte **ranges**, and the sector count of a request is the number of
//! distinct sectors covered by the union of its ranges — computed here by
//! a sort-and-sweep over `(first_sector, last_sector)` intervals, which
//! is exact and identical to the replay.
//!
//! [`AnalyticCounter::load`]/[`AnalyticCounter::store`] additionally take
//! a `times` multiplier: when consecutive output tiles shift every
//! address of a request by a multiple of the sector size (true for all
//! full 16-column SpMM tiles — 16 elements × 2 or 4 bytes), the per-tile
//! sector count and ideal bytes are invariant, so one computation is
//! committed `times` times. That is the closed-form collapse that lets
//! the fast path touch each block once instead of once per tile.

use crate::counters::{KernelCounters, TrafficClass};
use crate::memory::SECTOR_BYTES;

/// Accumulates the byte ranges of one warp request and commits their
/// exact transaction/byte counts to [`KernelCounters`], without replaying
/// individual lane accesses.
///
/// ```
/// use fs_tcu::{AnalyticCounter, KernelCounters, TrafficClass};
///
/// let mut ac = AnalyticCounter::new();
/// let mut k = KernelCounters::default();
/// // A fully coalesced warp load of 32 consecutive f32: 4 sectors.
/// ac.range(0, 128);
/// assert_eq!(ac.load(TrafficClass::DenseOperand, &mut k, 1), 4);
/// assert_eq!(k.bytes_loaded, 128);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AnalyticCounter {
    /// Inclusive `(first_sector, last_sector)` spans of the pending
    /// request.
    spans: Vec<(u64, u64)>,
    /// Ideal (useful) bytes of the pending request.
    ideal: u64,
}

impl AnalyticCounter {
    /// A fresh counter with no pending ranges.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one contiguous byte range `[addr, addr + bytes)` to the
    /// pending request. Zero-length ranges are free, exactly like
    /// zero-size accesses in the replayed model.
    #[inline]
    pub fn range(&mut self, addr: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let first = addr / SECTOR_BYTES;
        let last = (addr + bytes - 1) / SECTOR_BYTES;
        self.spans.push((first, last));
        self.ideal += bytes;
    }

    /// Distinct sectors covered by the union of the pending spans.
    fn sectors(&mut self) -> u64 {
        if self.spans.is_empty() {
            return 0;
        }
        self.spans.sort_unstable();
        let mut total = 0u64;
        let (mut lo, mut hi) = self.spans[0];
        for &(first, last) in &self.spans[1..] {
            if first <= hi {
                hi = hi.max(last);
            } else {
                total += hi - lo + 1;
                (lo, hi) = (first, last);
            }
        }
        total + (hi - lo + 1)
    }

    /// Commit the pending request as `times` identical warp **loads**
    /// tagged with `class` (addresses shifted by sector-size multiples
    /// between repeats — the caller's invariant). Returns the per-request
    /// transaction count and clears the pending state.
    pub fn load(&mut self, class: TrafficClass, counters: &mut KernelCounters, times: u64) -> u64 {
        let tx = self.sectors();
        let ideal = self.ideal;
        match class {
            TrafficClass::SparseValues => counters.sparse_value_bytes += ideal * times,
            TrafficClass::DenseOperand => counters.dense_operand_bytes += ideal * times,
            TrafficClass::Indices => counters.index_bytes += ideal * times,
        }
        counters.load_transactions += tx * times;
        counters.bytes_loaded += tx * SECTOR_BYTES * times;
        counters.ideal_bytes_loaded += ideal * times;
        self.spans.clear();
        self.ideal = 0;
        tx
    }

    /// Commit the pending request as `times` identical warp **stores**.
    /// Returns the per-request transaction count and clears the pending
    /// state.
    pub fn store(&mut self, counters: &mut KernelCounters, times: u64) -> u64 {
        let tx = self.sectors();
        counters.store_transactions += tx * times;
        counters.bytes_stored += tx * SECTOR_BYTES * times;
        counters.ideal_bytes_stored += self.ideal * times;
        self.spans.clear();
        self.ideal = 0;
        tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransactionCounter;

    /// The ground truth: split a range into per-element accesses and
    /// replay them through the simulator's coalescer.
    fn replay_load(ranges: &[(u64, u64)], elem: u64) -> (u64, KernelCounters) {
        let mut tc = TransactionCounter::new();
        let mut k = KernelCounters::default();
        let accesses: Vec<(u64, u32)> = ranges
            .iter()
            .flat_map(|&(addr, bytes)| {
                (0..bytes / elem).map(move |i| (addr + i * elem, elem as u32))
            })
            .collect();
        let tx = tc.warp_load_as(TrafficClass::DenseOperand, accesses, &mut k);
        (tx, k)
    }

    fn analytic_load(ranges: &[(u64, u64)], times: u64) -> (u64, KernelCounters) {
        let mut ac = AnalyticCounter::new();
        let mut k = KernelCounters::default();
        for &(addr, bytes) in ranges {
            ac.range(addr, bytes);
        }
        let tx = ac.load(TrafficClass::DenseOperand, &mut k, times);
        (tx, k)
    }

    #[test]
    fn matches_the_replayed_coalescer_on_varied_range_sets() {
        // Overlapping, adjacent, disjoint, and sector-straddling ranges.
        let cases: &[&[(u64, u64)]] = &[
            &[(0, 128)],
            &[(0, 32), (32, 32)],
            &[(0, 32), (64, 32)],
            &[(30, 4)],
            &[(0, 16), (8, 16)],
            &[(100, 2), (102, 2), (200, 4), (96, 2)],
            &[(0, 2)],
            &[(31, 2), (63, 2), (95, 2)],
            &[(1000, 64), (1032, 64), (1128, 32)],
        ];
        for ranges in cases {
            let (tx_ref, k_ref) = replay_load(ranges, 2);
            let (tx, k) = analytic_load(ranges, 1);
            assert_eq!(tx, tx_ref, "{ranges:?}");
            assert_eq!(k, k_ref, "{ranges:?}");
        }
    }

    #[test]
    fn matches_on_pseudo_random_range_sets() {
        // Deterministic xorshift so the case set is stable.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let n = (next() % 12) as usize;
            let ranges: Vec<(u64, u64)> =
                (0..n).map(|_| ((next() % 512) * 2, ((next() % 16) + 1) * 2)).collect();
            let (tx_ref, k_ref) = replay_load(&ranges, 2);
            let (tx, k) = analytic_load(&ranges, 1);
            assert_eq!(tx, tx_ref, "{ranges:?}");
            assert_eq!(k, k_ref, "{ranges:?}");
        }
    }

    #[test]
    fn times_multiplier_equals_repeated_requests() {
        let ranges: &[(u64, u64)] = &[(0, 32), (70, 10), (40, 8)];
        let mut k_ref = KernelCounters::default();
        let mut tc = TransactionCounter::new();
        for shift in [0u64, 32, 64] {
            let accesses: Vec<(u64, u32)> =
                ranges.iter().map(|&(a, b)| (a + shift, b as u32)).collect();
            tc.warp_load(accesses, &mut k_ref);
        }
        // The shifts above are sector multiples, so one analytic request
        // with times=3 must agree (modulo the class attribution, which
        // warp_load alone does not do).
        let (_, mut k) = analytic_load(ranges, 3);
        k.dense_operand_bytes = 0;
        assert_eq!(k, k_ref);
    }

    #[test]
    fn empty_and_zero_length_requests_are_free() {
        let mut ac = AnalyticCounter::new();
        let mut k = KernelCounters::default();
        ac.range(100, 0);
        assert_eq!(ac.load(TrafficClass::Indices, &mut k, 5), 0);
        assert_eq!(ac.store(&mut k, 5), 0);
        assert_eq!(k, KernelCounters::default());
    }

    #[test]
    fn stores_commit_to_the_store_side() {
        let mut ac = AnalyticCounter::new();
        let mut k = KernelCounters::default();
        ac.range(0, 128);
        assert_eq!(ac.store(&mut k, 2), 4);
        assert_eq!(k.store_transactions, 8);
        assert_eq!(k.bytes_stored, 256);
        assert_eq!(k.ideal_bytes_stored, 256);
        assert_eq!(k.load_transactions, 0);

        // State must be cleared between requests.
        ac.range(0, 32);
        let mut k2 = KernelCounters::default();
        assert_eq!(ac.load(TrafficClass::SparseValues, &mut k2, 1), 1);
        assert_eq!(k2.sparse_value_bytes, 32);
    }
}
