//! Counters accumulated by simulated kernels.

use std::ops::{Add, AddAssign};

/// Everything a simulated kernel execution counts. Plain data; kernels
/// running in parallel each accumulate their own and merge with `+`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// `mma.sync` invocations.
    pub mma_count: u64,
    /// WMMA (C++ API) invocations.
    // lint: fast-exempt - written only by baseline kernels (tcgnn), which never take the fast path
    pub wmma_count: u64,
    /// Floating-point ops performed on tensor cores (2·m·n·k per MMA).
    pub tcu_flops: u64,
    /// Floating-point ops performed on CUDA cores (2 per FMA).
    // lint: fast-exempt - written only by CUDA-core baselines (cusparse-like), never the fast path
    pub cuda_flops: u64,
    /// 32-byte load transactions issued to global memory.
    pub load_transactions: u64,
    /// 32-byte store transactions issued to global memory.
    pub store_transactions: u64,
    /// Bytes actually transferred by loads (transactions × 32).
    pub bytes_loaded: u64,
    /// Bytes actually transferred by stores.
    pub bytes_stored: u64,
    /// Bytes the kernel *needed* to load (perfect coalescing).
    pub ideal_bytes_loaded: u64,
    /// Bytes the kernel needed to store.
    pub ideal_bytes_stored: u64,
    /// Ideal load bytes attributable to sparse-matrix values.
    pub sparse_value_bytes: u64,
    /// Ideal load bytes attributable to the dense operand.
    pub dense_operand_bytes: u64,
    /// Ideal load bytes attributable to index metadata.
    pub index_bytes: u64,
    /// Sanitizer violations attributed to this kernel execution (zero
    /// unless a [`crate::sanitize`] mode is active *and* the kernel
    /// misbehaved).
    // lint: fast-exempt - only the instrumented simulator can observe violations; fast path skips it
    pub sanitizer_violations: u64,
}

/// The source a warp load serves — lets experiments break the Figure 12
/// data-access cost down by traffic class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficClass {
    /// Sparse TC-block values.
    SparseValues,
    /// Dense operand tiles.
    DenseOperand,
    /// Column-index / pointer metadata.
    Indices,
}

impl KernelCounters {
    /// Total transactions (loads + stores).
    #[inline]
    pub fn transactions(&self) -> u64 {
        self.load_transactions + self.store_transactions
    }

    /// Total bytes moved over the memory bus.
    #[inline]
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }

    /// Total data access cost in bytes — the metric of the paper's
    /// Figure 12 ("the cost of loading data from the memory hierarchy").
    #[inline]
    pub fn data_access_bytes(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }

    /// Fraction of transferred load bytes that were useful (1.0 = perfectly
    /// coalesced). A kernel that loaded nothing is vacuously perfect.
    pub fn load_efficiency(&self) -> f64 {
        if self.bytes_loaded == 0 {
            1.0
        } else {
            self.ideal_bytes_loaded as f64 / self.bytes_loaded as f64
        }
    }

    /// Fraction of transferred store bytes that were useful — the store
    /// counterpart of [`Self::load_efficiency`], with the same guard: a
    /// kernel that stored nothing is vacuously perfect rather than NaN.
    pub fn store_efficiency(&self) -> f64 {
        if self.bytes_stored == 0 {
            1.0
        } else {
            self.ideal_bytes_stored as f64 / self.bytes_stored as f64
        }
    }

    /// Combined load+store efficiency, guarded like the per-direction
    /// accessors.
    pub fn memory_efficiency(&self) -> f64 {
        let moved = self.bytes_moved();
        if moved == 0 {
            1.0
        } else {
            (self.ideal_bytes_loaded + self.ideal_bytes_stored) as f64 / moved as f64
        }
    }

    /// Total floating-point operations executed (either engine).
    #[inline]
    pub fn total_flops(&self) -> u64 {
        self.tcu_flops + self.cuda_flops
    }

    /// The canonical JSON rendering of a counter set: every raw field plus
    /// the derived efficiency ratios, as one object on one line. This is
    /// the single serializer shared by `spmm_cli --json`, the `figures`
    /// machine-readable output, and the `fs-serve` metrics endpoint — so
    /// the three agree on field names.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"mma_count\":{},\"wmma_count\":{},\"tcu_flops\":{},\"cuda_flops\":{},\
             \"load_transactions\":{},\"store_transactions\":{},\"bytes_loaded\":{},\
             \"bytes_stored\":{},\"ideal_bytes_loaded\":{},\"ideal_bytes_stored\":{},\
             \"sparse_value_bytes\":{},\"dense_operand_bytes\":{},\"index_bytes\":{},\
             \"sanitizer_violations\":{},\"load_efficiency\":{:.6},\"store_efficiency\":{:.6},\
             \"memory_efficiency\":{:.6}}}",
            self.mma_count,
            self.wmma_count,
            self.tcu_flops,
            self.cuda_flops,
            self.load_transactions,
            self.store_transactions,
            self.bytes_loaded,
            self.bytes_stored,
            self.ideal_bytes_loaded,
            self.ideal_bytes_stored,
            self.sparse_value_bytes,
            self.dense_operand_bytes,
            self.index_bytes,
            self.sanitizer_violations,
            self.load_efficiency(),
            self.store_efficiency(),
            self.memory_efficiency()
        )
    }
}

impl Add for KernelCounters {
    type Output = KernelCounters;
    fn add(self, rhs: KernelCounters) -> KernelCounters {
        KernelCounters {
            mma_count: self.mma_count + rhs.mma_count,
            wmma_count: self.wmma_count + rhs.wmma_count,
            tcu_flops: self.tcu_flops + rhs.tcu_flops,
            cuda_flops: self.cuda_flops + rhs.cuda_flops,
            load_transactions: self.load_transactions + rhs.load_transactions,
            store_transactions: self.store_transactions + rhs.store_transactions,
            bytes_loaded: self.bytes_loaded + rhs.bytes_loaded,
            bytes_stored: self.bytes_stored + rhs.bytes_stored,
            ideal_bytes_loaded: self.ideal_bytes_loaded + rhs.ideal_bytes_loaded,
            ideal_bytes_stored: self.ideal_bytes_stored + rhs.ideal_bytes_stored,
            sparse_value_bytes: self.sparse_value_bytes + rhs.sparse_value_bytes,
            dense_operand_bytes: self.dense_operand_bytes + rhs.dense_operand_bytes,
            index_bytes: self.index_bytes + rhs.index_bytes,
            sanitizer_violations: self.sanitizer_violations + rhs.sanitizer_violations,
        }
    }
}

impl AddAssign for KernelCounters {
    fn add_assign(&mut self, rhs: KernelCounters) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for KernelCounters {
    fn sum<I: Iterator<Item = KernelCounters>>(iter: I) -> KernelCounters {
        iter.fold(KernelCounters::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge() {
        let a = KernelCounters { mma_count: 2, bytes_loaded: 64, ..Default::default() };
        let b = KernelCounters { mma_count: 3, bytes_loaded: 32, ..Default::default() };
        let c = a + b;
        assert_eq!(c.mma_count, 5);
        assert_eq!(c.bytes_loaded, 96);
        let s: KernelCounters = [a, b].into_iter().sum();
        assert_eq!(s, c);
    }

    #[test]
    fn efficiency() {
        let k = KernelCounters {
            bytes_loaded: 128,
            ideal_bytes_loaded: 64,
            bytes_stored: 64,
            ideal_bytes_stored: 48,
            ..Default::default()
        };
        assert!((k.load_efficiency() - 0.5).abs() < 1e-12);
        assert!((k.store_efficiency() - 0.75).abs() < 1e-12);
        assert!((k.memory_efficiency() - 112.0 / 192.0).abs() < 1e-12);
    }

    #[test]
    fn zero_transaction_kernel_has_finite_unit_ratios() {
        // A kernel that never touched memory (e.g. an empty matrix) must
        // report vacuously perfect ratios, not NaN.
        let k = KernelCounters::default();
        assert_eq!(k.load_efficiency(), 1.0);
        assert_eq!(k.store_efficiency(), 1.0);
        assert_eq!(k.memory_efficiency(), 1.0);
        assert!(k.load_efficiency().is_finite());
        assert!(k.store_efficiency().is_finite());
        assert!(k.memory_efficiency().is_finite());
    }

    #[test]
    fn sanitizer_violations_merge() {
        let a = KernelCounters { sanitizer_violations: 2, ..Default::default() };
        let b = KernelCounters { sanitizer_violations: 5, ..Default::default() };
        assert_eq!((a + b).sanitizer_violations, 7);
    }

    #[test]
    fn json_round_numbers() {
        let k = KernelCounters {
            mma_count: 7,
            bytes_loaded: 128,
            ideal_bytes_loaded: 64,
            sanitizer_violations: 1,
            ..Default::default()
        };
        let j = k.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"mma_count\":7"));
        assert!(j.contains("\"bytes_loaded\":128"));
        assert!(j.contains("\"sanitizer_violations\":1"));
        assert!(j.contains("\"load_efficiency\":0.500000"));
        // Exactly one object, no nesting, no trailing comma.
        assert_eq!(j.matches('{').count(), 1);
        assert!(!j.contains(",}"));
    }

    #[test]
    fn totals() {
        let k = KernelCounters {
            load_transactions: 3,
            store_transactions: 2,
            bytes_loaded: 96,
            bytes_stored: 64,
            tcu_flops: 100,
            cuda_flops: 50,
            ..Default::default()
        };
        assert_eq!(k.transactions(), 5);
        assert_eq!(k.bytes_moved(), 160);
        assert_eq!(k.total_flops(), 150);
    }
}
