//! Std-only mini property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: the `proptest!` macro, `Strategy`
//! with `prop_map`, range / tuple / `Just` / `select` / `vec` strategies,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its case number and the test's deterministic seed instead of a
//! minimized input), and generation is driven by a fixed xoshiro256++
//! stream per test name, so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Deterministic RNG driving value generation (xoshiro256++ seeded by
    /// FNV-1a of the test name, so each test has its own stable stream).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            // SplitMix64 expansion of the name hash.
            let mut x = h;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform integer in `[0, bound)`; widening-multiply mapping.
        #[inline]
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            (u128::from(self.next_u64()) * bound) >> 64
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Harness configuration; only `cases` is modelled.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Payload used by `prop_assume!` rejections (reserved; the macro
/// currently skips the remainder of the case via early return).
#[derive(Debug)]
pub struct AssumeRejected;

/// A generator of values for one property input.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with element strategy `element` and a length
    /// drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u128;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// A strategy drawing uniformly from a fixed set of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u128) as usize;
            self.options[i].clone()
        }
    }
}

pub mod num {
    pub mod f32 {
        use crate::{Strategy, TestRng};

        /// Any `f32` bit pattern, NaN and infinities included.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f32;

            fn generate(&self, rng: &mut TestRng) -> f32 {
                f32::from_bits((rng.next_u64() >> 32) as u32)
            }
        }

        /// Normal (non-zero, non-subnormal, finite) `f32` values.
        #[derive(Clone, Copy, Debug)]
        pub struct Normal;

        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f32;

            fn generate(&self, rng: &mut TestRng) -> f32 {
                let word = rng.next_u64();
                let sign = ((word >> 63) as u32) << 31;
                // Biased exponent in 1..=254: normal, finite.
                let exp = (1 + (word >> 40) as u32 % 254) << 23;
                let mantissa = (word as u32) & 0x007F_FFFF;
                f32::from_bits(sign | exp | mantissa)
            }
        }
    }
}

/// Module alias mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::{collection, num, sample};
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Skip the rest of the current case when `cond` is false. Expands to an
/// early return from the per-case closure, so the case simply ends.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The property-test entry macro. Each `fn name(arg in strategy, ...)`
/// item becomes a `#[test]` (the attribute is written by the caller, as
/// with the real crate) running `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest shim: case {}/{} of {} failed (deterministic per-test stream; rerun reproduces it)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10, 1usize..10).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -4i32..=4, f in -1.0f32..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn mapped_strategy(p in arb_pair()) {
            prop_assert!(p.1 > p.0, "{p:?}");
        }

        #[test]
        fn vec_and_select(
            v in prop::collection::vec(0u64..5, 2..9),
            s in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_applies(x in 0u8..=255) {
            let _ = x;
        }
    }

    #[test]
    fn normal_floats_are_normal() {
        let mut rng = TestRng::deterministic("normal_floats");
        for _ in 0..10_000 {
            let x = crate::num::f32::NORMAL.generate(&mut rng);
            prop_assert!(x.is_normal(), "{x}");
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
