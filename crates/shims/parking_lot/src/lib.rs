//! Std-only stand-in for the subset of the `parking_lot` API this
//! workspace uses. Wraps `std::sync` primitives; poisoning is swallowed
//! (parking_lot locks are not poisoning, so a panicked-while-held lock
//! hands back the inner data exactly as the real crate would).

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    #[inline]
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    #[inline]
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
