//! A std-only, *sequential* stand-in for the subset of the [rayon] API this
//! workspace uses.
//!
//! The build environment has no access to the crates.io registry, so the
//! real rayon cannot be fetched. This shim preserves the source-level API
//! (`par_iter`, `par_chunks_mut`, `into_par_iter`, `flat_map_iter`) but
//! executes everything on the calling thread. That is semantically valid:
//! rayon makes no ordering or interleaving guarantees, so any correct
//! rayon program is also correct when run sequentially. Simulated-kernel
//! determinism actually improves under this shim.
//!
//! The one genuinely parallel primitive lives in [`steal`]: an explicit
//! weighted work-stealing pool built on `std::thread::scope`, used by the
//! pipelined execution engine where scheduling policy (not just iterator
//! shape) matters.
//!
//! [rayon]: https://docs.rs/rayon

pub mod steal;

/// The adapter returned by all `par_*` entry points: a thin wrapper over a
/// standard iterator that forwards `Iterator` and adds the few rayon-only
/// combinators the workspace calls (`flat_map_iter`).
pub struct Par<I>(pub I);

impl<I: Iterator> Iterator for Par<I> {
    type Item = I::Item;

    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> Par<I> {
    /// rayon's `flat_map_iter`: flat-map through a serial iterator.
    #[inline]
    pub fn flat_map_iter<U, F>(self, f: F) -> Par<std::iter::FlatMap<I, U, F>>
    where
        U: IntoIterator,
        F: FnMut(I::Item) -> U,
    {
        Par(self.0.flat_map(f))
    }

    /// rayon's `with_min_len`: a scheduling hint bounding how finely the
    /// iterator may be split. Sequential execution never splits, so the
    /// hint is a no-op here — kept so callers can tune real-rayon builds.
    #[inline]
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// `into_par_iter()` for any owned collection or range.
pub trait IntoParallelIterator: IntoIterator + Sized {
    #[inline]
    fn into_par_iter(self) -> Par<Self::IntoIter> {
        Par(self.into_iter())
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `par_iter()` over shared slices (and anything that derefs to a slice).
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        Par(self.iter())
    }
}

/// `par_chunks_mut()` over mutable slices.
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }
}

/// Run two closures (sequentially here) and return both results — rayon's
/// fork-join primitive.
#[inline]
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod prelude {
    pub use crate::{join, IntoParallelIterator, Par, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_collect() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn par_chunks_mut_enumerate() {
        let mut data = vec![0u32; 8];
        data.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i as u32;
            }
        });
        assert_eq!(data, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn par_iter_and_sum() {
        let v = vec![1u64, 2, 3];
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 6);
    }

    #[test]
    fn flat_map_iter() {
        let v: Vec<u32> = (0..3u32).into_par_iter().flat_map_iter(|x| vec![x, x]).collect();
        assert_eq!(v, vec![0, 0, 1, 1, 2, 2]);
    }
}
