//! A weighted work-stealing task pool — the shim's one *real* parallel
//! primitive.
//!
//! The sequential `Par` adapter is a faithful stand-in for rayon's
//! iterator API, but it cannot express the scheduling the pipelined
//! execution engine needs: row windows have wildly uneven nonzero
//! populations (power-law graphs put most vectors in a few windows), so
//! fixed-size chunking serializes the batch behind its heaviest chunk.
//! [`run`] executes a set of weighted tasks with the classic
//! work-stealing discipline instead:
//!
//! * **Cost-weighted initial partition.** Tasks are assigned to worker
//!   deques longest-processing-time-first (sorted by weight descending,
//!   each to the least-loaded deque), so the heaviest task starts
//!   immediately and never queues behind light ones.
//! * **Owner takes from the front, thieves split the back.** A worker
//!   drains its own deque front-first (heaviest first, per the LPT
//!   ordering). A worker whose deque is empty picks the victim with the
//!   most queued tasks and steals the *back half* in one lock exchange —
//!   the steal-half heuristic that keeps steal frequency logarithmic.
//! * **No blocking.** Tasks never spawn tasks, so a worker exits as soon
//!   as every deque is empty; in-flight tasks on other workers need no
//!   further help.
//!
//! Determinism contract: the pool guarantees nothing about *execution
//! order*, only that every task runs exactly once and results come back
//! indexed by submission order. Callers needing bit-identical reductions
//! must fold the returned `Vec` themselves (index order), which is what
//! `flashsparse`'s fast path does with its per-window counters.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// What the pool observed while executing one task set.
#[derive(Clone, Debug, Default)]
pub struct StealStats {
    /// Workers the pool actually ran with (1 = sequential fallback).
    pub workers: usize,
    /// Steal operations that transferred at least one task.
    pub steals: u64,
    /// Tasks that ran on a thief (moved off their initial deque).
    pub stolen_tasks: u64,
    /// Wall-clock cost of each successful steal (victim scan + transfer),
    /// in submission order of the steals.
    pub steal_durations: Vec<Duration>,
}

/// One queued task: submission index, weight, payload.
struct Slot<T> {
    idx: usize,
    item: T,
}

/// Recover a guard from a poisoned mutex: deques hold plain task data
/// with no cross-lock invariants, and a panicking task already aborts
/// the whole `run` via the scope, so continuing is sound.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Execute `tasks` (pairs of `(weight, payload)`) on `workers` threads
/// with work stealing; returns the results **in submission order** plus
/// the pool's [`StealStats`].
///
/// `workers <= 1` or a single task short-circuits to an in-order
/// sequential loop on the calling thread with zero scheduling overhead —
/// the correct degradation on single-core hosts, where extra threads
/// only add contention.
pub fn run<T, R, F>(workers: usize, tasks: Vec<(u64, T)>, f: F) -> (Vec<R>, StealStats)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = tasks.len();
    if workers <= 1 || n <= 1 {
        let results = tasks.into_iter().map(|(_, item)| f(item)).collect();
        return (results, StealStats { workers: 1, ..StealStats::default() });
    }
    let workers = workers.min(n);

    // ---- LPT partition: heaviest first, each to the least-loaded deque.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (u64::MAX - tasks[i].0, i));
    let mut plain: Vec<VecDeque<Slot<T>>> = (0..workers).map(|_| VecDeque::new()).collect();
    let mut loads = vec![0u64; workers];
    let mut items: Vec<Option<(u64, T)>> = tasks.into_iter().map(Some).collect();
    for idx in order {
        let (w, _) = loads
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            .unwrap_or_else(|| unreachable!("workers >= 1")); // lint: allow-panic - loads is non-empty by construction
        let (weight, item) = match items[idx].take() {
            Some(t) => t,
            None => continue,
        };
        // Zero-weight tasks still cost a task dispatch; floor the weight
        // so degenerate inputs spread instead of piling on one deque.
        loads[w] += weight.max(1);
        plain[w].push_back(Slot { idx, item });
    }
    let deques: Vec<Mutex<VecDeque<Slot<T>>>> = plain.into_iter().map(Mutex::new).collect();

    let steals = AtomicU64::new(0);
    let stolen_tasks = AtomicU64::new(0);
    let steal_durations: Mutex<Vec<(Instant, Duration)>> = Mutex::new(Vec::new());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|s| {
        for w in 0..workers {
            let deques = &deques;
            let f = &f;
            let steals = &steals;
            let stolen_tasks = &stolen_tasks;
            let steal_durations = &steal_durations;
            let results = &results;
            s.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let next = lock(&deques[w]).pop_front();
                    let slot = match next {
                        Some(slot) => slot,
                        None => {
                            let t0 = Instant::now();
                            match steal_half(w, deques) {
                                Some(first) => {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    stolen_tasks.fetch_add(1, Ordering::Relaxed);
                                    lock(steal_durations).push((t0, t0.elapsed()));
                                    first
                                }
                                None => break,
                            }
                        }
                    };
                    local.push((slot.idx, f(slot.item)));
                }
                lock(results).append(&mut local);
            });
        }
    });

    let mut collected = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    assert_eq!(collected.len(), n, "every task must run exactly once");
    collected.sort_unstable_by_key(|(idx, _)| *idx);
    let results: Vec<R> = collected.into_iter().map(|(_, r)| r).collect();

    let mut durs = steal_durations.into_inner().unwrap_or_else(PoisonError::into_inner);
    durs.sort_unstable_by_key(|(at, _)| *at);
    let stats = StealStats {
        workers,
        steals: steals.into_inner(),
        stolen_tasks: stolen_tasks.into_inner(),
        steal_durations: durs.into_iter().map(|(_, d)| d).collect(),
    };
    (results, stats)
}

/// Steal the back half of the fullest victim deque into `w`'s deque and
/// return the first stolen task to execute immediately. `None` means
/// every other deque was empty — time to exit.
///
/// Locks are never nested: the victim scan takes one lock at a time, the
/// transfer splits under the victim's lock alone, and the push into the
/// thief's deque happens after the victim lock is dropped. Two workers
/// stealing from each other therefore cannot deadlock.
fn steal_half<T>(w: usize, deques: &[Mutex<VecDeque<Slot<T>>>]) -> Option<Slot<T>> {
    loop {
        let mut victim = None;
        for (v, dq) in deques.iter().enumerate() {
            if v == w {
                continue;
            }
            let len = lock(dq).len();
            if len > 0 && victim.map_or(true, |(_, best)| len > best) {
                victim = Some((v, len));
            }
        }
        let (v, _) = victim?;
        let mut tail = {
            let mut dq = lock(&deques[v]);
            let len = dq.len();
            if len == 0 {
                // The victim was drained between the scan and the lock;
                // rescan — some other deque may still hold work.
                continue;
            }
            let take = (len / 2).max(1);
            dq.split_off(len - take)
        };
        let first = tail.pop_front()?;
        if !tail.is_empty() {
            lock(&deques[w]).append(&mut tail);
        }
        return Some(first);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_task_once_in_submission_order() {
        let tasks: Vec<(u64, usize)> = (0..100).map(|i| ((i % 7) as u64, i)).collect();
        let (results, stats) = run(4, tasks, |i| i * 2);
        assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn sequential_fallback_for_one_worker() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<(u64, usize)> = (0..10).map(|i| (1, i)).collect();
        let (results, stats) = run(1, tasks, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(results, (0..10).collect::<Vec<_>>());
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn empty_and_single_task_sets() {
        let (results, _) = run(4, Vec::<(u64, u32)>::new(), |x| x);
        assert!(results.is_empty());
        let (results, stats) = run(4, vec![(5, 41u32)], |x| x + 1);
        assert_eq!(results, vec![42]);
        assert_eq!(stats.workers, 1, "one task needs no pool");
    }

    #[test]
    fn more_workers_than_tasks_is_clamped() {
        let tasks: Vec<(u64, usize)> = (0..3).map(|i| (1, i)).collect();
        let (results, stats) = run(16, tasks, |i| i);
        assert_eq!(results, vec![0, 1, 2]);
        assert_eq!(stats.workers, 3);
    }

    #[test]
    fn lpt_partition_balances_skewed_weights() {
        // One giant task plus many small ones: LPT must put the giant
        // task alone-ish on one deque, so no worker's initial load
        // exceeds ~half the total despite the skew. We can't observe the
        // deques directly; instead check the pool completes and each
        // task ran exactly once under heavy weight skew.
        let mut tasks: Vec<(u64, u64)> = vec![(1000, 0)];
        tasks.extend((1..64).map(|i| (1, i)));
        let (results, _) = run(4, tasks, |i| i);
        assert_eq!(results, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_happens_when_a_worker_stalls() {
        // Worker A gets a slow task plus a pile of queued fast ones; the
        // other worker finishes its own fast tasks and must steal from
        // A's deque while A sleeps. Deterministic even on one core: the
        // sleep yields the CPU to the other worker thread.
        let slow = 0usize;
        let tasks: Vec<(u64, usize)> = (0..16).map(|i| (1, i)).collect();
        let (results, stats) = run(2, tasks, |i| {
            if i == slow {
                std::thread::sleep(Duration::from_millis(60));
            }
            i
        });
        assert_eq!(results, (0..16).collect::<Vec<_>>());
        assert!(stats.steals > 0, "the free worker must steal from the stalled one");
        assert_eq!(stats.steal_durations.len(), stats.steals as usize);
    }

    #[test]
    fn panicking_task_propagates() {
        let tasks: Vec<(u64, u32)> = (0..8).map(|i| (1, i)).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(2, tasks, |i| {
                assert!(i != 3, "boom");
                i
            })
        }));
        assert!(caught.is_err(), "a task panic must propagate out of run()");
    }
}
