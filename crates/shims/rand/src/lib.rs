//! Std-only deterministic stand-in for the subset of the `rand` 0.10 API
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! the `RngExt` sampling methods (`random`, `random_range`, `random_bool`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! upstream `StdRng` (ChaCha12), so value streams differ from the real
//! crate, but every generator in this workspace only promises *seeded
//! determinism*, which this shim provides bit-for-bit across platforms.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait RandomValue: Sized {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl RandomValue for u64 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl RandomValue for u32 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl RandomValue for usize {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl RandomValue for bool {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl RandomValue for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types sampleable uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire-style widening multiply: unbiased enough for a
                // simulator (bias < 2^-64 of the span).
                let word = rng.next_u64() as u128;
                let off = (word * span) >> 64;
                (lo as i128 + off as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let word = rng.next_u64() as u128;
                let off = (word * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let unit: $t = RandomValue::random_from(rng);
                let v = lo + (hi - lo) * unit;
                // Floating rounding can land exactly on `hi`; clamp back
                // into the half-open interval.
                if v >= hi { lo } else { v }
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                let unit: $t = RandomValue::random_from(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The sampling extension methods (rand 0.10 names).
pub trait RngExt: RngCore {
    /// A uniform random value of `T` (floats: `[0, 1)`).
    #[inline]
    fn random<T: RandomValue>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniform random value in `range`.
    #[inline]
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for code written against the pre-0.9 trait name.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Inclusive ranges can return the upper bound.
        let mut hit_top = false;
        for _ in 0..1000 {
            if rng.random_range(0u32..=3) == 3 {
                hit_top = true;
            }
        }
        assert!(hit_top);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let x = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = StdRng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "hits={hits}");
    }
}
