//! Std-only stand-in for the subset of the Criterion API this workspace's
//! benches use: `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! and `Throughput`.
//!
//! Timing method: a short warm-up, then `sample_size` samples, each of
//! enough iterations to cross ~1 ms; the per-iteration median, mean, and
//! min are printed. No statistics files, plots, or regression baselines —
//! A/B comparisons are made by reading the printed table.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark, printed alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `function-name/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Labels accepted by `bench_function`.
pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Runs one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
    /// Per-iteration nanoseconds, one entry per sample.
    results: Vec<f64>,
}

impl Bencher {
    /// Measure `f` repeatedly; called once per benchmark by the group.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and iteration-count calibration: run until ~50 ms or 10
        // iterations, whichever first.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u32;
        while warmup_iters < 10 && warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / f64::from(warmup_iters.max(1));
        // Enough iterations per sample to cross ~1 ms, capped at 1000.
        let iters = ((1e-3 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1000);

        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
            self.results.push(ns);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut bencher = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut bencher);
        self.report(&label, &mut bencher.results);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label.clone();
        let mut bencher = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut bencher, input);
        self.report(&label, &mut bencher.results);
        self
    }

    fn report(&self, label: &str, results: &mut [f64]) {
        if results.is_empty() {
            println!("{}/{label:<40} (no measurement)", self.name);
            return;
        }
        results.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = results[results.len() / 2];
        let mean = results.iter().sum::<f64>() / results.len() as f64;
        let min = results[0];
        let mut line = format!(
            "{}/{label:<40} median {:>12}  mean {:>12}  min {:>12}",
            self.name,
            format_ns(median),
            format_ns(mean),
            format_ns(min)
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let rate = count as f64 / (median / 1e9);
            line.push_str(&format!("  {rate:>12.3e} {unit}"));
        }
        println!("{line}");
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name}");
        BenchmarkGroup { name, sample_size: 20, throughput: None, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        criterion_group!(benches, sample_bench);
        benches();
    }
}
