//! Minimal typed command-line parsing shared by the crate's binaries
//! (`fs-serve`, `loadgen`).
//!
//! Both binaries used to hand-roll `it.next().and_then(parse)` chains
//! whose failures all collapsed into the same anonymous usage dump. This
//! module keeps the deliberately tiny std-only flavor (no external
//! parser crates) but names the failing flag and the bad value in every
//! error, so `--workers banana` says so instead of just printing usage.

use std::fmt::Display;
use std::str::FromStr;

/// Parse `raw` as a `T`, naming the flag in the error message.
pub fn parse_value<T: FromStr>(flag: &str, raw: &str) -> Result<T, String>
where
    T::Err: Display,
{
    raw.parse::<T>().map_err(|e| format!("invalid value {raw:?} for {flag}: {e}"))
}

/// Sequential reader over argv: flags out, typed values on demand.
pub struct FlagParser {
    args: Vec<String>,
    pos: usize,
}

impl FlagParser {
    /// Wrap an argument list (tests pass one directly).
    pub fn new(args: Vec<String>) -> FlagParser {
        FlagParser { args, pos: 0 }
    }

    /// Wrap the process arguments, binary name skipped.
    pub fn from_env() -> FlagParser {
        FlagParser::new(std::env::args().skip(1).collect())
    }

    /// The next argument, expected to be a flag. `None` when exhausted.
    pub fn next_flag(&mut self) -> Option<String> {
        let arg = self.args.get(self.pos).cloned();
        if arg.is_some() {
            self.pos += 1;
        }
        arg
    }

    /// The raw value following `flag`; an error naming the flag when
    /// argv ends instead.
    pub fn value(&mut self, flag: &str) -> Result<String, String> {
        match self.args.get(self.pos) {
            Some(v) => {
                self.pos += 1;
                Ok(v.clone())
            }
            None => Err(format!("{flag} needs a value")),
        }
    }

    /// The value following `flag`, parsed as `T`; errors name the flag.
    pub fn typed<T: FromStr>(&mut self, flag: &str) -> Result<T, String>
    where
        T::Err: Display,
    {
        let raw = self.value(flag)?;
        parse_value(flag, &raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser(args: &[&str]) -> FlagParser {
        FlagParser::new(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn typed_flags_parse_in_sequence() {
        let mut p = parser(&["--workers", "4", "--rate", "0.25", "--cold"]);
        assert_eq!(p.next_flag().as_deref(), Some("--workers"));
        assert_eq!(p.typed::<usize>("--workers"), Ok(4));
        assert_eq!(p.next_flag().as_deref(), Some("--rate"));
        assert_eq!(p.typed::<f64>("--rate"), Ok(0.25));
        assert_eq!(p.next_flag().as_deref(), Some("--cold"));
        assert_eq!(p.next_flag(), None);
    }

    #[test]
    fn errors_name_the_failing_flag() {
        let mut p = parser(&["--workers", "banana"]);
        let _ = p.next_flag();
        let err = p.typed::<usize>("--workers").expect_err("must fail");
        assert!(err.contains("--workers"), "{err}");
        assert!(err.contains("banana"), "{err}");

        let mut p = parser(&["--addr"]);
        let _ = p.next_flag();
        let err = p.value("--addr").expect_err("must fail");
        assert_eq!(err, "--addr needs a value");
    }

    #[test]
    fn parse_value_handles_fault_plans() {
        let plan: fs_chaos::FaultPlan =
            parse_value("--chaos", "seed=7;frag-bit=0.001").expect("valid plan");
        assert_eq!(plan.seed, 7);
        let err =
            parse_value::<fs_chaos::FaultPlan>("--chaos", "seed=7;bogus=1").expect_err("must fail");
        assert!(err.contains("--chaos"), "{err}");
    }
}
