//! The length-prefixed binary protocol `fs-serve` speaks over TCP.
//!
//! Framing: every message is `[u32 LE payload length][u64 LE FNV-1a
//! checksum][payload]`; the payload's first byte is the message tag, the
//! rest is the tag-specific body. All integers are little-endian; floats
//! are IEEE-754 bit patterns; strings are `u16 LE length + UTF-8 bytes`.
//! Frames above [`MAX_FRAME_BYTES`] are refused before allocation, so a
//! garbage peer cannot OOM the server.
//!
//! The checksum turns silent wire corruption (a flipped byte anywhere in
//! the payload — which the chaos layer injects deliberately) into a
//! clean [`io::ErrorKind::InvalidData`] error the client can retry,
//! instead of a plausibly-decoded frame carrying wrong numbers.

use std::io::{self, Read, Write};

/// Refuse frames larger than this (256 MiB) before allocating.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register a COO matrix; the server replies [`Response::Loaded`].
    Load {
        /// Tenant the matrix (and later work) is accounted to.
        tenant: String,
        /// Matrix rows.
        rows: u32,
        /// Matrix columns.
        cols: u32,
        /// COO entries `(row, col, value)`.
        entries: Vec<(u32, u32, f32)>,
    },
    /// SpMM against a registered matrix.
    Spmm {
        /// Tenant the work is accounted to.
        tenant: String,
        /// Handle from [`Response::Loaded`].
        matrix_id: u64,
        /// Deadline in milliseconds (0 = server default).
        deadline_ms: u32,
        /// Dense operand rows (must equal the matrix's column count).
        b_rows: u32,
        /// Dense operand columns (`n`).
        n: u32,
        /// Row-major operand data, `b_rows × n` values.
        b: Vec<f32>,
    },
    /// Fetch the metrics JSON document.
    Metrics,
    /// Fetch the trace exports (Prometheus text + chrome trace JSON) —
    /// the metrics path's tracing extension. Empty dumps when the
    /// server runs with tracing disarmed.
    Trace,
    /// Liveness probe.
    Ping,
    /// Ask the server to drain and exit.
    Shutdown,
    /// Announce a shard to a router: the shard's listen address and its
    /// `start_epoch` (from the metrics document), so the router can tell
    /// a restarted shard from the one it registered slabs on. Plain
    /// `fs-serve` shards answer with their resident fingerprints (an
    /// anti-entropy inventory the router checks against its manifest);
    /// routers answer with the shard's ring position.
    ShardJoin {
        /// The shard's listen address (`host:port`).
        addr: String,
        /// The shard's start epoch (milliseconds since the Unix epoch at
        /// bind time; strictly increases across restarts).
        start_epoch: u64,
    },
    /// SpMM against a row-partitioned matrix: the router scatters the
    /// dense operand to every shard holding a slab and gathers the row
    /// slabs back. Same argument shape as [`Request::Spmm`]. Plain
    /// shards reject this with [`ErrorCode::BadRequest`].
    ClusterSpmm {
        /// Tenant the work is accounted to.
        tenant: String,
        /// Handle from [`Response::Loaded`] (router-issued).
        matrix_id: u64,
        /// Deadline in milliseconds (0 = router default); also the
        /// per-shard wait bound during scatter.
        deadline_ms: u32,
        /// Dense operand rows (must equal the matrix's column count).
        b_rows: u32,
        /// Dense operand columns (`n`).
        n: u32,
        /// Row-major operand data, `b_rows × n` values.
        b: Vec<f32>,
    },
    /// Export a registered matrix as COO entries — the repair path's
    /// source copy when re-replicating a slab from a surviving holder.
    Export {
        /// Tenant the matrix was registered under.
        tenant: String,
        /// Handle from [`Response::Loaded`].
        matrix_id: u64,
    },
    /// Evict a registered matrix (anti-entropy: a rejoining shard drops
    /// slabs the manifest no longer assigns to it).
    Evict {
        /// Tenant the matrix was registered under.
        tenant: String,
        /// Handle from [`Response::Loaded`].
        matrix_id: u64,
    },
    /// Register trained GNN weights against an already-loaded graph;
    /// the server replies [`Response::GnnRegistered`]. The graph (for
    /// GCN: the normalized adjacency; for AGNN: the normalized adjacency
    /// doubling as the attention mask) must have been registered with
    /// [`Request::Load`] first.
    GnnRegister {
        /// Tenant the model is accounted to.
        tenant: String,
        /// Graph handle from [`Response::Loaded`].
        matrix_id: u64,
        /// Model kind: 0 = GCN, 1 = AGNN.
        kind: u8,
        /// Dense weight matrices in forward order as
        /// `(rows, cols, row-major values)`: per-layer `W` for GCN;
        /// `[w_in, w_out]` for AGNN.
        weights: Vec<(u32, u32, Vec<f32>)>,
        /// Trained scalars: empty for GCN; per-attention-layer β for
        /// AGNN (the count sets the number of attention layers).
        scalars: Vec<f32>,
    },
    /// Run a full multi-layer forward pass server-side; the server
    /// replies [`Response::GnnInfer`]. Aggregation always spans the full
    /// registered graph; `node_ids` only selects which rows of the
    /// logits come back (mini-batch scoring).
    GnnInfer {
        /// Tenant the work is accounted to.
        tenant: String,
        /// Model handle from [`Response::GnnRegistered`].
        model_id: u64,
        /// Kernel precision: 0 = FP32 (CUDA-core reference),
        /// 1 = TF32 (FlashSparse `m16n8k4`), 2 = FP16 (FlashSparse
        /// `m16n8k8`) — Table 8's accuracy/latency knob, per request.
        precision: u8,
        /// Deadline in milliseconds (0 = server default).
        deadline_ms: u32,
        /// Node ids whose scores to return; empty = all nodes.
        node_ids: Vec<u32>,
        /// Feature-matrix rows (must equal the graph's node count).
        f_rows: u32,
        /// Feature-matrix columns (must equal the model's input dim).
        f_cols: u32,
        /// Row-major node features, `f_rows × f_cols` values.
        features: Vec<f32>,
    },
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A matrix was registered.
    Loaded {
        /// Handle for subsequent [`Request::Spmm`]s.
        matrix_id: u64,
        /// High 64 bits of the content fingerprint.
        fingerprint_hi: u64,
        /// Low 64 bits of the content fingerprint.
        fingerprint_lo: u64,
        /// Nonzeros after deduplication.
        nnz: u64,
    },
    /// An SpMM completed.
    Spmm {
        /// Whether the translated format came from the cache.
        cache_hit: bool,
        /// Micro-batch size this request rode in.
        batch_size: u32,
        /// Microseconds queued.
        queue_micros: u64,
        /// Microseconds of execution.
        service_micros: u64,
        /// Which fallback-ladder rung produced the output
        /// (`flashsparse::FallbackLevel` wire encoding: 0 = tuned,
        /// 1 = default variant, 2 = scalar reference).
        fallback_level: u8,
        /// Whether the output passed server-side verification (scalar
        /// outputs report `true`: they *are* the reference).
        verified: bool,
        /// Output rows.
        rows: u32,
        /// Output columns.
        n: u32,
        /// Row-major output, `rows × n` values.
        out: Vec<f32>,
    },
    /// The metrics document.
    Metrics {
        /// JSON text.
        json: String,
    },
    /// The trace exports.
    Trace {
        /// Prometheus text exposition dump.
        prometheus: String,
        /// chrome://tracing `trace_events` JSON document.
        chrome: String,
    },
    /// Ping reply.
    Pong,
    /// Shutdown acknowledged; the server drains after sending this.
    ShutdownAck,
    /// A shard was registered with the router — or, when sent by a plain
    /// shard, the shard's residency inventory.
    ShardJoined {
        /// The shard's position in the router's ring (0 from a plain
        /// shard answering with its inventory).
        shard_index: u32,
        /// Total shards the router now knows (1 from a plain shard).
        shard_count: u32,
        /// Already-resident matrices as `(fingerprint_hi,
        /// fingerprint_lo, matrix_id)` triples, ascending by id. A
        /// router's reply leaves this empty; a shard's reply is the
        /// anti-entropy inventory the router reconciles on rejoin.
        resident: Vec<(u64, u64, u64)>,
    },
    /// A scatter-gather SpMM completed (possibly degraded).
    ClusterSpmm {
        /// Output rows (the full matrix's row count, even when degraded).
        rows: u32,
        /// Output columns.
        n: u32,
        /// Row-major output, `rows × n` values; rows whose slab was lost
        /// are zero-filled and cleared in `present`.
        out: Vec<f32>,
        /// Whether any slab was lost (some rows are missing).
        degraded: bool,
        /// Present-rows bitmap, `ceil(rows / 8)` bytes, row `r` present
        /// iff bit `r % 8` of byte `r / 8` is set. Empty when not
        /// degraded (all rows present).
        present: Vec<u8>,
        /// Shards that returned their slab.
        shards_ok: u32,
        /// Shards (counting replica retries) that failed or timed out.
        shards_failed: u32,
    },
    /// A registered matrix's COO entries.
    Export {
        /// Matrix rows.
        rows: u32,
        /// Matrix columns.
        cols: u32,
        /// COO entries `(row, col, value)` in CSR iteration order.
        entries: Vec<(u32, u32, f32)>,
    },
    /// An eviction completed.
    Evicted {
        /// Whether the matrix existed (and was dropped).
        existed: bool,
    },
    /// A GNN model was registered.
    GnnRegistered {
        /// Handle for subsequent [`Request::GnnInfer`]s.
        model_id: u64,
        /// Resident parameter bytes charged to the registry budget.
        weight_bytes: u64,
        /// Timed layers a forward pass of this model reports.
        layers: u32,
    },
    /// A GNN inference completed.
    GnnInfer {
        /// Score rows returned (requested node count, or all nodes).
        rows: u32,
        /// Classes per node (the model's output dimension).
        classes: u32,
        /// Row-major logits, `rows × classes` values, in `node_ids`
        /// order (natural order when all nodes were requested).
        scores: Vec<f32>,
        /// Per-layer execution microseconds, forward order. Zeros on an
        /// embedding-cache hit (no layers ran).
        layer_micros: Vec<u64>,
        /// Whether the logits came from the embedding cache.
        cache_hit: bool,
    },
    /// The request failed.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Why a request failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control refused: the queue is full.
    QueueFull,
    /// The request's deadline passed before execution.
    DeadlineExceeded,
    /// A server-side failure (worker panic, internal error).
    Internal,
    /// The request was malformed.
    BadRequest,
    /// No matrix with that id.
    UnknownMatrix,
    /// A server-side resource budget (registered-matrix count or bytes)
    /// is exhausted.
    ResourceExhausted,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::QueueFull => 1,
            ErrorCode::DeadlineExceeded => 2,
            ErrorCode::Internal => 3,
            ErrorCode::BadRequest => 4,
            ErrorCode::UnknownMatrix => 5,
            ErrorCode::ResourceExhausted => 6,
        }
    }

    fn from_byte(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::QueueFull),
            2 => Some(ErrorCode::DeadlineExceeded),
            3 => Some(ErrorCode::Internal),
            4 => Some(ErrorCode::BadRequest),
            5 => Some(ErrorCode::UnknownMatrix),
            6 => Some(ErrorCode::ResourceExhausted),
            _ => None,
        }
    }
}

/// A malformed frame or payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

// --- framing ---

/// Bytes of the frame header: a `u32` little-endian payload length
/// followed by a `u64` little-endian FNV-1a payload checksum.
pub const FRAME_HEADER_BYTES: usize = 12;

/// FNV-1a over `bytes`: the frame integrity checksum. Not cryptographic
/// — it guards against corruption, not forgery.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The complete wire bytes of one frame: header (length + checksum)
/// followed by the payload. Exposed so the server's chaos write path can
/// corrupt or truncate the exact bytes a healthy write would send.
pub fn frame_bytes(payload: &[u8]) -> io::Result<Vec<u8>> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME_BYTES"));
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Write one length-prefixed, checksummed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame_bytes(payload)?)?;
    w.flush()
}

/// Read one length-prefixed frame and verify its checksum. `Ok(None)` on
/// clean EOF at a frame boundary (the peer closed between messages); an
/// [`io::ErrorKind::InvalidData`] error when the payload does not match
/// its checksum (wire corruption).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    match r.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let mut checksum = [0u8; 8];
    checksum.copy_from_slice(&header[4..12]);
    let checksum = u64::from_le_bytes(checksum);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME_BYTES"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if fnv1a64(&payload) != checksum {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame checksum mismatch"));
    }
    Ok(Some(payload))
}

// --- payload encoding ---

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        // `pos <= data.len()` is an invariant, so `len - pos` cannot
        // underflow; comparing this way (instead of `pos + n > len`)
        // cannot wrap when an adversarial header implies a byte count
        // near `usize::MAX`.
        if n > self.data.len() - self.pos {
            return Err(ProtoError(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.data.len()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError("invalid UTF-8 string".into()))
    }

    fn f32_vec(&mut self, count: usize) -> Result<Vec<f32>, ProtoError> {
        let bytes = self.take(
            count.checked_mul(4).ok_or_else(|| ProtoError("f32 vector length overflows".into()))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect())
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(ProtoError(format!("{} trailing bytes", self.data.len() - self.pos)))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) -> Result<(), ProtoError> {
    let len =
        u16::try_from(s.len()).map_err(|_| ProtoError("string longer than 65535 bytes".into()))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_f32s(out: &mut Vec<u8>, values: &[f32]) {
    out.reserve(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

const REQ_LOAD: u8 = 1;
const REQ_SPMM: u8 = 2;
const REQ_METRICS: u8 = 3;
const REQ_PING: u8 = 4; // lint: resp-pair RESP_PONG
const REQ_SHUTDOWN: u8 = 5;
const REQ_TRACE: u8 = 6;
const REQ_SHARD_JOIN: u8 = 7;
const REQ_CLUSTER_SPMM: u8 = 8;
const REQ_EXPORT: u8 = 9;
const REQ_EVICT: u8 = 10;
const REQ_GNN_REGISTER: u8 = 11;
const REQ_GNN_INFER: u8 = 12;

const RESP_LOADED: u8 = 128;
const RESP_SPMM: u8 = 129;
const RESP_METRICS: u8 = 130;
const RESP_PONG: u8 = 131;
const RESP_SHUTDOWN_ACK: u8 = 132;
const RESP_TRACE: u8 = 133;
const RESP_SHARD_JOINED: u8 = 134;
const RESP_CLUSTER_SPMM: u8 = 135;
const RESP_EXPORT: u8 = 136;
const RESP_EVICTED: u8 = 137;
const RESP_GNN_REGISTERED: u8 = 138;
const RESP_GNN_INFER: u8 = 139;
const RESP_ERROR: u8 = 255;

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Result<Vec<u8>, ProtoError> {
        let mut out = Vec::new();
        match self {
            Request::Load { tenant, rows, cols, entries } => {
                out.push(REQ_LOAD);
                put_string(&mut out, tenant)?;
                out.extend_from_slice(&rows.to_le_bytes());
                out.extend_from_slice(&cols.to_le_bytes());
                let n = u64::try_from(entries.len())
                    .map_err(|_| ProtoError("too many entries".into()))?;
                out.extend_from_slice(&n.to_le_bytes());
                for (r, c, v) in entries {
                    out.extend_from_slice(&r.to_le_bytes());
                    out.extend_from_slice(&c.to_le_bytes());
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Request::Spmm { tenant, matrix_id, deadline_ms, b_rows, n, b } => {
                if b.len() != *b_rows as usize * *n as usize {
                    return Err(ProtoError(format!(
                        "operand has {} values, dims say {}",
                        b.len(),
                        *b_rows as usize * *n as usize
                    )));
                }
                out.push(REQ_SPMM);
                put_string(&mut out, tenant)?;
                out.extend_from_slice(&matrix_id.to_le_bytes());
                out.extend_from_slice(&deadline_ms.to_le_bytes());
                out.extend_from_slice(&b_rows.to_le_bytes());
                out.extend_from_slice(&n.to_le_bytes());
                put_f32s(&mut out, b);
            }
            Request::Metrics => out.push(REQ_METRICS),
            Request::Trace => out.push(REQ_TRACE),
            Request::Ping => out.push(REQ_PING),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
            Request::ShardJoin { addr, start_epoch } => {
                out.push(REQ_SHARD_JOIN);
                put_string(&mut out, addr)?;
                out.extend_from_slice(&start_epoch.to_le_bytes());
            }
            Request::ClusterSpmm { tenant, matrix_id, deadline_ms, b_rows, n, b } => {
                if b.len() != *b_rows as usize * *n as usize {
                    return Err(ProtoError(format!(
                        "operand has {} values, dims say {}",
                        b.len(),
                        *b_rows as usize * *n as usize
                    )));
                }
                out.push(REQ_CLUSTER_SPMM);
                put_string(&mut out, tenant)?;
                out.extend_from_slice(&matrix_id.to_le_bytes());
                out.extend_from_slice(&deadline_ms.to_le_bytes());
                out.extend_from_slice(&b_rows.to_le_bytes());
                out.extend_from_slice(&n.to_le_bytes());
                put_f32s(&mut out, b);
            }
            Request::Export { tenant, matrix_id } => {
                out.push(REQ_EXPORT);
                put_string(&mut out, tenant)?;
                out.extend_from_slice(&matrix_id.to_le_bytes());
            }
            Request::Evict { tenant, matrix_id } => {
                out.push(REQ_EVICT);
                put_string(&mut out, tenant)?;
                out.extend_from_slice(&matrix_id.to_le_bytes());
            }
            Request::GnnRegister { tenant, matrix_id, kind, weights, scalars } => {
                for (i, (rows, cols, data)) in weights.iter().enumerate() {
                    if data.len() != *rows as usize * *cols as usize {
                        return Err(ProtoError(format!(
                            "weight {i} has {} values, dims say {}",
                            data.len(),
                            *rows as usize * *cols as usize
                        )));
                    }
                }
                out.push(REQ_GNN_REGISTER);
                put_string(&mut out, tenant)?;
                out.extend_from_slice(&matrix_id.to_le_bytes());
                out.push(*kind);
                let n = u16::try_from(weights.len())
                    .map_err(|_| ProtoError("too many weight matrices".into()))?;
                out.extend_from_slice(&n.to_le_bytes());
                for (rows, cols, data) in weights {
                    out.extend_from_slice(&rows.to_le_bytes());
                    out.extend_from_slice(&cols.to_le_bytes());
                    put_f32s(&mut out, data);
                }
                let n = u16::try_from(scalars.len())
                    .map_err(|_| ProtoError("too many scalars".into()))?;
                out.extend_from_slice(&n.to_le_bytes());
                put_f32s(&mut out, scalars);
            }
            Request::GnnInfer {
                tenant,
                model_id,
                precision,
                deadline_ms,
                node_ids,
                f_rows,
                f_cols,
                features,
            } => {
                if features.len() != *f_rows as usize * *f_cols as usize {
                    return Err(ProtoError(format!(
                        "features have {} values, dims say {}",
                        features.len(),
                        *f_rows as usize * *f_cols as usize
                    )));
                }
                out.push(REQ_GNN_INFER);
                put_string(&mut out, tenant)?;
                out.extend_from_slice(&model_id.to_le_bytes());
                out.push(*precision);
                out.extend_from_slice(&deadline_ms.to_le_bytes());
                let n = u32::try_from(node_ids.len())
                    .map_err(|_| ProtoError("too many node ids".into()))?;
                out.extend_from_slice(&n.to_le_bytes());
                for id in node_ids {
                    out.extend_from_slice(&id.to_le_bytes());
                }
                out.extend_from_slice(&f_rows.to_le_bytes());
                out.extend_from_slice(&f_cols.to_le_bytes());
                put_f32s(&mut out, features);
            }
        }
        Ok(out)
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            REQ_LOAD => {
                let tenant = c.string()?;
                let rows = c.u32()?;
                let cols = c.u32()?;
                let n = c.u64()? as usize;
                let mut entries = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    entries.push((c.u32()?, c.u32()?, c.f32()?));
                }
                Request::Load { tenant, rows, cols, entries }
            }
            REQ_SPMM => {
                let tenant = c.string()?;
                let matrix_id = c.u64()?;
                let deadline_ms = c.u32()?;
                let b_rows = c.u32()?;
                let n = c.u32()?;
                let b = c.f32_vec(b_rows as usize * n as usize)?;
                Request::Spmm { tenant, matrix_id, deadline_ms, b_rows, n, b }
            }
            REQ_METRICS => Request::Metrics,
            REQ_TRACE => Request::Trace,
            REQ_PING => Request::Ping,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_SHARD_JOIN => Request::ShardJoin { addr: c.string()?, start_epoch: c.u64()? },
            REQ_CLUSTER_SPMM => {
                let tenant = c.string()?;
                let matrix_id = c.u64()?;
                let deadline_ms = c.u32()?;
                let b_rows = c.u32()?;
                let n = c.u32()?;
                let b = c.f32_vec(b_rows as usize * n as usize)?;
                Request::ClusterSpmm { tenant, matrix_id, deadline_ms, b_rows, n, b }
            }
            REQ_EXPORT => Request::Export { tenant: c.string()?, matrix_id: c.u64()? },
            REQ_EVICT => Request::Evict { tenant: c.string()?, matrix_id: c.u64()? },
            REQ_GNN_REGISTER => {
                let tenant = c.string()?;
                let matrix_id = c.u64()?;
                let kind = c.u8()?;
                let n = c.u16()? as usize;
                let mut weights = Vec::with_capacity(n);
                for _ in 0..n {
                    let rows = c.u32()?;
                    let cols = c.u32()?;
                    let data = c.f32_vec(rows as usize * cols as usize)?;
                    weights.push((rows, cols, data));
                }
                let n = c.u16()? as usize;
                let scalars = c.f32_vec(n)?;
                Request::GnnRegister { tenant, matrix_id, kind, weights, scalars }
            }
            REQ_GNN_INFER => {
                let tenant = c.string()?;
                let model_id = c.u64()?;
                let precision = c.u8()?;
                let deadline_ms = c.u32()?;
                let n = c.u32()? as usize;
                let mut node_ids = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    node_ids.push(c.u32()?);
                }
                let f_rows = c.u32()?;
                let f_cols = c.u32()?;
                let features = c.f32_vec(f_rows as usize * f_cols as usize)?;
                Request::GnnInfer {
                    tenant,
                    model_id,
                    precision,
                    deadline_ms,
                    node_ids,
                    f_rows,
                    f_cols,
                    features,
                }
            }
            tag => return Err(ProtoError(format!("unknown request tag {tag}"))),
        };
        c.done()?;
        Ok(req)
    }
}

impl Response {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Result<Vec<u8>, ProtoError> {
        let mut out = Vec::new();
        match self {
            Response::Loaded { matrix_id, fingerprint_hi, fingerprint_lo, nnz } => {
                out.push(RESP_LOADED);
                out.extend_from_slice(&matrix_id.to_le_bytes());
                out.extend_from_slice(&fingerprint_hi.to_le_bytes());
                out.extend_from_slice(&fingerprint_lo.to_le_bytes());
                out.extend_from_slice(&nnz.to_le_bytes());
            }
            Response::Spmm {
                cache_hit,
                batch_size,
                queue_micros,
                service_micros,
                fallback_level,
                verified,
                rows,
                n,
                out: data,
            } => {
                if data.len() != *rows as usize * *n as usize {
                    return Err(ProtoError("output dims disagree with data length".into()));
                }
                out.push(RESP_SPMM);
                out.push(u8::from(*cache_hit));
                out.extend_from_slice(&batch_size.to_le_bytes());
                out.extend_from_slice(&queue_micros.to_le_bytes());
                out.extend_from_slice(&service_micros.to_le_bytes());
                out.push(*fallback_level);
                out.push(u8::from(*verified));
                out.extend_from_slice(&rows.to_le_bytes());
                out.extend_from_slice(&n.to_le_bytes());
                put_f32s(&mut out, data);
            }
            Response::Metrics { json } => {
                out.push(RESP_METRICS);
                let len = u32::try_from(json.len())
                    .map_err(|_| ProtoError("metrics document too large".into()))?;
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(json.as_bytes());
            }
            Response::Trace { prometheus, chrome } => {
                out.push(RESP_TRACE);
                for doc in [prometheus, chrome] {
                    let len = u32::try_from(doc.len())
                        .map_err(|_| ProtoError("trace document too large".into()))?;
                    out.extend_from_slice(&len.to_le_bytes());
                    out.extend_from_slice(doc.as_bytes());
                }
            }
            Response::Pong => out.push(RESP_PONG),
            Response::ShutdownAck => out.push(RESP_SHUTDOWN_ACK),
            Response::ShardJoined { shard_index, shard_count, resident } => {
                out.push(RESP_SHARD_JOINED);
                out.extend_from_slice(&shard_index.to_le_bytes());
                out.extend_from_slice(&shard_count.to_le_bytes());
                let n = u32::try_from(resident.len())
                    .map_err(|_| ProtoError("too many resident matrices".into()))?;
                out.extend_from_slice(&n.to_le_bytes());
                for (hi, lo, id) in resident {
                    out.extend_from_slice(&hi.to_le_bytes());
                    out.extend_from_slice(&lo.to_le_bytes());
                    out.extend_from_slice(&id.to_le_bytes());
                }
            }
            Response::ClusterSpmm {
                rows,
                n,
                out: data,
                degraded,
                present,
                shards_ok,
                shards_failed,
            } => {
                if data.len() != *rows as usize * *n as usize {
                    return Err(ProtoError("output dims disagree with data length".into()));
                }
                if *degraded && present.len() != (*rows as usize).div_ceil(8) {
                    return Err(ProtoError("present bitmap length disagrees with rows".into()));
                }
                out.push(RESP_CLUSTER_SPMM);
                out.extend_from_slice(&rows.to_le_bytes());
                out.extend_from_slice(&n.to_le_bytes());
                put_f32s(&mut out, data);
                out.push(u8::from(*degraded));
                let len = u32::try_from(present.len())
                    .map_err(|_| ProtoError("present bitmap too large".into()))?;
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(present);
                out.extend_from_slice(&shards_ok.to_le_bytes());
                out.extend_from_slice(&shards_failed.to_le_bytes());
            }
            Response::Export { rows, cols, entries } => {
                out.push(RESP_EXPORT);
                out.extend_from_slice(&rows.to_le_bytes());
                out.extend_from_slice(&cols.to_le_bytes());
                let n = u64::try_from(entries.len())
                    .map_err(|_| ProtoError("too many entries".into()))?;
                out.extend_from_slice(&n.to_le_bytes());
                for (r, c, v) in entries {
                    out.extend_from_slice(&r.to_le_bytes());
                    out.extend_from_slice(&c.to_le_bytes());
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Response::Evicted { existed } => {
                out.push(RESP_EVICTED);
                out.push(u8::from(*existed));
            }
            Response::GnnRegistered { model_id, weight_bytes, layers } => {
                out.push(RESP_GNN_REGISTERED);
                out.extend_from_slice(&model_id.to_le_bytes());
                out.extend_from_slice(&weight_bytes.to_le_bytes());
                out.extend_from_slice(&layers.to_le_bytes());
            }
            Response::GnnInfer { rows, classes, scores, layer_micros, cache_hit } => {
                if scores.len() != *rows as usize * *classes as usize {
                    return Err(ProtoError("score dims disagree with data length".into()));
                }
                out.push(RESP_GNN_INFER);
                out.extend_from_slice(&rows.to_le_bytes());
                out.extend_from_slice(&classes.to_le_bytes());
                put_f32s(&mut out, scores);
                let n = u16::try_from(layer_micros.len())
                    .map_err(|_| ProtoError("too many layer timings".into()))?;
                out.extend_from_slice(&n.to_le_bytes());
                for micros in layer_micros {
                    out.extend_from_slice(&micros.to_le_bytes());
                }
                out.push(u8::from(*cache_hit));
            }
            Response::Error { code, message } => {
                out.push(RESP_ERROR);
                out.push(code.to_byte());
                put_string(&mut out, message)?;
            }
        }
        Ok(out)
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            RESP_LOADED => Response::Loaded {
                matrix_id: c.u64()?,
                fingerprint_hi: c.u64()?,
                fingerprint_lo: c.u64()?,
                nnz: c.u64()?,
            },
            RESP_SPMM => {
                let cache_hit = c.u8()? != 0;
                let batch_size = c.u32()?;
                let queue_micros = c.u64()?;
                let service_micros = c.u64()?;
                let fallback_level = c.u8()?;
                let verified = c.u8()? != 0;
                let rows = c.u32()?;
                let n = c.u32()?;
                let out = c.f32_vec(rows as usize * n as usize)?;
                Response::Spmm {
                    cache_hit,
                    batch_size,
                    queue_micros,
                    service_micros,
                    fallback_level,
                    verified,
                    rows,
                    n,
                    out,
                }
            }
            RESP_METRICS => {
                let len = c.u32()? as usize;
                let bytes = c.take(len)?;
                let json = String::from_utf8(bytes.to_vec())
                    .map_err(|_| ProtoError("metrics not UTF-8".into()))?;
                Response::Metrics { json }
            }
            RESP_TRACE => {
                let mut docs = Vec::with_capacity(2);
                for _ in 0..2 {
                    let len = c.u32()? as usize;
                    let bytes = c.take(len)?;
                    docs.push(
                        String::from_utf8(bytes.to_vec())
                            .map_err(|_| ProtoError("trace document not UTF-8".into()))?,
                    );
                }
                let chrome = docs.pop().unwrap_or_default();
                let prometheus = docs.pop().unwrap_or_default();
                Response::Trace { prometheus, chrome }
            }
            RESP_PONG => Response::Pong,
            RESP_SHUTDOWN_ACK => Response::ShutdownAck,
            RESP_SHARD_JOINED => {
                let shard_index = c.u32()?;
                let shard_count = c.u32()?;
                let n = c.u32()? as usize;
                let mut resident = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    resident.push((c.u64()?, c.u64()?, c.u64()?));
                }
                Response::ShardJoined { shard_index, shard_count, resident }
            }
            RESP_CLUSTER_SPMM => {
                let rows = c.u32()?;
                let n = c.u32()?;
                let out = c.f32_vec(rows as usize * n as usize)?;
                let degraded = c.u8()? != 0;
                let len = c.u32()? as usize;
                let present = c.take(len)?.to_vec();
                let shards_ok = c.u32()?;
                let shards_failed = c.u32()?;
                Response::ClusterSpmm { rows, n, out, degraded, present, shards_ok, shards_failed }
            }
            RESP_EXPORT => {
                let rows = c.u32()?;
                let cols = c.u32()?;
                let n = c.u64()? as usize;
                let mut entries = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    entries.push((c.u32()?, c.u32()?, c.f32()?));
                }
                Response::Export { rows, cols, entries }
            }
            RESP_EVICTED => Response::Evicted { existed: c.u8()? != 0 },
            RESP_GNN_REGISTERED => Response::GnnRegistered {
                model_id: c.u64()?,
                weight_bytes: c.u64()?,
                layers: c.u32()?,
            },
            RESP_GNN_INFER => {
                let rows = c.u32()?;
                let classes = c.u32()?;
                let scores = c.f32_vec(rows as usize * classes as usize)?;
                let n = c.u16()? as usize;
                let mut layer_micros = Vec::with_capacity(n);
                for _ in 0..n {
                    layer_micros.push(c.u64()?);
                }
                let cache_hit = c.u8()? != 0;
                Response::GnnInfer { rows, classes, scores, layer_micros, cache_hit }
            }
            RESP_ERROR => {
                let code = ErrorCode::from_byte(c.u8()?)
                    .ok_or_else(|| ProtoError("unknown error code".into()))?;
                Response::Error { code, message: c.string()? }
            }
            tag => return Err(ProtoError(format!("unknown response tag {tag}"))),
        };
        c.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        let bytes = r.encode().expect("encode");
        assert_eq!(Request::decode(&bytes).expect("decode"), r);
    }

    fn roundtrip_resp(r: Response) {
        let bytes = r.encode().expect("encode");
        assert_eq!(Response::decode(&bytes).expect("decode"), r);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Load {
            tenant: "tenant-α".into(),
            rows: 16,
            cols: 8,
            entries: vec![(0, 1, 2.5), (15, 7, -0.125)],
        });
        roundtrip_req(Request::Spmm {
            tenant: "t".into(),
            matrix_id: 42,
            deadline_ms: 250,
            b_rows: 2,
            n: 3,
            b: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        });
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Trace);
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::ShardJoin { addr: "127.0.0.1:7950".into(), start_epoch: 1_699 });
        roundtrip_req(Request::ClusterSpmm {
            tenant: "t".into(),
            matrix_id: 11,
            deadline_ms: 500,
            b_rows: 2,
            n: 2,
            b: vec![1.0, 0.0, -2.5, 4.0],
        });
        roundtrip_req(Request::Export { tenant: "t".into(), matrix_id: 3 });
        roundtrip_req(Request::Evict { tenant: "t".into(), matrix_id: 4 });
    }

    #[test]
    fn gnn_requests_roundtrip() {
        roundtrip_req(Request::GnnRegister {
            tenant: "t".into(),
            matrix_id: 5,
            kind: 0,
            weights: vec![(2, 3, vec![0.5; 6]), (3, 2, vec![-1.25; 6])],
            scalars: vec![],
        });
        roundtrip_req(Request::GnnRegister {
            tenant: "t".into(),
            matrix_id: 6,
            kind: 1,
            weights: vec![(4, 8, vec![0.125; 32]), (8, 2, vec![2.0; 16])],
            scalars: vec![1.0, 0.75],
        });
        roundtrip_req(Request::GnnInfer {
            tenant: "t".into(),
            model_id: 9,
            precision: 2,
            deadline_ms: 500,
            node_ids: vec![0, 3, 7],
            f_rows: 2,
            f_cols: 2,
            features: vec![1.0, 0.0, -0.5, 4.0],
        });
        roundtrip_req(Request::GnnInfer {
            tenant: "t".into(),
            model_id: 9,
            precision: 0,
            deadline_ms: 0,
            node_ids: vec![],
            f_rows: 1,
            f_cols: 3,
            features: vec![0.0, f32::MAX, -1.0],
        });
    }

    #[test]
    fn gnn_responses_roundtrip() {
        roundtrip_resp(Response::GnnRegistered { model_id: 1, weight_bytes: 4096, layers: 3 });
        roundtrip_resp(Response::GnnInfer {
            rows: 2,
            classes: 2,
            scores: vec![0.5, -0.5, 1.0, 0.0],
            layer_micros: vec![10, 20, 30],
            cache_hit: false,
        });
        roundtrip_resp(Response::GnnInfer {
            rows: 0,
            classes: 4,
            scores: vec![],
            layer_micros: vec![],
            cache_hit: true,
        });
    }

    #[test]
    fn gnn_dims_are_validated_at_encode() {
        let bad_weights = Request::GnnRegister {
            tenant: "t".into(),
            matrix_id: 1,
            kind: 0,
            weights: vec![(2, 3, vec![0.0; 5])],
            scalars: vec![],
        };
        assert!(bad_weights.encode().is_err());
        let bad_features = Request::GnnInfer {
            tenant: "t".into(),
            model_id: 1,
            precision: 0,
            deadline_ms: 0,
            node_ids: vec![],
            f_rows: 2,
            f_cols: 2,
            features: vec![0.0; 3],
        };
        assert!(bad_features.encode().is_err());
        let bad_scores = Response::GnnInfer {
            rows: 2,
            classes: 2,
            scores: vec![0.0; 3],
            layer_micros: vec![],
            cache_hit: false,
        };
        assert!(bad_scores.encode().is_err());
    }

    /// Same adversarial-length shape as the SpMM test: dims that multiply
    /// past `u32` must fail cleanly in the cursor, not wrap or OOM.
    #[test]
    fn adversarial_gnn_lengths_error_cleanly() {
        let mut payload = vec![REQ_GNN_INFER];
        payload.extend_from_slice(&0u16.to_le_bytes()); // empty tenant
        payload.extend_from_slice(&1u64.to_le_bytes()); // model_id
        payload.push(0); // precision
        payload.extend_from_slice(&0u32.to_le_bytes()); // deadline_ms
        payload.extend_from_slice(&0u32.to_le_bytes()); // node_ids count
        payload.extend_from_slice(&0x7FFF_FFFFu32.to_le_bytes()); // f_rows
        payload.extend_from_slice(&0x8000_0001u32.to_le_bytes()); // f_cols
        assert!(Request::decode(&payload).is_err());
        // A weight matrix with adversarial dims inside GnnRegister.
        let mut payload = vec![REQ_GNN_REGISTER];
        payload.extend_from_slice(&0u16.to_le_bytes()); // empty tenant
        payload.extend_from_slice(&1u64.to_le_bytes()); // matrix_id
        payload.push(0); // kind
        payload.extend_from_slice(&1u16.to_le_bytes()); // one weight
        payload.extend_from_slice(&0x7FFF_FFFFu32.to_le_bytes()); // rows
        payload.extend_from_slice(&0x8000_0001u32.to_le_bytes()); // cols
        assert!(Request::decode(&payload).is_err());
    }

    #[test]
    fn cluster_responses_roundtrip() {
        roundtrip_resp(Response::ShardJoined { shard_index: 1, shard_count: 3, resident: vec![] });
        roundtrip_resp(Response::ShardJoined {
            shard_index: 0,
            shard_count: 1,
            resident: vec![(u64::MAX, 1, 7), (2, 3, 9)],
        });
        roundtrip_resp(Response::Export {
            rows: 4,
            cols: 5,
            entries: vec![(0, 4, 1.5), (3, 0, -0.25)],
        });
        roundtrip_resp(Response::Export { rows: 0, cols: 0, entries: vec![] });
        roundtrip_resp(Response::Evicted { existed: true });
        roundtrip_resp(Response::Evicted { existed: false });
        roundtrip_resp(Response::ClusterSpmm {
            rows: 3,
            n: 2,
            out: vec![1.0; 6],
            degraded: false,
            present: vec![],
            shards_ok: 3,
            shards_failed: 0,
        });
        roundtrip_resp(Response::ClusterSpmm {
            rows: 9,
            n: 1,
            out: vec![0.5; 9],
            degraded: true,
            present: vec![0b0000_0111, 0b0000_0001],
            shards_ok: 2,
            shards_failed: 1,
        });
    }

    #[test]
    fn degraded_bitmap_length_is_validated_at_encode() {
        let bad = Response::ClusterSpmm {
            rows: 9,
            n: 1,
            out: vec![0.0; 9],
            degraded: true,
            present: vec![0xFF], // 9 rows need 2 bytes
            shards_ok: 2,
            shards_failed: 1,
        };
        assert!(bad.encode().is_err());
    }

    #[test]
    fn trace_response_roundtrips() {
        roundtrip_resp(Response::Trace {
            prometheus: "fs_span_seconds_count{site=\"serve.batch\"} 3\n".into(),
            chrome: "{\"traceEvents\":[]}".into(),
        });
        roundtrip_resp(Response::Trace { prometheus: String::new(), chrome: String::new() });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Loaded {
            matrix_id: 7,
            fingerprint_hi: u64::MAX,
            fingerprint_lo: 1,
            nnz: 99,
        });
        roundtrip_resp(Response::Spmm {
            cache_hit: true,
            batch_size: 4,
            queue_micros: 10,
            service_micros: 20,
            fallback_level: 1,
            verified: true,
            rows: 2,
            n: 2,
            out: vec![0.0, -1.5, f32::MAX, 3.25],
        });
        roundtrip_resp(Response::Metrics { json: "{\"ok\":true}".into() });
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::ShutdownAck);
        roundtrip_resp(Response::Error { code: ErrorCode::QueueFull, message: "busy".into() });
        roundtrip_resp(Response::Error {
            code: ErrorCode::ResourceExhausted,
            message: "matrix registry full".into(),
        });
    }

    #[test]
    fn framing_roundtrips_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        write_frame(&mut buf, b"").expect("write");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).expect("read"), None);
    }

    #[test]
    fn oversized_frame_is_refused_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // checksum field
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn corrupted_frame_byte_is_detected_anywhere() {
        let payload = Request::Spmm {
            tenant: "t".into(),
            matrix_id: 9,
            deadline_ms: 0,
            b_rows: 2,
            n: 2,
            b: vec![1.0, 2.0, 3.0, 4.0],
        }
        .encode()
        .expect("encode");
        let clean = frame_bytes(&payload).expect("frame");
        // Flip one bit of every payload byte in turn: the checksum must
        // catch each one (the header's length bytes are covered by the
        // read-size checks; its checksum bytes by definition mismatch).
        for i in 12..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x10;
            let err = read_frame(&mut &bad[..]).expect_err("corruption at byte must error");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "byte {i}");
        }
        // And the clean frame still reads back.
        assert_eq!(read_frame(&mut &clean[..]).expect("read").as_deref(), Some(&payload[..]));
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_short_payload() {
        let clean = frame_bytes(b"some payload bytes").expect("frame");
        for cut in 1..clean.len() {
            let r = read_frame(&mut &clean[..cut]);
            match r {
                Err(_) => {}
                Ok(None) => assert!(cut < 12, "EOF is clean only inside the header: cut {cut}"),
                Ok(Some(p)) => panic!("truncated frame decoded to {} bytes at cut {cut}", p.len()),
            }
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_error() {
        let good = Request::Ping.encode().expect("encode");
        assert!(Request::decode(&good[..0]).is_err());
        let mut trailing = good;
        trailing.push(0);
        assert!(Request::decode(&trailing).is_err());
        assert!(Request::decode(&[99]).is_err());
    }

    /// `b_rows = 2^31 - 1` and `n = 2^31 + 1` multiply to a byte count of
    /// `2^64 - 4`, which passes `checked_mul` on 64-bit targets; the
    /// cursor bounds check must reject it cleanly instead of wrapping
    /// (release) or panicking on the overflow / reversed range (debug).
    #[test]
    fn adversarial_spmm_lengths_error_cleanly() {
        let mut payload = vec![REQ_SPMM];
        payload.extend_from_slice(&0u16.to_le_bytes()); // empty tenant
        payload.extend_from_slice(&1u64.to_le_bytes()); // matrix_id
        payload.extend_from_slice(&0u32.to_le_bytes()); // deadline_ms
        payload.extend_from_slice(&0x7FFF_FFFFu32.to_le_bytes()); // b_rows
        payload.extend_from_slice(&0x8000_0001u32.to_le_bytes()); // n
        assert!(Request::decode(&payload).is_err());
        // Same shape on the response side.
        let mut resp = vec![RESP_SPMM, 1];
        resp.extend_from_slice(&1u32.to_le_bytes()); // batch_size
        resp.extend_from_slice(&0u64.to_le_bytes()); // queue_micros
        resp.extend_from_slice(&0u64.to_le_bytes()); // service_micros
        resp.push(0); // fallback_level
        resp.push(1); // verified
        resp.extend_from_slice(&0x7FFF_FFFFu32.to_le_bytes()); // rows
        resp.extend_from_slice(&0x8000_0001u32.to_le_bytes()); // n
        assert!(Response::decode(&resp).is_err());
    }

    #[test]
    fn spmm_dims_are_validated_at_encode() {
        let bad = Request::Spmm {
            tenant: "t".into(),
            matrix_id: 1,
            deadline_ms: 0,
            b_rows: 2,
            n: 2,
            b: vec![1.0; 3],
        };
        assert!(bad.encode().is_err());
    }
}
