//! The translated-format cache: translation + tuning paid once per matrix.
//!
//! Acc-SpMM and cuTeSpMM both observe that in real deployments the
//! preprocessing cost (format translation, variant selection) dominates a
//! single kernel launch by orders of magnitude and must be amortized.
//! This cache holds [`CachedFormat`] entries — the ME-BCRS translation
//! plus the [`TuneChoice`] that selected it — under a **byte budget**
//! measured with fs-format's footprint accounting (the same numbers as
//! the paper's Table 7), evicting least-recently-used entries to stay
//! within it. Entries larger than the whole budget are served but never
//! stored, so the budget is a hard invariant (proptested in
//! `tests/cache_props.rs`).

use std::collections::HashMap;
use std::sync::Arc;

use flashsparse::{TranslatedMatrix, TuneChoice};
use fs_format::MemoryFootprint;

use crate::fingerprint::Fingerprint;

/// A fully preprocessed matrix: the translated storage and the tuned
/// kernel configuration that chose it.
#[derive(Clone, Debug)]
pub struct CachedFormat {
    /// The ME-BCRS translation in the chosen variant's layout.
    pub translated: TranslatedMatrix,
    /// The auto-tuner's winning configuration.
    pub choice: TuneChoice,
}

impl CachedFormat {
    /// Resident bytes this entry charges against the cache budget: the
    /// translated arrays plus the (fixed-size) tune choice wire form.
    pub fn footprint_bytes(&self) -> usize {
        self.translated.footprint_bytes() + TuneChoice::WIRE_BYTES
    }
}

/// Hit/miss/eviction counters, snapshot-able while the cache is live.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups that found nothing (caller pays translation + tuning).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Inserts refused because the entry alone exceeds the budget.
    pub rejected_oversize: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently resident.
    pub resident_bytes: usize,
    /// The configured budget.
    pub budget_bytes: usize,
}

impl CacheStats {
    /// Hits over lookups (1.0 when no lookups yet — vacuously perfect,
    /// matching the counter conventions elsewhere in the workspace).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// JSON object for the metrics endpoint.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"rejected_oversize\":{},\
             \"entries\":{},\"resident_bytes\":{},\"budget_bytes\":{},\"hit_rate\":{:.6}}}",
            self.hits,
            self.misses,
            self.evictions,
            self.rejected_oversize,
            self.entries,
            self.resident_bytes,
            self.budget_bytes,
            self.hit_rate()
        )
    }
}

/// An LRU cache of translated formats with a byte-footprint budget.
///
/// Not internally synchronized — the engine wraps it in a mutex. Entries
/// are handed out as `Arc`s, so an eviction never invalidates an entry a
/// worker is still multiplying against.
pub struct FormatCache {
    budget_bytes: usize,
    resident_bytes: usize,
    tick: u64,
    entries: HashMap<Fingerprint, Slot>,
    stats: CacheStats,
}

struct Slot {
    format: Arc<CachedFormat>,
    footprint: usize,
    last_used: u64,
}

impl FormatCache {
    /// An empty cache with the given byte budget. A zero budget disables
    /// residency entirely (every lookup misses) — the serving engine's
    /// "cold" configuration.
    pub fn new(budget_bytes: usize) -> FormatCache {
        FormatCache {
            budget_bytes,
            resident_bytes: 0,
            tick: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look up a fingerprint, refreshing its recency on a hit.
    pub fn get(&mut self, fp: &Fingerprint) -> Option<Arc<CachedFormat>> {
        self.tick += 1;
        match self.entries.get_mut(fp) {
            Some(slot) => {
                slot.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&slot.format))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly translated entry, evicting LRU entries until it
    /// fits. If the entry alone exceeds the budget it is *not* stored
    /// (the caller still gets its `Arc` back) — the budget is never
    /// exceeded, even transiently.
    pub fn insert(&mut self, fp: Fingerprint, format: CachedFormat) -> Arc<CachedFormat> {
        let format = Arc::new(format);
        let footprint = format.footprint_bytes();
        if footprint > self.budget_bytes {
            self.stats.rejected_oversize += 1;
            return format;
        }
        // A racing worker may have inserted the same fingerprint while we
        // translated; keep the resident one and drop ours.
        if let Some(slot) = self.entries.get(&fp) {
            return Arc::clone(&slot.format);
        }
        while self.resident_bytes + footprint > self.budget_bytes {
            if !self.evict_lru() {
                break;
            }
        }
        self.resident_bytes += footprint;
        self.tick += 1;
        let tick = self.tick;
        self.entries.insert(fp, Slot { format: Arc::clone(&format), footprint, last_used: tick });
        self.sync_stats();
        format
    }

    /// Insert-or-overwrite: like [`FormatCache::insert`] but a resident
    /// entry under the same fingerprint is replaced instead of kept. The
    /// background tuner uses this to upgrade a FALLBACK-variant entry
    /// (staged by the overlapped cold path) to the auto-tuned one —
    /// `insert`'s keep-the-resident race resolution would silently drop
    /// the upgrade. Not a lookup: hit/miss counters are untouched.
    pub fn replace(&mut self, fp: Fingerprint, format: CachedFormat) -> Arc<CachedFormat> {
        if let Some(slot) = self.entries.remove(&fp) {
            self.resident_bytes -= slot.footprint;
        }
        self.insert(fp, format)
    }

    /// Evict the least-recently-used entry. Returns false when empty.
    fn evict_lru(&mut self) -> bool {
        let victim = self.entries.iter().min_by_key(|(_, s)| s.last_used).map(|(fp, _)| *fp);
        match victim {
            Some(fp) => {
                if let Some(slot) = self.entries.remove(&fp) {
                    self.resident_bytes -= slot.footprint;
                    self.stats.evictions += 1;
                }
                self.sync_stats();
                true
            }
            None => false,
        }
    }

    fn sync_stats(&mut self) {
        self.stats.entries = self.entries.len();
        self.stats.resident_bytes = self.resident_bytes;
        self.stats.budget_bytes = self.budget_bytes;
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats;
        s.entries = self.entries.len();
        s.resident_bytes = self.resident_bytes;
        s.budget_bytes = self.budget_bytes;
        s
    }

    /// Bytes currently resident (the proptest invariant accessor).
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_matrix::gen::random_uniform;
    use fs_matrix::CsrMatrix;
    use fs_tcu::GpuSpec;

    fn entry(seed: u64, rows: usize) -> (Fingerprint, CachedFormat) {
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(rows, rows, rows * 4, seed));
        let choice = flashsparse::auto_tune(&csr, 16, GpuSpec::RTX4090);
        let translated = TranslatedMatrix::translate(&csr, &choice);
        (Fingerprint::of(&csr), CachedFormat { translated, choice })
    }

    #[test]
    fn hit_miss_and_recency() {
        let mut cache = FormatCache::new(64 << 20);
        let (fp, e) = entry(1, 64);
        assert!(cache.get(&fp).is_none());
        cache.insert(fp, e);
        assert!(cache.get(&fp).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn lru_eviction_order() {
        // Budget sized for two entries; inserting a third evicts the one
        // touched least recently.
        let (fp_a, a) = entry(1, 64);
        let (fp_b, b) = entry(2, 64);
        let (fp_c, c) = entry(3, 64);
        let budget = a.footprint_bytes() + b.footprint_bytes() + c.footprint_bytes() / 2;
        let mut cache = FormatCache::new(budget);
        cache.insert(fp_a, a);
        cache.insert(fp_b, b);
        // Touch A so B becomes the LRU victim.
        assert!(cache.get(&fp_a).is_some());
        cache.insert(fp_c, c);
        assert!(cache.get(&fp_a).is_some(), "recently used entry survived");
        assert!(cache.get(&fp_b).is_none(), "LRU entry evicted");
        assert!(cache.get(&fp_c).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.resident_bytes() <= cache.budget_bytes());
    }

    #[test]
    fn oversize_entry_is_served_but_not_stored() {
        let (fp, e) = entry(4, 64);
        let mut cache = FormatCache::new(e.footprint_bytes() - 1);
        let arc = cache.insert(fp, e);
        assert!(arc.translated.rows() > 0);
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.stats().rejected_oversize, 1);
        assert!(cache.get(&fp).is_none());
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let (fp, e) = entry(5, 32);
        let mut cache = FormatCache::new(0);
        cache.insert(fp, e);
        assert!(cache.get(&fp).is_none());
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn duplicate_insert_keeps_the_resident_entry() {
        let (fp, e1) = entry(6, 48);
        let (_, e2) = entry(6, 48);
        let mut cache = FormatCache::new(64 << 20);
        let first = cache.insert(fp, e1);
        let before = cache.resident_bytes();
        let second = cache.insert(fp, e2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.resident_bytes(), before);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn replace_overwrites_the_resident_entry() {
        let (fp, e1) = entry(7, 48);
        let (_, e2) = entry(7, 48);
        let mut cache = FormatCache::new(64 << 20);
        let first = cache.insert(fp, e1);
        let stats_before = cache.stats();
        let second = cache.replace(fp, e2);
        assert!(!Arc::ptr_eq(&first, &second), "replace must hand out the new entry");
        let got = cache.get(&fp).expect("entry stays resident");
        assert!(Arc::ptr_eq(&got, &second));
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        // replace is not a lookup: only our explicit get() above moved the counters.
        assert_eq!(s.misses, stats_before.misses);
        assert_eq!(s.hits, stats_before.hits + 1);
        assert!(cache.resident_bytes() <= cache.budget_bytes());
    }

    #[test]
    fn stats_hit_rate() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 1.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        let json = s.to_json();
        assert!(json.contains("\"hits\":3"));
        assert!(json.contains("\"hit_rate\":0.75"));
    }
}
