//! Per-tenant accounting and the metrics JSON document.
//!
//! Every executed micro-batch folds its [`KernelCounters`] into the
//! owning tenant's running totals (the multi-tenant analogue of the
//! per-experiment counter merging the bench harness does), alongside
//! request-lifecycle counts — so a tenant's share of simulated tensor-core
//! work is first-class, not reconstructed from logs.

use std::collections::HashMap;

use fs_tcu::KernelCounters;

/// Lifecycle + kernel totals for one tenant.
#[derive(Clone, Copy, Debug, Default)]
pub struct TenantStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Requests shed because their deadline passed while queued.
    pub timed_out: u64,
    /// Requests failed by a worker panic or internal error.
    pub failed: u64,
    /// Micro-batches executed on behalf of this tenant.
    pub batches: u64,
    /// Largest micro-batch observed.
    pub max_batch: u64,
    /// Merged counters of every kernel run for this tenant.
    pub counters: KernelCounters,
}

impl TenantStats {
    /// JSON object (uses the shared [`KernelCounters::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"submitted\":{},\"completed\":{},\"rejected\":{},\"timed_out\":{},\
             \"failed\":{},\"batches\":{},\"max_batch\":{},\"counters\":{}}}",
            self.submitted,
            self.completed,
            self.rejected,
            self.timed_out,
            self.failed,
            self.batches,
            self.max_batch,
            self.counters.to_json()
        )
    }
}

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    // One escaping implementation for the whole workspace: delegate to
    // the shared helper in fs-trace's export module (also behind the
    // loadgen report and `spmm_cli --bench-json`).
    fs_trace::export::json_escape(s)
}

/// Render the tenant map as a JSON object keyed by tenant name.
pub fn tenants_json(tenants: &HashMap<String, TenantStats>) -> String {
    let mut names: Vec<&String> = tenants.keys().collect();
    names.sort();
    let body: Vec<String> = names
        .iter()
        .map(|name| format!("\"{}\":{}", json_escape(name), tenants[*name].to_json()))
        .collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_json_embeds_shared_counter_serializer() {
        let mut t = TenantStats::default();
        t.completed = 4;
        t.counters.mma_count = 9;
        let j = t.to_json();
        assert!(j.contains("\"completed\":4"));
        assert!(j.contains("\"counters\":{\"mma_count\":9"));
    }

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn tenants_render_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), TenantStats::default());
        m.insert("a".to_string(), TenantStats::default());
        let j = tenants_json(&m);
        assert!(j.find("\"a\"").expect("a present") < j.find("\"b\"").expect("b present"));
    }
}
