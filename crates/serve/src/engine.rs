//! The serving engine: registered matrices, a bounded request queue, and
//! a micro-batching worker pool.
//!
//! The execution model mirrors what GNN-inference serving needs (the
//! paper's Fig. 16 end-to-end setting): a graph's adjacency matrix is
//! registered once, then answers many SpMM requests. The engine
//!
//! * admits requests into a **bounded queue** — a full queue rejects at
//!   submit time (backpressure, not unbounded memory growth);
//! * **micro-batches** adjacent requests against the same matrix, so the
//!   per-launch setup (format resolution, cache traffic) is paid once per
//!   batch rather than once per request;
//! * sheds requests whose **deadline** expired while they queued;
//! * **isolates panics** to the batch that caused them (the worker
//!   survives), and a supervisor respawns any worker that dies anyway;
//! * drains the queue on shutdown before joining the pool;
//! * optionally **verifies** every response against the scalar CSR
//!   reference and walks the `flashsparse::resilient` fallback ladder on
//!   mismatch, with a per-matrix [`fs_chaos::CircuitBreaker`] that routes
//!   persistently failing matrices straight to the trusted scalar path.
//!
//! Under an installed [`fs_chaos::FaultPlan`], workers additionally
//! evaluate per-request kill/stall draws, exercising the supervisor and
//! client retry machinery on demand.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use flashsparse::{
    auto_tune, spmm_overlapped, spmm_resilient, ExecMode, FallbackLevel, SchedMode,
    TranslatedMatrix, TuneChoice, VerifyPolicy,
};
use fs_chaos::{BreakerConfig, CircuitBreaker, FaultSite};
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_tcu::{GpuSpec, KernelCounters};
use parking_lot::{Mutex, RwLock};

use crate::cache::{CacheStats, CachedFormat, FormatCache};
use crate::fingerprint::Fingerprint;
use crate::gnn_infer::{
    GnnConfig, GnnError, GnnInferRequest, GnnInferResponse, GnnModelInfo, GnnState,
};
use crate::metrics::{json_escape, tenants_json, TenantStats};
use fs_gnn::GnnWeights;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads executing batches.
    pub workers: usize,
    /// Bounded queue capacity; submits beyond it are rejected.
    pub queue_capacity: usize,
    /// Byte budget of the translated-format cache.
    pub cache_budget_bytes: usize,
    /// Deadline applied when a request does not carry its own.
    pub default_deadline: Duration,
    /// Largest micro-batch a worker gathers per dequeue.
    pub max_batch: usize,
    /// Most matrices that may be registered at once; further
    /// registrations are rejected (bounds server-resident memory, like
    /// the queue and cache budgets do for their structures).
    pub max_matrices: usize,
    /// Byte budget for the resident CSR copies of registered matrices.
    pub max_matrix_bytes: usize,
    /// Cold configuration: disable format caching entirely, so every
    /// request pays translation + tuning (the baseline the ≥5× serving
    /// speedup is measured against).
    pub cold: bool,
    /// Overlapped cold path: on a cache miss, answer the request by
    /// running SpMM straight from the registered CSR with the FALLBACK
    /// variant while the ME-BCRS translation streams in slab by slab
    /// ([`flashsparse::spmm_overlapped`]), instead of paying the full
    /// auto-tune + translate latency up front. A background thread then
    /// upgrades the cached entry to the auto-tuned variant. Ignored when
    /// `verify` is on or the simulator path is active.
    pub pipeline: bool,
    /// Simulated GPU the auto-tuner scores candidates on.
    pub gpu: GpuSpec,
    /// Verify every response against the scalar reference on sampled
    /// rows and walk the fallback ladder on mismatch (the self-healing
    /// path; off by default because the scalar recheck costs real time).
    pub verify: bool,
    /// Rows sampled per verification; `0` checks every row.
    pub verify_sample_rows: usize,
    /// Largest absolute element difference verification accepts as
    /// fp16/tf32 rounding.
    pub verify_tolerance: f32,
    /// Consecutive failing launches that open a matrix's circuit
    /// breaker (breakers only engage when `verify` is on).
    pub breaker_threshold: u32,
    /// How long an open breaker routes the matrix straight to the
    /// scalar path before letting a probe try the TCU again.
    pub breaker_cooldown: Duration,
    /// GNN model-registry and embedding-cache budgets.
    pub gnn: GnnConfig,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 4,
            queue_capacity: 256,
            cache_budget_bytes: 256 << 20,
            default_deadline: Duration::from_secs(5),
            max_batch: 16,
            max_matrices: 1024,
            max_matrix_bytes: 1 << 30,
            cold: false,
            pipeline: true,
            gpu: GpuSpec::RTX4090,
            verify: false,
            verify_sample_rows: 0,
            verify_tolerance: flashsparse::DEFAULT_TOLERANCE,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(5),
            gnn: GnnConfig::default(),
        }
    }
}

/// What a registered matrix looks like to clients.
#[derive(Clone, Copy, Debug)]
pub struct MatrixInfo {
    /// Engine-assigned handle used by subsequent requests.
    pub id: u64,
    /// Content fingerprint (the cache key — shared across tenants).
    pub fingerprint: Fingerprint,
    /// Rows of the sparse matrix.
    pub rows: usize,
    /// Columns of the sparse matrix.
    pub cols: usize,
    /// Nonzeros of the sparse matrix.
    pub nnz: usize,
}

/// Why [`ServeEngine::register_matrix`] refused a matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegisterError {
    /// The registry already holds `max_matrices` entries.
    TooManyMatrices {
        /// The configured count cap.
        limit: usize,
    },
    /// Registering this matrix would exceed `max_matrix_bytes`.
    ByteBudgetExceeded {
        /// The configured byte cap.
        limit: usize,
        /// Bytes already resident.
        resident: usize,
        /// Bytes this matrix needs.
        need: usize,
    },
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::TooManyMatrices { limit } => {
                write!(f, "matrix registry full ({limit} matrices)")
            }
            RegisterError::ByteBudgetExceeded { limit, resident, need } => {
                write!(
                    f,
                    "matrix registry byte budget exhausted ({resident} of {limit} bytes resident, \
                     {need} more needed)"
                )
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// Why a submit was refused at admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — retry later (backpressure).
    QueueFull,
    /// The engine is draining.
    ShuttingDown,
    /// No matrix registered under this id.
    UnknownMatrix(u64),
    /// The dense operand's row count must equal the matrix's column count.
    DimensionMismatch {
        /// Rows the operand must have.
        expected_rows: usize,
        /// Rows it had.
        got: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "queue full"),
            SubmitError::ShuttingDown => write!(f, "shutting down"),
            SubmitError::UnknownMatrix(id) => write!(f, "unknown matrix id {id}"),
            SubmitError::DimensionMismatch { expected_rows, got } => {
                write!(f, "dense operand has {got} rows, matrix needs {expected_rows}")
            }
        }
    }
}

/// A successful SpMM execution.
#[derive(Clone, Debug)]
pub struct SpmmResponse {
    /// The product, widened to f32.
    pub out: DenseMatrix<f32>,
    /// Counters of this request's kernel execution.
    pub counters: KernelCounters,
    /// Whether the translated format came from the cache.
    pub cache_hit: bool,
    /// Size of the micro-batch this request rode in.
    pub batch_size: usize,
    /// Microseconds spent queued before execution started.
    pub queue_micros: u64,
    /// Microseconds of kernel execution (batch-resolution included).
    pub service_micros: u64,
    /// Which rung of the fallback ladder produced the output.
    pub fallback_level: FallbackLevel,
    /// Whether the output was verified against (or produced by) the
    /// scalar reference. `false` when the engine runs with `verify` off.
    pub verified: bool,
}

/// Terminal state of an admitted request.
#[derive(Clone, Debug)]
pub enum SpmmOutcome {
    /// Executed.
    Done(SpmmResponse),
    /// Shed: the deadline passed while the request was queued.
    TimedOut,
    /// A worker panic or internal error consumed the request.
    Failed(String),
}

/// An SpMM request for [`ServeEngine::submit`].
#[derive(Clone, Debug)]
pub struct SpmmRequest {
    /// Tenant the work is accounted to.
    pub tenant: String,
    /// Handle from [`ServeEngine::register_matrix`].
    pub matrix_id: u64,
    /// Dense operand (`matrix.cols × n`).
    pub b: DenseMatrix<f32>,
    /// Per-request deadline; `None` uses the engine default.
    pub deadline: Option<Duration>,
}

/// Handle to an admitted request's eventual outcome.
pub struct Ticket {
    rx: mpsc::Receiver<SpmmOutcome>,
}

impl Ticket {
    /// Block until the outcome arrives. A dropped worker (killed by an
    /// escaped panic before replying) reports as `Failed`.
    pub fn wait(self) -> SpmmOutcome {
        self.rx
            .recv()
            .unwrap_or_else(|_| SpmmOutcome::Failed("response channel closed".to_string()))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobOp {
    Spmm,
    /// Test hook: panic inside the batch-execution unwind boundary.
    PanicInBatch,
    /// Test hook: panic outside it, killing the worker thread.
    PanicWorker,
}

struct Job {
    tenant: String,
    matrix_id: u64,
    op: JobOp,
    b: DenseMatrix<f32>,
    deadline: Instant,
    enqueued: Instant,
    tx: mpsc::Sender<SpmmOutcome>,
}

struct Registered {
    fingerprint: Fingerprint,
    csr: CsrMatrix<f32>,
    /// Lazily built [`TuneChoice::FALLBACK`] translation — the middle
    /// rung of the ladder. Built at most once per registered matrix, on
    /// the first verification failure that needs it.
    fallback: OnceLock<TranslatedMatrix>,
}

impl Registered {
    fn fallback_format(&self) -> &TranslatedMatrix {
        self.fallback.get_or_init(|| TranslatedMatrix::translate(&self.csr, &TuneChoice::FALLBACK))
    }
}

/// Bytes a registered CSR keeps resident: row pointers, column indices,
/// and values.
fn csr_resident_bytes(csr: &CsrMatrix<f32>) -> usize {
    (csr.rows() + 1) * std::mem::size_of::<usize>()
        + csr.nnz() * (std::mem::size_of::<u32>() + std::mem::size_of::<f32>())
}

#[derive(Default)]
struct Registry {
    map: HashMap<u64, Arc<Registered>>,
    resident_bytes: usize,
}

struct Inner {
    cfg: EngineConfig,
    queue: StdMutex<VecDeque<Job>>,
    available: Condvar,
    matrices: RwLock<Registry>,
    cache: Mutex<FormatCache>,
    tenants: Mutex<HashMap<String, TenantStats>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    breakers: Mutex<HashMap<u64, CircuitBreaker>>,
    verify_failures: AtomicU64,
    fallbacks_default: AtomicU64,
    fallbacks_scalar: AtomicU64,
    breaker_bypasses: AtomicU64,
    exec_fast: AtomicU64,
    exec_simulate: AtomicU64,
    validate_skips: AtomicU64,
    overlaps: AtomicU64,
    /// GNN serving state: model registry + embedding cache.
    gnn: GnnState,
    /// Background format-upgrade threads spawned by the overlapped cold
    /// path; reaped opportunistically and joined on shutdown.
    background: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Inner {
    fn breaker_config(&self) -> BreakerConfig {
        BreakerConfig { threshold: self.cfg.breaker_threshold, cooldown: self.cfg.breaker_cooldown }
    }
}

/// Recover a guard from a poisoned std mutex: the queue holds plain data
/// (no invariants spanning the lock), so continuing past a worker panic
/// is sound and exactly what panic isolation wants.
fn lock_recover<T>(m: &StdMutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The multi-tenant batched SpMM serving engine.
pub struct ServeEngine {
    inner: Arc<Inner>,
    workers: Arc<Mutex<Vec<Option<thread::JoinHandle<()>>>>>,
    monitor: Mutex<Option<thread::JoinHandle<()>>>,
}

impl ServeEngine {
    /// Start the engine: spawn the worker pool and its supervisor.
    pub fn start(mut cfg: EngineConfig) -> ServeEngine {
        cfg.workers = cfg.workers.max(1);
        cfg.max_batch = cfg.max_batch.max(1);
        let budget = if cfg.cold { 0 } else { cfg.cache_budget_bytes };
        let inner = Arc::new(Inner {
            cfg,
            queue: StdMutex::new(VecDeque::new()),
            available: Condvar::new(),
            matrices: RwLock::new(Registry::default()),
            cache: Mutex::new(FormatCache::new(budget)),
            tenants: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            worker_panics: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            breakers: Mutex::new(HashMap::new()),
            verify_failures: AtomicU64::new(0),
            fallbacks_default: AtomicU64::new(0),
            fallbacks_scalar: AtomicU64::new(0),
            breaker_bypasses: AtomicU64::new(0),
            exec_fast: AtomicU64::new(0),
            exec_simulate: AtomicU64::new(0),
            validate_skips: AtomicU64::new(0),
            overlaps: AtomicU64::new(0),
            gnn: GnnState::new(cfg.gnn),
            background: Mutex::new(Vec::new()),
        });
        let workers = Arc::new(Mutex::new(
            (0..cfg.workers).map(|_| Some(spawn_worker(Arc::clone(&inner)))).collect::<Vec<_>>(),
        ));
        let monitor = spawn_monitor(Arc::clone(&inner), Arc::clone(&workers));
        ServeEngine { inner, workers, monitor: Mutex::new(Some(monitor)) }
    }

    /// Register a CSR matrix; returns the handle requests refer to. The
    /// raw CSR stays resident so an evicted translation can be rebuilt,
    /// which is why registration is budgeted: `max_matrices` entries and
    /// `max_matrix_bytes` resident CSR bytes, enforced here so clients
    /// cannot grow server memory without bound.
    pub fn register_matrix(
        &self,
        _tenant: &str,
        csr: CsrMatrix<f32>,
    ) -> Result<MatrixInfo, RegisterError> {
        let need = csr_resident_bytes(&csr);
        let fingerprint = Fingerprint::of(&csr);
        let mut registry = self.inner.matrices.write();
        if registry.map.len() >= self.inner.cfg.max_matrices {
            return Err(RegisterError::TooManyMatrices { limit: self.inner.cfg.max_matrices });
        }
        if need > self.inner.cfg.max_matrix_bytes.saturating_sub(registry.resident_bytes) {
            return Err(RegisterError::ByteBudgetExceeded {
                limit: self.inner.cfg.max_matrix_bytes,
                resident: registry.resident_bytes,
                need,
            });
        }
        let info = MatrixInfo {
            id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
            fingerprint,
            rows: csr.rows(),
            cols: csr.cols(),
            nnz: csr.nnz(),
        };
        registry.resident_bytes += need;
        registry
            .map
            .insert(info.id, Arc::new(Registered { fingerprint, csr, fallback: OnceLock::new() }));
        Ok(info)
    }

    /// Registered-matrix totals: `(count, resident CSR bytes)`.
    pub fn registered_stats(&self) -> (usize, usize) {
        let registry = self.inner.matrices.read();
        (registry.map.len(), registry.resident_bytes)
    }

    /// Every resident matrix as `(fingerprint_hi, fingerprint_lo, id)`,
    /// ascending by id — the anti-entropy inventory a shard reports when
    /// a router asks who is already home.
    pub fn resident_matrices(&self) -> Vec<(u64, u64, u64)> {
        let registry = self.inner.matrices.read();
        let mut out: Vec<(u64, u64, u64)> = registry
            .map
            .iter()
            .map(|(&id, reg)| (reg.fingerprint.hi(), reg.fingerprint.lo(), id))
            .collect();
        out.sort_unstable_by_key(|&(_, _, id)| id);
        out
    }

    /// Export a registered matrix's `(rows, cols, COO entries)` in CSR
    /// iteration order — the repair path's source copy. `None` when the
    /// id is unknown.
    pub fn export_matrix(&self, matrix_id: u64) -> Option<(usize, usize, Vec<(u32, u32, f32)>)> {
        let reg = self.inner.matrices.read().map.get(&matrix_id).cloned()?;
        let csr = &reg.csr;
        let mut entries = Vec::with_capacity(csr.nnz());
        for r in 0..csr.rows() {
            for (&c, &v) in csr.row_cols(r).iter().zip(csr.row_values(r)) {
                entries.push((r as u32, c, v)); // lint: checked-cast rows capped at u32 by Load
            }
        }
        Some((csr.rows(), csr.cols(), entries))
    }

    /// Drop a registered matrix, releasing its resident-byte budget and
    /// its circuit breaker. Returns whether it existed. In-flight
    /// requests holding the `Arc` finish against the old copy.
    pub fn evict_matrix(&self, matrix_id: u64) -> bool {
        let mut registry = self.inner.matrices.write();
        match registry.map.remove(&matrix_id) {
            Some(reg) => {
                registry.resident_bytes =
                    registry.resident_bytes.saturating_sub(csr_resident_bytes(&reg.csr));
                drop(registry);
                self.inner.breakers.lock().remove(&matrix_id);
                // Models bound to the evicted graph keep their weights but
                // lose their cached embeddings: the graph can come back
                // under a different id with different content.
                self.inner.gnn.invalidate_matrix(matrix_id);
                true
            }
            None => false,
        }
    }

    /// Register GNN model weights bound to an already-registered graph
    /// matrix. Budgeted like matrices: `gnn.max_models` entries and
    /// `gnn.max_model_bytes` resident parameter bytes.
    pub fn gnn_register(
        &self,
        _tenant: &str,
        matrix_id: u64,
        weights: GnnWeights,
    ) -> Result<GnnModelInfo, GnnError> {
        let reg = self
            .inner
            .matrices
            .read()
            .map
            .get(&matrix_id)
            .cloned()
            .ok_or(GnnError::UnknownGraph(matrix_id))?;
        self.inner.gnn.register(matrix_id, reg.csr.rows(), weights)
    }

    /// Run one GNN inference: a full multi-layer forward pass over the
    /// model's registered graph at the requested precision, returning
    /// scores for the requested nodes (all nodes when `node_ids` is
    /// empty). Synchronous — GNN inference is latency-bound on the
    /// forward pass itself, so it bypasses the SpMM micro-batch queue;
    /// the deadline is still honored (checked after execution).
    pub fn gnn_infer(&self, req: GnnInferRequest) -> Result<GnnInferResponse, GnnError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(GnnError::Internal("shutting down".into()));
        }
        let matrix_id =
            self.inner.gnn.model_graph(req.model_id).ok_or(GnnError::UnknownModel(req.model_id))?;
        let reg = self
            .inner
            .matrices
            .read()
            .map
            .get(&matrix_id)
            .cloned()
            .ok_or(GnnError::UnknownGraph(matrix_id))?;
        let deadline = req.deadline.unwrap_or(self.inner.cfg.default_deadline);
        let started = Instant::now();
        let out = self.inner.gnn.infer(
            req.model_id,
            &reg.csr,
            self.inner.cfg.gpu,
            self.inner.cfg.verify,
            req.precision,
            &req.node_ids,
            &req.features,
        )?;
        if started.elapsed() > deadline {
            return Err(GnnError::DeadlineExceeded);
        }
        Ok(out)
    }

    /// Registered-model totals: `(count, resident parameter bytes)`.
    pub fn gnn_model_stats(&self) -> (usize, usize) {
        self.inner.gnn.model_stats()
    }

    /// Admit a request. `Err` means the request was *not* queued.
    pub fn submit(&self, req: SpmmRequest) -> Result<Ticket, SubmitError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let reg = self
            .inner
            .matrices
            .read()
            .map
            .get(&req.matrix_id)
            .cloned()
            .ok_or(SubmitError::UnknownMatrix(req.matrix_id))?;
        if req.b.rows() != reg.csr.cols() {
            return Err(SubmitError::DimensionMismatch {
                expected_rows: reg.csr.cols(),
                got: req.b.rows(),
            });
        }
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let job = Job {
            tenant: req.tenant.clone(),
            matrix_id: req.matrix_id,
            op: JobOp::Spmm,
            b: req.b,
            deadline: now + req.deadline.unwrap_or(self.inner.cfg.default_deadline),
            enqueued: now,
            tx,
        };
        self.enqueue(job, &req.tenant)?;
        Ok(Ticket { rx })
    }

    fn enqueue(&self, job: Job, tenant: &str) -> Result<(), SubmitError> {
        let accepted = {
            let mut q = lock_recover(&self.inner.queue);
            // Re-check shutdown *under the queue lock*: a worker only
            // exits after observing empty-queue + shutdown while holding
            // this lock, so a push that wins the lock before that
            // observation is guaranteed to be drained, and one that loses
            // it is rejected here instead of stranding the caller.
            if self.inner.shutdown.load(Ordering::Acquire) {
                return Err(SubmitError::ShuttingDown);
            }
            if q.len() >= self.inner.cfg.queue_capacity {
                false
            } else {
                q.push_back(job);
                true
            }
        };
        let mut tenants = self.inner.tenants.lock();
        let stats = tenants.entry(tenant.to_string()).or_default();
        if accepted {
            stats.submitted += 1;
            drop(tenants);
            self.inner.available.notify_one();
            Ok(())
        } else {
            stats.rejected += 1;
            Err(SubmitError::QueueFull)
        }
    }

    /// Submit and block for the outcome — the in-process client API.
    pub fn spmm_blocking(&self, req: SpmmRequest) -> Result<SpmmOutcome, SubmitError> {
        Ok(self.submit(req)?.wait())
    }

    /// Test hook: enqueue a request that panics during execution
    /// (`escape_worker = false`, caught at the batch boundary) or at the
    /// worker loop level (`escape_worker = true`, killing the thread so
    /// the supervisor must respawn it).
    #[doc(hidden)]
    pub fn submit_poison(
        &self,
        tenant: &str,
        matrix_id: u64,
        escape_worker: bool,
    ) -> Result<Ticket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let job = Job {
            tenant: tenant.to_string(),
            matrix_id,
            op: if escape_worker { JobOp::PanicWorker } else { JobOp::PanicInBatch },
            b: DenseMatrix::zeros(0, 0),
            deadline: now + self.inner.cfg.default_deadline,
            enqueued: now,
            tx,
        };
        self.enqueue(job, tenant)?;
        Ok(Ticket { rx })
    }

    /// Snapshot of the format-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.lock().stats()
    }

    /// Snapshot of one tenant's totals.
    pub fn tenant_stats(&self, tenant: &str) -> TenantStats {
        self.inner.tenants.lock().get(tenant).copied().unwrap_or_default()
    }

    /// Worker panics caught (batch-isolated) since start.
    pub fn worker_panics(&self) -> u64 {
        self.inner.worker_panics.load(Ordering::Relaxed)
    }

    /// Workers respawned by the supervisor since start.
    pub fn worker_respawns(&self) -> u64 {
        self.inner.worker_respawns.load(Ordering::Relaxed)
    }

    /// Resilience totals since start: `(verify_failures,
    /// fallbacks_default, fallbacks_scalar, breaker_bypasses)`.
    pub fn resilience_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.inner.verify_failures.load(Ordering::Relaxed),
            self.inner.fallbacks_default.load(Ordering::Relaxed),
            self.inner.fallbacks_scalar.load(Ordering::Relaxed),
            self.inner.breaker_bypasses.load(Ordering::Relaxed),
        )
    }

    /// Execution-mode accounting: `(fast launches, simulate launches,
    /// validate-skip hits)`. Breaker-bypassed requests run on the scalar
    /// path and count under neither mode.
    pub fn exec_stats(&self) -> (u64, u64, u64) {
        (
            self.inner.exec_fast.load(Ordering::Relaxed),
            self.inner.exec_simulate.load(Ordering::Relaxed),
            self.inner.validate_skips.load(Ordering::Relaxed),
        )
    }

    /// Overlapped cold-path executions: one per cache-missing batch the
    /// pipelined engine answered via [`spmm_overlapped`].
    pub fn overlap_count(&self) -> u64 {
        self.inner.overlaps.load(Ordering::Relaxed)
    }

    /// Circuit-breaker trips summed over every registered matrix.
    pub fn breaker_trips(&self) -> u64 {
        self.inner.breakers.lock().values().map(CircuitBreaker::trips).sum()
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        lock_recover(&self.inner.queue).len()
    }

    /// The whole metrics document: cache, engine, resilience, chaos, and
    /// per-tenant stats.
    pub fn metrics_json(&self) -> String {
        let cache = self.cache_stats().to_json();
        let tenants = tenants_json(&self.inner.tenants.lock());
        let (registered, registered_bytes) = self.registered_stats();
        let (verify_failures, fallbacks_default, fallbacks_scalar, breaker_bypasses) =
            self.resilience_stats();
        let (exec_fast, exec_simulate, validate_skips) = self.exec_stats();
        let gnn = self.inner.gnn.stats_json();
        let chaos_plan = match fs_chaos::inject::active_plan() {
            Some(plan) => format!("\"{}\"", json_escape(&plan.to_string())),
            None => "null".to_string(),
        };
        let cfg = &self.inner.cfg;
        format!(
            "{{\"cache\":{cache},\"engine\":{{\"workers\":{},\"queue_capacity\":{},\
             \"queue_len\":{},\"max_batch\":{},\"cold\":{},\"gpu\":\"{}\",\
             \"registered_matrices\":{registered},\"registered_bytes\":{registered_bytes},\
             \"max_matrices\":{},\"max_matrix_bytes\":{},\
             \"worker_panics\":{},\"worker_respawns\":{}}},\
             \"resilience\":{{\"verify\":{},\"verify_failures\":{verify_failures},\
             \"fallbacks_default\":{fallbacks_default},\"fallbacks_scalar\":{fallbacks_scalar},\
             \"breaker_trips\":{},\"breaker_bypasses\":{breaker_bypasses}}},\
             \"exec\":{{\"fast\":{exec_fast},\"simulate\":{exec_simulate},\
             \"validate_skips\":{validate_skips}}},\
             \"pipeline\":{{\"enabled\":{},\"overlaps\":{}}},\
             \"gnn\":{gnn},\
             \"chaos\":{{\"enabled\":{},\"plan\":{chaos_plan},\"faults\":{}}},\
             \"trace\":{{\"armed\":{},\"spans\":{}}},\
             \"tenants\":{tenants}}}",
            cfg.workers,
            cfg.queue_capacity,
            self.queue_len(),
            cfg.max_batch,
            cfg.cold,
            json_escape(&format!("{:?}", cfg.gpu)),
            cfg.max_matrices,
            cfg.max_matrix_bytes,
            self.worker_panics(),
            self.worker_respawns(),
            cfg.verify,
            self.breaker_trips(),
            cfg.pipeline,
            self.overlap_count(),
            fs_chaos::chaos_enabled(),
            fs_chaos::report().to_json(),
            fs_trace::trace_enabled(),
            fs_trace::snapshot().total_spans(),
        )
    }

    /// Graceful drain: stop admitting, let workers finish the queue, join
    /// the pool. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.available.notify_all();
        if let Some(m) = self.monitor.lock().take() {
            let _ = m.join();
        }
        let handles: Vec<thread::JoinHandle<()>> =
            self.workers.lock().iter_mut().filter_map(Option::take).collect();
        for h in handles {
            let _ = h.join();
        }
        // Join background tuners after the workers: the shutdown flag is
        // already set, so each one bails at its next checkpoint.
        let tuners: Vec<thread::JoinHandle<()>> = self.inner.background.lock().drain(..).collect();
        for h in tuners {
            let _ = h.join();
        }
        // Belt and braces for the submit/shutdown race: fail any job that
        // slipped into the queue after the workers drained it, so no
        // `Ticket::wait` blocks forever on a sender parked in the queue.
        let leftovers: Vec<Job> = lock_recover(&self.inner.queue).drain(..).collect();
        for job in leftovers {
            self.inner.tenants.lock().entry(job.tenant.clone()).or_default().failed += 1;
            let _ = job.tx.send(SpmmOutcome::Failed("engine shut down before execution".into()));
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_worker(inner: Arc<Inner>) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("fs-serve-worker".to_string())
        .spawn(move || worker_loop(&inner))
        .unwrap_or_else(|e| panic!("failed to spawn worker thread: {e}")) // lint: allow-panic - thread spawn failure at startup is unrecoverable
}

fn spawn_monitor(
    inner: Arc<Inner>,
    workers: Arc<Mutex<Vec<Option<thread::JoinHandle<()>>>>>,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("fs-serve-monitor".to_string())
        .spawn(move || {
            while !inner.shutdown.load(Ordering::Acquire) {
                {
                    let mut pool = workers.lock();
                    for slot in pool.iter_mut() {
                        let dead = slot.as_ref().is_some_and(|h| h.is_finished());
                        if dead && !inner.shutdown.load(Ordering::Acquire) {
                            if let Some(h) = slot.take() {
                                // The worker died from an escaped panic:
                                // count it and put a fresh one in its slot.
                                let _ = h.join();
                                inner.worker_panics.fetch_add(1, Ordering::Relaxed);
                                inner.worker_respawns.fetch_add(1, Ordering::Relaxed);
                                *slot = Some(spawn_worker(Arc::clone(&inner)));
                            }
                        }
                    }
                }
                thread::sleep(Duration::from_millis(20));
            }
        })
        .unwrap_or_else(|e| panic!("failed to spawn monitor thread: {e}")) // lint: allow-panic - thread spawn failure at startup is unrecoverable
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let Some(batch) = next_batch(inner) else { return };
        if fs_chaos::chaos_enabled() {
            chaos_worker_faults(&batch);
        }
        // The PanicWorker test hook escapes the unwind boundary on
        // purpose: the thread dies and the supervisor must respawn it.
        if batch.iter().any(|j| j.op == JobOp::PanicWorker) {
            panic!("poison request escaped the batch boundary (test hook)");
        }
        run_batch(inner, batch);
    }
}

/// Evaluate the worker-level chaos draws — one stall and one kill draw
/// *per job*, all up front, so the evaluation count depends only on how
/// many requests flowed through, never on batch composition or on an
/// early kill. A fired kill panics out of the worker loop (outside the
/// batch unwind boundary): the jobs in hand drop, their clients see a
/// failure, and the supervisor respawns the slot — exactly the crash the
/// retry machinery must absorb.
#[cold]
fn chaos_worker_faults(batch: &[Job]) {
    let mut stalls = 0u32;
    let mut killed = false;
    for _ in batch {
        if fs_chaos::draw(FaultSite::WorkerStall).is_some() {
            stalls += 1;
        }
        if fs_chaos::draw(FaultSite::WorkerKill).is_some() {
            killed = true;
        }
    }
    if stalls > 0 {
        thread::sleep(fs_chaos::stall_duration() * stalls);
    }
    if killed {
        panic!("chaos: worker kill injected"); // lint: allow-panic - injected crash; the supervisor respawns the worker
    }
}

/// Pop the next micro-batch: the frontmost job plus up to `max_batch - 1`
/// queued jobs against the same matrix (in arrival order). Blocks while
/// the queue is empty; returns `None` once the engine drains.
fn next_batch(inner: &Arc<Inner>) -> Option<Vec<Job>> {
    let mut q = lock_recover(&inner.queue);
    loop {
        if let Some(first) = q.pop_front() {
            let matrix_id = first.matrix_id;
            let mut batch = vec![first];
            let mut i = 0;
            while i < q.len() && batch.len() < inner.cfg.max_batch {
                if q[i].matrix_id == matrix_id && q[i].op == JobOp::Spmm {
                    if let Some(job) = q.remove(i) {
                        batch.push(job);
                    }
                } else {
                    i += 1;
                }
            }
            return Some(batch);
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return None;
        }
        let (guard, _) = inner
            .available
            .wait_timeout(q, Duration::from_millis(50))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        q = guard;
    }
}

fn run_batch(inner: &Arc<Inner>, batch: Vec<Job>) {
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch {
        if now > job.deadline {
            inner.tenants.lock().entry(job.tenant.clone()).or_default().timed_out += 1;
            let _ = job.tx.send(SpmmOutcome::TimedOut);
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    let batch_size = live.len();
    let _batch_span = fs_trace::span(fs_trace::Site::ServeBatch);
    let started = Instant::now();
    // lint: counted-catch - Err is counted into worker_panics below and the monitor respawns the worker
    let result = catch_unwind(AssertUnwindSafe(|| execute_batch(inner, &live)));
    let service_micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

    match result {
        Ok((outputs, cache_hit)) => {
            for (job, exec) in live.into_iter().zip(outputs) {
                let queued = started.duration_since(job.enqueued);
                fs_trace::record_duration(fs_trace::Site::ServeQueue, queued);
                let queue_micros = queued.as_micros().min(u128::from(u64::MAX)) as u64;
                {
                    let mut tenants = inner.tenants.lock();
                    let t = tenants.entry(job.tenant.clone()).or_default();
                    t.completed += 1;
                    t.counters += exec.counters;
                }
                let _ = job.tx.send(SpmmOutcome::Done(SpmmResponse {
                    out: exec.out,
                    counters: exec.counters,
                    cache_hit,
                    batch_size,
                    queue_micros,
                    service_micros,
                    fallback_level: exec.fallback_level,
                    verified: exec.verified,
                }));
            }
        }
        Err(_) => {
            inner.worker_panics.fetch_add(1, Ordering::Relaxed);
            for job in live {
                inner.tenants.lock().entry(job.tenant.clone()).or_default().failed += 1;
                let _ = job
                    .tx
                    .send(SpmmOutcome::Failed("worker panicked during batch execution".into()));
            }
        }
    }
}

/// One executed request: the output plus its provenance.
struct Executed {
    out: DenseMatrix<f32>,
    counters: KernelCounters,
    fallback_level: FallbackLevel,
    verified: bool,
}

/// Resolve the translated format for the batch (cache hit or
/// translate + tune), then run every request against it — through the
/// verify-and-fall-back ladder when the engine runs with `verify` on.
fn execute_batch(inner: &Arc<Inner>, batch: &[Job]) -> (Vec<Executed>, bool) {
    let _span = fs_trace::span(fs_trace::Site::ServeExecute);
    let matrix_id = batch[0].matrix_id;
    let reg = inner
        .matrices
        .read()
        .map
        .get(&matrix_id)
        .cloned()
        .unwrap_or_else(|| panic!("matrix {matrix_id} disappeared")); // lint: allow-panic - registration precedes admission; caught by the batch unwind boundary
    let mut batches_stats = inner.tenants.lock();
    for job in batch {
        let t = batches_stats.entry(job.tenant.clone()).or_default();
        t.batches += 1;
        t.max_batch = t.max_batch.max(batch.len() as u64);
    }
    drop(batches_stats);

    // An open breaker routes the whole batch to the trusted scalar path
    // without touching the TCU (or the cache — no format resolution).
    if inner.cfg.verify && breaker_bypasses(inner, matrix_id) {
        inner.breaker_bypasses.fetch_add(batch.len() as u64, Ordering::Relaxed);
        let outputs = batch
            .iter()
            .map(|job| {
                if job.op == JobOp::PanicInBatch {
                    panic!("poison request (test hook)");
                }
                Executed {
                    out: reg.csr.spmm_reference(&job.b),
                    counters: KernelCounters::default(),
                    fallback_level: FallbackLevel::Scalar,
                    verified: true,
                }
            })
            .collect();
        return (outputs, false);
    }

    let n_hint = batch[0].b.cols().max(1);
    // One mode decision per batch: the switches it reads are process-wide
    // and launch-independent, so every launch below shares it.
    let mode = ExecMode::auto();
    // The overlapped cold path only serves plain fast-mode SpMM: verify
    // needs the resilient ladder, simulate needs the classic dispatch,
    // and poison test hooks must panic inside the ordinary batch body.
    let overlap_ok = inner.cfg.pipeline
        && !inner.cfg.verify
        && mode.is_fast()
        && batch.iter().all(|j| j.op == JobOp::Spmm);
    let (format, cache_hit) = if overlap_ok {
        // Peek the cache directly: a hit is the ordinary warm path, a
        // miss hands the whole batch to the overlapped engine (which
        // does its own translate), so resolve_format's tune+translate
        // must not run here.
        let peek = inner.cache.lock().get(&reg.fingerprint);
        match peek {
            Some(hit) => {
                fs_trace::add(fs_trace::TraceCounter::CacheHits, 1);
                (hit, true)
            }
            None => {
                fs_trace::add(fs_trace::TraceCounter::CacheMisses, 1);
                return execute_overlapped(inner, &reg, batch, n_hint);
            }
        }
    } else {
        resolve_format(inner, &reg, n_hint)
    };
    match mode {
        ExecMode::Fast => inner.exec_fast.fetch_add(batch.len() as u64, Ordering::Relaxed),
        ExecMode::Simulate => inner.exec_simulate.fetch_add(batch.len() as u64, Ordering::Relaxed),
    };
    if mode.is_fast() && format.translated.is_validated() {
        // Fast launches on a witnessed cached format skip the per-launch
        // validation walk entirely — the cache's validate-once payoff.
        inner.validate_skips.fetch_add(batch.len() as u64, Ordering::Relaxed);
    }
    let policy = VerifyPolicy {
        sample_rows: inner.cfg.verify_sample_rows,
        tolerance: inner.cfg.verify_tolerance,
    };
    let outputs = batch
        .iter()
        .map(|job| {
            if job.op == JobOp::PanicInBatch {
                panic!("poison request (test hook)");
            }
            if inner.cfg.verify {
                let (out, counters, report) = spmm_resilient(
                    &reg.csr,
                    &format.translated,
                    &format.choice,
                    Some(reg.fallback_format()),
                    &job.b,
                    &policy,
                );
                record_resilience(inner, matrix_id, &report);
                Executed { out, counters, fallback_level: report.level, verified: true }
            } else {
                let (out, counters) = format.translated.spmm_f32(&job.b, format.choice.mapping);
                Executed { out, counters, fallback_level: FallbackLevel::Tuned, verified: false }
            }
        })
        .collect();
    (outputs, cache_hit)
}

/// The overlapped cold path: the first request of the batch executes via
/// [`spmm_overlapped`] — SpMM runs over ME-BCRS slabs as the translation
/// of the *next* slab proceeds concurrently, with no auto-tune on the
/// critical path — and the remaining requests reuse the assembled
/// translation. The FALLBACK-variant result is cached immediately so the
/// very next request hits, and a background thread upgrades the entry to
/// the auto-tuned variant. Responses carry `FallbackLevel::Default`
/// because that is what ran: the default variant, not the tuned one.
fn execute_overlapped(
    inner: &Arc<Inner>,
    reg: &Arc<Registered>,
    batch: &[Job],
    n_hint: usize,
) -> (Vec<Executed>, bool) {
    inner.overlaps.fetch_add(1, Ordering::Relaxed);
    inner.exec_fast.fetch_add(batch.len() as u64, Ordering::Relaxed);
    let choice = TuneChoice::FALLBACK;
    let sched = SchedMode::auto();
    let (first_out, first_counters, translated) =
        spmm_overlapped(&reg.csr, &batch[0].b, &choice, sched);
    let format = CachedFormat { translated, choice };
    if format.translated.is_validated() {
        // The slab translations were validated as they streamed in; the
        // assembled format keeps the witness, so every launch in this
        // batch skips the per-launch validation walk.
        inner.validate_skips.fetch_add(batch.len() as u64, Ordering::Relaxed);
    }
    let mut outputs = Vec::with_capacity(batch.len());
    outputs.push(Executed {
        out: first_out,
        counters: first_counters,
        fallback_level: FallbackLevel::Default,
        verified: false,
    });
    for job in &batch[1..] {
        let (out, counters) = format.translated.spmm_f32(&job.b, choice.mapping);
        outputs.push(Executed {
            out,
            counters,
            fallback_level: FallbackLevel::Default,
            verified: false,
        });
    }
    if !inner.cfg.cold {
        inner.cache.lock().insert(reg.fingerprint, format);
        spawn_background_tune(inner, Arc::clone(reg), n_hint);
    }
    (outputs, false)
}

/// Upgrade the cached FALLBACK entry to the auto-tuned variant off the
/// request path. Shutdown is checked before each expensive step so a
/// draining engine is not held up by a tuner mid-flight; a failed spawn
/// just skips the upgrade (the FALLBACK entry keeps serving).
fn spawn_background_tune(inner: &Arc<Inner>, reg: Arc<Registered>, n_hint: usize) {
    let tuner_inner = Arc::clone(inner);
    let spawned = thread::Builder::new().name("fs-serve-tuner".to_string()).spawn(move || {
        if tuner_inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let choice = auto_tune(&reg.csr, n_hint, tuner_inner.cfg.gpu);
        if tuner_inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let translated = TranslatedMatrix::translate(&reg.csr, &choice);
        tuner_inner.cache.lock().replace(reg.fingerprint, CachedFormat { translated, choice });
    });
    let Ok(handle) = spawned else { return };
    // Reap finished tuners while we hold the lock anyway, so the handle
    // vector stays bounded by the number of in-flight upgrades.
    let mut background = inner.background.lock();
    let mut keep = Vec::with_capacity(background.len() + 1);
    for h in background.drain(..) {
        if h.is_finished() {
            let _ = h.join();
        } else {
            keep.push(h);
        }
    }
    keep.push(handle);
    *background = keep;
}

fn breaker_bypasses(inner: &Arc<Inner>, matrix_id: u64) -> bool {
    let cfg = inner.breaker_config();
    let mut breakers = inner.breakers.lock();
    breakers
        .entry(matrix_id)
        .or_insert_with(|| CircuitBreaker::new(cfg))
        .should_bypass(Instant::now())
}

fn record_resilience(inner: &Arc<Inner>, matrix_id: u64, report: &flashsparse::ResilientReport) {
    inner.verify_failures.fetch_add(u64::from(report.verify_failures), Ordering::Relaxed);
    match report.level {
        FallbackLevel::Tuned => {}
        FallbackLevel::Default => {
            inner.fallbacks_default.fetch_add(1, Ordering::Relaxed);
        }
        FallbackLevel::Scalar => {
            inner.fallbacks_scalar.fetch_add(1, Ordering::Relaxed);
        }
    }
    let cfg = inner.breaker_config();
    let mut breakers = inner.breakers.lock();
    let breaker = breakers.entry(matrix_id).or_insert_with(|| CircuitBreaker::new(cfg));
    if report.verify_failures > 0 {
        breaker.record_failure(Instant::now());
        drop(breakers);
        // The matrix's kernel output failed verification, so GNN
        // embeddings aggregated over it are no longer trusted either:
        // drop them so the next inference recomputes from scratch
        // (possibly on the scalar path the breaker now routes to).
        inner.gnn.invalidate_matrix(matrix_id);
    } else {
        breaker.record_success();
    }
}

fn resolve_format(
    inner: &Arc<Inner>,
    reg: &Registered,
    n_hint: usize,
) -> (Arc<CachedFormat>, bool) {
    if let Some(hit) = inner.cache.lock().get(&reg.fingerprint) {
        fs_trace::add(fs_trace::TraceCounter::CacheHits, 1);
        return (hit, true);
    }
    fs_trace::add(fs_trace::TraceCounter::CacheMisses, 1);
    // Miss: translate and tune *outside* the cache lock — this is the
    // expensive path the cache exists to amortize.
    let choice = auto_tune(&reg.csr, n_hint, inner.cfg.gpu);
    let translated = TranslatedMatrix::translate(&reg.csr, &choice);
    let arc = inner.cache.lock().insert(reg.fingerprint, CachedFormat { translated, choice });
    (arc, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_matrix::gen::random_uniform;

    fn engine(cfg: EngineConfig) -> (ServeEngine, MatrixInfo, CsrMatrix<f32>) {
        let e = ServeEngine::start(cfg);
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(96, 96, 800, 3));
        let info = e.register_matrix("t0", csr.clone()).expect("registered");
        (e, info, csr)
    }

    fn request(info: &MatrixInfo, n: usize) -> SpmmRequest {
        SpmmRequest {
            tenant: "t0".to_string(),
            matrix_id: info.id,
            b: DenseMatrix::from_fn(info.cols, n, |r, c| ((r + c) % 5) as f32 * 0.25),
            deadline: None,
        }
    }

    #[test]
    fn basic_request_roundtrip() {
        let (e, info, csr) = engine(EngineConfig::default());
        let outcome = e.spmm_blocking(request(&info, 16)).expect("admitted");
        let SpmmOutcome::Done(resp) = outcome else { panic!("expected Done") };
        assert_eq!(resp.out.rows(), 96);
        assert!(resp.counters.mma_count > 0);
        let reference = csr.spmm_reference(&request(&info, 16).b);
        assert!(resp.out.max_abs_diff(&reference) < 0.6);
        e.shutdown();
    }

    #[test]
    fn second_request_hits_the_cache() {
        let (e, info, _) = engine(EngineConfig::default());
        let first = e.spmm_blocking(request(&info, 16)).expect("admitted");
        let second = e.spmm_blocking(request(&info, 16)).expect("admitted");
        let (SpmmOutcome::Done(a), SpmmOutcome::Done(b)) = (first, second) else {
            panic!("expected Done")
        };
        assert!(!a.cache_hit);
        assert!(b.cache_hit);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        e.shutdown();
    }

    #[test]
    fn cold_engine_never_hits() {
        let (e, info, _) = engine(EngineConfig { cold: true, ..EngineConfig::default() });
        for _ in 0..3 {
            let outcome = e.spmm_blocking(request(&info, 8)).expect("admitted");
            let SpmmOutcome::Done(resp) = outcome else { panic!("expected Done") };
            assert!(!resp.cache_hit);
        }
        assert_eq!(e.cache_stats().hits, 0);
        e.shutdown();
    }

    #[test]
    fn unknown_matrix_and_bad_dims_are_rejected_at_admission() {
        let (e, info, _) = engine(EngineConfig::default());
        let mut bad = request(&info, 8);
        bad.matrix_id = 999;
        assert_eq!(e.submit(bad).err(), Some(SubmitError::UnknownMatrix(999)));
        let wrong = SpmmRequest {
            tenant: "t0".into(),
            matrix_id: info.id,
            b: DenseMatrix::zeros(7, 8),
            deadline: None,
        };
        assert!(matches!(e.submit(wrong), Err(SubmitError::DimensionMismatch { .. })));
        e.shutdown();
    }

    #[test]
    fn expired_deadline_sheds_the_request() {
        let (e, info, _) = engine(EngineConfig { workers: 1, ..EngineConfig::default() });
        // A zero deadline is already expired by the time a worker sees it.
        let mut req = request(&info, 8);
        req.deadline = Some(Duration::from_millis(0));
        // Saturate the worker briefly so the doomed request sits queued.
        let hold = e.submit(request(&info, 64)).expect("admitted");
        let doomed = e.submit(req).expect("admitted");
        let _ = hold.wait();
        assert!(matches!(doomed.wait(), SpmmOutcome::TimedOut));
        assert_eq!(e.tenant_stats("t0").timed_out, 1);
        e.shutdown();
    }

    #[test]
    fn queue_full_rejects() {
        let cfg = EngineConfig { workers: 1, queue_capacity: 1, ..EngineConfig::default() };
        let e = ServeEngine::start(cfg);
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(512, 512, 40_000, 3));
        let info = e.register_matrix("t0", csr).expect("registered");
        let req = || SpmmRequest {
            tenant: "t0".to_string(),
            matrix_id: info.id,
            b: DenseMatrix::from_fn(info.cols, 32, |r, c| ((r + c) % 5) as f32),
            deadline: None,
        };
        // Keep submitting until admission control pushes back.
        let mut tickets = Vec::new();
        let mut saw_reject = false;
        for _ in 0..64 {
            match e.submit(req()) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::QueueFull) => {
                    saw_reject = true;
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_reject, "bounded queue never pushed back");
        assert!(e.tenant_stats("t0").rejected >= 1);
        for t in tickets {
            let _ = t.wait();
        }
        e.shutdown();
    }

    #[test]
    fn panic_in_batch_is_isolated() {
        let (e, info, _) = engine(EngineConfig { workers: 1, ..EngineConfig::default() });
        let poison = e.submit_poison("t0", info.id, false).expect("admitted");
        assert!(matches!(poison.wait(), SpmmOutcome::Failed(_)));
        assert_eq!(e.worker_panics(), 1);
        // The same worker still serves normal requests.
        let outcome = e.spmm_blocking(request(&info, 8)).expect("admitted");
        assert!(matches!(outcome, SpmmOutcome::Done(_)));
        assert_eq!(e.tenant_stats("t0").failed, 1);
        e.shutdown();
    }

    #[test]
    fn escaped_panic_respawns_the_worker() {
        let (e, info, _) = engine(EngineConfig { workers: 1, ..EngineConfig::default() });
        let poison = e.submit_poison("t0", info.id, true).expect("admitted");
        assert!(matches!(poison.wait(), SpmmOutcome::Failed(_)));
        // Wait for the supervisor to notice and respawn.
        let deadline = Instant::now() + Duration::from_secs(5);
        while e.worker_respawns() == 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(e.worker_respawns(), 1);
        let outcome = e.spmm_blocking(request(&info, 8)).expect("admitted");
        assert!(matches!(outcome, SpmmOutcome::Done(_)));
        e.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let (e, info, _) = engine(EngineConfig { workers: 2, ..EngineConfig::default() });
        let tickets: Vec<Ticket> =
            (0..8).map(|_| e.submit(request(&info, 16)).expect("admitted")).collect();
        e.shutdown();
        for t in tickets {
            assert!(matches!(t.wait(), SpmmOutcome::Done(_)), "queued request lost in drain");
        }
        assert!(e.submit(request(&info, 16)).is_err());
    }

    #[test]
    fn submit_after_shutdown_is_rejected_not_stranded() {
        let (e, info, _) = engine(EngineConfig::default());
        e.shutdown();
        // Admission must refuse — never enqueue into a drained pool where
        // no worker will ever pick the job up.
        assert_eq!(e.submit(request(&info, 8)).err(), Some(SubmitError::ShuttingDown));
        assert_eq!(e.queue_len(), 0, "no job may be stranded in the queue after shutdown");
    }

    #[test]
    fn registry_count_cap_rejects() {
        let e = ServeEngine::start(EngineConfig { max_matrices: 2, ..EngineConfig::default() });
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(32, 32, 100, 1));
        assert!(e.register_matrix("t", csr.clone()).is_ok());
        assert!(e.register_matrix("t", csr.clone()).is_ok());
        assert_eq!(
            e.register_matrix("t", csr).err(),
            Some(RegisterError::TooManyMatrices { limit: 2 })
        );
        assert_eq!(e.registered_stats().0, 2);
        e.shutdown();
    }

    #[test]
    fn registry_byte_cap_rejects() {
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(32, 32, 100, 1));
        let one = csr_resident_bytes(&csr);
        let e = ServeEngine::start(EngineConfig {
            max_matrix_bytes: one + one / 2,
            ..EngineConfig::default()
        });
        assert!(e.register_matrix("t", csr.clone()).is_ok());
        assert!(matches!(
            e.register_matrix("t", csr).err(),
            Some(RegisterError::ByteBudgetExceeded { .. })
        ));
        let (count, bytes) = e.registered_stats();
        assert_eq!(count, 1);
        assert_eq!(bytes, one);
        e.shutdown();
    }

    #[test]
    fn verified_response_reports_its_rung() {
        let (e, info, csr) = engine(EngineConfig { verify: true, ..EngineConfig::default() });
        let outcome = e.spmm_blocking(request(&info, 16)).expect("admitted");
        let SpmmOutcome::Done(resp) = outcome else { panic!("expected Done") };
        assert!(resp.verified);
        assert_eq!(resp.fallback_level, FallbackLevel::Tuned);
        assert_eq!(e.resilience_stats(), (0, 0, 0, 0), "clean run needs no healing");
        let reference = csr.spmm_reference(&request(&info, 16).b);
        assert!(resp.out.max_abs_diff(&reference) < 0.6);
        e.shutdown();
    }

    #[test]
    fn impossible_tolerance_falls_back_and_trips_the_breaker() {
        let cfg = EngineConfig {
            workers: 1,
            verify: true,
            verify_tolerance: -1.0,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(600),
            ..EngineConfig::default()
        };
        let (e, info, csr) = engine(cfg);
        let reference = csr.spmm_reference(&request(&info, 8).b);
        for i in 0..4 {
            let outcome = e.spmm_blocking(request(&info, 8)).expect("admitted");
            let SpmmOutcome::Done(resp) = outcome else { panic!("expected Done") };
            // Every response still lands on the trusted scalar rung —
            // degraded, never wrong.
            assert_eq!(resp.fallback_level, FallbackLevel::Scalar, "request {i}");
            assert!(resp.verified);
            assert_eq!(resp.counters.mma_count, 0, "scalar rung never touches the TCU");
            assert_eq!(resp.out.to_f32_vec(), reference.to_f32_vec());
        }
        // Two ladder walks (2 rungs failing each) trip the threshold-2
        // breaker; the last two requests bypass straight to scalar.
        assert_eq!(e.breaker_trips(), 1);
        let (verify_failures, _, scalar, bypasses) = e.resilience_stats();
        assert_eq!(verify_failures, 4);
        assert_eq!(scalar, 2);
        assert_eq!(bypasses, 2);
        let j = e.metrics_json();
        assert!(j.contains("\"resilience\":{\"verify\":true"));
        assert!(j.contains("\"breaker_trips\":1"));
        e.shutdown();
    }

    #[test]
    fn metrics_json_is_well_formed() {
        let (e, info, _) = engine(EngineConfig::default());
        let _ = e.spmm_blocking(request(&info, 8));
        let j = e.metrics_json();
        assert!(j.contains("\"cache\":{"));
        assert!(j.contains("\"exec\":{\"fast\":"));
        assert!(j.contains("\"tenants\":{\"t0\":{"));
        assert!(j.contains("\"counters\":{\"mma_count\":"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        e.shutdown();
    }

    #[test]
    fn cold_miss_takes_the_overlapped_path() {
        let (e, info, csr) = engine(EngineConfig::default());
        let first = e.spmm_blocking(request(&info, 16)).expect("admitted");
        let SpmmOutcome::Done(resp) = first else { panic!("expected Done") };
        // The miss ran the overlapped engine: FALLBACK variant, honest
        // fallback level, correct numbers, no cache hit.
        assert!(!resp.cache_hit);
        assert_eq!(resp.fallback_level, FallbackLevel::Default);
        assert_eq!(e.overlap_count(), 1);
        assert!(resp.counters.mma_count > 0);
        let reference = csr.spmm_reference(&request(&info, 16).b);
        assert!(resp.out.max_abs_diff(&reference) < 0.6);
        // The assembled format was cached: the next request hits and
        // does not overlap again.
        let second = e.spmm_blocking(request(&info, 16)).expect("admitted");
        let SpmmOutcome::Done(resp2) = second else { panic!("expected Done") };
        assert!(resp2.cache_hit);
        assert_eq!(e.overlap_count(), 1);
        let j = e.metrics_json();
        assert!(j.contains("\"pipeline\":{\"enabled\":true,\"overlaps\":1}"), "{j}");
        e.shutdown();
    }

    #[test]
    fn pipeline_off_restores_the_classic_cold_path() {
        let (e, info, _) = engine(EngineConfig { pipeline: false, ..EngineConfig::default() });
        for _ in 0..2 {
            let outcome = e.spmm_blocking(request(&info, 16)).expect("admitted");
            let SpmmOutcome::Done(resp) = outcome else { panic!("expected Done") };
            assert_eq!(resp.fallback_level, FallbackLevel::Tuned);
        }
        assert_eq!(e.overlap_count(), 0);
        assert!(e.metrics_json().contains("\"pipeline\":{\"enabled\":false,\"overlaps\":0}"));
        e.shutdown();
    }

    #[test]
    fn background_tuner_upgrades_the_cached_entry() {
        let (e, info, _) = engine(EngineConfig::default());
        let outcome = e.spmm_blocking(request(&info, 16)).expect("admitted");
        assert!(matches!(outcome, SpmmOutcome::Done(_)));
        // The overlapped miss cached the FALLBACK entry (sampled_time 0);
        // the background tuner replaces it with the auto-tuned one, whose
        // cost-model sample is always positive.
        let deadline = Instant::now() + Duration::from_secs(10);
        let upgraded = loop {
            let entry = e.inner.cache.lock().get(&info.fingerprint);
            let tuned = entry.is_some_and(|f| f.choice.sampled_time > 0.0);
            if tuned || Instant::now() > deadline {
                break tuned;
            }
            thread::sleep(Duration::from_millis(10));
        };
        assert!(upgraded, "background tuner never replaced the FALLBACK entry");
        assert_eq!(e.cache_stats().entries, 1, "upgrade replaces, never duplicates");
        e.shutdown();
    }

    #[test]
    fn cold_engine_overlaps_every_request_and_spawns_no_tuner() {
        let (e, info, _) = engine(EngineConfig { cold: true, ..EngineConfig::default() });
        for _ in 0..3 {
            let outcome = e.spmm_blocking(request(&info, 8)).expect("admitted");
            assert!(matches!(outcome, SpmmOutcome::Done(_)));
        }
        assert_eq!(e.overlap_count(), 3);
        assert!(e.inner.background.lock().is_empty(), "cold engines never tune in background");
        e.shutdown();
    }

    #[test]
    fn exec_stats_count_every_tcu_launch() {
        let (e, info, _) = engine(EngineConfig::default());
        for _ in 0..5 {
            let outcome = e.spmm_blocking(request(&info, 8)).expect("admitted");
            assert!(matches!(outcome, SpmmOutcome::Done(_)));
        }
        let (fast, simulate, skips) = e.exec_stats();
        // Every launch lands in exactly one mode bucket (concurrent tests
        // in this binary may arm chaos, flipping the auto selection, so
        // only the sum is pinned); validate skips happen only on fast
        // launches, and translation always sets the witness, so every
        // fast launch skips.
        assert_eq!(fast + simulate, 5);
        assert_eq!(skips, fast);
        e.shutdown();
    }
}
