//! Server-side GNN inference: registered model weights, the embedding
//! cache, and the multi-layer forward-pass executor behind
//! `REQ_GNN_INFER`.
//!
//! A model is a [`fs_gnn::GnnWeights`] snapshot bound to an
//! already-registered graph. Inference replays exactly the offline
//! forward pass ([`GnnWeights::forward_with`]), so served scores are
//! bit-identical to the fs-gnn reference at each precision — FP32, TF32,
//! or FP16, selected per request (the paper's Table 8 accuracy/latency
//! tradeoff as a serving SLA knob).
//!
//! Three protections mirror the engine's matrix handling:
//!
//! * **Budgets** — model count and parameter bytes are capped like the
//!   matrix registry's, so clients cannot grow server memory unbounded.
//! * **Embedding cache** — per-layer outputs are cached under
//!   `(model, precision, feature fingerprint)` with LRU eviction under a
//!   byte budget; a hit replays the exact bits the miss path produced.
//! * **Double-execution verify** — when the engine runs with `verify`
//!   on (always under chaos), the forward pass runs twice and must
//!   agree bitwise; persistent disagreement invalidates the model's
//!   cache entries and fails the request instead of serving corrupt
//!   scores. Breaker trips on the underlying graph also invalidate.
//!
//! # Example
//!
//! The state is engine-internal; the public surface is
//! [`crate::ServeEngine::gnn_register`] / [`crate::ServeEngine::gnn_infer`]
//! (and [`crate::ServeClient::gnn_infer`] over the wire):
//!
//! ```
//! use fs_gnn::{normalize_adjacency, GcnModel, GnnBackend, SparseOps};
//! use fs_matrix::gen::{sbm, SbmConfig};
//! use fs_serve::{EngineConfig, GnnInferRequest, ServeEngine};
//! use fs_tcu::GpuSpec;
//!
//! let ds = sbm(SbmConfig { nodes: 48, feature_dim: 8, ..Default::default() }, 1);
//! let adj = normalize_adjacency(&ds.adjacency);
//! let model = GcnModel::new(&[8, 12, ds.classes], 0.01, 1);
//!
//! let engine = ServeEngine::start(EngineConfig::default());
//! let graph = engine.register_matrix("t", adj.clone()).unwrap();
//! let info = engine.gnn_register("t", graph.id, model.export_weights()).unwrap();
//! let out = engine
//!     .gnn_infer(GnnInferRequest {
//!         tenant: "t".into(),
//!         model_id: info.id,
//!         precision: 2, // FP16
//!         deadline: None,
//!         node_ids: vec![0, 7],
//!         features: ds.features.clone(),
//!     })
//!     .unwrap();
//! assert_eq!(out.rows, 2);
//! assert_eq!(out.classes as usize, ds.classes);
//!
//! // Bit-identical to the offline fs-gnn forward at the same precision.
//! let ops = SparseOps::new(GnnBackend::FlashFp16, GpuSpec::RTX4090);
//! let offline = model.export_weights().forward(&ops, &adj, &ds.features);
//! let want: Vec<f32> = (0..ds.classes).map(|c| offline.get(0, c)).collect();
//! assert_eq!(&out.scores[..ds.classes], &want[..]);
//! engine.shutdown();
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fs_gnn::{GnnBackend, GnnWeights, SparseOps};
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_tcu::GpuSpec;
use parking_lot::Mutex;

use crate::fingerprint::Fingerprint;

/// Budgets for the GNN model registry and embedding cache.
#[derive(Clone, Copy, Debug)]
pub struct GnnConfig {
    /// Most models that may be registered at once.
    pub max_models: usize,
    /// Byte budget for resident model parameters.
    pub max_model_bytes: usize,
    /// Byte budget of the per-layer embedding cache (0 disables it).
    pub cache_budget_bytes: usize,
}

impl Default for GnnConfig {
    fn default() -> GnnConfig {
        GnnConfig { max_models: 64, max_model_bytes: 256 << 20, cache_budget_bytes: 64 << 20 }
    }
}

/// What a registered model looks like to clients.
#[derive(Clone, Copy, Debug)]
pub struct GnnModelInfo {
    /// Handle inference requests refer to.
    pub id: u64,
    /// Parameter bytes charged against the model budget.
    pub weight_bytes: usize,
    /// Timed layers one forward pass reports.
    pub layers: usize,
}

/// Why a GNN registration or inference failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GnnError {
    /// The referenced graph matrix is not registered.
    UnknownGraph(u64),
    /// The referenced model is not registered.
    UnknownModel(u64),
    /// The request was malformed (bad precision, dims, node ids…).
    BadRequest(String),
    /// A registry budget (model count or parameter bytes) is exhausted.
    ResourceExhausted(String),
    /// The deadline passed before the response was ready.
    DeadlineExceeded,
    /// Verification could not produce two agreeing forward passes.
    Internal(String),
}

impl std::fmt::Display for GnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GnnError::UnknownGraph(id) => write!(f, "unknown graph matrix id {id}"),
            GnnError::UnknownModel(id) => write!(f, "unknown model id {id}"),
            GnnError::BadRequest(m) => write!(f, "bad request: {m}"),
            GnnError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            GnnError::DeadlineExceeded => write!(f, "deadline exceeded"),
            GnnError::Internal(m) => write!(f, "internal: {m}"),
        }
    }
}

impl std::error::Error for GnnError {}

/// One GNN inference to run ([`crate::ServeEngine::gnn_infer`]).
#[derive(Clone, Debug)]
pub struct GnnInferRequest {
    /// Tenant the work is accounted to.
    pub tenant: String,
    /// Handle from [`crate::ServeEngine::gnn_register`].
    pub model_id: u64,
    /// Wire precision: 0 = FP32, 1 = TF32, 2 = FP16.
    pub precision: u8,
    /// Per-request deadline (`None` = engine default).
    pub deadline: Option<Duration>,
    /// Node ids whose scores to return; empty = all nodes.
    pub node_ids: Vec<u32>,
    /// Node features, `graph nodes × model input dim`.
    pub features: DenseMatrix<f32>,
}

/// A completed GNN inference.
#[derive(Clone, Debug)]
pub struct GnnInferResponse {
    /// Score rows returned (requested nodes, or all nodes).
    pub rows: u32,
    /// Classes per node.
    pub classes: u32,
    /// Row-major logits, `rows × classes`, in `node_ids` order.
    pub scores: Vec<f32>,
    /// Per-layer execution microseconds; all zero on a cache hit.
    pub layer_micros: Vec<u64>,
    /// Whether the logits came from the embedding cache.
    pub cache_hit: bool,
}

/// Map the wire precision byte to a kernel backend.
pub fn backend_for_precision(precision: u8) -> Option<GnnBackend> {
    match precision {
        0 => Some(GnnBackend::CudaFp32),
        1 => Some(GnnBackend::FlashTf32),
        2 => Some(GnnBackend::FlashFp16),
        _ => None,
    }
}

/// Attempts (pairs of forward passes) the double-execution verifier
/// makes before declaring the model's output untrustworthy.
const VERIFY_ATTEMPTS: usize = 3;

struct ModelEntry {
    weights: GnnWeights,
    matrix_id: u64,
    weight_bytes: usize,
}

#[derive(Default)]
struct ModelRegistry {
    map: HashMap<u64, Arc<ModelEntry>>,
    resident_bytes: usize,
}

/// All per-layer outputs of one forward pass — the embedding-cache
/// value. The last layer is the logits.
struct EmbeddingEntry {
    layers: Vec<DenseMatrix<f32>>,
    model_id: u64,
    bytes: usize,
    last_used: u64,
}

fn embedding_bytes(layers: &[DenseMatrix<f32>]) -> usize {
    layers.iter().map(|m| m.len() * std::mem::size_of::<f32>()).sum()
}

/// `(model, precision, feature fingerprint)` — the cache key. Precision
/// is part of the key because FP16/TF32/FP32 logits legitimately differ.
type CacheKey = (u64, u8, Fingerprint);

#[derive(Default)]
struct EmbeddingCache {
    budget_bytes: usize,
    resident_bytes: usize,
    tick: u64,
    entries: HashMap<CacheKey, EmbeddingEntry>,
    evictions: u64,
}

impl EmbeddingCache {
    fn get(&mut self, key: &CacheKey) -> Option<&EmbeddingEntry> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                Some(entry)
            }
            None => None,
        }
    }

    fn insert(&mut self, key: CacheKey, model_id: u64, layers: Vec<DenseMatrix<f32>>) {
        let bytes = embedding_bytes(&layers);
        if bytes > self.budget_bytes {
            return; // oversize: served but never stored, like FormatCache
        }
        if self.entries.contains_key(&key) {
            return;
        }
        while self.resident_bytes + bytes > self.budget_bytes {
            if !self.evict_lru() {
                break;
            }
        }
        self.tick += 1;
        self.resident_bytes += bytes;
        let entry = EmbeddingEntry { layers, model_id, bytes, last_used: self.tick };
        self.entries.insert(key, entry);
    }

    fn evict_lru(&mut self) -> bool {
        let victim = self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k);
        match victim {
            Some(k) => {
                if let Some(e) = self.entries.remove(&k) {
                    self.resident_bytes -= e.bytes;
                    self.evictions += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Drop every entry belonging to `model_id`; returns how many fell.
    fn invalidate_model(&mut self, model_id: u64) -> usize {
        let victims: Vec<CacheKey> =
            self.entries.iter().filter(|(_, e)| e.model_id == model_id).map(|(k, _)| *k).collect();
        for k in &victims {
            if let Some(e) = self.entries.remove(k) {
                self.resident_bytes -= e.bytes;
            }
        }
        victims.len()
    }
}

/// Engine-internal GNN serving state: the model registry, the embedding
/// cache, and their counters.
pub(crate) struct GnnState {
    cfg: GnnConfig,
    models: Mutex<ModelRegistry>,
    cache: Mutex<EmbeddingCache>,
    next_id: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    invalidations: AtomicU64,
    verify_retries: AtomicU64,
    verify_failures: AtomicU64,
}

impl GnnState {
    pub(crate) fn new(cfg: GnnConfig) -> GnnState {
        GnnState {
            cfg,
            models: Mutex::new(ModelRegistry::default()),
            cache: Mutex::new(EmbeddingCache {
                budget_bytes: cfg.cache_budget_bytes,
                ..EmbeddingCache::default()
            }),
            next_id: AtomicU64::new(1),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            verify_retries: AtomicU64::new(0),
            verify_failures: AtomicU64::new(0),
        }
    }

    /// Register weights bound to graph `matrix_id` (already validated
    /// against the matrix registry by the engine).
    pub(crate) fn register(
        &self,
        matrix_id: u64,
        graph_nodes: usize,
        weights: GnnWeights,
    ) -> Result<GnnModelInfo, GnnError> {
        weights.check_dims().map_err(GnnError::BadRequest)?;
        if weights.input_dim() == 0 || weights.output_dim() == 0 {
            return Err(GnnError::BadRequest("model has an empty projection".into()));
        }
        let _ = graph_nodes; // feature rows are validated per request
        let weight_bytes = weights.weight_bytes();
        let layers = weights.num_layers();
        let mut models = self.models.lock();
        if models.map.len() >= self.cfg.max_models {
            return Err(GnnError::ResourceExhausted(format!(
                "model registry full ({} models)",
                self.cfg.max_models
            )));
        }
        if weight_bytes > self.cfg.max_model_bytes.saturating_sub(models.resident_bytes) {
            return Err(GnnError::ResourceExhausted(format!(
                "model byte budget exceeded: {} resident of {}, need {}",
                models.resident_bytes, self.cfg.max_model_bytes, weight_bytes
            )));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        models.resident_bytes += weight_bytes;
        models.map.insert(id, Arc::new(ModelEntry { weights, matrix_id, weight_bytes }));
        Ok(GnnModelInfo { id, weight_bytes, layers })
    }

    /// The graph matrix a model is bound to.
    pub(crate) fn model_graph(&self, model_id: u64) -> Option<u64> {
        self.models.lock().map.get(&model_id).map(|m| m.matrix_id)
    }

    /// Registered-model totals: `(count, resident parameter bytes)`.
    pub(crate) fn model_stats(&self) -> (usize, usize) {
        let models = self.models.lock();
        let bytes: usize = models.map.values().map(|m| m.weight_bytes).sum();
        debug_assert_eq!(bytes, models.resident_bytes);
        (models.map.len(), bytes)
    }

    /// Drop every cache entry whose model aggregates over `matrix_id` —
    /// called when the matrix's circuit breaker reports a verification
    /// failure (its kernel output is no longer trusted) and when the
    /// matrix is evicted.
    pub(crate) fn invalidate_matrix(&self, matrix_id: u64) -> usize {
        let bound: Vec<u64> = self
            .models
            .lock()
            .map
            .iter()
            .filter(|(_, m)| m.matrix_id == matrix_id)
            .map(|(&id, _)| id)
            .collect();
        let mut dropped = 0;
        let mut cache = self.cache.lock();
        for id in bound {
            dropped += cache.invalidate_model(id);
        }
        if dropped > 0 {
            self.invalidations.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        dropped
    }

    /// Run one inference against `graph` (the engine resolves the model
    /// → graph binding and passes the resident CSR).
    pub(crate) fn infer(
        &self,
        model_id: u64,
        graph: &CsrMatrix<f32>,
        gpu: GpuSpec,
        verify: bool,
        precision: u8,
        node_ids: &[u32],
        features: &DenseMatrix<f32>,
    ) -> Result<GnnInferResponse, GnnError> {
        let backend = backend_for_precision(precision).ok_or_else(|| {
            GnnError::BadRequest(format!("unknown precision {precision} (0/1/2)"))
        })?;
        let model = self
            .models
            .lock()
            .map
            .get(&model_id)
            .cloned()
            .ok_or(GnnError::UnknownModel(model_id))?;
        let nodes = graph.rows();
        if graph.cols() != nodes {
            return Err(GnnError::BadRequest(format!(
                "registered matrix is {}x{}, not a square adjacency",
                nodes,
                graph.cols()
            )));
        }
        if features.rows() != nodes {
            return Err(GnnError::BadRequest(format!(
                "features have {} rows but the graph has {nodes} nodes",
                features.rows()
            )));
        }
        if features.cols() != model.weights.input_dim() {
            return Err(GnnError::BadRequest(format!(
                "features have {} columns but the model expects {}",
                features.cols(),
                model.weights.input_dim()
            )));
        }
        if let Some(bad) = node_ids.iter().find(|&&id| id as usize >= nodes) {
            return Err(GnnError::BadRequest(format!("node id {bad} outside graph of {nodes}")));
        }

        let key: CacheKey = (model_id, precision, Fingerprint::of_dense(features));
        let layers = model.weights.num_layers();

        // Cache lookup (span covers the probe; hit/miss split is in the
        // gnn_cache_* counters).
        let cached: Option<Vec<f32>> = {
            let _span = fs_trace::span(fs_trace::Site::ServeGnnCache);
            self.cache
                .lock()
                .get(&key)
                .map(|e| e.layers.last().map(|m| m.as_slice().to_vec()).unwrap_or_default())
        };
        if let Some(logits) = cached {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            fs_trace::add(fs_trace::TraceCounter::GnnCacheHits, 1);
            let (rows, scores) = select_rows(&logits, model.weights.output_dim(), node_ids);
            return Ok(GnnInferResponse {
                rows,
                classes: model.weights.output_dim() as u32,
                scores,
                layer_micros: vec![0; layers],
                cache_hit: true,
            });
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        fs_trace::add(fs_trace::TraceCounter::GnnCacheMisses, 1);

        let ops = SparseOps::new(backend, gpu);
        let (outputs, micros) = if verify {
            // Double-execution voting: the forward pass must reproduce
            // itself bitwise. A transient fault (chaos MMA flips) makes
            // the two runs disagree; retry with fresh runs. Persistent
            // disagreement poisons the model's cache and fails loudly —
            // an error response, never silently corrupt scores.
            let mut agreed = None;
            for attempt in 0..VERIFY_ATTEMPTS {
                let (outputs, micros) = timed_forward(&model.weights, &ops, graph, features);
                let recheck = model.weights.forward(&ops, graph, features);
                let a = outputs.last().map(|m| m.as_slice()).unwrap_or(&[]);
                if bits_equal(a, recheck.as_slice()) {
                    agreed = Some((outputs, micros));
                    break;
                }
                self.verify_retries.fetch_add(1, Ordering::Relaxed);
                let _ = attempt;
            }
            match agreed {
                Some(pair) => pair,
                None => {
                    self.verify_failures.fetch_add(1, Ordering::Relaxed);
                    let dropped = self.cache.lock().invalidate_model(model_id);
                    self.invalidations.fetch_add(dropped as u64, Ordering::Relaxed);
                    return Err(GnnError::Internal(format!(
                        "forward passes disagreed {VERIFY_ATTEMPTS} times; \
                         embedding cache invalidated for model {model_id}"
                    )));
                }
            }
        } else {
            timed_forward(&model.weights, &ops, graph, features)
        };

        let logits = outputs.last().map(|m| m.as_slice().to_vec()).unwrap_or_default();
        self.cache.lock().insert(key, model_id, outputs);
        let (rows, scores) = select_rows(&logits, model.weights.output_dim(), node_ids);
        Ok(GnnInferResponse {
            rows,
            classes: model.weights.output_dim() as u32,
            scores,
            layer_micros: micros,
            cache_hit: false,
        })
    }

    /// JSON object for the metrics document's `gnn` section.
    pub(crate) fn stats_json(&self) -> String {
        let (models, model_bytes) = self.model_stats();
        let cache = self.cache.lock();
        format!(
            "{{\"models\":{models},\"model_bytes\":{model_bytes},\
             \"max_models\":{},\"max_model_bytes\":{},\
             \"cache\":{{\"entries\":{},\"resident_bytes\":{},\"budget_bytes\":{},\
             \"hits\":{},\"misses\":{},\"evictions\":{},\"invalidations\":{}}},\
             \"verify_retries\":{},\"verify_failures\":{}}}",
            self.cfg.max_models,
            self.cfg.max_model_bytes,
            cache.entries.len(),
            cache.resident_bytes,
            cache.budget_bytes,
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
            cache.evictions,
            self.invalidations.load(Ordering::Relaxed),
            self.verify_retries.load(Ordering::Relaxed),
            self.verify_failures.load(Ordering::Relaxed),
        )
    }
}

/// One timed forward pass: per-layer outputs (for the embedding cache)
/// and per-layer microseconds, each layer under a `serve.gnn_layer` span.
fn timed_forward(
    weights: &GnnWeights,
    ops: &SparseOps,
    graph: &CsrMatrix<f32>,
    features: &DenseMatrix<f32>,
) -> (Vec<DenseMatrix<f32>>, Vec<u64>) {
    let layers = weights.num_layers();
    let mut outputs: Vec<DenseMatrix<f32>> = Vec::with_capacity(layers);
    let mut micros: Vec<u64> = Vec::with_capacity(layers);
    let mut started = Instant::now();
    let mut span = Some(fs_trace::span(fs_trace::Site::ServeGnnLayer));
    let _logits = weights.forward_with(ops, graph, features, |i, out| {
        micros.push(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        outputs.push(out.clone());
        span = None; // close this layer's span
        if i + 1 < layers {
            span = Some(fs_trace::span(fs_trace::Site::ServeGnnLayer));
            started = Instant::now();
        }
    });
    drop(span);
    (outputs, micros)
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Slice the requested rows out of the full logits (`node_ids` order);
/// empty `node_ids` returns every row.
fn select_rows(logits: &[f32], classes: usize, node_ids: &[u32]) -> (u32, Vec<f32>) {
    if node_ids.is_empty() {
        let rows = if classes == 0 { 0 } else { logits.len() / classes };
        return (rows as u32, logits.to_vec());
    }
    let mut scores = Vec::with_capacity(node_ids.len() * classes);
    for &id in node_ids {
        let start = id as usize * classes;
        scores.extend_from_slice(&logits[start..start + classes]);
    }
    (node_ids.len() as u32, scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_gnn::normalize_adjacency;
    use fs_matrix::gen::{sbm, SbmConfig};

    fn setup() -> (GnnState, CsrMatrix<f32>, DenseMatrix<f32>, GnnWeights, usize) {
        let ds = sbm(SbmConfig { nodes: 48, feature_dim: 8, ..Default::default() }, 21);
        let adj = normalize_adjacency(&ds.adjacency);
        let weights = fs_gnn::GcnModel::new(&[8, 12, ds.classes], 0.01, 3).export_weights();
        (GnnState::new(GnnConfig::default()), adj, ds.features, weights, ds.classes)
    }

    #[test]
    fn register_budgets_are_enforced() {
        let (_, _, _, weights, _) = setup();
        let state = GnnState::new(GnnConfig { max_models: 1, ..GnnConfig::default() });
        state.register(1, 48, weights.clone()).expect("first fits");
        let err = state.register(1, 48, weights.clone()).expect_err("count cap");
        assert!(matches!(err, GnnError::ResourceExhausted(_)), "{err}");
        let tiny = GnnState::new(GnnConfig { max_model_bytes: 8, ..GnnConfig::default() });
        let err = tiny.register(1, 48, weights).expect_err("byte cap");
        assert!(matches!(err, GnnError::ResourceExhausted(_)), "{err}");
    }

    #[test]
    fn register_rejects_inconsistent_weights() {
        let state = GnnState::new(GnnConfig::default());
        let bad =
            GnnWeights::gcn(vec![DenseMatrix::<f32>::zeros(4, 8), DenseMatrix::<f32>::zeros(9, 2)]);
        assert!(matches!(state.register(1, 48, bad), Err(GnnError::BadRequest(_))));
    }

    #[test]
    fn cache_hit_replays_miss_bits_and_counts() {
        let (state, adj, features, weights, classes) = setup();
        let info = state.register(7, 48, weights).expect("register");
        let gpu = GpuSpec::RTX4090;
        for precision in [0u8, 1, 2] {
            let miss = state
                .infer(info.id, &adj, gpu, false, precision, &[], &features)
                .expect("miss path");
            assert!(!miss.cache_hit);
            assert_eq!(miss.classes as usize, classes);
            assert!(miss.layer_micros.len() == 2);
            let hit = state
                .infer(info.id, &adj, gpu, false, precision, &[], &features)
                .expect("hit path");
            assert!(hit.cache_hit);
            assert_eq!(hit.layer_micros, vec![0, 0]);
            let a: Vec<u32> = miss.scores.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = hit.scores.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "hit must replay the miss bits at precision {precision}");
        }
        assert_eq!(state.cache_hits.load(Ordering::Relaxed), 3);
        assert_eq!(state.cache_misses.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn precision_is_part_of_the_cache_key() {
        let (state, adj, features, weights, _) = setup();
        let info = state.register(7, 48, weights).expect("register");
        let fp32 =
            state.infer(info.id, &adj, GpuSpec::RTX4090, false, 0, &[], &features).expect("fp32");
        let fp16 =
            state.infer(info.id, &adj, GpuSpec::RTX4090, false, 2, &[], &features).expect("fp16");
        assert!(!fp32.cache_hit && !fp16.cache_hit, "distinct precisions must both miss");
        assert_ne!(
            fp32.scores.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            fp16.scores.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "fp16 rounding must be visible vs fp32"
        );
    }

    #[test]
    fn node_id_selection_matches_full_rows() {
        let (state, adj, features, weights, classes) = setup();
        let info = state.register(7, 48, weights).expect("register");
        let full =
            state.infer(info.id, &adj, GpuSpec::RTX4090, false, 1, &[], &features).expect("full");
        let some = state
            .infer(info.id, &adj, GpuSpec::RTX4090, false, 1, &[5, 0, 47], &features)
            .expect("mini-batch");
        assert_eq!(some.rows, 3);
        for (slot, &node) in [5usize, 0, 47].iter().enumerate() {
            let want = &full.scores[node * classes..(node + 1) * classes];
            let got = &some.scores[slot * classes..(slot + 1) * classes];
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        let err = state
            .infer(info.id, &adj, GpuSpec::RTX4090, false, 1, &[48], &features)
            .expect_err("node id out of range");
        assert!(matches!(err, GnnError::BadRequest(_)));
    }

    #[test]
    fn invalidate_matrix_drops_only_bound_models() {
        let (state, adj, features, weights, _) = setup();
        let bound = state.register(7, 48, weights.clone()).expect("bound to 7");
        let other = state.register(8, 48, weights).expect("bound to 8");
        for id in [bound.id, other.id] {
            state.infer(id, &adj, GpuSpec::RTX4090, false, 0, &[], &features).expect("warm");
        }
        assert_eq!(state.invalidate_matrix(7), 1, "one entry for the bound model");
        // The other model's entry survives: its next request still hits.
        let hit =
            state.infer(other.id, &adj, GpuSpec::RTX4090, false, 0, &[], &features).expect("hit");
        assert!(hit.cache_hit);
        // The bound model misses again.
        let miss =
            state.infer(bound.id, &adj, GpuSpec::RTX4090, false, 0, &[], &features).expect("miss");
        assert!(!miss.cache_hit);
    }

    #[test]
    fn verify_mode_agrees_with_plain_mode_bitwise() {
        let (state, adj, features, weights, _) = setup();
        let info = state.register(7, 48, weights).expect("register");
        let plain =
            state.infer(info.id, &adj, GpuSpec::RTX4090, false, 2, &[], &features).expect("plain");
        let fresh = GnnState::new(GnnConfig::default());
        let info2 = fresh
            .register(7, 48, fs_gnn::GcnModel::new(&[8, 12, 4], 0.01, 3).export_weights())
            .expect("register");
        let verified = fresh
            .infer(info2.id, &adj, GpuSpec::RTX4090, true, 2, &[], &features)
            .expect("verified");
        assert_eq!(
            plain.scores.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            verified.scores.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(fresh.verify_retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn unknown_model_and_bad_precision_error_cleanly() {
        let (state, adj, features, _, _) = setup();
        let err = state
            .infer(99, &adj, GpuSpec::RTX4090, false, 0, &[], &features)
            .expect_err("unknown model");
        assert_eq!(err, GnnError::UnknownModel(99));
        let (state, adj, features, weights, _) = setup();
        let info = state.register(7, 48, weights).expect("register");
        let err = state
            .infer(info.id, &adj, GpuSpec::RTX4090, false, 9, &[], &features)
            .expect_err("bad precision");
        assert!(matches!(err, GnnError::BadRequest(_)));
    }

    #[test]
    fn embedding_cache_lru_stays_within_budget() {
        let mut cache = EmbeddingCache { budget_bytes: 4096, ..EmbeddingCache::default() };
        let fp = |seed: u64| {
            Fingerprint::of_dense(&DenseMatrix::<f32>::from_fn(2, 2, |r, c| {
                (seed as f32) + (r * 2 + c) as f32
            }))
        };
        for seed in 0..16 {
            let layers = vec![DenseMatrix::<f32>::zeros(8, 16)]; // 512 B each
            cache.insert((1, 0, fp(seed)), 1, layers);
            assert!(cache.resident_bytes <= cache.budget_bytes);
        }
        assert!(cache.evictions > 0, "16 × 512 B must not fit in 4 KiB");
        // Oversize entries are never stored.
        let huge = vec![DenseMatrix::<f32>::zeros(64, 64)]; // 16 KiB
        cache.insert((1, 0, fp(99)), 1, huge);
        assert!(cache.get(&(1, 0, fp(99))).is_none());
    }
}
