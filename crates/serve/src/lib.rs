//! fs-serve: a batched SpMM serving engine over the FlashSparse kernels.
//!
//! Production SpMM workloads (GNN inference, recommendation retrieval)
//! reuse the same sparse matrix across many requests, so the expensive
//! part of FlashSparse's pipeline — CSR → ME-BCRS translation plus
//! auto-tune variant selection — should be paid once, not per request.
//! This crate wraps the kernel library in a small serving engine:
//!
//! - [`cache`] — an LRU of translated formats keyed by content
//!   fingerprint, bounded by a byte budget measured with the same
//!   footprint accounting the paper's Table 7 uses.
//! - [`engine`] — a bounded-queue, panic-isolated worker pool that
//!   groups concurrent requests for the same matrix into micro-batches
//!   and folds [`fs_tcu::KernelCounters`] into per-tenant totals.
//! - [`gnn_infer`] — end-to-end GNN inference serving: registered
//!   [`fs_gnn::GnnWeights`] models run complete GCN/AGNN forward passes
//!   server-side (`REQ_GNN_INFER`), bit-identical to the offline fs-gnn
//!   pass at per-request FP16/TF32/FP32 precision, with an LRU
//!   per-layer embedding cache keyed by feature fingerprint.
//! - [`protocol`]/[`server`]/[`client`] — a length-prefixed binary TCP
//!   protocol (std::net only) plus a blocking client.
//! - [`loadgen`] — open/closed-loop traffic generation with a JSON
//!   latency/throughput report, plus a `--chaos` soak mode that verifies
//!   every response against the scalar reference while a fault plan is
//!   active (errors are allowed; silent corruption is not).
//! - [`args`] — the shared typed flag parser both binaries use.
//!
//! Under `fs_chaos`, the engine verifies responses through the
//! `flashsparse::resilient` fallback ladder, trips per-matrix circuit
//! breakers, and survives injected worker kills/stalls and frame
//! corruption — see `DESIGN.md` §8.
//!
//! Two binaries ship with the crate: `fs-serve` (the daemon) and
//! `loadgen` (the measurement driver).
//!
//! # Example
//!
//! Run one request through an in-process engine (no TCP): register a
//! matrix, multiply, and shut down:
//!
//! ```
//! use std::time::Duration;
//! use fs_matrix::gen::random_uniform;
//! use fs_matrix::{CsrMatrix, DenseMatrix};
//! use fs_serve::{EngineConfig, ServeEngine, SpmmOutcome, SpmmRequest};
//!
//! let engine = ServeEngine::start(EngineConfig { workers: 1, ..EngineConfig::default() });
//! let csr = CsrMatrix::from_coo(&random_uniform::<f32>(64, 64, 500, 1));
//! let info = engine.register_matrix("tenant", csr).expect("registered");
//! let b = DenseMatrix::from_fn(64, 8, |r, c| (r + c) as f32);
//! let outcome = engine.spmm_blocking(SpmmRequest {
//!     tenant: "tenant".to_string(),
//!     matrix_id: info.id,
//!     b,
//!     deadline: Some(Duration::from_secs(30)),
//! });
//! let SpmmOutcome::Done(resp) = outcome.expect("accepted") else { panic!("shed") };
//! assert_eq!(resp.out.rows(), 64);
//! engine.shutdown();
//! ```

pub mod args;
pub mod cache;
pub mod client;
pub mod engine;
pub mod fingerprint;
pub mod gnn_infer;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use args::{parse_value, FlagParser};
pub use cache::{CacheStats, CachedFormat, FormatCache};
pub use client::{
    ClientError, ClusterSpmmResult, GnnInferResult, LoadedMatrix, ServeClient, SpmmResult,
    DEFAULT_CONNECT_TIMEOUT, DEFAULT_IO_TIMEOUT,
};
pub use engine::{
    EngineConfig, RegisterError, ServeEngine, SpmmOutcome, SpmmRequest, SpmmResponse, SubmitError,
};
pub use fingerprint::Fingerprint;
pub use gnn_infer::{
    backend_for_precision, GnnConfig, GnnError, GnnInferRequest, GnnInferResponse, GnnModelInfo,
};
pub use loadgen::{percentile, LoadReport, LoadgenConfig, MatrixSpec};
pub use server::{Server, ServerConfig, DEFAULT_MAX_LOAD_DIM};
