//! Content fingerprints for sparse matrices.
//!
//! The format cache is keyed by *what the matrix is*, not by who loaded
//! it: two tenants registering the same graph share one translated entry.
//! The fingerprint therefore hashes the full CSR content — dimensions,
//! structure, and value bits — with FNV-1a over two independent streams
//! (forward and length-salted) to make accidental 64-bit collisions
//! vanishingly unlikely without pulling in a crypto dependency.

use fs_matrix::{CsrMatrix, DenseMatrix};

/// A 128-bit content fingerprint of a CSR matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    hi: u64,
    lo: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new(seed: u64) -> Fnv {
        Fnv(FNV_OFFSET ^ seed)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }
}

impl Fingerprint {
    /// Fingerprint a CSR matrix's content (dimensions, row pointers,
    /// column indices, and the exact f32 value bits).
    pub fn of(csr: &CsrMatrix<f32>) -> Fingerprint {
        let mut a = Fnv::new(0);
        let mut b = Fnv::new(0x9e37_79b9_7f4a_7c15);
        let mut feed = |v: u64| {
            a.write_u64(v);
            b.write_u64(v.rotate_left(17));
        };
        feed(csr.rows() as u64);
        feed(csr.cols() as u64);
        feed(csr.nnz() as u64);
        for &p in csr.row_ptr() {
            feed(p as u64);
        }
        for &c in csr.col_idx() {
            feed(u64::from(c));
        }
        for &v in csr.values() {
            feed(u64::from(v.to_bits()));
        }
        Fingerprint { hi: a.0, lo: b.0 }
    }

    /// Fingerprint a dense matrix's content (dimensions and exact f32
    /// value bits) — the embedding-cache key over request features.
    pub fn of_dense(m: &DenseMatrix<f32>) -> Fingerprint {
        let mut a = Fnv::new(0);
        let mut b = Fnv::new(0x9e37_79b9_7f4a_7c15);
        let mut feed = |v: u64| {
            a.write_u64(v);
            b.write_u64(v.rotate_left(17));
        };
        feed(m.rows() as u64);
        feed(m.cols() as u64);
        for &v in m.as_slice() {
            feed(u64::from(v.to_bits()));
        }
        Fingerprint { hi: a.0, lo: b.0 }
    }

    /// The high 64 bits (stable across runs; used on the wire).
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// The low 64 bits.
    pub fn lo(&self) -> u64 {
        self.lo
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_matrix::gen::random_uniform;
    use fs_matrix::CooMatrix;

    #[test]
    fn identical_content_same_fingerprint() {
        let a = CsrMatrix::from_coo(&random_uniform::<f32>(64, 64, 300, 7));
        let b = CsrMatrix::from_coo(&random_uniform::<f32>(64, 64, 300, 7));
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn different_content_different_fingerprint() {
        let a = CsrMatrix::from_coo(&random_uniform::<f32>(64, 64, 300, 7));
        let b = CsrMatrix::from_coo(&random_uniform::<f32>(64, 64, 300, 8));
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn value_bits_matter() {
        let a = CsrMatrix::from_coo(&CooMatrix::from_entries(8, 8, vec![(0, 0, 1.0f32)]));
        let b = CsrMatrix::from_coo(&CooMatrix::from_entries(8, 8, vec![(0, 0, 1.5f32)]));
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn dimensions_matter_even_with_same_entries() {
        let a = CsrMatrix::from_coo(&CooMatrix::from_entries(8, 8, vec![(0, 0, 1.0f32)]));
        let b = CsrMatrix::from_coo(&CooMatrix::from_entries(16, 8, vec![(0, 0, 1.0f32)]));
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn dense_fingerprint_sees_values_and_shape() {
        let a = DenseMatrix::<f32>::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let b = DenseMatrix::<f32>::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(Fingerprint::of_dense(&a), Fingerprint::of_dense(&b));
        let shifted = DenseMatrix::<f32>::from_fn(4, 4, |r, c| (r * 4 + c) as f32 + 0.5);
        assert_ne!(Fingerprint::of_dense(&a), Fingerprint::of_dense(&shifted));
        let reshaped = DenseMatrix::<f32>::from_fn(2, 8, |r, c| (r * 8 + c) as f32);
        assert_ne!(Fingerprint::of_dense(&a), Fingerprint::of_dense(&reshaped));
    }

    #[test]
    fn display_is_32_hex_chars() {
        let a = CsrMatrix::from_coo(&random_uniform::<f32>(16, 16, 40, 1));
        let s = Fingerprint::of(&a).to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
