//! The `fs-serve` daemon: a batched SpMM serving engine on a TCP socket.
//!
//! ```text
//! fs-serve [--addr 127.0.0.1:7949] [--workers 4] [--cache-mb 256]
//!          [--queue-cap 256] [--max-batch 16] [--deadline-ms 5000]
//!          [--max-dim N] [--max-matrices N] [--max-matrix-mb MB]
//!          [--gpu 4090|h100] [--cold] [--no-pipeline] [--verify]
//!          [--chaos PLAN] [--trace] [--trace-out FILE]
//! ```
//!
//! `--cold` disables the translated-format cache (budget 0) so every
//! request pays translation + tuning — the baseline the load generator
//! compares warm serving against.
//!
//! `--no-pipeline` disables the overlapped cold path: cache misses pay
//! the full auto-tune + translate latency up front (the pre-pipeline
//! behavior), instead of answering immediately from the FALLBACK
//! variant while the translation streams in slab by slab.
//!
//! `--verify` checks every response against the scalar reference and
//! walks the fallback ladder on mismatch. `--chaos PLAN` installs a
//! deterministic fault plan (e.g. `seed=7;frag-bit=0.001`) and forces
//! `--verify` on — injected faults must heal, never corrupt. The final
//! fault report prints on clean exit so a soak can be replayed and
//! compared from the seed string alone.
//!
//! `--trace` arms the fs-trace span recorder for the lifetime of the
//! process: clients can fetch live exports over the `Trace` request,
//! and on clean shutdown the Prometheus text dump prints to stdout.
//! `--trace-out FILE` additionally writes the chrome://tracing JSON
//! timeline there on exit.

use std::time::Duration;

use fs_serve::{FlagParser, Server, ServerConfig};
use fs_tcu::GpuSpec;

fn usage() -> ! {
    eprintln!(
        "usage: fs-serve [--addr HOST:PORT] [--workers N] [--cache-mb MB] [--queue-cap N]\n\
         \x20               [--max-batch N] [--deadline-ms MS] [--max-dim N] [--max-matrices N]\n\
         \x20               [--max-matrix-mb MB] [--gpu 4090|h100] [--cold] [--no-pipeline]\n\
         \x20               [--verify] [--chaos PLAN] [--trace] [--trace-out FILE]"
    );
    std::process::exit(2);
}

struct TraceFlags {
    armed: bool,
    out: Option<String>,
}

fn apply_flag(
    flag: &str,
    p: &mut FlagParser,
    cfg: &mut ServerConfig,
    chaos: &mut Option<fs_chaos::FaultPlan>,
    trace: &mut TraceFlags,
) -> Result<(), String> {
    match flag {
        "--addr" => cfg.addr = p.value(flag)?,
        "--workers" => cfg.engine.workers = p.typed(flag)?,
        "--cache-mb" => cfg.engine.cache_budget_bytes = p.typed::<usize>(flag)? * (1 << 20),
        "--queue-cap" => cfg.engine.queue_capacity = p.typed(flag)?,
        "--max-batch" => cfg.engine.max_batch = p.typed(flag)?,
        "--deadline-ms" => {
            cfg.engine.default_deadline = Duration::from_millis(p.typed::<u64>(flag)?);
        }
        "--max-dim" => cfg.max_load_dim = p.typed(flag)?,
        "--max-matrices" => cfg.engine.max_matrices = p.typed(flag)?,
        "--max-matrix-mb" => cfg.engine.max_matrix_bytes = p.typed::<usize>(flag)? * (1 << 20),
        "--gpu" => match p.value(flag)?.as_str() {
            "4090" => cfg.engine.gpu = GpuSpec::RTX4090,
            "h100" => cfg.engine.gpu = GpuSpec::H100_PCIE,
            other => return Err(format!("invalid value {other:?} for --gpu (4090|h100)")),
        },
        "--cold" => cfg.engine.cold = true,
        "--no-pipeline" => cfg.engine.pipeline = false,
        "--verify" => cfg.engine.verify = true,
        "--chaos" => *chaos = Some(p.typed(flag)?),
        "--trace" => trace.armed = true,
        "--trace-out" => {
            trace.armed = true;
            trace.out = Some(p.value(flag)?);
        }
        other => return Err(format!("unknown flag {other}")),
    }
    Ok(())
}

fn main() {
    let mut p = FlagParser::from_env();
    let mut cfg = ServerConfig { addr: "127.0.0.1:7949".to_string(), ..ServerConfig::default() };
    let mut chaos: Option<fs_chaos::FaultPlan> = None;
    let mut trace = TraceFlags { armed: false, out: None };

    while let Some(flag) = p.next_flag() {
        if matches!(flag.as_str(), "--help" | "-h") {
            usage();
        }
        if let Err(msg) = apply_flag(&flag, &mut p, &mut cfg, &mut chaos, &mut trace) {
            eprintln!("fs-serve: {msg}");
            usage();
        }
    }

    if trace.armed {
        fs_trace::set_armed(true);
        println!("fs-serve tracing: armed");
    }

    if let Some(plan) = &chaos {
        // Injected faults must degrade service, never corrupt it: chaos
        // forces response verification on.
        cfg.engine.verify = true;
        fs_chaos::install(plan.clone());
        println!("fs-serve chaos plan: {plan}");
    }

    let server = match Server::bind(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fs-serve: failed to bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    println!(
        "fs-serve listening on {} (workers={}, cache={}B{}, queue={}, max_batch={}{})",
        server.local_addr(),
        cfg.engine.workers,
        cfg.engine.cache_budget_bytes,
        if cfg.engine.cold { ", COLD" } else { "" },
        cfg.engine.queue_capacity,
        cfg.engine.max_batch,
        if cfg.engine.verify { ", VERIFY" } else { "" },
    );
    if let Err(e) = server.run() {
        eprintln!("fs-serve: accept loop failed: {e}");
        std::process::exit(1);
    }
    if chaos.is_some() {
        println!("fs-serve chaos faults: {}", fs_chaos::report().to_json());
    }
    if trace.armed {
        let snap = fs_trace::snapshot();
        print!("{}", fs_trace::export::prometheus_text(&snap));
        if let Some(path) = &trace.out {
            let chrome = fs_trace::export::chrome_trace(&snap);
            match std::fs::write(path, chrome) {
                Ok(()) => println!("fs-serve trace timeline: {path}"),
                Err(e) => {
                    eprintln!("fs-serve: failed to write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    println!("fs-serve: drained and stopped");
}
