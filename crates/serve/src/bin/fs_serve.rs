//! The `fs-serve` daemon: a batched SpMM serving engine on a TCP socket.
//!
//! ```text
//! fs-serve [--addr 127.0.0.1:7949] [--workers 4] [--cache-mb 256]
//!          [--queue-cap 256] [--max-batch 16] [--deadline-ms 5000]
//!          [--max-dim N] [--max-matrices N] [--max-matrix-mb MB]
//!          [--gpu 4090|h100] [--cold]
//! ```
//!
//! `--cold` disables the translated-format cache (budget 0) so every
//! request pays translation + tuning — the baseline the load generator
//! compares warm serving against.

use std::time::Duration;

use fs_serve::{Server, ServerConfig};
use fs_tcu::GpuSpec;

fn usage() -> ! {
    eprintln!(
        "usage: fs-serve [--addr HOST:PORT] [--workers N] [--cache-mb MB] [--queue-cap N]\n\
         \x20               [--max-batch N] [--deadline-ms MS] [--max-dim N] [--max-matrices N]\n\
         \x20               [--max-matrix-mb MB] [--gpu 4090|h100] [--cold]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServerConfig { addr: "127.0.0.1:7949".to_string(), ..ServerConfig::default() };

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = it.next().unwrap_or_else(|| usage()).clone(),
            "--workers" => {
                cfg.engine.workers =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--cache-mb" => {
                let mb: usize = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                cfg.engine.cache_budget_bytes = mb * (1 << 20);
            }
            "--queue-cap" => {
                cfg.engine.queue_capacity =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--max-batch" => {
                cfg.engine.max_batch =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--deadline-ms" => {
                let ms: u64 = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                cfg.engine.default_deadline = Duration::from_millis(ms);
            }
            "--max-dim" => {
                cfg.max_load_dim = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--max-matrices" => {
                cfg.engine.max_matrices =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--max-matrix-mb" => {
                let mb: usize = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                cfg.engine.max_matrix_bytes = mb * (1 << 20);
            }
            "--gpu" => match it.next().unwrap_or_else(|| usage()).as_str() {
                "4090" => cfg.engine.gpu = GpuSpec::RTX4090,
                "h100" => cfg.engine.gpu = GpuSpec::H100_PCIE,
                _ => usage(),
            },
            "--cold" => cfg.engine.cold = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let server = match Server::bind(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fs-serve: failed to bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    println!(
        "fs-serve listening on {} (workers={}, cache={}B{}, queue={}, max_batch={})",
        server.local_addr(),
        cfg.engine.workers,
        cfg.engine.cache_budget_bytes,
        if cfg.engine.cold { ", COLD" } else { "" },
        cfg.engine.queue_capacity,
        cfg.engine.max_batch
    );
    if let Err(e) = server.run() {
        eprintln!("fs-serve: accept loop failed: {e}");
        std::process::exit(1);
    }
    println!("fs-serve: drained and stopped");
}
