//! Load generator for `fs-serve`.
//!
//! ```text
//! loadgen [--addr 127.0.0.1:7949] [--matrix uniform:512x512x8192 | rmat:10x8]
//!         [--n 32] [--requests 200] [--concurrency 4] [--tenants 1]
//!         [--open-rps RPS] [--duration-s S] [--deadline-ms MS]
//!         [--wait-ready-ms MS] [--shutdown] [--expect-zero-errors]
//! ```
//!
//! Prints one JSON object with throughput (RPS), latency percentiles
//! (p50/p95/p99), and the cache hit rate. `--shutdown` asks the server
//! to drain and exit afterwards; `--expect-zero-errors` makes the
//! process exit nonzero if any request was rejected, shed, or failed —
//! the CI smoke-test contract.

use std::net::SocketAddr;
use std::time::Duration;

use fs_serve::loadgen::{run, LoadgenConfig, MatrixSpec};
use fs_serve::ServeClient;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--matrix uniform:RxCxNNZ|rmat:SCALExEF] [--n N]\n\
         \x20              [--requests N] [--concurrency N] [--tenants N] [--open-rps RPS]\n\
         \x20              [--duration-s S] [--deadline-ms MS] [--wait-ready-ms MS]\n\
         \x20              [--shutdown] [--expect-zero-errors]"
    );
    std::process::exit(2);
}

fn parse_matrix(spec: &str) -> Option<MatrixSpec> {
    let (kind, rest) = spec.split_once(':')?;
    match kind {
        "uniform" => {
            let parts: Vec<usize> = rest.split('x').filter_map(|t| t.parse().ok()).collect();
            if parts.len() != 3 {
                return None;
            }
            Some(MatrixSpec::Uniform { rows: parts[0], cols: parts[1], nnz: parts[2] })
        }
        "rmat" => {
            let (scale, ef) = rest.split_once('x')?;
            Some(MatrixSpec::Rmat { scale: scale.parse().ok()?, edge_factor: ef.parse().ok()? })
        }
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = LoadgenConfig::default();
    let mut shutdown_after = false;
    let mut expect_zero_errors = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                let text = it.next().unwrap_or_else(|| usage());
                cfg.addr = match text.parse::<SocketAddr>() {
                    Ok(a) => a,
                    Err(_) => {
                        eprintln!("loadgen: bad address {text}");
                        std::process::exit(2);
                    }
                };
            }
            "--matrix" => {
                let spec = it.next().unwrap_or_else(|| usage());
                cfg.matrix = parse_matrix(spec).unwrap_or_else(|| usage());
            }
            "--n" => cfg.n = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--requests" => {
                cfg.requests = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--concurrency" => {
                cfg.concurrency = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--tenants" => {
                cfg.tenants = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--open-rps" => {
                cfg.open_rps =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--duration-s" => {
                let s: u64 = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                cfg.duration = Duration::from_secs(s);
            }
            "--deadline-ms" => {
                cfg.deadline_ms = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--wait-ready-ms" => {
                let ms: u64 = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                cfg.ready_timeout = Duration::from_millis(ms);
            }
            "--shutdown" => shutdown_after = true,
            "--expect-zero-errors" => expect_zero_errors = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let report = match run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", report.to_json());

    if shutdown_after {
        match ServeClient::connect_with_retry(&cfg.addr, Duration::from_secs(2))
            .and_then(|mut c| c.shutdown())
        {
            Ok(()) => eprintln!("loadgen: server acknowledged shutdown"),
            Err(e) => {
                eprintln!("loadgen: shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if expect_zero_errors
        && (report.errors > 0
            || report.rejected > 0
            || report.timed_out > 0
            || report.completed == 0)
    {
        eprintln!(
            "loadgen: expected zero errors but saw completed={} rejected={} timed_out={} errors={}",
            report.completed, report.rejected, report.timed_out, report.errors
        );
        std::process::exit(1);
    }
}
