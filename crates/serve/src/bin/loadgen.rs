//! Load generator for `fs-serve`.
//!
//! ```text
//! loadgen [--addr 127.0.0.1:7949] [--matrix uniform:512x512x8192 | rmat:10x8]
//!         [--n 32] [--requests 200] [--concurrency 4] [--tenants 1]
//!         [--open-rps RPS] [--duration-s S] [--deadline-ms MS]
//!         [--wait-ready-ms MS] [--shutdown] [--expect-zero-errors] [--chaos]
//!         [--cluster] [--trace] [--trace-out FILE]
//! ```
//!
//! `--cluster` drives an `fs-cluster` router instead of a plain server:
//! requests go through the scatter-gather SpMM op, and the report gains
//! `degraded` / `shard_failures`, a per-second `degraded_timeline`
//! (nonzero while a slab is lost, back to zero once the heal loop
//! re-replicates it), and an echo of the router's `heal` metrics
//! section (`heal_ticks`, `heal_repairs_completed`,
//! `heal_shard_states`, ...). Combined with `--chaos`, verification
//! is degradation-aware — present rows must match the reference, absent
//! rows must be zero-filled — so losing a shard is tolerated but
//! corrupting a row is not.
//!
//! Prints one JSON object with throughput (RPS), latency percentiles
//! (p50/p95/p99), and the cache hit rate. `--shutdown` asks the server
//! to drain and exit afterwards; `--expect-zero-errors` makes the
//! process exit nonzero if any request was rejected, shed, or failed —
//! the CI smoke-test contract.
//!
//! `--chaos` is the soak contract for a server running under a fault
//! plan: requests retry transient failures with jittered backoff and
//! every completed response is checked against the scalar reference.
//! Errors are tolerated (faults are the point); the process exits
//! nonzero iff any response was silently *wrong* (`wrong > 0`) or
//! nothing completed at all.
//!
//! `--gnn` switches the workload to end-to-end GNN inference: a small
//! GCN is trained client-side on a planted-community graph, the
//! normalized adjacency and trained weights are registered, and every
//! request runs a full server-side forward pass (`REQ_GNN_INFER`) whose
//! logits must be **bit-identical** to the offline fs-gnn pass — any
//! deviation counts as `wrong`, which `--expect-zero-errors` and
//! `--chaos` both refuse. `--gnn-precision 0|1|2` picks FP32/TF32/FP16
//! per run (the Table 8 columns); `--gnn-variants N` cycles N distinct
//! feature matrices so the run exercises both embedding-cache hits and
//! misses. The report gains `gnn_accuracy`, `gnn_layers`, and per-layer
//! `gnn_layer_p50_us`/`gnn_layer_p95_us` latency arrays.
//!
//! `--trace` fetches the server's trace exports after the run and
//! prints the Prometheus text (per-site span quantiles and counters)
//! after the report JSON; `--trace-out FILE` also writes the server's
//! chrome://tracing timeline there — open it at `chrome://tracing` or
//! <https://ui.perfetto.dev>. Both require a server started with
//! `--trace`; against a disarmed server the exports are empty.

use std::net::SocketAddr;
use std::time::Duration;

use fs_serve::loadgen::{run, GnnSpec, LoadgenConfig, MatrixSpec};
use fs_serve::{parse_value, FlagParser, ServeClient};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--matrix uniform:RxCxNNZ|rmat:SCALExEF] [--n N]\n\
         \x20              [--requests N] [--concurrency N] [--tenants N] [--open-rps RPS]\n\
         \x20              [--duration-s S] [--deadline-ms MS] [--wait-ready-ms MS]\n\
         \x20              [--shutdown] [--expect-zero-errors] [--chaos] [--cluster]\n\
         \x20              [--gnn] [--gnn-precision 0|1|2] [--gnn-nodes N] [--gnn-hidden N]\n\
         \x20              [--gnn-train-epochs N] [--gnn-variants N]\n\
         \x20              [--trace] [--trace-out FILE]"
    );
    std::process::exit(2);
}

fn parse_matrix(spec: &str) -> Option<MatrixSpec> {
    let (kind, rest) = spec.split_once(':')?;
    match kind {
        "uniform" => {
            let parts: Vec<usize> = rest.split('x').filter_map(|t| t.parse().ok()).collect();
            if parts.len() != 3 {
                return None;
            }
            Some(MatrixSpec::Uniform { rows: parts[0], cols: parts[1], nnz: parts[2] })
        }
        "rmat" => {
            let (scale, ef) = rest.split_once('x')?;
            Some(MatrixSpec::Rmat { scale: scale.parse().ok()?, edge_factor: ef.parse().ok()? })
        }
        _ => None,
    }
}

struct Flags {
    cfg: LoadgenConfig,
    shutdown_after: bool,
    expect_zero_errors: bool,
    trace: bool,
    trace_out: Option<String>,
}

fn apply_flag(flag: &str, p: &mut FlagParser, flags: &mut Flags) -> Result<(), String> {
    match flag {
        "--addr" => {
            flags.cfg.addr = parse_value::<SocketAddr>(flag, &p.value(flag)?)?;
        }
        "--matrix" => {
            let spec = p.value(flag)?;
            flags.cfg.matrix = parse_matrix(&spec)
                .ok_or_else(|| format!("invalid value {spec:?} for --matrix"))?;
        }
        "--n" => flags.cfg.n = p.typed(flag)?,
        "--requests" => flags.cfg.requests = p.typed(flag)?,
        "--concurrency" => flags.cfg.concurrency = p.typed(flag)?,
        "--tenants" => flags.cfg.tenants = p.typed(flag)?,
        "--open-rps" => flags.cfg.open_rps = Some(p.typed(flag)?),
        "--duration-s" => flags.cfg.duration = Duration::from_secs(p.typed::<u64>(flag)?),
        "--deadline-ms" => flags.cfg.deadline_ms = p.typed(flag)?,
        "--wait-ready-ms" => {
            flags.cfg.ready_timeout = Duration::from_millis(p.typed::<u64>(flag)?);
        }
        "--shutdown" => flags.shutdown_after = true,
        "--expect-zero-errors" => flags.expect_zero_errors = true,
        "--chaos" => flags.cfg.chaos = true,
        "--cluster" => flags.cfg.cluster = true,
        "--gnn" => {
            flags.cfg.gnn.get_or_insert_with(GnnSpec::default);
        }
        "--gnn-precision" => {
            let precision = p.typed::<u8>(flag)?;
            if precision > 2 {
                return Err(format!("invalid --gnn-precision {precision} (0=FP32 1=TF32 2=FP16)"));
            }
            flags.cfg.gnn.get_or_insert_with(GnnSpec::default).precision = precision;
        }
        "--gnn-nodes" => {
            flags.cfg.gnn.get_or_insert_with(GnnSpec::default).nodes = p.typed(flag)?;
        }
        "--gnn-hidden" => {
            flags.cfg.gnn.get_or_insert_with(GnnSpec::default).hidden = p.typed(flag)?;
        }
        "--gnn-train-epochs" => {
            flags.cfg.gnn.get_or_insert_with(GnnSpec::default).train_epochs = p.typed(flag)?;
        }
        "--gnn-variants" => {
            let variants = p.typed::<usize>(flag)?;
            if variants == 0 {
                return Err("--gnn-variants must be at least 1".to_string());
            }
            flags.cfg.gnn.get_or_insert_with(GnnSpec::default).variants = variants;
        }
        "--trace" => flags.trace = true,
        "--trace-out" => {
            flags.trace = true;
            flags.trace_out = Some(p.value(flag)?);
        }
        other => return Err(format!("unknown flag {other}")),
    }
    Ok(())
}

fn main() {
    let mut p = FlagParser::from_env();
    let mut flags = Flags {
        cfg: LoadgenConfig::default(),
        shutdown_after: false,
        expect_zero_errors: false,
        trace: false,
        trace_out: None,
    };

    while let Some(flag) = p.next_flag() {
        if matches!(flag.as_str(), "--help" | "-h") {
            usage();
        }
        if let Err(msg) = apply_flag(&flag, &mut p, &mut flags) {
            eprintln!("loadgen: {msg}");
            usage();
        }
    }
    let Flags { cfg, shutdown_after, expect_zero_errors, trace, trace_out } = flags;

    let report = match run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", report.to_json());

    // Fetch the trace exports before any shutdown request: the span
    // data lives in the server process.
    if trace {
        match ServeClient::connect_with_retry(&cfg.addr, Duration::from_secs(2))
            .and_then(|mut c| c.trace())
        {
            Ok((prometheus, chrome)) => {
                print!("{prometheus}");
                if let Some(path) = &trace_out {
                    match std::fs::write(path, &chrome) {
                        Ok(()) => eprintln!("loadgen: wrote trace timeline to {path}"),
                        Err(e) => {
                            eprintln!("loadgen: failed to write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("loadgen: trace fetch failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if shutdown_after {
        match ServeClient::connect_with_retry(&cfg.addr, Duration::from_secs(2))
            .and_then(|mut c| c.shutdown())
        {
            Ok(()) => eprintln!("loadgen: server acknowledged shutdown"),
            Err(e) => {
                eprintln!("loadgen: shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if expect_zero_errors
        && (report.errors > 0
            || report.rejected > 0
            || report.timed_out > 0
            || report.wrong > 0
            || report.completed == 0)
    {
        eprintln!(
            "loadgen: expected zero errors but saw completed={} rejected={} timed_out={} \
             errors={} wrong={}",
            report.completed, report.rejected, report.timed_out, report.errors, report.wrong
        );
        std::process::exit(1);
    }

    // The chaos soak contract: errors are fine, silent corruption is not.
    if cfg.chaos && (report.wrong > 0 || report.completed == 0) {
        eprintln!(
            "loadgen: chaos soak failed: completed={} wrong={} (must be zero)",
            report.completed, report.wrong
        );
        std::process::exit(1);
    }
}
