//! Cold-request latency: classic cold path (auto-tune + translate on
//! the critical path) vs the pipelined cold path (overlapped FALLBACK
//! execution, tuning deferred to the background).
//!
//! ```text
//! pipeline_bench [--out BENCH_pipeline.json] [--requests N] [--rows N] [--n N]
//! ```
//!
//! Both engines run in-process (no TCP), single worker, with the format
//! cache disabled (`cold`) so *every* request pays its configuration's
//! full cold cost — the measurement isolates exactly the latency the
//! overlapped engine removes from the miss path. The JSON report carries
//! `cold_speedup_p95`, the number ci.sh gates at ≥ 1.5×.

use std::time::Instant;

use fs_matrix::gen::{rmat, RmatConfig};
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_serve::{EngineConfig, FlagParser, ServeEngine, SpmmOutcome, SpmmRequest};

const WARMUP: usize = 3;

fn usage() -> ! {
    eprintln!("usage: pipeline_bench [--out FILE] [--requests N] [--rows N] [--n N]");
    std::process::exit(2);
}

/// Drive `count` timed requests through a fresh cold engine; returns
/// per-request latencies in microseconds.
fn cold_latencies(pipeline: bool, csr: &CsrMatrix<f32>, n: usize, count: usize) -> Vec<u64> {
    let engine = ServeEngine::start(EngineConfig {
        workers: 1,
        cold: true,
        pipeline,
        ..EngineConfig::default()
    });
    let info = engine.register_matrix("bench", csr.clone()).expect("registered"); // lint: allow-panic - bench setup; a failed registration is fatal
    let b = DenseMatrix::from_f32_slice(
        csr.cols(),
        n,
        &(0..csr.cols() * n).map(|i| ((i % 11) as f32 - 5.0) * 0.125).collect::<Vec<f32>>(),
    );
    let request = || {
        let t0 = Instant::now();
        let outcome = engine.spmm_blocking(SpmmRequest {
            tenant: "bench".to_string(),
            matrix_id: info.id,
            b: b.clone(),
            deadline: None,
        });
        assert!(matches!(outcome, Ok(SpmmOutcome::Done(_))), "{outcome:?}");
        t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    };
    for _ in 0..WARMUP {
        request();
    }
    let mut out: Vec<u64> = (0..count).map(|_| request()).collect();
    engine.shutdown();
    out.sort_unstable();
    out
}

fn main() {
    let mut p = FlagParser::from_env();
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut requests = 25usize;
    let mut rows = 2048usize;
    let mut n = 32usize;
    while let Some(flag) = p.next_flag() {
        let r = match flag.as_str() {
            "--help" | "-h" => usage(),
            "--out" => p.value(&flag).map(|v| out_path = v),
            "--requests" => p.typed(&flag).map(|v| requests = v),
            "--rows" => p.typed(&flag).map(|v| rows = v),
            "--n" => p.typed(&flag).map(|v| n = v),
            other => {
                eprintln!("pipeline_bench: unknown flag {other}");
                usage();
            }
        };
        if let Err(msg) = r {
            eprintln!("pipeline_bench: {msg}");
            usage();
        }
    }
    let requests = requests.max(1);

    // A power-law graph spanning many row windows, so the overlapped
    // engine streams multiple slabs (SLAB_WINDOWS x 8 rows each).
    let scale = rows.next_power_of_two().trailing_zeros();
    let csr = CsrMatrix::from_coo(&rmat::<f32>(scale, 8, RmatConfig::GRAPH500, true, 42));
    println!(
        "pipeline_bench: {}x{} nnz={} n={} requests={} (+{WARMUP} warmup) per engine",
        csr.rows(),
        csr.cols(),
        csr.nnz(),
        n,
        requests
    );

    let seq = cold_latencies(false, &csr, n, requests);
    let pipe = cold_latencies(true, &csr, n, requests);
    let (seq_p50, seq_p95) = (fs_serve::percentile(&seq, 50.0), fs_serve::percentile(&seq, 95.0));
    let (pipe_p50, pipe_p95) =
        (fs_serve::percentile(&pipe, 50.0), fs_serve::percentile(&pipe, 95.0));
    let speedup = |a: u64, b: u64| a as f64 / b.max(1) as f64;

    let mut w = fs_trace::export::JsonWriter::new();
    w.begin_object();
    w.field_u64("rows", csr.rows() as u64);
    w.field_u64("cols", csr.cols() as u64);
    w.field_u64("nnz", csr.nnz() as u64);
    w.field_u64("n", n as u64);
    w.field_u64("requests", requests as u64);
    w.field_u64("cold_seq_p50_us", seq_p50);
    w.field_u64("cold_seq_p95_us", seq_p95);
    w.field_u64("cold_pipeline_p50_us", pipe_p50);
    w.field_u64("cold_pipeline_p95_us", pipe_p95);
    w.field_f64("cold_speedup_p50", speedup(seq_p50, pipe_p50));
    w.field_f64("cold_speedup_p95", speedup(seq_p95, pipe_p95));
    w.end_object();
    let json = w.finish();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("pipeline_bench: failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!(
        "pipeline_bench: cold p95 {seq_p95}us -> {pipe_p95}us ({:.2}x), p50 {seq_p50}us -> {pipe_p50}us ({:.2}x)",
        speedup(seq_p95, pipe_p95),
        speedup(seq_p50, pipe_p50),
    );
    println!("pipeline_bench: wrote {out_path}");
}
