//! Traffic generation against a running `fs-serve`: open- and
//! closed-loop drivers with a JSON latency/throughput report.
//!
//! Closed loop: `concurrency` workers each keep one request in flight —
//! throughput is what the server sustains. Open loop: requests are fired
//! on a fixed-rate schedule regardless of completions — latency includes
//! the queueing a server under offered load actually builds up (the
//! coordinated-omission-free number).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use flashsparse::{FallbackLevel, DEFAULT_TOLERANCE};
use fs_chaos::Backoff;
use fs_gnn::nn::{accuracy, cross_entropy};
use fs_gnn::{normalize_adjacency, GcnModel, SparseOps};
use fs_matrix::gen::{random_uniform, rmat, sbm, RmatConfig, SbmConfig};
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_tcu::GpuSpec;

use crate::client::{ClientError, ClusterSpmmResult, GnnInferResult, ServeClient};
use crate::gnn_infer::backend_for_precision;

/// Attempts per request in chaos mode (first try + retries).
const CHAOS_ATTEMPTS: u32 = 6;

/// Which synthetic matrix the generator loads.
#[derive(Clone, Copy, Debug)]
pub enum MatrixSpec {
    /// Power-law graph: `2^scale` nodes, `edge_factor` edges per node.
    Rmat {
        /// log2 of the node count.
        scale: u32,
        /// Edges per node.
        edge_factor: usize,
    },
    /// Uniform random: `rows × cols` with `nnz` nonzeros.
    Uniform {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
        /// Nonzeros.
        nnz: usize,
    },
}

impl MatrixSpec {
    /// Materialize the matrix (deterministic seed, so every worker and
    /// every run loads identical content — one cache entry server-side).
    pub fn build(&self) -> CsrMatrix<f32> {
        match *self {
            MatrixSpec::Rmat { scale, edge_factor } => CsrMatrix::from_coo(&rmat::<f32>(
                scale,
                edge_factor,
                RmatConfig::GRAPH500,
                true,
                42,
            )),
            MatrixSpec::Uniform { rows, cols, nnz } => {
                CsrMatrix::from_coo(&random_uniform::<f32>(rows, cols, nnz, 42))
            }
        }
    }
}

/// Load-generator settings.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Worker connections.
    pub concurrency: usize,
    /// Distinct tenants to spread workers across.
    pub tenants: usize,
    /// Total requests (closed loop) or upper bound (open loop).
    pub requests: usize,
    /// Open-loop offered rate; `None` = closed loop.
    pub open_rps: Option<f64>,
    /// Open-loop duration.
    pub duration: Duration,
    /// Dense-operand columns.
    pub n: usize,
    /// The matrix to serve against.
    pub matrix: MatrixSpec,
    /// Per-request deadline in ms (0 = server default).
    pub deadline_ms: u32,
    /// How long to retry the initial connection.
    pub ready_timeout: Duration,
    /// Chaos soak mode: retry transient failures with jittered backoff
    /// and verify every completed response against the scalar reference
    /// computed client-side. Errors are tolerated (they are the point);
    /// a response whose numbers are wrong is counted in
    /// [`LoadReport::wrong`] — the one number that must stay zero.
    pub chaos: bool,
    /// Drive an `fs-cluster` router instead of a plain server: requests
    /// go through the scatter-gather op, and chaos verification checks
    /// degraded responses row-wise — present rows against the reference,
    /// absent rows all-zero as the bitmap promises.
    pub cluster: bool,
    /// GNN inference mode: train a small GCN client-side, register the
    /// graph and weights, then drive `REQ_GNN_INFER` instead of SpMM.
    /// Every response is bit-compared against the offline fs-gnn forward
    /// pass; a mismatch counts in [`LoadReport::wrong`].
    pub gnn: Option<GnnSpec>,
}

/// Settings of the `--gnn` workload.
#[derive(Clone, Copy, Debug)]
pub struct GnnSpec {
    /// Nodes of the planted-community (SBM) graph.
    pub nodes: usize,
    /// Input feature dimension.
    pub feature_dim: usize,
    /// GCN hidden dimension.
    pub hidden: usize,
    /// Client-side training epochs before the weights are registered.
    pub train_epochs: usize,
    /// Wire precision for every request: 0 = FP32, 1 = TF32, 2 = FP16.
    pub precision: u8,
    /// Distinct feature matrices cycled across requests — repeats hit
    /// the server's embedding cache, fresh ones miss.
    pub variants: usize,
}

impl Default for GnnSpec {
    fn default() -> GnnSpec {
        GnnSpec {
            nodes: 256,
            feature_dim: 32,
            hidden: 32,
            train_epochs: 30,
            precision: 2,
            variants: 4,
        }
    }
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 7949)),
            concurrency: 4,
            tenants: 1,
            requests: 200,
            open_rps: None,
            duration: Duration::from_secs(5),
            n: 32,
            matrix: MatrixSpec::Uniform { rows: 512, cols: 512, nnz: 8192 },
            deadline_ms: 0,
            ready_timeout: Duration::from_secs(10),
            chaos: false,
            cluster: false,
            gnn: None,
        }
    }
}

/// Aggregated results of one run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// `"closed"` or `"open"`.
    pub mode: String,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Requests shed on deadline.
    pub timed_out: u64,
    /// Transport/internal failures.
    pub errors: u64,
    /// Responses served from the format cache.
    pub cache_hits: u64,
    /// Wall-clock of the measurement window, milliseconds.
    pub duration_ms: u64,
    /// Completed requests per second.
    pub rps: f64,
    /// Latency percentiles over completed requests, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency.
    pub p95_us: u64,
    /// 99th percentile latency.
    pub p99_us: u64,
    /// Mean latency.
    pub mean_us: u64,
    /// Completed requests NOT served from the format cache — each paid
    /// the cold path (translate + tune, or the pipelined overlap).
    pub cold_requests: u64,
    /// 99th percentile latency over cold requests only. The headline
    /// percentiles mix the one-per-matrix cold requests into the warm
    /// steady state, where they vanish at p50/p95 on long runs; this
    /// field is the number the pipelined cold path is gated on.
    pub cold_p99_us: u64,
    /// Largest micro-batch any response reported.
    pub max_batch: u64,
    /// Chaos mode: completed responses whose numbers did not match the
    /// client-side scalar reference — silent corruption. Must be zero.
    pub wrong: u64,
    /// Chaos mode: retry attempts spent recovering transient failures.
    pub retried: u64,
    /// Chaos mode: responses served from a fallback rung (not tuned).
    pub fallbacks: u64,
    /// Server-side launches executed on the fast path (from the
    /// engine's cumulative metrics, fetched at the end of the run).
    pub fast_launches: u64,
    /// Server-side launches executed on the full simulator.
    pub simulate_launches: u64,
    /// Fast launches that skipped the per-launch format validation
    /// because the cached format carries the translation-time witness.
    pub validate_skips: u64,
    /// Cluster mode: completed responses that came back degraded (a row
    /// slab lost past its replica, reported via the present-rows bitmap).
    pub degraded: u64,
    /// Cluster mode: shard attempts (including replica retries) that
    /// failed across all completed responses.
    pub shard_failures: u64,
    /// The server's listen address as its metrics document reports it
    /// (empty when the end-of-run metrics fetch failed).
    pub server_addr: String,
    /// The server's bind-time epoch (ms since the Unix epoch): a run
    /// script comparing this across runs detects server restarts.
    pub server_start_epoch: u64,
    /// Cluster mode: degraded completions bucketed per second of the
    /// run (index = seconds since the run started). A healthy soak is
    /// all zeros; a kill mid-soak shows a nonzero window that returns
    /// to zero once the heal loop re-replicates the lost slabs.
    pub degraded_timeline: Vec<u64>,
    /// Router heal ticks, echoed from the `heal` section of the
    /// router's metrics document (zero against a plain server).
    pub heal_ticks: u64,
    /// Router slab repairs completed, echoed from `heal`.
    pub heal_repairs_completed: u64,
    /// Tick of the most recent repair, echoed from `heal`.
    pub heal_last_repair_epoch: u64,
    /// Shard rejoin reconciliations, echoed from `heal`.
    pub heal_rejoins: u64,
    /// Per-shard detector states (`up`/`suspect`/`down`) in shard-index
    /// order, echoed from `heal` (empty against a plain server).
    pub heal_shard_states: Vec<String>,
    /// GNN mode: wire precision driven (0/1/2); 0 outside GNN mode too,
    /// so read it together with `mode == "gnn"`.
    pub gnn_precision: u8,
    /// GNN mode: model layers (length of the per-layer latency arrays).
    pub gnn_layers: u64,
    /// GNN mode: test-split accuracy of the served logits (argmax over
    /// the offline reference, which the server must match bitwise).
    pub gnn_accuracy: f64,
    /// GNN mode: per-layer p50 server-side microseconds over cache
    /// misses (hits skip the forward pass entirely).
    pub gnn_layer_p50_us: Vec<u64>,
    /// GNN mode: per-layer p95 server-side microseconds over cache misses.
    pub gnn_layer_p95_us: Vec<u64>,
}

impl LoadReport {
    /// Cache hits over completed requests.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.completed as f64
        }
    }

    /// The run report as a single JSON object (built with the shared
    /// [`fs_trace::export::JsonWriter`], so string fields are escaped).
    pub fn to_json(&self) -> String {
        let mut w = fs_trace::export::JsonWriter::new();
        w.begin_object();
        w.field_str("mode", &self.mode);
        w.field_u64("completed", self.completed);
        w.field_u64("rejected", self.rejected);
        w.field_u64("timed_out", self.timed_out);
        w.field_u64("errors", self.errors);
        w.field_u64("cache_hits", self.cache_hits);
        w.field_f64("cache_hit_rate", self.cache_hit_rate());
        w.field_u64("duration_ms", self.duration_ms);
        w.field_f64("rps", self.rps);
        w.field_u64("p50_us", self.p50_us);
        w.field_u64("p95_us", self.p95_us);
        w.field_u64("p99_us", self.p99_us);
        w.field_u64("mean_us", self.mean_us);
        w.field_u64("cold_requests", self.cold_requests);
        w.field_u64("cold_p99_us", self.cold_p99_us);
        w.field_u64("max_batch", self.max_batch);
        w.field_u64("wrong", self.wrong);
        w.field_u64("retried", self.retried);
        w.field_u64("fallbacks", self.fallbacks);
        w.field_u64("fast_launches", self.fast_launches);
        w.field_u64("simulate_launches", self.simulate_launches);
        w.field_u64("validate_skips", self.validate_skips);
        w.field_u64("degraded", self.degraded);
        w.field_u64("shard_failures", self.shard_failures);
        w.field_str("server_addr", &self.server_addr);
        w.field_u64("server_start_epoch", self.server_start_epoch);
        w.key("degraded_timeline").begin_array();
        for &count in &self.degraded_timeline {
            w.value_u64(count);
        }
        w.end_array();
        w.field_u64("heal_ticks", self.heal_ticks);
        w.field_u64("heal_repairs_completed", self.heal_repairs_completed);
        w.field_u64("heal_last_repair_epoch", self.heal_last_repair_epoch);
        w.field_u64("heal_rejoins", self.heal_rejoins);
        w.key("heal_shard_states").begin_array();
        for s in &self.heal_shard_states {
            w.value_str(s);
        }
        w.end_array();
        w.field_u64("gnn_precision", u64::from(self.gnn_precision));
        w.field_u64("gnn_layers", self.gnn_layers);
        w.field_f64("gnn_accuracy", self.gnn_accuracy);
        w.key("gnn_layer_p50_us").begin_array();
        for &us in &self.gnn_layer_p50_us {
            w.value_u64(us);
        }
        w.end_array();
        w.key("gnn_layer_p95_us").begin_array();
        for &us in &self.gnn_layer_p95_us {
            w.value_u64(us);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Pull a `"key":123` integer out of a JSON fragment (first occurrence
/// wins; callers narrow the fragment to the section they mean).
fn extract_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    json.find(&needle)
        .and_then(|i| {
            let rest = &json[i + needle.len()..];
            let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
            rest[..end].parse().ok()
        })
        .unwrap_or(0)
}

/// Pull a `"key":"value"` string out of a JSON fragment (first
/// occurrence; values are assumed escape-free, which holds for the
/// socket addresses this reads).
fn extract_str(json: &str, key: &str) -> String {
    let needle = format!("\"{key}\":\"");
    json.find(&needle)
        .and_then(|i| {
            let rest = &json[i + needle.len()..];
            rest.find('"').map(|end| rest[..end].to_string())
        })
        .unwrap_or_default()
}

/// Every `"key":"value"` occurrence in a JSON fragment, in order — used
/// for the per-shard `state` entries of the router's `heal` section.
fn extract_all_str(json: &str, key: &str) -> Vec<String> {
    let needle = format!("\"{key}\":\"");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find(&needle) {
        rest = &rest[i + needle.len()..];
        let Some(end) = rest.find('"') else { break };
        out.push(rest[..end].to_string());
        rest = &rest[end..];
    }
    out
}

/// Percentile of a sorted latency list (nearest-rank).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct WorkerTally {
    latencies: Vec<u64>,
    rejected: u64,
    timed_out: u64,
    errors: u64,
    cache_hits: u64,
    max_batch: u64,
    wrong: u64,
    retried: u64,
    fallbacks: u64,
    degraded: u64,
    shard_failures: u64,
    /// Second-of-run (floor) of each degraded completion, for the
    /// report's per-second timeline.
    degraded_seconds: Vec<u64>,
    /// Latencies of responses that missed the format cache (plain mode
    /// only; cluster responses do not carry the per-shard hit bit).
    cold_latencies: Vec<u64>,
}

/// Chaos-mode response check: the served numbers against the scalar
/// reference, NaN-hostile (`!(diff <= tol)` rejects NaN).
fn response_matches(out: &[f32], expected: &[f32]) -> bool {
    out.len() == expected.len()
        && out.iter().zip(expected).all(|(&a, &e)| (a - e).abs() <= DEFAULT_TOLERANCE)
}

/// Cluster-mode response check, degradation-aware: rows the bitmap marks
/// present must match the reference; rows it marks absent must be
/// exactly zero (the router's zero-fill contract). A degraded response
/// with correct present rows is NOT wrong — losing a slab is the fault
/// model working, corrupting one is not.
fn cluster_response_matches(resp: &ClusterSpmmResult, expected: &[f32], n: usize) -> bool {
    if resp.out.len() != expected.len() || n == 0 {
        return false;
    }
    (0..resp.rows).all(|r| {
        let (row, exp) = (&resp.out[r * n..(r + 1) * n], &expected[r * n..(r + 1) * n]);
        if resp.row_present(r) {
            row.iter().zip(exp).all(|(&a, &e)| (a - e).abs() <= DEFAULT_TOLERANCE)
        } else {
            row.iter().all(|&v| v == 0.0)
        }
    })
}

/// [`ServeClient::cluster_spmm`] with retry/reconnect over transient
/// failures — the cluster-mode analogue of `spmm_retrying`.
#[allow(clippy::too_many_arguments)]
fn cluster_spmm_retrying(
    client: &mut ServeClient,
    tenant: &str,
    matrix_id: u64,
    b_rows: usize,
    n: usize,
    b: &[f32],
    deadline_ms: u32,
    attempts: u32,
    backoff: &mut Backoff,
) -> Result<ClusterSpmmResult, ClientError> {
    let mut last: Option<ClientError> = None;
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            thread::sleep(backoff.next_delay());
        }
        match client.cluster_spmm(tenant, matrix_id, b_rows, n, b, deadline_ms) {
            Ok(resp) => return Ok(resp),
            Err(e @ (ClientError::Io(_) | ClientError::Proto(_) | ClientError::Unexpected(_))) => {
                let _ = client.reconnect();
                last = Some(e);
            }
            Err(ClientError::Server { code, message })
                if matches!(
                    code,
                    crate::protocol::ErrorCode::Internal | crate::protocol::ErrorCode::QueueFull
                ) =>
            {
                last = Some(ClientError::Server { code, message });
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| ClientError::Unexpected("no attempt was made".into())))
}

/// Register the matrix, retrying through chaos-injected frame faults. A
/// duplicate registration after a corrupted Loaded response is harmless:
/// identical content shares one cache entry server-side.
fn load_with_retry(
    client: &mut ServeClient,
    cfg: &LoadgenConfig,
    tenant: &str,
    csr: &CsrMatrix<f32>,
) -> Result<crate::client::LoadedMatrix, String> {
    let attempts = if cfg.chaos { CHAOS_ATTEMPTS } else { 1 };
    let mut backoff = Backoff::for_client(0x10AD);
    let mut last = "load failed: no attempt made".to_string();
    for attempt in 0..attempts {
        if attempt > 0 {
            thread::sleep(backoff.next_delay());
            let _ = client.reconnect();
        }
        match client.load_matrix(tenant, csr) {
            Ok(loaded) => return Ok(loaded),
            Err(e) => last = format!("load failed: {e}"),
        }
    }
    Err(last)
}

/// Run the configured workload. Returns the report, or an error string
/// when the server cannot be reached at all.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadReport, String> {
    if let Some(spec) = cfg.gnn {
        return run_gnn(cfg, spec);
    }
    let csr = Arc::new(cfg.matrix.build());
    let b: Arc<Vec<f32>> =
        Arc::new((0..csr.cols() * cfg.n).map(|i| ((i % 11) as f32 - 5.0) * 0.125).collect());
    // Chaos mode holds the server to the zero-wrong-responses contract:
    // every request is identical, so one client-side scalar reference
    // checks them all.
    let expected: Option<Arc<Vec<f32>>> = if cfg.chaos {
        let dense = DenseMatrix::<f32>::from_f32_slice(csr.cols(), cfg.n, &b);
        Some(Arc::new(csr.spmm_reference(&dense).as_slice().to_vec()))
    } else {
        None
    };

    // One tenant-side registration per tenant name (identical content →
    // one shared cache entry server-side).
    let mut matrix_ids = Vec::with_capacity(cfg.tenants.max(1));
    {
        let mut probe = ServeClient::connect_with_retry(&cfg.addr, cfg.ready_timeout)
            .map_err(|e| format!("server not reachable: {e}"))?;
        for t in 0..cfg.tenants.max(1) {
            let loaded = load_with_retry(&mut probe, cfg, &format!("t{t}"), &csr)?;
            matrix_ids.push(loaded.matrix_id);
        }
    }

    let issued = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();

    let mut handles = Vec::new();
    for w in 0..cfg.concurrency.max(1) {
        let cfg = cfg.clone();
        let b = Arc::clone(&b);
        let csr = Arc::clone(&csr);
        let issued = Arc::clone(&issued);
        let expected = expected.clone();
        let tenant_idx = w % cfg.tenants.max(1);
        let matrix_id = matrix_ids[tenant_idx];
        handles.push(thread::spawn(move || -> WorkerTally {
            let mut tally = WorkerTally {
                latencies: Vec::new(),
                rejected: 0,
                timed_out: 0,
                errors: 0,
                cache_hits: 0,
                max_batch: 0,
                wrong: 0,
                retried: 0,
                fallbacks: 0,
                degraded: 0,
                shard_failures: 0,
                degraded_seconds: Vec::new(),
                cold_latencies: Vec::new(),
            };
            let mut backoff = Backoff::for_client(w as u64);
            let mut client = match ServeClient::connect_with_retry(&cfg.addr, cfg.ready_timeout) {
                Ok(c) => c,
                Err(_) => {
                    tally.errors += 1;
                    return tally;
                }
            };
            let tenant = format!("t{tenant_idx}");
            loop {
                let slot = issued.fetch_add(1, Ordering::Relaxed);
                if slot >= cfg.requests {
                    break;
                }
                if let Some(rps) = cfg.open_rps {
                    // Open loop: fire at the scheduled instant, not when
                    // the previous response lands.
                    let due = started + Duration::from_secs_f64(slot as f64 / rps);
                    let now = Instant::now();
                    if now < due {
                        thread::sleep(due - now);
                    }
                    if started.elapsed() > cfg.duration {
                        break;
                    }
                }
                let t0 = Instant::now();
                if cfg.cluster {
                    let result = if cfg.chaos {
                        cluster_spmm_retrying(
                            &mut client,
                            &tenant,
                            matrix_id,
                            csr.cols(),
                            cfg.n,
                            &b,
                            cfg.deadline_ms,
                            CHAOS_ATTEMPTS,
                            &mut backoff,
                        )
                    } else {
                        client.cluster_spmm(
                            &tenant,
                            matrix_id,
                            csr.cols(),
                            cfg.n,
                            &b,
                            cfg.deadline_ms,
                        )
                    };
                    tally.retried += u64::from(backoff.attempts());
                    backoff.reset();
                    match result {
                        Ok(resp) => {
                            let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                            tally.latencies.push(us);
                            if resp.degraded {
                                tally.degraded += 1;
                                tally.degraded_seconds.push(started.elapsed().as_secs());
                            }
                            tally.shard_failures += u64::from(resp.shards_failed);
                            if let Some(exp) = &expected {
                                if !cluster_response_matches(&resp, exp, cfg.n) {
                                    tally.wrong += 1;
                                }
                            }
                        }
                        Err(ClientError::Server { code, .. }) => match code {
                            crate::protocol::ErrorCode::QueueFull => tally.rejected += 1,
                            crate::protocol::ErrorCode::DeadlineExceeded => tally.timed_out += 1,
                            _ => tally.errors += 1,
                        },
                        Err(_) => {
                            tally.errors += 1;
                            match ServeClient::connect_with_retry(&cfg.addr, cfg.ready_timeout) {
                                Ok(c) => client = c,
                                Err(_) => break,
                            }
                        }
                    }
                    continue;
                }
                let result = if cfg.chaos {
                    client.spmm_retrying(
                        &tenant,
                        matrix_id,
                        csr.cols(),
                        cfg.n,
                        &b,
                        cfg.deadline_ms,
                        CHAOS_ATTEMPTS,
                        &mut backoff,
                    )
                } else {
                    client.spmm(&tenant, matrix_id, csr.cols(), cfg.n, &b, cfg.deadline_ms)
                };
                tally.retried += u64::from(backoff.attempts());
                backoff.reset();
                match result {
                    Ok(resp) => {
                        let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        tally.latencies.push(us);
                        if resp.cache_hit {
                            tally.cache_hits += 1;
                        } else {
                            tally.cold_latencies.push(us);
                        }
                        tally.max_batch = tally.max_batch.max(resp.batch_size as u64);
                        if resp.fallback_level != FallbackLevel::Tuned {
                            tally.fallbacks += 1;
                        }
                        if let Some(exp) = &expected {
                            if !response_matches(&resp.out, exp) {
                                tally.wrong += 1;
                            }
                        }
                    }
                    Err(ClientError::Server { code, .. }) => match code {
                        crate::protocol::ErrorCode::QueueFull => tally.rejected += 1,
                        crate::protocol::ErrorCode::DeadlineExceeded => tally.timed_out += 1,
                        _ => tally.errors += 1,
                    },
                    Err(_) => {
                        tally.errors += 1;
                        // Reconnect once; a dropped connection otherwise
                        // wastes the rest of this worker's slots.
                        match ServeClient::connect_with_retry(&cfg.addr, cfg.ready_timeout) {
                            Ok(c) => client = c,
                            Err(_) => break,
                        }
                    }
                }
            }
            tally
        }));
    }

    let mut latencies: Vec<u64> = Vec::new();
    let mut cold_latencies: Vec<u64> = Vec::new();
    let mut degraded_seconds: Vec<u64> = Vec::new();
    let mut report = LoadReport {
        mode: if cfg.open_rps.is_some() { "open" } else { "closed" }.to_string(),
        ..LoadReport::default()
    };
    for h in handles {
        match h.join() {
            Ok(t) => {
                latencies.extend(t.latencies);
                cold_latencies.extend(t.cold_latencies);
                degraded_seconds.extend(t.degraded_seconds);
                report.rejected += t.rejected;
                report.timed_out += t.timed_out;
                report.errors += t.errors;
                report.cache_hits += t.cache_hits;
                report.max_batch = report.max_batch.max(t.max_batch);
                report.wrong += t.wrong;
                report.retried += t.retried;
                report.fallbacks += t.fallbacks;
                report.degraded += t.degraded;
                report.shard_failures += t.shard_failures;
            }
            Err(_) => report.errors += 1,
        }
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    report.completed = latencies.len() as u64;
    report.duration_ms = elapsed.as_millis().min(u128::from(u64::MAX)) as u64;
    report.rps = if elapsed.as_secs_f64() > 0.0 {
        report.completed as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    report.p50_us = percentile(&latencies, 50.0);
    report.p95_us = percentile(&latencies, 95.0);
    report.p99_us = percentile(&latencies, 99.0);
    report.mean_us = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };
    cold_latencies.sort_unstable();
    report.cold_requests = cold_latencies.len() as u64;
    report.cold_p99_us = percentile(&cold_latencies, 99.0);
    // Per-second degraded buckets, spanning the whole measurement
    // window so trailing zeros ("it healed and stayed healed") are
    // visible in the report.
    if cfg.cluster {
        let span = (elapsed.as_secs() + 1).max(degraded_seconds.iter().max().map_or(0, |&s| s + 1));
        report.degraded_timeline = vec![0; span.min(3600) as usize]; // lint: checked-cast - capped at 3600
        for s in degraded_seconds {
            if let Some(bucket) = report.degraded_timeline.get_mut(s as usize) {
                *bucket += 1;
            }
        }
    }
    attach_server_metrics(&mut report, cfg);
    Ok(report)
}

/// Execution-mode accounting from the server's cumulative metrics
/// (best effort: a run against an unreachable/older server reports
/// zeros rather than failing the whole workload).
fn attach_server_metrics(report: &mut LoadReport, cfg: &LoadgenConfig) {
    if let Ok(mut c) = ServeClient::connect_with_retry(&cfg.addr, cfg.ready_timeout) {
        if let Ok(m) = c.metrics() {
            let exec = m.find("\"exec\":{").map(|i| &m[i..]).unwrap_or("");
            report.fast_launches = extract_u64(exec, "fast");
            report.simulate_launches = extract_u64(exec, "simulate");
            report.validate_skips = extract_u64(exec, "validate_skips");
            // Echo the server's identity so a run script can tell a
            // measured process from a silently restarted one (the epoch
            // advances on every bind).
            let server = m.find("\"server\":{").map(|i| &m[i..]).unwrap_or("");
            report.server_addr = extract_str(server, "addr");
            report.server_start_epoch = extract_u64(server, "start_epoch");
            // Echo the router's self-healing counters (absent from a
            // plain server's document: everything stays zero/empty).
            let heal = m.find("\"heal\":{").map(|i| &m[i..]).unwrap_or("");
            report.heal_ticks = extract_u64(heal, "ticks");
            report.heal_repairs_completed = extract_u64(heal, "repairs_completed");
            report.heal_last_repair_epoch = extract_u64(heal, "last_repair_epoch");
            report.heal_rejoins = extract_u64(heal, "rejoins");
            let states_end = heal.find(']').map(|i| &heal[..i]).unwrap_or("");
            report.heal_shard_states = extract_all_str(states_end, "state");
        }
    }
}

/// [`ServeClient::gnn_infer`] with retry/reconnect over transient
/// failures — the GNN-mode analogue of `spmm_retrying`.
#[allow(clippy::too_many_arguments)]
fn gnn_infer_retrying(
    client: &mut ServeClient,
    cfg: &LoadgenConfig,
    tenant: &str,
    model_id: u64,
    precision: u8,
    features: &DenseMatrix<f32>,
    attempts: u32,
    backoff: &mut Backoff,
) -> Result<GnnInferResult, ClientError> {
    let mut last: Option<ClientError> = None;
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            thread::sleep(backoff.next_delay());
        }
        match client.gnn_infer(
            tenant,
            model_id,
            precision,
            cfg.deadline_ms,
            &[],
            features.rows(),
            features.cols(),
            features.as_slice(),
        ) {
            Ok(resp) => return Ok(resp),
            Err(e @ (ClientError::Io(_) | ClientError::Proto(_) | ClientError::Unexpected(_))) => {
                let _ = client.reconnect();
                last = Some(e);
            }
            Err(ClientError::Server { code, message })
                if matches!(
                    code,
                    crate::protocol::ErrorCode::Internal | crate::protocol::ErrorCode::QueueFull
                ) =>
            {
                last = Some(ClientError::Server { code, message });
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| ClientError::Unexpected("no attempt was made".into())))
}

/// The `--gnn` workload: train a GCN offline, register the normalized
/// adjacency and the trained weights, then drive `REQ_GNN_INFER` across
/// `spec.variants` feature matrices. Served logits must be bit-identical
/// to the offline forward pass — any deviation counts as `wrong`.
fn run_gnn(cfg: &LoadgenConfig, spec: GnnSpec) -> Result<LoadReport, String> {
    let backend = backend_for_precision(spec.precision)
        .ok_or_else(|| format!("unknown gnn precision {} (0/1/2)", spec.precision))?;
    let ds = sbm(
        SbmConfig {
            nodes: spec.nodes,
            feature_dim: spec.feature_dim,
            feature_signal: 1.5,
            ..Default::default()
        },
        42,
    );
    let adj = normalize_adjacency(&ds.adjacency);

    // Brief offline training at the serving precision, so the registered
    // weights are the ones that precision actually produces (Table 8's
    // column, not FP32 weights replayed at FP16).
    let ops = SparseOps::new(backend, GpuSpec::RTX4090);
    let mut model = GcnModel::new(&[ds.features.cols(), spec.hidden, ds.classes], 0.01, 7);
    for _ in 0..spec.train_epochs {
        let logits = model.forward(&ops, &adj, &ds.features);
        let (_, grad) = cross_entropy(&logits, &ds.labels, &ds.train_idx);
        model.backward_and_step(&ops, &adj, &grad);
    }
    let weights = model.export_weights();

    // The feature variants requests cycle through: variant 0 is the real
    // dataset; the rest are small deterministic perturbations, each a
    // distinct embedding-cache key.
    let variants: Vec<Arc<DenseMatrix<f32>>> = (0..spec.variants.max(1))
        .map(|v| {
            Arc::new(DenseMatrix::from_fn(ds.features.rows(), ds.features.cols(), |r, c| {
                ds.features.get(r, c) + v as f32 * 0.001
            }))
        })
        .collect();

    // Offline bit-exact references (fresh SparseOps: stats do not alter
    // numerics, but keep the reference run self-contained).
    let ref_ops = SparseOps::new(backend, GpuSpec::RTX4090);
    let mut reference: Vec<Arc<Vec<f32>>> = Vec::with_capacity(variants.len());
    let mut test_accuracy = 0.0;
    for (v, features) in variants.iter().enumerate() {
        let logits = weights.forward(&ref_ops, &adj, features);
        if v == 0 {
            test_accuracy = accuracy(&logits, &ds.labels, &ds.test_idx);
        }
        reference.push(Arc::new(logits.as_slice().to_vec()));
    }

    // Register the graph and the model (retrying through chaos faults; a
    // duplicate registration is harmless, the last ids win).
    let (matrix_id, model_id, layers) = {
        let mut probe = ServeClient::connect_with_retry(&cfg.addr, cfg.ready_timeout)
            .map_err(|e| format!("server not reachable: {e}"))?;
        let loaded = load_with_retry(&mut probe, cfg, "g0", &adj)?;
        let (kind, wire, scalars) = weights.export_wire();
        let wire_weights: Vec<(u32, u32, Vec<f32>)> =
            wire.into_iter().map(|(r, c, data)| (r as u32, c as u32, data)).collect();
        let attempts = if cfg.chaos { CHAOS_ATTEMPTS } else { 1 };
        let mut backoff = Backoff::for_client(0x6E6E);
        let mut registered = Err("gnn register: no attempt made".to_string());
        for attempt in 0..attempts {
            if attempt > 0 {
                thread::sleep(backoff.next_delay());
                let _ = probe.reconnect();
            }
            match probe.gnn_register(
                "g0",
                loaded.matrix_id,
                kind,
                wire_weights.clone(),
                scalars.clone(),
            ) {
                Ok(ok) => {
                    registered = Ok(ok);
                    break;
                }
                Err(e) => registered = Err(format!("gnn register failed: {e}")),
            }
        }
        let (model_id, _, layers) = registered?;
        (loaded.matrix_id, model_id, layers as usize)
    };
    let _ = matrix_id;

    let issued = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let mut handles = Vec::new();
    for w in 0..cfg.concurrency.max(1) {
        let cfg = cfg.clone();
        let issued = Arc::clone(&issued);
        let variants = variants.clone();
        let reference = reference.clone();
        handles.push(thread::spawn(move || -> GnnWorkerTally {
            let mut tally = GnnWorkerTally {
                latencies: Vec::new(),
                rejected: 0,
                timed_out: 0,
                errors: 0,
                cache_hits: 0,
                wrong: 0,
                retried: 0,
                layer_micros: vec![Vec::new(); layers],
            };
            let mut backoff = Backoff::for_client(w as u64);
            let mut client = match ServeClient::connect_with_retry(&cfg.addr, cfg.ready_timeout) {
                Ok(c) => c,
                Err(_) => {
                    tally.errors += 1;
                    return tally;
                }
            };
            loop {
                let slot = issued.fetch_add(1, Ordering::Relaxed);
                if slot >= cfg.requests {
                    break;
                }
                if let Some(rps) = cfg.open_rps {
                    let due = started + Duration::from_secs_f64(slot as f64 / rps);
                    let now = Instant::now();
                    if now < due {
                        thread::sleep(due - now);
                    }
                    if started.elapsed() > cfg.duration {
                        break;
                    }
                }
                let variant = slot % variants.len();
                let features = &variants[variant];
                let t0 = Instant::now();
                let result = if cfg.chaos {
                    gnn_infer_retrying(
                        &mut client,
                        &cfg,
                        "g0",
                        model_id,
                        cfg.gnn.map_or(2, |s| s.precision),
                        features,
                        CHAOS_ATTEMPTS,
                        &mut backoff,
                    )
                } else {
                    client.gnn_infer(
                        "g0",
                        model_id,
                        cfg.gnn.map_or(2, |s| s.precision),
                        cfg.deadline_ms,
                        &[],
                        features.rows(),
                        features.cols(),
                        features.as_slice(),
                    )
                };
                tally.retried += u64::from(backoff.attempts());
                backoff.reset();
                match result {
                    Ok(resp) => {
                        let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        tally.latencies.push(us);
                        if resp.cache_hit {
                            tally.cache_hits += 1;
                        } else {
                            for (layer, &us) in resp.layer_micros.iter().enumerate() {
                                if let Some(bucket) = tally.layer_micros.get_mut(layer) {
                                    bucket.push(us);
                                }
                            }
                        }
                        // Bit identity is the contract, in and out of
                        // chaos: the serving path must replay the offline
                        // forward pass exactly.
                        let exp = &reference[variant];
                        let same = resp.scores.len() == exp.len()
                            && resp
                                .scores
                                .iter()
                                .zip(exp.iter())
                                .all(|(a, e)| a.to_bits() == e.to_bits());
                        if !same {
                            tally.wrong += 1;
                        }
                    }
                    Err(ClientError::Server { code, .. }) => match code {
                        crate::protocol::ErrorCode::QueueFull => tally.rejected += 1,
                        crate::protocol::ErrorCode::DeadlineExceeded => tally.timed_out += 1,
                        _ => tally.errors += 1,
                    },
                    Err(_) => {
                        tally.errors += 1;
                        match ServeClient::connect_with_retry(&cfg.addr, cfg.ready_timeout) {
                            Ok(c) => client = c,
                            Err(_) => break,
                        }
                    }
                }
            }
            tally
        }));
    }

    let mut latencies: Vec<u64> = Vec::new();
    let mut layer_micros: Vec<Vec<u64>> = vec![Vec::new(); layers];
    let mut report = LoadReport {
        mode: "gnn".to_string(),
        gnn_precision: spec.precision,
        gnn_layers: layers as u64,
        gnn_accuracy: test_accuracy,
        ..LoadReport::default()
    };
    for h in handles {
        match h.join() {
            Ok(t) => {
                latencies.extend(t.latencies);
                for (layer, bucket) in t.layer_micros.into_iter().enumerate() {
                    if let Some(dst) = layer_micros.get_mut(layer) {
                        dst.extend(bucket);
                    }
                }
                report.rejected += t.rejected;
                report.timed_out += t.timed_out;
                report.errors += t.errors;
                report.cache_hits += t.cache_hits;
                report.wrong += t.wrong;
                report.retried += t.retried;
            }
            Err(_) => report.errors += 1,
        }
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    report.completed = latencies.len() as u64;
    report.duration_ms = elapsed.as_millis().min(u128::from(u64::MAX)) as u64;
    report.rps = if elapsed.as_secs_f64() > 0.0 {
        report.completed as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    report.p50_us = percentile(&latencies, 50.0);
    report.p95_us = percentile(&latencies, 95.0);
    report.p99_us = percentile(&latencies, 99.0);
    report.mean_us = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };
    for bucket in &mut layer_micros {
        bucket.sort_unstable();
        report.gnn_layer_p50_us.push(percentile(bucket, 50.0));
        report.gnn_layer_p95_us.push(percentile(bucket, 95.0));
    }
    attach_server_metrics(&mut report, cfg);
    Ok(report)
}

struct GnnWorkerTally {
    latencies: Vec<u64>,
    rejected: u64,
    timed_out: u64,
    errors: u64,
    cache_hits: u64,
    wrong: u64,
    retried: u64,
    /// Per-layer server-side microseconds over cache misses.
    layer_micros: Vec<Vec<u64>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn report_json_has_the_acceptance_fields() {
        let mut r = LoadReport { mode: "closed".into(), ..LoadReport::default() };
        r.completed = 10;
        r.cache_hits = 9;
        r.rps = 123.456;
        r.p50_us = 1;
        r.p95_us = 2;
        r.p99_us = 3;
        r.fast_launches = 8;
        r.simulate_launches = 2;
        r.validate_skips = 7;
        r.cold_requests = 1;
        r.cold_p99_us = 4242;
        let j = r.to_json();
        for key in [
            "\"p50_us\":1",
            "\"p95_us\":2",
            "\"p99_us\":3",
            "\"rps\":123.456",
            "\"cache_hit_rate\":0.9",
            "\"fast_launches\":8",
            "\"simulate_launches\":2",
            "\"validate_skips\":7",
            "\"cold_requests\":1",
            "\"cold_p99_us\":4242",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn extract_u64_reads_the_exec_section() {
        let m = "{\"resilience\":{\"fallbacks_scalar\":4},\
                 \"exec\":{\"fast\":12,\"simulate\":3,\"validate_skips\":11}}";
        let exec = m.find("\"exec\":{").map(|i| &m[i..]).unwrap_or("");
        assert_eq!(extract_u64(exec, "fast"), 12);
        assert_eq!(extract_u64(exec, "simulate"), 3);
        assert_eq!(extract_u64(exec, "validate_skips"), 11);
        assert_eq!(extract_u64(exec, "missing"), 0);
    }

    #[test]
    fn extract_str_reads_the_server_section() {
        let m = "{\"server\":{\"addr\":\"127.0.0.1:7949\",\"start_epoch\":171},\"exec\":{}}";
        let server = m.find("\"server\":{").map(|i| &m[i..]).unwrap_or("");
        assert_eq!(extract_str(server, "addr"), "127.0.0.1:7949");
        assert_eq!(extract_u64(server, "start_epoch"), 171);
        assert_eq!(extract_str(server, "missing"), "");
    }

    #[test]
    fn cluster_check_accepts_degraded_zero_fill_and_rejects_corruption() {
        let expected = vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let healthy = ClusterSpmmResult {
            out: expected.clone(),
            rows: 3,
            n: 2,
            degraded: false,
            present: Vec::new(),
            shards_ok: 3,
            shards_failed: 0,
        };
        assert!(cluster_response_matches(&healthy, &expected, 2));

        // Row 1 lost: present bitmap 0b101, lost row zero-filled.
        let degraded = ClusterSpmmResult {
            out: vec![1.0, 2.0, 0.0, 0.0, 5.0, 6.0],
            rows: 3,
            n: 2,
            degraded: true,
            present: vec![0b101],
            shards_ok: 2,
            shards_failed: 1,
        };
        assert!(cluster_response_matches(&degraded, &expected, 2));

        // A lost row carrying nonzero garbage violates the zero-fill
        // contract even though the bitmap disclaims it.
        let garbage =
            ClusterSpmmResult { out: vec![1.0, 2.0, 9.0, 0.0, 5.0, 6.0], ..degraded.clone() };
        assert!(!cluster_response_matches(&garbage, &expected, 2));

        // A *present* row with wrong numbers is silent corruption.
        let corrupt = ClusterSpmmResult { out: vec![1.0, 7.0, 0.0, 0.0, 5.0, 6.0], ..degraded };
        assert!(!cluster_response_matches(&corrupt, &expected, 2));
    }

    #[test]
    fn report_json_has_the_cluster_fields() {
        let r = LoadReport {
            mode: "closed".into(),
            degraded: 3,
            shard_failures: 5,
            server_addr: "127.0.0.1:7948".into(),
            server_start_epoch: 99,
            ..LoadReport::default()
        };
        let j = r.to_json();
        for key in [
            "\"degraded\":3",
            "\"shard_failures\":5",
            "\"server_addr\":\"127.0.0.1:7948\"",
            "\"server_start_epoch\":99",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn report_json_has_the_heal_fields() {
        let r = LoadReport {
            mode: "closed".into(),
            degraded_timeline: vec![0, 2, 1, 0],
            heal_ticks: 7,
            heal_repairs_completed: 4,
            heal_last_repair_epoch: 5,
            heal_rejoins: 1,
            heal_shard_states: vec!["up".into(), "down".into(), "up".into()],
            ..LoadReport::default()
        };
        let j = r.to_json();
        for key in [
            "\"degraded_timeline\":[0,2,1,0]",
            "\"heal_ticks\":7",
            "\"heal_repairs_completed\":4",
            "\"heal_last_repair_epoch\":5",
            "\"heal_rejoins\":1",
            "\"heal_shard_states\":[\"up\",\"down\",\"up\"]",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn extract_all_str_reads_the_heal_states() {
        let m = "{\"heal\":{\"states\":[\
                 {\"shard\":0,\"addr\":\"127.0.0.1:1\",\"state\":\"up\"},\
                 {\"shard\":1,\"addr\":\"127.0.0.1:2\",\"state\":\"down\"}],\
                 \"ticks\":7,\"repairs_completed\":3}}";
        let heal = m.find("\"heal\":{").map(|i| &m[i..]).unwrap_or("");
        assert_eq!(extract_u64(heal, "ticks"), 7);
        assert_eq!(extract_u64(heal, "repairs_completed"), 3);
        let states = heal.find(']').map(|i| &heal[..i]).unwrap_or("");
        assert_eq!(extract_all_str(states, "state"), vec!["up", "down"]);
        assert!(extract_all_str("", "state").is_empty());
    }

    #[test]
    fn report_json_has_the_gnn_fields() {
        let r = LoadReport {
            mode: "gnn".into(),
            gnn_precision: 2,
            gnn_layers: 2,
            gnn_accuracy: 0.75,
            gnn_layer_p50_us: vec![120, 80],
            gnn_layer_p95_us: vec![300, 200],
            ..LoadReport::default()
        };
        let j = r.to_json();
        for key in [
            "\"mode\":\"gnn\"",
            "\"gnn_precision\":2",
            "\"gnn_layers\":2",
            "\"gnn_accuracy\":0.75",
            "\"gnn_layer_p50_us\":[120,80]",
            "\"gnn_layer_p95_us\":[300,200]",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn matrix_specs_are_deterministic() {
        let a = MatrixSpec::Uniform { rows: 64, cols: 64, nnz: 300 }.build();
        let b = MatrixSpec::Uniform { rows: 64, cols: 64, nnz: 300 }.build();
        assert_eq!(
            crate::fingerprint::Fingerprint::of(&a),
            crate::fingerprint::Fingerprint::of(&b)
        );
    }
}
