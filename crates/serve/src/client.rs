//! A blocking TCP client for the `fs-serve` protocol.
//!
//! Sockets carry read/write timeouts ([`DEFAULT_IO_TIMEOUT`]) so a
//! silent or wedged server surfaces as an [`io::Error`] instead of
//! hanging the caller forever, and [`ServeClient::spmm_retrying`] layers
//! jittered exponential backoff plus reconnection over transient
//! failures (dropped connections, corrupted frames, queue pushback).

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use flashsparse::FallbackLevel;
use fs_chaos::Backoff;
use fs_matrix::CsrMatrix;

use crate::protocol::{read_frame, write_frame, ErrorCode, ProtoError, Request, Response};

/// Default socket read/write timeout: generous next to any sane request,
/// tiny next to "forever".
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Default TCP connect timeout. Dialing is bounded separately from the
/// per-call read/write timeouts: a SYN-dropped peer (firewalled shard,
/// dead host) would otherwise hold the caller for the kernel's minutes-
/// long handshake retry schedule, which a fan-out router cannot afford.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Malformed frame or payload.
    Proto(ProtoError),
    /// The server answered with an error response.
    Server {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a response of the wrong kind.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => write!(f, "server {code:?}: {message}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

/// A loaded matrix as seen by the client.
#[derive(Clone, Copy, Debug)]
pub struct LoadedMatrix {
    /// Server-assigned handle.
    pub matrix_id: u64,
    /// Content fingerprint (hi, lo) — equal across tenants for equal content.
    pub fingerprint: (u64, u64),
    /// Nonzeros after server-side deduplication.
    pub nnz: u64,
}

/// One SpMM answer.
#[derive(Clone, Debug)]
pub struct SpmmResult {
    /// Row-major output, `rows × n`.
    pub out: Vec<f32>,
    /// Output rows.
    pub rows: usize,
    /// Output columns.
    pub n: usize,
    /// Whether the server found the translated format in its cache.
    pub cache_hit: bool,
    /// Micro-batch size the request rode in.
    pub batch_size: usize,
    /// Microseconds queued server-side.
    pub queue_micros: u64,
    /// Microseconds of server-side execution.
    pub service_micros: u64,
    /// Which rung of the server's fallback ladder produced the output.
    pub fallback_level: FallbackLevel,
    /// Whether the server verified the output against (or produced it
    /// by) the scalar reference.
    pub verified: bool,
}

/// One GNN inference answer.
#[derive(Clone, Debug)]
pub struct GnnInferResult {
    /// Row-major logits, `rows × classes`, in requested-node order.
    pub scores: Vec<f32>,
    /// Score rows returned.
    pub rows: usize,
    /// Classes per node.
    pub classes: usize,
    /// Per-layer server-side microseconds; all zero on a cache hit.
    pub layer_micros: Vec<u64>,
    /// Whether the server answered from its embedding cache.
    pub cache_hit: bool,
}

/// One scatter-gather SpMM answer from a router.
#[derive(Clone, Debug)]
pub struct ClusterSpmmResult {
    /// Row-major output, `rows × n`; missing rows are zero-filled.
    pub out: Vec<f32>,
    /// Output rows (full matrix row count even when degraded).
    pub rows: usize,
    /// Output columns.
    pub n: usize,
    /// Whether any slab was lost.
    pub degraded: bool,
    /// Present-rows bitmap (see [`Response::ClusterSpmm`]); empty when
    /// not degraded.
    pub present: Vec<u8>,
    /// Shards that returned their slab.
    pub shards_ok: u32,
    /// Shard attempts (including replica retries) that failed.
    pub shards_failed: u32,
}

impl ClusterSpmmResult {
    /// Whether output row `r` was produced by a live shard (always true
    /// on a non-degraded response).
    pub fn row_present(&self, r: usize) -> bool {
        if !self.degraded {
            return true;
        }
        self.present.get(r / 8).is_some_and(|byte| byte & (1 << (r % 8)) != 0)
    }
}

/// A blocking connection to an `fs-serve` server.
pub struct ServeClient {
    stream: TcpStream,
    addr: SocketAddr,
    io_timeout: Option<Duration>,
    connect_timeout: Duration,
}

fn configure(stream: &TcpStream, timeout: Option<Duration>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)
}

impl ServeClient {
    /// Connect to `addr` with the default socket timeouts (including
    /// [`DEFAULT_CONNECT_TIMEOUT`] on the dial itself).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, ClientError> {
        ServeClient::connect_with_timeout(addr, DEFAULT_CONNECT_TIMEOUT)
    }

    /// Connect to `addr`, bounding the TCP dial by `connect_timeout`.
    /// The timeout applies per resolved address; the first address that
    /// accepts wins, and the last dial error is returned when none does.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        connect_timeout: Duration,
    ) -> Result<ServeClient, ClientError> {
        let mut last: Option<io::Error> = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, connect_timeout) {
                Ok(stream) => {
                    configure(&stream, Some(DEFAULT_IO_TIMEOUT))?;
                    return Ok(ServeClient {
                        stream,
                        addr: candidate,
                        io_timeout: Some(DEFAULT_IO_TIMEOUT),
                        connect_timeout,
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })))
    }

    /// Connect, retrying until the server accepts or `timeout` elapses —
    /// for scripts that race server startup (the CI smoke test).
    pub fn connect_with_retry(
        addr: &SocketAddr,
        timeout: Duration,
    ) -> Result<ServeClient, ClientError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match TcpStream::connect_timeout(addr, Duration::from_millis(250)) {
                Ok(stream) => {
                    configure(&stream, Some(DEFAULT_IO_TIMEOUT))?;
                    let mut client = ServeClient {
                        stream,
                        addr: *addr,
                        io_timeout: Some(DEFAULT_IO_TIMEOUT),
                        connect_timeout: DEFAULT_CONNECT_TIMEOUT,
                    };
                    if client.ping().is_ok() {
                        return Ok(client);
                    }
                }
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(ClientError::Io(e));
                    }
                }
            }
            if std::time::Instant::now() >= deadline {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "server did not become ready",
                )));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Override the socket read/write timeouts (`None` blocks forever —
    /// only sensible for debugging).
    pub fn set_io_timeouts(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.io_timeout = timeout;
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Override the TCP dial bound used by [`ServeClient::reconnect`].
    pub fn set_connect_timeout(&mut self, timeout: Duration) {
        self.connect_timeout = timeout;
    }

    /// Tear down the current stream and dial the server again, keeping
    /// the configured timeouts.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)?;
        configure(&stream, self.io_timeout)?;
        self.stream = stream;
        Ok(())
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let payload = req.encode()?;
        write_frame(&mut self.stream, &payload)?;
        let frame = read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Unexpected("server closed the connection".into()))?;
        let resp = Response::decode(&frame)?;
        if let Response::Error { code, message } = resp {
            return Err(ClientError::Server { code, message });
        }
        Ok(resp)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Register a CSR matrix under `tenant`.
    pub fn load_matrix(
        &mut self,
        tenant: &str,
        csr: &CsrMatrix<f32>,
    ) -> Result<LoadedMatrix, ClientError> {
        let entries: Vec<(u32, u32, f32)> = csr
            .iter()
            .map(|(r, c, v)| (r as u32, c as u32, v)) // lint: checked-cast - CSR indices are u32 internally
            .collect();
        let req = Request::Load {
            tenant: tenant.to_string(),
            rows: csr.rows() as u32,
            cols: csr.cols() as u32,
            entries,
        };
        match self.call(&req)? {
            Response::Loaded { matrix_id, fingerprint_hi, fingerprint_lo, nnz } => {
                Ok(LoadedMatrix { matrix_id, fingerprint: (fingerprint_hi, fingerprint_lo), nnz })
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// SpMM: multiply the loaded matrix by a row-major `b_rows × n` operand.
    pub fn spmm(
        &mut self,
        tenant: &str,
        matrix_id: u64,
        b_rows: usize,
        n: usize,
        b: &[f32],
        deadline_ms: u32,
    ) -> Result<SpmmResult, ClientError> {
        let req = Request::Spmm {
            tenant: tenant.to_string(),
            matrix_id,
            deadline_ms,
            b_rows: b_rows as u32,
            n: n as u32,
            b: b.to_vec(),
        };
        match self.call(&req)? {
            Response::Spmm {
                cache_hit,
                batch_size,
                queue_micros,
                service_micros,
                fallback_level,
                verified,
                rows,
                n,
                out,
            } => Ok(SpmmResult {
                out,
                rows: rows as usize,
                n: n as usize,
                cache_hit,
                batch_size: batch_size as usize,
                queue_micros,
                service_micros,
                fallback_level: FallbackLevel::from_u8(fallback_level),
                verified,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// [`ServeClient::spmm`] with up to `attempts` tries, sleeping the
    /// backoff's jittered delay between them and reconnecting after
    /// transport-level failures. Retries transient errors only —
    /// transport faults, corrupted frames, queue pushback, and internal
    /// server failures (a crashed worker). Anything the server rejects
    /// deterministically (bad dimensions, unknown matrix) returns
    /// immediately.
    #[allow(clippy::too_many_arguments)]
    pub fn spmm_retrying(
        &mut self,
        tenant: &str,
        matrix_id: u64,
        b_rows: usize,
        n: usize,
        b: &[f32],
        deadline_ms: u32,
        attempts: u32,
        backoff: &mut Backoff,
    ) -> Result<SpmmResult, ClientError> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff.next_delay());
            }
            match self.spmm(tenant, matrix_id, b_rows, n, b, deadline_ms) {
                Ok(resp) => return Ok(resp),
                Err(e) if retryable(&e) => {
                    if needs_reconnect(&e) {
                        let _ = self.reconnect();
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| ClientError::Unexpected("no attempt was made".into())))
    }

    /// Fetch the metrics JSON document.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch the trace exports: `(prometheus_text, chrome_trace_json)`.
    /// Both are empty-but-well-formed when the server runs with tracing
    /// disarmed.
    pub fn trace(&mut self) -> Result<(String, String), ClientError> {
        match self.call(&Request::Trace)? {
            Response::Trace { prometheus, chrome } => Ok((prometheus, chrome)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Announce a shard to a router — or probe a shard's inventory.
    /// A router answers `(shard_index, shard_count, [])`; a plain shard
    /// answers `(0, 1, resident)` with its `(fingerprint_hi,
    /// fingerprint_lo, matrix_id)` triples ascending by id.
    pub fn shard_join(
        &mut self,
        shard_addr: &str,
        start_epoch: u64,
    ) -> Result<(u32, u32, Vec<(u64, u64, u64)>), ClientError> {
        let req = Request::ShardJoin { addr: shard_addr.to_string(), start_epoch };
        match self.call(&req)? {
            Response::ShardJoined { shard_index, shard_count, resident } => {
                Ok((shard_index, shard_count, resident))
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Export a registered matrix's `(rows, cols, COO entries)` — the
    /// repair path's source copy when re-replicating a slab.
    pub fn export_matrix(
        &mut self,
        tenant: &str,
        matrix_id: u64,
    ) -> Result<(u32, u32, Vec<(u32, u32, f32)>), ClientError> {
        let req = Request::Export { tenant: tenant.to_string(), matrix_id };
        match self.call(&req)? {
            Response::Export { rows, cols, entries } => Ok((rows, cols, entries)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Evict a registered matrix; `Ok(existed)`. Anti-entropy rejoin
    /// uses this to drop slabs the manifest no longer assigns here.
    pub fn evict_matrix(&mut self, tenant: &str, matrix_id: u64) -> Result<bool, ClientError> {
        let req = Request::Evict { tenant: tenant.to_string(), matrix_id };
        match self.call(&req)? {
            Response::Evicted { existed } => Ok(existed),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Register GNN model weights bound to a loaded graph matrix.
    /// `kind` 0 = GCN (one weight matrix per layer, no scalars),
    /// 1 = AGNN (`weights` = `[w_in, w_out]`, `scalars` = per-layer β).
    /// Returns `(model_id, weight_bytes, layers)`.
    pub fn gnn_register(
        &mut self,
        tenant: &str,
        matrix_id: u64,
        kind: u8,
        weights: Vec<(u32, u32, Vec<f32>)>,
        scalars: Vec<f32>,
    ) -> Result<(u64, u64, u32), ClientError> {
        let req =
            Request::GnnRegister { tenant: tenant.to_string(), matrix_id, kind, weights, scalars };
        match self.call(&req)? {
            Response::GnnRegistered { model_id, weight_bytes, layers } => {
                Ok((model_id, weight_bytes, layers))
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Run a server-side GNN forward pass over the model's graph.
    /// `precision` 0 = FP32, 1 = TF32, 2 = FP16; `node_ids` empty scores
    /// every node; `features` is row-major `f_rows × f_cols`.
    #[allow(clippy::too_many_arguments)]
    pub fn gnn_infer(
        &mut self,
        tenant: &str,
        model_id: u64,
        precision: u8,
        deadline_ms: u32,
        node_ids: &[u32],
        f_rows: usize,
        f_cols: usize,
        features: &[f32],
    ) -> Result<GnnInferResult, ClientError> {
        let req = Request::GnnInfer {
            tenant: tenant.to_string(),
            model_id,
            precision,
            deadline_ms,
            node_ids: node_ids.to_vec(),
            f_rows: f_rows as u32,
            f_cols: f_cols as u32,
            features: features.to_vec(),
        };
        match self.call(&req)? {
            Response::GnnInfer { rows, classes, scores, layer_micros, cache_hit } => {
                Ok(GnnInferResult {
                    scores,
                    rows: rows as usize,
                    classes: classes as usize,
                    layer_micros,
                    cache_hit,
                })
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Scatter-gather SpMM through a router. Degraded responses (a slab
    /// lost past its replica) come back `Ok` with `degraded = true` and
    /// the present-rows bitmap set; callers that cannot use partial
    /// output should check [`ClusterSpmmResult::degraded`].
    pub fn cluster_spmm(
        &mut self,
        tenant: &str,
        matrix_id: u64,
        b_rows: usize,
        n: usize,
        b: &[f32],
        deadline_ms: u32,
    ) -> Result<ClusterSpmmResult, ClientError> {
        let req = Request::ClusterSpmm {
            tenant: tenant.to_string(),
            matrix_id,
            deadline_ms,
            b_rows: b_rows as u32,
            n: n as u32,
            b: b.to_vec(),
        };
        match self.call(&req)? {
            Response::ClusterSpmm { rows, n, out, degraded, present, shards_ok, shards_failed } => {
                Ok(ClusterSpmmResult {
                    out,
                    rows: rows as usize,
                    n: n as usize,
                    degraded,
                    present,
                    shards_ok,
                    shards_failed,
                })
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

/// Whether an error is worth another attempt.
fn retryable(e: &ClientError) -> bool {
    match e {
        // Transport trouble and corrupted/short frames: the request may
        // well succeed on a fresh connection.
        ClientError::Io(_) | ClientError::Proto(_) | ClientError::Unexpected(_) => true,
        ClientError::Server { code, .. } => {
            matches!(code, ErrorCode::Internal | ErrorCode::QueueFull)
        }
    }
}

/// Whether the connection itself is suspect after this error (versus a
/// clean server-side rejection over a healthy stream).
fn needs_reconnect(e: &ClientError) -> bool {
    matches!(e, ClientError::Io(_) | ClientError::Proto(_) | ClientError::Unexpected(_))
}
