//! The TCP front end: accept loop, per-connection handler threads, and
//! the request → engine → response translation.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use fs_chaos::FaultSite;
use fs_matrix::{CooMatrix, CsrMatrix, DenseMatrix};
use parking_lot::Mutex;

use crate::engine::{EngineConfig, ServeEngine, SpmmOutcome, SpmmRequest, SubmitError};
use crate::gnn_infer::{GnnError, GnnInferRequest};
use crate::protocol::{
    frame_bytes, read_frame, write_frame, ErrorCode, Request, Response, FRAME_HEADER_BYTES,
};
use fs_gnn::GnnWeights;

/// Default cap on the rows/cols a `Load` request may declare.
///
/// `CsrMatrix` allocates a `rows + 1` row-pointer array no matter how few
/// entries arrive, so dimensions must be bounded *before* any structure
/// is built — otherwise a ~30-byte frame claiming `u32::MAX` rows would
/// make the server allocate ~34 GB. 2^22 rows keeps that array at 32 MiB.
pub const DEFAULT_MAX_LOAD_DIM: u32 = 1 << 22;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Largest rows/cols a `Load` request may declare; anything bigger
    /// is refused with `BadRequest` before any allocation.
    pub max_load_dim: u32,
    /// Engine settings.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_load_dim: DEFAULT_MAX_LOAD_DIM,
            engine: EngineConfig::default(),
        }
    }
}

/// A bound, running server. Accepts until a `Shutdown` message arrives.
pub struct Server {
    engine: Arc<ServeEngine>,
    listener: TcpListener,
    addr: SocketAddr,
    start_epoch: u64,
    max_load_dim: u32,
    stop: Arc<AtomicBool>,
    /// Each handler thread plus a second handle to its stream, kept so
    /// `run` can shut the read half down at drain time — an idle peer
    /// parked in `read_frame` would otherwise block the join forever.
    conns: Arc<Mutex<Vec<(thread::JoinHandle<()>, TcpStream)>>>,
}

impl Server {
    /// Bind the listener and start the engine. The accept loop runs on
    /// the caller's thread via [`Server::run`].
    pub fn bind(cfg: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        // Wall-clock millis at bind: strictly increases across restarts
        // of the same shard, which is all a router needs to tell "the
        // shard I registered slabs on" from "a fresh process that lost
        // them".
        let start_epoch = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64) // lint: checked-cast - clamped
            .unwrap_or(0);
        Ok(Server {
            engine: Arc::new(ServeEngine::start(cfg.engine)),
            listener,
            addr,
            start_epoch,
            max_load_dim: cfg.max_load_dim,
            stop: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Milliseconds since the Unix epoch at bind time — the restart
    /// marker echoed in the metrics document's `server` section.
    pub fn start_epoch(&self) -> u64 {
        self.start_epoch
    }

    /// The engine, for in-process use alongside the TCP front end.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }

    /// Accept and serve connections until a `Shutdown` request arrives,
    /// then drain the engine and join every connection thread.
    pub fn run(self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => return Err(e),
            };
            let peer = match stream.try_clone() {
                Ok(p) => p,
                Err(_) => continue, // can't track it for drain — refuse it
            };
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&self.stop);
            let addr = self.addr;
            let start_epoch = self.start_epoch;
            let max_load_dim = self.max_load_dim;
            let handle =
                thread::Builder::new().name("fs-serve-conn".to_string()).spawn(move || {
                    handle_connection(stream, &engine, &stop, addr, start_epoch, max_load_dim)
                })?;
            self.conns.lock().push((handle, peer));
            if self.stop.load(Ordering::Acquire) {
                break;
            }
        }
        // Drain: finish queued work, then unblock and join connection
        // handlers. Shutting down only the *read* half wakes a handler
        // parked in `read_frame` (it sees clean EOF) while still letting
        // an in-flight response finish writing.
        self.engine.shutdown();
        let conns: Vec<(thread::JoinHandle<()>, TcpStream)> =
            std::mem::take(&mut *self.conns.lock());
        for (_, peer) in &conns {
            let _ = peer.shutdown(Shutdown::Read);
        }
        for (h, _) in conns {
            let _ = h.join();
        }
        Ok(())
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: &Arc<ServeEngine>,
    stop: &Arc<AtomicBool>,
    server_addr: SocketAddr,
    start_epoch: u64,
    max_load_dim: u32,
) {
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            Err(_) => return,
        };
        let decoded = {
            let _span = fs_trace::span(fs_trace::Site::ServeDecode);
            Request::decode(&payload)
        };
        let response = match decoded {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                let resp = dispatch(req, engine, server_addr, start_epoch, max_load_dim);
                if is_shutdown {
                    let _ = resp.encode().map(|bytes| write_frame(&mut writer, &bytes));
                    stop.store(true, Ordering::Release);
                    // Wake the accept loop so `run` can drain and exit.
                    let _ = TcpStream::connect_timeout(&server_addr, Duration::from_secs(1));
                    return;
                }
                resp
            }
            Err(e) => Response::Error { code: ErrorCode::BadRequest, message: e.to_string() },
        };
        let _span = fs_trace::span(fs_trace::Site::ServeEncode);
        let bytes = match response.encode() {
            Ok(b) => b,
            Err(e) => {
                let fallback =
                    Response::Error { code: ErrorCode::Internal, message: e.to_string() };
                match fallback.encode() {
                    Ok(b) => b,
                    Err(_) => return,
                }
            }
        };
        // `Pong` is control plane (readiness probing), exempt from frame
        // chaos; `ShutdownAck` goes through the dedicated path above.
        let control = matches!(response, Response::Pong);
        match write_response(&mut writer, &bytes, control) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
    }
}

/// Write one response frame, consulting the chaos frame sites for
/// data-plane responses. `Ok(false)` means injected truncation left the
/// stream mid-frame, so the connection must close.
fn write_response(writer: &mut TcpStream, payload: &[u8], control: bool) -> io::Result<bool> {
    if !control && fs_chaos::chaos_enabled() {
        if let Some(alive) = chaos_write(writer, payload)? {
            return Ok(alive);
        }
    }
    write_frame(writer, payload)?;
    Ok(true)
}

/// Evaluate the frame chaos sites for one outgoing response. Corruption
/// flips one *payload* byte inside the framed bytes — past the header,
/// so the checksum guarantees the client detects it as `InvalidData`
/// rather than decoding garbage. Truncation sends a prefix and closes
/// the connection (the client sees an unexpected EOF). Both draws are
/// always evaluated so replay counts stay aligned with the plan.
/// `Ok(None)` means no draw fired and the ordinary write path should run.
#[cold]
fn chaos_write(writer: &mut TcpStream, payload: &[u8]) -> io::Result<Option<bool>> {
    use std::io::Write as _;
    let corrupt = fs_chaos::draw(FaultSite::FrameCorrupt);
    let truncate = fs_chaos::draw(FaultSite::FrameTruncate);
    if corrupt.is_none() && truncate.is_none() {
        return Ok(None);
    }
    let mut framed = frame_bytes(payload)?;
    if let Some(d) = corrupt {
        if framed.len() > FRAME_HEADER_BYTES {
            let span = (framed.len() - FRAME_HEADER_BYTES) as u64;
            let i = FRAME_HEADER_BYTES + d.select(0, span) as usize;
            framed[i] ^= 1u8 << d.select(1, 8);
        }
    }
    if let Some(d) = truncate {
        let keep = d.select(0, framed.len() as u64) as usize;
        writer.write_all(&framed[..keep])?;
        writer.flush()?;
        return Ok(Some(false));
    }
    writer.write_all(&framed)?;
    writer.flush()?;
    Ok(Some(true))
}

/// Prefix the engine's metrics document with a `server` section carrying
/// the listen address and the bind-time `start_epoch` — the two facts a
/// router needs to recognize a shard (and notice when it restarted).
fn metrics_with_server(engine_json: &str, addr: SocketAddr, start_epoch: u64) -> String {
    let server = format!("\"server\":{{\"addr\":\"{addr}\",\"start_epoch\":{start_epoch}}}");
    match engine_json.strip_prefix('{') {
        Some(rest) if !rest.trim_start().starts_with('}') => format!("{{{server},{rest}"),
        _ => format!("{{{server}}}"),
    }
}

fn dispatch(
    req: Request,
    engine: &Arc<ServeEngine>,
    addr: SocketAddr,
    start_epoch: u64,
    max_load_dim: u32,
) -> Response {
    match req {
        Request::Load { tenant, rows, cols, entries } => {
            // Bound the declared dimensions *before* building anything:
            // CSR allocates `rows + 1` row pointers regardless of how few
            // entries arrived, so an unchecked `rows = u32::MAX` in a
            // tiny frame would be a remote OOM.
            if rows > max_load_dim || cols > max_load_dim {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!(
                        "matrix dimensions {rows}x{cols} exceed the server cap {max_load_dim}"
                    ),
                };
            }
            let mut coo = CooMatrix::new(rows as usize, cols as usize);
            for (r, c, v) in &entries {
                if *r >= rows || *c >= cols {
                    return Response::Error {
                        code: ErrorCode::BadRequest,
                        message: format!("entry ({r},{c}) outside {rows}x{cols}"),
                    };
                }
                coo.push(*r as usize, *c as usize, *v);
            }
            let csr = CsrMatrix::from_coo(&coo.dedup());
            let info = match engine.register_matrix(&tenant, csr) {
                Ok(info) => info,
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::ResourceExhausted,
                        message: e.to_string(),
                    }
                }
            };
            Response::Loaded {
                matrix_id: info.id,
                fingerprint_hi: info.fingerprint.hi(),
                fingerprint_lo: info.fingerprint.lo(),
                nnz: info.nnz as u64,
            }
        }
        Request::Spmm { tenant, matrix_id, deadline_ms, b_rows, n, b } => {
            let deadline = if deadline_ms == 0 {
                None
            } else {
                Some(Duration::from_millis(u64::from(deadline_ms)))
            };
            let request = SpmmRequest {
                tenant,
                matrix_id,
                b: DenseMatrix::from_f32_slice(b_rows as usize, n as usize, &b),
                deadline,
            };
            match engine.spmm_blocking(request) {
                Ok(SpmmOutcome::Done(resp)) => Response::Spmm {
                    cache_hit: resp.cache_hit,
                    batch_size: resp.batch_size.min(u32::MAX as usize) as u32,
                    queue_micros: resp.queue_micros,
                    service_micros: resp.service_micros,
                    fallback_level: resp.fallback_level.as_u8(),
                    verified: resp.verified,
                    rows: resp.out.rows().min(u32::MAX as usize) as u32,
                    n: resp.out.cols().min(u32::MAX as usize) as u32,
                    out: resp.out.to_f32_vec(),
                },
                Ok(SpmmOutcome::TimedOut) => Response::Error {
                    code: ErrorCode::DeadlineExceeded,
                    message: "deadline passed while queued".to_string(),
                },
                Ok(SpmmOutcome::Failed(msg)) => {
                    Response::Error { code: ErrorCode::Internal, message: msg }
                }
                Err(SubmitError::QueueFull) => Response::Error {
                    code: ErrorCode::QueueFull,
                    message: "queue full".to_string(),
                },
                Err(SubmitError::UnknownMatrix(id)) => Response::Error {
                    code: ErrorCode::UnknownMatrix,
                    message: format!("unknown matrix id {id}"),
                },
                Err(e) => Response::Error { code: ErrorCode::BadRequest, message: e.to_string() },
            }
        }
        Request::Metrics => Response::Metrics {
            json: metrics_with_server(&engine.metrics_json(), addr, start_epoch),
        },
        Request::Trace => {
            let snap = fs_trace::snapshot();
            Response::Trace {
                prometheus: fs_trace::export::prometheus_text(&snap),
                chrome: fs_trace::export::chrome_trace(&snap),
            }
        }
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::ShutdownAck,
        // A plain shard answers ShardJoin with its residency inventory:
        // the router's anti-entropy pass compares these fingerprints
        // against its manifest after either side restarts. `shard_index`
        // 0 of `shard_count` 1 marks the reply as shard-local.
        Request::ShardJoin { .. } => Response::ShardJoined {
            shard_index: 0,
            shard_count: 1,
            resident: engine.resident_matrices(),
        },
        Request::ClusterSpmm { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "cluster SpMM needs an fs-cluster router; this is a plain shard".to_string(),
        },
        Request::Export { tenant: _, matrix_id } => match engine.export_matrix(matrix_id) {
            Some((rows, cols, entries)) => Response::Export {
                rows: rows.min(u32::MAX as usize) as u32,
                cols: cols.min(u32::MAX as usize) as u32,
                entries,
            },
            None => Response::Error {
                code: ErrorCode::UnknownMatrix,
                message: format!("unknown matrix id {matrix_id}"),
            },
        },
        Request::Evict { tenant: _, matrix_id } => {
            Response::Evicted { existed: engine.evict_matrix(matrix_id) }
        }
        Request::GnnRegister { tenant, matrix_id, kind, weights, scalars } => {
            let dense = |w: &(u32, u32, Vec<f32>)| {
                DenseMatrix::from_f32_slice(w.0 as usize, w.1 as usize, &w.2)
            };
            let model = match kind {
                0 => {
                    if !scalars.is_empty() {
                        return Response::Error {
                            code: ErrorCode::BadRequest,
                            message: "GCN models take no scalar parameters".to_string(),
                        };
                    }
                    GnnWeights::gcn(weights.iter().map(dense).collect())
                }
                1 => {
                    if weights.len() != 2 {
                        return Response::Error {
                            code: ErrorCode::BadRequest,
                            message: format!(
                                "AGNN needs exactly 2 weight matrices (w_in, w_out), got {}",
                                weights.len()
                            ),
                        };
                    }
                    GnnWeights::Agnn {
                        w_in: dense(&weights[0]),
                        betas: scalars,
                        w_out: dense(&weights[1]),
                    }
                }
                k => {
                    return Response::Error {
                        code: ErrorCode::BadRequest,
                        message: format!("unknown model kind {k} (0=GCN, 1=AGNN)"),
                    }
                }
            };
            match engine.gnn_register(&tenant, matrix_id, model) {
                Ok(info) => Response::GnnRegistered {
                    model_id: info.id,
                    weight_bytes: info.weight_bytes as u64,
                    layers: info.layers.min(u32::MAX as usize) as u32,
                },
                Err(e) => gnn_error(e),
            }
        }
        Request::GnnInfer {
            tenant,
            model_id,
            precision,
            deadline_ms,
            node_ids,
            f_rows,
            f_cols,
            features,
        } => {
            let deadline = if deadline_ms == 0 {
                None
            } else {
                Some(Duration::from_millis(u64::from(deadline_ms)))
            };
            let req = GnnInferRequest {
                tenant,
                model_id,
                precision,
                deadline,
                node_ids,
                features: DenseMatrix::from_f32_slice(f_rows as usize, f_cols as usize, &features),
            };
            match engine.gnn_infer(req) {
                Ok(out) => Response::GnnInfer {
                    rows: out.rows,
                    classes: out.classes,
                    scores: out.scores,
                    layer_micros: out.layer_micros,
                    cache_hit: out.cache_hit,
                },
                Err(e) => gnn_error(e),
            }
        }
    }
}

fn gnn_error(e: GnnError) -> Response {
    let code = match &e {
        GnnError::UnknownGraph(_) | GnnError::UnknownModel(_) => ErrorCode::UnknownMatrix,
        GnnError::BadRequest(_) => ErrorCode::BadRequest,
        GnnError::ResourceExhausted(_) => ErrorCode::ResourceExhausted,
        GnnError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        GnnError::Internal(_) => ErrorCode::Internal,
    };
    Response::Error { code, message: e.to_string() }
}
