//! Chaos soaks for the serving stack: injected faults must degrade
//! service (errors, retries, fallbacks) but never corrupt it, and
//! kernel-site plans must replay identical injection counters from the
//! seed string alone.
//!
//! Own test binary: an installed fault plan is process-global state, so
//! these tests must never share a process with the regular suites. Every
//! test here holds a [`ChaosScope`] — including the chaos-free ones —
//! because the scope also serializes the tests against each other;
//! unscoped traffic racing a scoped test would consume draw indices and
//! break replay.

use std::time::{Duration, Instant};

use flashsparse::{outputs_match, DEFAULT_TOLERANCE};
use fs_chaos::{ChaosScope, FaultPlan, FaultSite};
use fs_gnn::{normalize_adjacency, GcnModel};
use fs_matrix::gen::{random_uniform, sbm, SbmConfig};
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_serve::loadgen::{run, GnnSpec, LoadgenConfig, MatrixSpec};
use fs_serve::{
    ClientError, EngineConfig, GnnInferRequest, ServeClient, ServeEngine, Server, ServerConfig,
    SpmmOutcome, SpmmRequest,
};

/// The ISSUE's acceptance soak, engine-level: a seeded fragment-bit plan
/// at rate 1e-3 over 200 identical requests on a single worker. Every
/// response must verify against the scalar reference (zero wrong), and
/// re-running the identical plan must reproduce identical fault
/// counters, resilience totals, and output bits.
#[test]
fn seeded_soak_is_wrong_free_and_replays_identically() {
    let plan: FaultPlan = "seed=99;frag-bit=0.001".parse().expect("plan parses");
    let (outs_a, report_a, stats_a) = engine_soak(&plan, 200);
    let (outs_b, report_b, stats_b) = engine_soak(&plan, 200);
    assert_eq!(report_a, report_b, "fault counters must replay from the plan string");
    assert_eq!(stats_a, stats_b, "resilience totals must replay too");
    assert_eq!(outs_a, outs_b, "delivered bits must replay too");
    let (evaluated, injected) = report_a.site(FaultSite::FragBitFlip);
    assert!(evaluated > 1_000, "200 requests drive thousands of MMA draws, saw {evaluated}");
    assert!(injected > 0, "rate 1e-3 over {evaluated} evaluations should fire");
}

/// Run `requests` identical requests through a verifying single-worker
/// engine under `plan`; returns (output bits, fault report, resilience
/// stats), asserting zero wrong responses along the way.
fn engine_soak(
    plan: &FaultPlan,
    requests: usize,
) -> (Vec<Vec<u32>>, fs_chaos::FaultReport, (u64, u64, u64, u64)) {
    let _scope = ChaosScope::install(plan.clone());
    let e = ServeEngine::start(EngineConfig {
        workers: 1,
        max_batch: 1,
        verify: true,
        // The breaker bypass decision depends on wall-clock cooldowns;
        // disable it so the soak stays a pure function of the plan.
        breaker_threshold: u32::MAX,
        ..EngineConfig::default()
    });
    let csr = CsrMatrix::from_coo(&random_uniform::<f32>(96, 96, 800, 3));
    let info = e.register_matrix("t0", csr.clone()).expect("registered");
    let b = DenseMatrix::from_fn(96, 16, |r, c| ((r + c) % 5) as f32 * 0.25);
    let reference = csr.spmm_reference(&b);
    let mut outs = Vec::with_capacity(requests);
    for i in 0..requests {
        let outcome = e.spmm_blocking(SpmmRequest {
            tenant: "t0".to_string(),
            matrix_id: info.id,
            b: b.clone(),
            deadline: Some(Duration::from_secs(60)),
        });
        match outcome {
            Ok(SpmmOutcome::Done(resp)) => {
                assert!(resp.verified, "request {i}");
                assert!(
                    outputs_match(&resp.out, &reference, DEFAULT_TOLERANCE),
                    "request {i} delivered a wrong response (level {:?})",
                    resp.fallback_level
                );
                outs.push(resp.out.to_f32_vec().iter().map(|v| v.to_bits()).collect());
            }
            other => panic!("request {i} failed: {other:?}"),
        }
    }
    let report = fs_chaos::report();
    let stats = e.resilience_stats();
    e.shutdown();
    (outs, report, stats)
}

/// Full-stack soak over TCP: worker kills, stalls, frame corruption and
/// truncation all active at once. Clients retry with backoff and
/// reconnect; the contract is completed > 0 and wrong == 0 — errors are
/// expected, silent corruption is not. (Transport-layer plans replay
/// statistically, not bit-exactly: thread scheduling reorders draws.)
#[test]
fn tcp_soak_with_kills_and_frame_faults_serves_no_wrong_bytes() {
    let plan: FaultPlan = "seed=7;frag-bit=0.001;worker-kill=0.02;worker-stall=0.05;\
                           frame-corrupt=0.05;frame-truncate=0.02;stall-ms=5"
        .parse()
        .expect("plan parses");
    let _scope = ChaosScope::install(plan);
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig { workers: 2, verify: true, ..EngineConfig::default() },
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| panic!("bind failed: {e}"));
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let report = run(&LoadgenConfig {
        addr,
        concurrency: 2,
        requests: 120,
        n: 16,
        matrix: MatrixSpec::Uniform { rows: 128, cols: 128, nnz: 2000 },
        chaos: true,
        ..LoadgenConfig::default()
    })
    .unwrap_or_else(|e| panic!("loadgen failed: {e}"));

    assert_eq!(report.wrong, 0, "chaos must never corrupt a response: {}", report.to_json());
    assert!(
        report.completed >= 60,
        "retries should recover most of the 120 requests: {}",
        report.to_json()
    );

    let mut c = ServeClient::connect_with_retry(&addr, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("connect failed: {e}"));
    c.shutdown().unwrap_or_else(|e| panic!("shutdown failed: {e}"));
    server_thread
        .join()
        .unwrap_or_else(|_| panic!("server thread panicked"))
        .unwrap_or_else(|e| panic!("server run failed: {e}"));
}

/// GNN inference under a seeded kernel-fault plan: the double-execution
/// verifier absorbs injected fragment faults (retrying, never serving a
/// corrupt score), and re-running the identical plan must reproduce
/// identical response bytes, cache-hit flags, and fault counters —
/// inference is synchronous on the calling thread, so a single-client
/// soak consumes draw indices in a replayable order.
#[test]
fn seeded_gnn_soak_replays_identical_response_bytes() {
    let plan: FaultPlan = "seed=123;frag-bit=0.001".parse().expect("plan parses");
    let (outs_a, report_a) = gnn_soak(&plan, 40);
    let (outs_b, report_b) = gnn_soak(&plan, 40);
    assert_eq!(report_a, report_b, "fault counters must replay from the plan string");
    assert_eq!(outs_a, outs_b, "served GNN response bytes must replay too");
    let (evaluated, _) = report_a.site(FaultSite::FragBitFlip);
    assert!(evaluated > 0, "the forward passes must consult the plan");
    // Variant cycling means later rounds hit the embedding cache: hits
    // replay the miss bytes without consuming any fault draws.
    assert!(outs_a.iter().any(|o| o.starts_with("hit=true")), "soak never hit the cache");
}

/// Run `requests` sequential FP16 GNN inferences (cycling 3 feature
/// variants) through a verifying engine under `plan`; returns one
/// outcome string per request plus the fault report.
fn gnn_soak(plan: &FaultPlan, requests: usize) -> (Vec<String>, fs_chaos::FaultReport) {
    let _scope = ChaosScope::install(plan.clone());
    let e = ServeEngine::start(EngineConfig {
        workers: 1,
        verify: true,
        // Wall-clock breaker cooldowns would make the soak nondeterministic.
        breaker_threshold: u32::MAX,
        ..EngineConfig::default()
    });
    let ds = sbm(
        SbmConfig { nodes: 96, feature_dim: 16, feature_signal: 1.5, ..Default::default() },
        11,
    );
    let graph = e.register_matrix("t", normalize_adjacency(&ds.adjacency)).expect("graph");
    let weights = GcnModel::new(&[16, 12, ds.classes], 0.01, 3).export_weights();
    let info = e.gnn_register("t", graph.id, weights).expect("model");
    let variants: Vec<DenseMatrix<f32>> = (0..3)
        .map(|v| DenseMatrix::from_fn(96, 16, |r, c| ds.features.get(r, c) + v as f32 * 0.001))
        .collect();
    let mut outs = Vec::with_capacity(requests);
    for i in 0..requests {
        let resp = e.gnn_infer(GnnInferRequest {
            tenant: "t".to_string(),
            model_id: info.id,
            precision: 2,
            deadline: None,
            node_ids: Vec::new(),
            features: variants[i % variants.len()].clone(),
        });
        // Errors (the verifier giving up) are tolerated but must replay.
        outs.push(match resp {
            Ok(r) => format!(
                "hit={} bits={:?}",
                r.cache_hit,
                r.scores.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            ),
            Err(err) => format!("err={err}"),
        });
    }
    let report = fs_chaos::report();
    e.shutdown();
    (outs, report)
}

/// Full-stack GNN soak over TCP under transport faults: frame
/// corruption, truncation, worker kills and stalls. Clients retry and
/// reconnect; every completed response is bit-compared against the
/// offline fs-gnn forward, so the contract is completed > 0 and
/// wrong == 0. (No kernel faults here: the loadgen computes its
/// reference in-process, and a frag-bit plan would corrupt the
/// reference itself, not just the server under test.)
#[test]
fn tcp_gnn_soak_with_transport_faults_serves_no_wrong_scores() {
    let plan: FaultPlan = "seed=21;worker-kill=0.02;worker-stall=0.05;\
                           frame-corrupt=0.05;frame-truncate=0.02;stall-ms=5"
        .parse()
        .expect("plan parses");
    let _scope = ChaosScope::install(plan);
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig { workers: 2, verify: true, ..EngineConfig::default() },
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| panic!("bind failed: {e}"));
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let report = run(&LoadgenConfig {
        addr,
        concurrency: 2,
        requests: 60,
        chaos: true,
        gnn: Some(GnnSpec {
            nodes: 96,
            feature_dim: 16,
            hidden: 12,
            train_epochs: 3,
            precision: 2,
            variants: 2,
        }),
        ..LoadgenConfig::default()
    })
    .unwrap_or_else(|e| panic!("loadgen failed: {e}"));

    assert_eq!(report.mode, "gnn");
    assert_eq!(report.wrong, 0, "chaos must never corrupt a served score: {}", report.to_json());
    assert!(
        report.completed >= 30,
        "retries should recover most of the 60 requests: {}",
        report.to_json()
    );

    let mut c = ServeClient::connect_with_retry(&addr, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("connect failed: {e}"));
    c.shutdown().unwrap_or_else(|e| panic!("shutdown failed: {e}"));
    server_thread
        .join()
        .unwrap_or_else(|_| panic!("server thread panicked"))
        .unwrap_or_else(|e| panic!("server run failed: {e}"));
}

/// Regression test for the client socket timeouts: a listener that
/// accepts and then never answers must surface as a prompt I/O error,
/// not a forever-hung client.
#[test]
fn silent_listener_times_out_instead_of_hanging() {
    // Zero-rate plan: chaos-free, the scope only serializes this test
    // against the soaks above.
    let _scope = ChaosScope::install(FaultPlan::new(0));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let hold = std::thread::spawn(move || {
        // Accept, read nothing, answer nothing, hang up after a while.
        let conn = listener.accept();
        std::thread::sleep(Duration::from_millis(1500));
        drop(conn);
    });

    let mut client = ServeClient::connect(addr).expect("connect succeeds (SYN is accepted)");
    client.set_io_timeouts(Some(Duration::from_millis(250))).expect("timeouts");
    let t0 = Instant::now();
    let err = client.ping().expect_err("a silent listener must not produce a pong");
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "ping must fail via the read timeout, not hang: {:?}",
        t0.elapsed()
    );
    assert!(matches!(err, ClientError::Io(_)), "expected an I/O timeout, got {err:?}");
    let _ = hold.join();
}
