//! Chaos soaks for the serving stack: injected faults must degrade
//! service (errors, retries, fallbacks) but never corrupt it, and
//! kernel-site plans must replay identical injection counters from the
//! seed string alone.
//!
//! Own test binary: an installed fault plan is process-global state, so
//! these tests must never share a process with the regular suites. Every
//! test here holds a [`ChaosScope`] — including the chaos-free ones —
//! because the scope also serializes the tests against each other;
//! unscoped traffic racing a scoped test would consume draw indices and
//! break replay.

use std::time::{Duration, Instant};

use flashsparse::{outputs_match, DEFAULT_TOLERANCE};
use fs_chaos::{ChaosScope, FaultPlan, FaultSite};
use fs_matrix::gen::random_uniform;
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_serve::loadgen::{run, LoadgenConfig, MatrixSpec};
use fs_serve::{
    ClientError, EngineConfig, ServeClient, ServeEngine, Server, ServerConfig, SpmmOutcome,
    SpmmRequest,
};

/// The ISSUE's acceptance soak, engine-level: a seeded fragment-bit plan
/// at rate 1e-3 over 200 identical requests on a single worker. Every
/// response must verify against the scalar reference (zero wrong), and
/// re-running the identical plan must reproduce identical fault
/// counters, resilience totals, and output bits.
#[test]
fn seeded_soak_is_wrong_free_and_replays_identically() {
    let plan: FaultPlan = "seed=99;frag-bit=0.001".parse().expect("plan parses");
    let (outs_a, report_a, stats_a) = engine_soak(&plan, 200);
    let (outs_b, report_b, stats_b) = engine_soak(&plan, 200);
    assert_eq!(report_a, report_b, "fault counters must replay from the plan string");
    assert_eq!(stats_a, stats_b, "resilience totals must replay too");
    assert_eq!(outs_a, outs_b, "delivered bits must replay too");
    let (evaluated, injected) = report_a.site(FaultSite::FragBitFlip);
    assert!(evaluated > 1_000, "200 requests drive thousands of MMA draws, saw {evaluated}");
    assert!(injected > 0, "rate 1e-3 over {evaluated} evaluations should fire");
}

/// Run `requests` identical requests through a verifying single-worker
/// engine under `plan`; returns (output bits, fault report, resilience
/// stats), asserting zero wrong responses along the way.
fn engine_soak(
    plan: &FaultPlan,
    requests: usize,
) -> (Vec<Vec<u32>>, fs_chaos::FaultReport, (u64, u64, u64, u64)) {
    let _scope = ChaosScope::install(plan.clone());
    let e = ServeEngine::start(EngineConfig {
        workers: 1,
        max_batch: 1,
        verify: true,
        // The breaker bypass decision depends on wall-clock cooldowns;
        // disable it so the soak stays a pure function of the plan.
        breaker_threshold: u32::MAX,
        ..EngineConfig::default()
    });
    let csr = CsrMatrix::from_coo(&random_uniform::<f32>(96, 96, 800, 3));
    let info = e.register_matrix("t0", csr.clone()).expect("registered");
    let b = DenseMatrix::from_fn(96, 16, |r, c| ((r + c) % 5) as f32 * 0.25);
    let reference = csr.spmm_reference(&b);
    let mut outs = Vec::with_capacity(requests);
    for i in 0..requests {
        let outcome = e.spmm_blocking(SpmmRequest {
            tenant: "t0".to_string(),
            matrix_id: info.id,
            b: b.clone(),
            deadline: Some(Duration::from_secs(60)),
        });
        match outcome {
            Ok(SpmmOutcome::Done(resp)) => {
                assert!(resp.verified, "request {i}");
                assert!(
                    outputs_match(&resp.out, &reference, DEFAULT_TOLERANCE),
                    "request {i} delivered a wrong response (level {:?})",
                    resp.fallback_level
                );
                outs.push(resp.out.to_f32_vec().iter().map(|v| v.to_bits()).collect());
            }
            other => panic!("request {i} failed: {other:?}"),
        }
    }
    let report = fs_chaos::report();
    let stats = e.resilience_stats();
    e.shutdown();
    (outs, report, stats)
}

/// Full-stack soak over TCP: worker kills, stalls, frame corruption and
/// truncation all active at once. Clients retry with backoff and
/// reconnect; the contract is completed > 0 and wrong == 0 — errors are
/// expected, silent corruption is not. (Transport-layer plans replay
/// statistically, not bit-exactly: thread scheduling reorders draws.)
#[test]
fn tcp_soak_with_kills_and_frame_faults_serves_no_wrong_bytes() {
    let plan: FaultPlan = "seed=7;frag-bit=0.001;worker-kill=0.02;worker-stall=0.05;\
                           frame-corrupt=0.05;frame-truncate=0.02;stall-ms=5"
        .parse()
        .expect("plan parses");
    let _scope = ChaosScope::install(plan);
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig { workers: 2, verify: true, ..EngineConfig::default() },
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| panic!("bind failed: {e}"));
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let report = run(&LoadgenConfig {
        addr,
        concurrency: 2,
        requests: 120,
        n: 16,
        matrix: MatrixSpec::Uniform { rows: 128, cols: 128, nnz: 2000 },
        chaos: true,
        ..LoadgenConfig::default()
    })
    .unwrap_or_else(|e| panic!("loadgen failed: {e}"));

    assert_eq!(report.wrong, 0, "chaos must never corrupt a response: {}", report.to_json());
    assert!(
        report.completed >= 60,
        "retries should recover most of the 120 requests: {}",
        report.to_json()
    );

    let mut c = ServeClient::connect_with_retry(&addr, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("connect failed: {e}"));
    c.shutdown().unwrap_or_else(|e| panic!("shutdown failed: {e}"));
    server_thread
        .join()
        .unwrap_or_else(|_| panic!("server thread panicked"))
        .unwrap_or_else(|e| panic!("server run failed: {e}"));
}

/// Regression test for the client socket timeouts: a listener that
/// accepts and then never answers must surface as a prompt I/O error,
/// not a forever-hung client.
#[test]
fn silent_listener_times_out_instead_of_hanging() {
    // Zero-rate plan: chaos-free, the scope only serializes this test
    // against the soaks above.
    let _scope = ChaosScope::install(FaultPlan::new(0));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let hold = std::thread::spawn(move || {
        // Accept, read nothing, answer nothing, hang up after a while.
        let conn = listener.accept();
        std::thread::sleep(Duration::from_millis(1500));
        drop(conn);
    });

    let mut client = ServeClient::connect(addr).expect("connect succeeds (SYN is accepted)");
    client.set_io_timeouts(Some(Duration::from_millis(250))).expect("timeouts");
    let t0 = Instant::now();
    let err = client.ping().expect_err("a silent listener must not produce a pong");
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "ping must fail via the read timeout, not hang: {:?}",
        t0.elapsed()
    );
    assert!(matches!(err, ClientError::Io(_)), "expected an I/O timeout, got {err:?}");
    let _ = hold.join();
}
