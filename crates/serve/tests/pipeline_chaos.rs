//! Seeded-chaos regression for the pipelined engine: fault-injection
//! replay must be byte-stable regardless of the pipeline flag, the
//! window scheduler, or steal order.
//!
//! The guarantee is structural — chaos flips [`fs_tcu::ExecMode::auto`]
//! to the simulator, which (a) disables the engine's overlapped cold
//! path (the `overlap_ok` guard requires a fast mode) and (b) makes
//! every `*_with_sched` entry point ignore its scheduler and run the
//! classic in-order simulated kernel, so chaos draw indices are consumed
//! in a deterministic order. These tests pin that structure: a pipelined
//! engine under chaos must replay bit-identically to a classic one, and
//! must never count an overlap.
//!
//! Own test binary: an installed fault plan is process-global, and the
//! scope also serializes these tests against each other.

use std::time::Duration;

use flashsparse::{outputs_match, SchedMode, DEFAULT_TOLERANCE};
use fs_chaos::{ChaosScope, FaultPlan, FaultSite};
use fs_matrix::gen::random_uniform;
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_serve::{EngineConfig, ServeEngine, SpmmOutcome, SpmmRequest};

/// Run `requests` identical verified requests through a single-worker
/// engine under `plan` with the given pipeline flag; returns (output
/// bits, fault report, overlap count).
fn soak(
    plan: &FaultPlan,
    pipeline: bool,
    requests: usize,
) -> (Vec<Vec<u32>>, fs_chaos::FaultReport, u64) {
    let _scope = ChaosScope::install(plan.clone());
    let e = ServeEngine::start(EngineConfig {
        workers: 1,
        max_batch: 1,
        verify: true,
        pipeline,
        breaker_threshold: u32::MAX,
        ..EngineConfig::default()
    });
    let csr = CsrMatrix::from_coo(&random_uniform::<f32>(96, 96, 800, 3));
    let info = e.register_matrix("t0", csr.clone()).expect("registered");
    let b = DenseMatrix::from_fn(96, 16, |r, c| ((r + c) % 5) as f32 * 0.25);
    let reference = csr.spmm_reference(&b);
    let mut outs = Vec::with_capacity(requests);
    for i in 0..requests {
        let outcome = e.spmm_blocking(SpmmRequest {
            tenant: "t0".to_string(),
            matrix_id: info.id,
            b: b.clone(),
            deadline: Some(Duration::from_secs(60)),
        });
        match outcome {
            Ok(SpmmOutcome::Done(resp)) => {
                assert!(
                    outputs_match(&resp.out, &reference, DEFAULT_TOLERANCE),
                    "request {i} delivered a wrong response under chaos"
                );
                outs.push(resp.out.to_f32_vec().iter().map(|v| v.to_bits()).collect());
            }
            other => panic!("request {i} failed: {other:?}"),
        }
    }
    let report = fs_chaos::report();
    let overlaps = e.overlap_count();
    e.shutdown();
    (outs, report, overlaps)
}

/// A pipelined engine under a seeded kernel-fault plan must (a) never
/// take the overlapped cold path, and (b) replay the exact fault
/// counters and output bits of the classic engine — the pipeline is
/// invisible to chaos replay.
#[test]
fn pipelined_engine_replays_chaos_identically_to_classic() {
    let plan: FaultPlan = "seed=41;frag-bit=0.001".parse().expect("plan parses");
    let (outs_classic, report_classic, ov_classic) = soak(&plan, false, 60);
    let (outs_pipe, report_pipe, ov_pipe) = soak(&plan, true, 60);
    assert_eq!(ov_classic, 0);
    assert_eq!(ov_pipe, 0, "chaos must keep the overlapped path disabled");
    assert_eq!(report_classic, report_pipe, "pipeline flag must not perturb fault draw order");
    assert_eq!(outs_classic, outs_pipe, "pipeline flag must not perturb delivered bits");
    let (evaluated, _) = report_pipe.site(FaultSite::FragBitFlip);
    assert!(evaluated > 1_000, "the soak must actually drive kernel draws, saw {evaluated}");
}

/// Re-running the same seeded plan through the pipelined engine twice
/// replays identical counters and bits — steal order cannot perturb
/// replay because chaos forces the sequential simulated kernel.
#[test]
fn pipelined_chaos_soak_replays_from_the_seed_alone() {
    let plan: FaultPlan = "seed=77;frag-bit=0.002".parse().expect("plan parses");
    let (outs_a, report_a, _) = soak(&plan, true, 60);
    let (outs_b, report_b, _) = soak(&plan, true, 60);
    assert_eq!(report_a, report_b, "fault counters must replay from the plan string");
    assert_eq!(outs_a, outs_b, "delivered bits must replay from the plan string");
}

/// The `*_with_sched` kernel entry points under chaos: an explicit
/// work-stealing scheduler must be ignored (the simulator runs in-order)
/// so outputs, counters, and fault draws match the sequential call
/// bit-for-bit.
#[test]
fn sched_entry_points_ignore_the_scheduler_under_chaos() {
    use flashsparse::{spmm_with_sched, TcuPrecision, ThreadMapping};
    use fs_format::MeBcrs;
    use fs_precision::F16;

    let plan: FaultPlan = "seed=13;frag-bit=0.005".parse().expect("plan parses");
    let csr = CsrMatrix::from_coo(&random_uniform::<f32>(80, 80, 600, 9));
    let me = MeBcrs::from_csr(&csr.cast::<F16>(), F16::SPEC);
    let b = DenseMatrix::<F16>::from_fn(80, 16, |r, c| ((r * 3 + c) % 7) as f32 * 0.25);

    let run = |sched: SchedMode| {
        let _scope = ChaosScope::install(plan.clone());
        let (out, counters) = spmm_with_sched(&me, &b, ThreadMapping::MemoryEfficient, sched);
        let bits: Vec<u32> = out.as_slice().iter().map(|v| v.to_f32().to_bits()).collect();
        (bits, counters, fs_chaos::report())
    };
    let (bits_seq, k_seq, rep_seq) = run(SchedMode::Sequential);
    let (bits_ws, k_ws, rep_ws) = run(SchedMode::WorkStealing { workers: 4 });
    assert_eq!(bits_seq, bits_ws, "steal order must not perturb chaos output bits");
    assert_eq!(k_seq, k_ws, "steal order must not perturb counters");
    assert_eq!(rep_seq, rep_ws, "steal order must not perturb fault draws");
    let (evaluated, _) = rep_seq.site(FaultSite::FragBitFlip);
    assert!(evaluated > 0, "the plan must actually evaluate kernel draws");
}
