//! Property-based tests for the serving layer: the cache byte-budget
//! invariant and hit/miss output equivalence (ISSUE 2 satellite).

use std::time::Duration;

use flashsparse::{auto_tune, TranslatedMatrix};
use fs_matrix::gen::random_uniform;
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_serve::{
    CachedFormat, EngineConfig, Fingerprint, FormatCache, ServeEngine, SpmmOutcome, SpmmRequest,
};
use fs_tcu::GpuSpec;
use proptest::prelude::*;

fn arb_csr() -> impl Strategy<Value = CsrMatrix<f32>> {
    (1usize..96, 1usize..96, 0usize..500, 0u64..10_000)
        .prop_map(|(r, c, nnz, seed)| CsrMatrix::from_coo(&random_uniform::<f32>(r, c, nnz, seed)))
}

fn translate(csr: &CsrMatrix<f32>, n: usize) -> CachedFormat {
    let choice = auto_tune(csr, n, GpuSpec::RTX4090);
    CachedFormat { translated: TranslatedMatrix::translate(csr, &choice), choice }
}

fn spmm_via_engine(cfg: EngineConfig, csr: &CsrMatrix<f32>, b: &DenseMatrix<f32>) -> Vec<Vec<f32>> {
    let engine = ServeEngine::start(cfg);
    let info = engine.register_matrix("t", csr.clone()).expect("registered");
    let mut outs = Vec::new();
    for _ in 0..2 {
        let outcome = engine.spmm_blocking(SpmmRequest {
            tenant: "t".to_string(),
            matrix_id: info.id,
            b: b.clone(),
            deadline: Some(Duration::from_secs(60)),
        });
        match outcome {
            Ok(SpmmOutcome::Done(resp)) => outs.push(resp.out.to_f32_vec()),
            other => panic!("request failed: {other:?}"),
        }
    }
    engine.shutdown();
    outs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The LRU never holds more resident bytes than its budget, across a
    /// random interleaving of inserts, lookups, and duplicate inserts —
    /// including budgets far too small for any single entry.
    #[test]
    fn cache_never_exceeds_budget(
        budget_kb in 0usize..64,
        ops in prop::collection::vec((0usize..12, 0u8..3), 1..40),
    ) {
        let budget = budget_kb * 1024;
        let mut cache = FormatCache::new(budget);
        // A small pool of distinct matrices to churn through.
        let pool: Vec<CsrMatrix<f32>> = (0..12)
            .map(|i| {
                CsrMatrix::from_coo(&random_uniform::<f32>(
                    8 + i * 7,
                    8 + i * 5,
                    10 + i * 40,
                    i as u64,
                ))
            })
            .collect();
        let fps: Vec<Fingerprint> = pool.iter().map(Fingerprint::of).collect();

        for (idx, op) in ops {
            match op {
                0 => {
                    let _ = cache.get(&fps[idx]);
                }
                _ => {
                    let _ = cache.insert(fps[idx], translate(&pool[idx], 16));
                }
            }
            prop_assert!(
                cache.resident_bytes() <= budget,
                "resident {} > budget {} after op on matrix {}",
                cache.resident_bytes(),
                budget,
                idx
            );
        }
        let s = cache.stats();
        prop_assert!(s.resident_bytes <= s.budget_bytes);
        prop_assert_eq!(s.resident_bytes, cache.resident_bytes());
    }

    /// A cache hit returns bit-identical SpMM output to the cold path:
    /// the same request through a warm engine (second call hits) and a
    /// cold engine (budget 0, translate+tune every time) must agree to
    /// the bit, and the warm engine must agree with itself across the
    /// miss→hit transition. Classic path only (`pipeline: false`): the
    /// pipelined engine answers the miss with the FALLBACK variant and
    /// upgrades in the background, so its miss→hit bits may differ by
    /// design — its own invariant is the property below.
    #[test]
    fn cache_hit_is_bit_identical_to_cold_path(csr in arb_csr(), n in 1usize..48) {
        let b_vals: Vec<f32> =
            (0..csr.cols() * n).map(|i| ((i % 13) as f32 - 6.0) * 0.375).collect();
        let b = DenseMatrix::from_f32_slice(csr.cols(), n, &b_vals);

        let warm = spmm_via_engine(
            EngineConfig { workers: 1, pipeline: false, ..EngineConfig::default() },
            &csr,
            &b,
        );
        let cold = spmm_via_engine(
            EngineConfig { workers: 1, cold: true, pipeline: false, ..EngineConfig::default() },
            &csr,
            &b,
        );
        // Miss→hit within the warm engine: identical bits.
        prop_assert_eq!(
            warm[0].iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
            warm[1].iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        );
        // Warm hit vs cold path: identical bits.
        prop_assert_eq!(
            warm[1].iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
            cold[0].iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        );
    }

    /// The pipelined cold path is not a numerics change: a cold pipelined
    /// engine (every request misses, so every request runs the overlapped
    /// FALLBACK-variant SpMM) must agree bit-for-bit with a direct
    /// FALLBACK-variant translate + execute, for every ragged shape.
    #[test]
    fn overlapped_cold_path_is_bit_identical_to_fallback_variant(
        csr in arb_csr(),
        n in 1usize..48,
    ) {
        let b_vals: Vec<f32> =
            (0..csr.cols() * n).map(|i| ((i % 13) as f32 - 6.0) * 0.375).collect();
        let b = DenseMatrix::from_f32_slice(csr.cols(), n, &b_vals);

        let choice = flashsparse::TuneChoice::FALLBACK;
        let want = TranslatedMatrix::translate(&csr, &choice)
            .spmm_f32(&b, choice.mapping)
            .0
            .to_f32_vec();

        let served = spmm_via_engine(
            EngineConfig { workers: 1, cold: true, ..EngineConfig::default() },
            &csr,
            &b,
        );
        for out in &served {
            prop_assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
            );
        }
    }
}
