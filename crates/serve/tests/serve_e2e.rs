//! End-to-end serving tests: micro-batching equivalence under the
//! sanitizer's `Record` mode, and the TCP protocol over loopback.

use std::thread;
use std::time::Duration;

use fs_matrix::gen::{random_uniform, rmat, RmatConfig};
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_serve::protocol::{read_frame, write_frame, ErrorCode, Request, Response};
use fs_serve::{
    EngineConfig, ServeClient, ServeEngine, Server, ServerConfig, SpmmOutcome, SpmmRequest,
};
use fs_tcu::SanitizeScope;

fn dense_b(rows: usize, n: usize, salt: usize) -> DenseMatrix<f32> {
    let vals: Vec<f32> =
        (0..rows * n).map(|i| (((i + salt * 31) % 17) as f32 - 8.0) * 0.25).collect();
    DenseMatrix::from_f32_slice(rows, n, &vals)
}

/// Micro-batched execution must produce exactly the same bits as
/// one-at-a-time execution, with the sanitizer recording (not panicking)
/// and reporting zero violations — the ISSUE's batching-equivalence
/// acceptance test.
#[test]
fn micro_batched_results_match_one_at_a_time() {
    let _scope = SanitizeScope::record();
    let csr = CsrMatrix::from_coo(&rmat::<f32>(7, 6, RmatConfig::GRAPH500, true, 23));
    let n = 24;
    let requests = 24;
    let operands: Vec<DenseMatrix<f32>> =
        (0..requests).map(|i| dense_b(csr.cols(), n, i)).collect();

    // Reference: a single-worker engine with max_batch = 1, requests
    // issued strictly one at a time.
    let seq =
        ServeEngine::start(EngineConfig { workers: 1, max_batch: 1, ..EngineConfig::default() });
    let seq_id = seq.register_matrix("ref", csr.clone()).expect("registered").id;
    let mut reference = Vec::new();
    for b in &operands {
        match seq.spmm_blocking(SpmmRequest {
            tenant: "ref".to_string(),
            matrix_id: seq_id,
            b: b.clone(),
            deadline: Some(Duration::from_secs(60)),
        }) {
            Ok(SpmmOutcome::Done(resp)) => {
                assert_eq!(resp.batch_size, 1);
                assert_eq!(resp.counters.sanitizer_violations, 0);
                reference.push(resp.out.to_f32_vec());
            }
            other => panic!("sequential request failed: {other:?}"),
        }
    }
    seq.shutdown();

    // Batched: enqueue everything before the workers drain the queue so
    // micro-batches actually form, then wait on all tickets.
    let batched =
        ServeEngine::start(EngineConfig { workers: 2, max_batch: 8, ..EngineConfig::default() });
    let bat_id = batched.register_matrix("bat", csr.clone()).expect("registered").id;
    let tickets: Vec<_> = operands
        .iter()
        .map(|b| {
            batched
                .submit(SpmmRequest {
                    tenant: "bat".to_string(),
                    matrix_id: bat_id,
                    b: b.clone(),
                    deadline: Some(Duration::from_secs(60)),
                })
                .unwrap_or_else(|e| panic!("submit failed: {e}"))
        })
        .collect();
    let mut max_batch_seen = 0;
    for (i, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            SpmmOutcome::Done(resp) => {
                assert_eq!(resp.counters.sanitizer_violations, 0, "request {i}");
                max_batch_seen = max_batch_seen.max(resp.batch_size);
                let got: Vec<u32> = resp.out.to_f32_vec().iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = reference[i].iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "request {i} diverged from the sequential reference");
            }
            other => panic!("batched request {i} failed: {other:?}"),
        }
    }
    batched.shutdown();
    // The engine's own sanitizer totals must also be clean.
    let metrics = batched.metrics_json();
    assert!(metrics.contains("\"sanitizer_violations\":0"), "{metrics}");
    assert!(max_batch_seen >= 1);
}

/// Full TCP round trip on loopback: load, repeated SpMM showing the
/// cache warming up, metrics, and an acknowledged drain/shutdown.
#[test]
fn tcp_round_trip_on_loopback() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        // Strict bit-determinism across every response is a classic-path
        // property: the pipelined cold path answers the first miss with
        // the FALLBACK variant and upgrades to the tuned one in the
        // background, which legitimately changes rounding. The pipelined
        // path has its own equivalence tests (`pipeline_chaos.rs`).
        engine: EngineConfig { workers: 2, pipeline: false, ..EngineConfig::default() },
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| panic!("bind failed: {e}"));
    let addr = server.local_addr();
    let server_thread = thread::spawn(move || server.run());

    let mut client = ServeClient::connect_with_retry(&addr, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("connect failed: {e}"));
    let csr = CsrMatrix::from_coo(&random_uniform::<f32>(96, 80, 700, 5));
    let loaded =
        client.load_matrix("tenant-a", &csr).unwrap_or_else(|e| panic!("load failed: {e}"));
    assert_eq!(loaded.nnz as usize, csr.nnz());

    let n = 16;
    let b: Vec<f32> = (0..csr.cols() * n).map(|i| (i % 5) as f32).collect();
    let mut last = None;
    let mut hits = 0;
    for _ in 0..4 {
        let resp = client
            .spmm("tenant-a", loaded.matrix_id, csr.cols(), n, &b, 60_000)
            .unwrap_or_else(|e| panic!("spmm failed: {e}"));
        assert_eq!(resp.rows, csr.rows());
        assert_eq!(resp.n, n);
        if resp.cache_hit {
            hits += 1;
        }
        if let Some(prev) = &last {
            assert_eq!(prev, &resp.out, "served output must be deterministic");
        }
        last = Some(resp.out);
    }
    assert!(hits >= 3, "expected the warm path after the first request, saw {hits} hits");

    // Dimension mismatch is a clean server-side error, not a dropped
    // connection: the operand is well-formed on the wire but has the
    // wrong number of rows for the loaded matrix.
    let bad_b = vec![0.0f32; (csr.cols() + 1) * n];
    let err = client.spmm("tenant-a", loaded.matrix_id, csr.cols() + 1, n, &bad_b, 0);
    assert!(err.is_err(), "mismatched operand must be refused");

    let metrics = client.metrics().unwrap_or_else(|e| panic!("metrics failed: {e}"));
    assert!(metrics.contains("\"cache\""), "{metrics}");
    assert!(metrics.contains("tenant-a"), "{metrics}");

    client.shutdown().unwrap_or_else(|e| panic!("shutdown failed: {e}"));
    server_thread
        .join()
        .unwrap_or_else(|_| panic!("server thread panicked"))
        .unwrap_or_else(|e| panic!("server run failed: {e}"));
}

/// A ~30-byte `Load` frame declaring `u32::MAX` rows with zero entries
/// must be refused with `BadRequest` before the server allocates
/// anything, and the connection must stay usable (regression test for
/// the remote-OOM via unvalidated dimensions).
#[test]
fn oversized_load_dimensions_are_refused_without_allocation() {
    let server =
        Server::bind(&ServerConfig::default()).unwrap_or_else(|e| panic!("bind failed: {e}"));
    let addr = server.local_addr();
    let server_thread = thread::spawn(move || server.run());

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let req = Request::Load {
        tenant: "attacker".to_string(),
        rows: u32::MAX,
        cols: 1,
        entries: Vec::new(),
    };
    write_frame(&mut stream, &req.encode().expect("encode")).expect("write");
    let frame = read_frame(&mut stream).expect("read").expect("response frame");
    match Response::decode(&frame).expect("decode") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // The server survived and the same connection still answers.
    write_frame(&mut stream, &Request::Ping.encode().expect("encode")).expect("write");
    let frame = read_frame(&mut stream).expect("read").expect("pong frame");
    assert_eq!(Response::decode(&frame).expect("decode"), Response::Pong);

    write_frame(&mut stream, &Request::Shutdown.encode().expect("encode")).expect("write");
    let _ = read_frame(&mut stream);
    server_thread
        .join()
        .unwrap_or_else(|_| panic!("server thread panicked"))
        .unwrap_or_else(|e| panic!("server run failed: {e}"));
}

/// A peer that connects and then goes silent must not block graceful
/// shutdown: `Server::run` shuts the read half of every tracked
/// connection at drain time, so the idle handler exits and the join
/// completes (regression test for the shutdown hang).
#[test]
fn idle_connection_does_not_block_shutdown() {
    let server =
        Server::bind(&ServerConfig::default()).unwrap_or_else(|e| panic!("bind failed: {e}"));
    let addr = server.local_addr();
    let server_thread = thread::spawn(move || server.run());

    // An idle peer: connects, sends nothing, and stays open.
    let idle = std::net::TcpStream::connect(addr).expect("idle connect");

    let mut client = ServeClient::connect_with_retry(&addr, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("connect failed: {e}"));
    client.shutdown().unwrap_or_else(|e| panic!("shutdown failed: {e}"));

    // With the idle peer still open, run() must return anyway.
    server_thread
        .join()
        .unwrap_or_else(|_| panic!("server thread panicked"))
        .unwrap_or_else(|e| panic!("server run failed: {e}"));
    drop(idle);
}

/// A peer that never accepts must fail the dial within the configured
/// connect timeout, not the kernel's minutes-long SYN retry schedule
/// (regression test for the unbounded `TcpStream::connect` a fan-out
/// router cannot afford). A listener that never calls `accept` still
/// completes handshakes from its kernel backlog, so the test first
/// saturates the backlog with held connections; once it is full the
/// kernel drops further SYNs and the dial genuinely hangs.
#[test]
fn connect_timeout_bounds_the_dial() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");

    // Fill the accept queue (backlog is typically 128; stop at the
    // first dial the kernel no longer answers).
    let budget = Duration::from_millis(250);
    let mut held = Vec::new();
    let mut saturated = None;
    for _ in 0..1024 {
        let t0 = std::time::Instant::now();
        match std::net::TcpStream::connect_timeout(&addr, budget) {
            Ok(s) => held.push(s),
            Err(_) => {
                saturated = Some(t0.elapsed());
                break;
            }
        }
    }
    let elapsed = saturated.expect("backlog never saturated; cannot exercise the timeout");
    assert!(
        elapsed < budget + Duration::from_secs(2),
        "raw dial took {elapsed:?} against a {budget:?} timeout"
    );

    // The client's dial path must honor the same bound.
    let t0 = std::time::Instant::now();
    let result = ServeClient::connect_with_timeout(addr, budget);
    let elapsed = t0.elapsed();
    assert!(result.is_err(), "a full backlog must not accept");
    assert!(
        elapsed < budget + Duration::from_secs(2),
        "client dial took {elapsed:?}; the {budget:?} connect timeout did not bound it"
    );
    drop(held);
    drop(listener);
}

/// The metrics document leads with a `server` section carrying the
/// listen address and the bind-time epoch, so a router (or run script)
/// can tell a measured process from a silently restarted one.
#[test]
fn metrics_carry_server_identity() {
    let server =
        Server::bind(&ServerConfig::default()).unwrap_or_else(|e| panic!("bind failed: {e}"));
    let addr = server.local_addr();
    let epoch = server.start_epoch();
    assert!(epoch > 0, "bind-time epoch must be set");
    let server_thread = thread::spawn(move || server.run());

    let mut client = ServeClient::connect_with_retry(&addr, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("connect failed: {e}"));
    let metrics = client.metrics().unwrap_or_else(|e| panic!("metrics failed: {e}"));
    assert!(
        metrics
            .starts_with(&format!("{{\"server\":{{\"addr\":\"{addr}\",\"start_epoch\":{epoch}}}")),
        "metrics must lead with the server section: {metrics}"
    );

    client.shutdown().unwrap_or_else(|e| panic!("shutdown failed: {e}"));
    server_thread
        .join()
        .unwrap_or_else(|_| panic!("server thread panicked"))
        .unwrap_or_else(|e| panic!("server run failed: {e}"));
}
