//! End-to-end tracing tests for the serving stack.
//!
//! Own test binary: an armed tracer is process-global state, so these
//! tests hold a [`fs_trace::TraceScope`] (which also serializes them
//! against each other) and must not share a process with suites that
//! assume tracing is disarmed.

use std::time::Duration;

use fs_chaos::{ChaosScope, FaultPlan};
use fs_matrix::gen::random_uniform;
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_serve::{
    EngineConfig, ServeClient, ServeEngine, Server, ServerConfig, SpmmOutcome, SpmmRequest,
};
use fs_trace::TraceScope;

const SERVE_SITES: [&str; 5] =
    ["serve.decode", "serve.queue", "serve.batch", "serve.execute", "serve.encode"];

/// The serving smoke with tracing armed: drive real TCP traffic, fetch
/// the trace over the wire, and check that both exports are non-empty
/// and that every serve-stage site reports a full quantile summary.
#[test]
fn armed_server_smoke_exports_every_serve_stage() {
    let _trace = TraceScope::armed();
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig { workers: 2, ..EngineConfig::default() },
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| panic!("bind failed: {e}"));
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let csr = CsrMatrix::from_coo(&random_uniform::<f32>(128, 128, 2000, 11));
    let b: Vec<f32> = (0..128 * 16).map(|i| ((i % 9) as f32 - 4.0) * 0.5).collect();
    let (prometheus, chrome) = {
        let mut client = ServeClient::connect(addr).expect("connect");
        let loaded = client.load_matrix("t0", &csr).expect("load");
        for _ in 0..12 {
            let resp = client.spmm("t0", loaded.matrix_id, 128, 16, &b, 0).expect("spmm");
            assert_eq!(resp.rows, 128);
        }
        let exports = client.trace().expect("trace fetch");
        client.shutdown().expect("shutdown");
        exports
    };
    server_thread.join().expect("server thread").expect("server run");

    // Every serve-stage site carries a non-zero count and all three
    // quantiles in the Prometheus text.
    let counts = fs_trace::export::scrape_prometheus_counts(&prometheus);
    for stage in SERVE_SITES {
        let (_, count) = counts
            .iter()
            .find(|(site, _)| *site == stage)
            .unwrap_or_else(|| panic!("{stage} missing from scrape"));
        assert!(*count > 0, "{stage} recorded no spans:\n{prometheus}");
        for q in ["0.5", "0.95", "0.99"] {
            let line = format!("fs_span_seconds{{site=\"{stage}\",quantile=\"{q}\"}}");
            assert!(prometheus.contains(&line), "missing `{line}`:\n{prometheus}");
        }
    }
    // The chrome timeline has real duration events for the eventful
    // serve stages plus the closing span_counts counter event.
    assert!(chrome.contains("\"name\":\"serve.execute\""), "no serve.execute events:\n{chrome}");
    assert!(chrome.contains("\"name\":\"span_counts\""), "no span_counts event:\n{chrome}");
}

/// The determinism regression from the ISSUE: an armed tracer under a
/// seeded chaos soak replays identical span counts from the seed alone.
/// Times vary run to run; counts must not.
#[test]
fn chaos_soak_replays_identical_span_counts() {
    let plan: FaultPlan = "seed=99;frag-bit=0.001".parse().expect("plan parses");
    let counts_a = traced_soak(&plan, 200);
    let counts_b = traced_soak(&plan, 200);
    assert_eq!(counts_a, counts_b, "span counts must replay from the plan string");
    let batches =
        counts_a.iter().find(|(site, _)| *site == "serve.batch").map(|(_, n)| *n).unwrap_or(0);
    assert_eq!(batches, 200, "one batch span per sequential request");
}

/// Single-worker, unbatched, breaker-free soak under `plan` with the
/// tracer armed; returns the registry's span counts after the engine
/// has drained (mirrors the chaos_e2e replay harness).
fn traced_soak(plan: &FaultPlan, requests: usize) -> Vec<(&'static str, u64)> {
    let _chaos = ChaosScope::install(plan.clone());
    let _trace = TraceScope::armed();
    let e = ServeEngine::start(EngineConfig {
        workers: 1,
        max_batch: 1,
        verify: true,
        breaker_threshold: u32::MAX,
        ..EngineConfig::default()
    });
    let csr = CsrMatrix::from_coo(&random_uniform::<f32>(96, 96, 800, 3));
    let info = e.register_matrix("t0", csr).expect("registered");
    let b = DenseMatrix::from_fn(96, 16, |r, c| ((r + c) % 5) as f32 * 0.25);
    for i in 0..requests {
        let outcome = e.spmm_blocking(SpmmRequest {
            tenant: "t0".to_string(),
            matrix_id: info.id,
            b: b.clone(),
            deadline: Some(Duration::from_secs(60)),
        });
        assert!(matches!(outcome, Ok(SpmmOutcome::Done(_))), "request {i}: {outcome:?}");
    }
    // Snapshot only after the workers have drained and joined — the
    // last batch span drops on a worker thread.
    e.shutdown();
    fs_trace::snapshot().span_counts()
}
