//! End-to-end GNN inference serving: a trained model registered over
//! TCP and served via `REQ_GNN_INFER` must reproduce the offline fs-gnn
//! forward pass **bit for bit** at every precision, for both GCN and
//! AGNN, on the cache-miss and the cache-hit path alike.

use std::thread;
use std::time::Duration;

use fs_gnn::nn::cross_entropy;
use fs_gnn::{normalize_adjacency, AgnnModel, GcnModel, GnnWeights, SparseOps};
use fs_matrix::gen::{sbm, SbmConfig};
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_serve::{
    backend_for_precision, EngineConfig, GnnError, GnnInferRequest, ServeClient, ServeEngine,
    Server, ServerConfig, SpmmOutcome, SpmmRequest,
};
use fs_tcu::GpuSpec;

struct Fixture {
    adj: CsrMatrix<f32>,
    features: DenseMatrix<f32>,
    classes: usize,
}

fn fixture() -> Fixture {
    let ds = sbm(
        SbmConfig { nodes: 96, feature_dim: 16, feature_signal: 1.5, ..Default::default() },
        17,
    );
    Fixture { adj: normalize_adjacency(&ds.adjacency), features: ds.features, classes: ds.classes }
}

/// Briefly train a GCN so the registered weights are learned ones, not
/// just the init (training exercises the same kernels inference will).
fn trained_gcn(fx: &Fixture) -> GnnWeights {
    let ds = sbm(
        SbmConfig { nodes: 96, feature_dim: 16, feature_signal: 1.5, ..Default::default() },
        17,
    );
    let ops = SparseOps::new(fs_gnn::GnnBackend::CudaFp32, GpuSpec::RTX4090);
    let mut model = GcnModel::new(&[fx.features.cols(), 12, fx.classes], 0.01, 5);
    for _ in 0..5 {
        let logits = model.forward(&ops, &fx.adj, &fx.features);
        let (_, grad) = cross_entropy(&logits, &ds.labels, &ds.train_idx);
        model.backward_and_step(&ops, &fx.adj, &grad);
    }
    model.export_weights()
}

fn serve_and_check(weights: GnnWeights, fx: &Fixture) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig { workers: 1, ..EngineConfig::default() },
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| panic!("bind failed: {e}"));
    let addr = server.local_addr();
    let server_thread = thread::spawn(move || server.run());

    let mut client = ServeClient::connect_with_retry(&addr, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("connect failed: {e}"));
    let loaded = client.load_matrix("t", &fx.adj).unwrap_or_else(|e| panic!("load failed: {e}"));
    let (kind, wire, scalars) = weights.export_wire();
    let wire: Vec<(u32, u32, Vec<f32>)> =
        wire.into_iter().map(|(r, c, d)| (r as u32, c as u32, d)).collect();
    let (model_id, weight_bytes, layers) = client
        .gnn_register("t", loaded.matrix_id, kind, wire, scalars)
        .unwrap_or_else(|e| panic!("gnn_register failed: {e}"));
    assert_eq!(weight_bytes as usize, weights.weight_bytes());
    assert_eq!(layers as usize, weights.num_layers());

    for precision in [0u8, 1, 2] {
        let backend = backend_for_precision(precision).expect("precision maps");
        let ops = SparseOps::new(backend, GpuSpec::RTX4090);
        let offline = weights.forward(&ops, &fx.adj, &fx.features);
        let want: Vec<u32> = offline.as_slice().iter().map(|v| v.to_bits()).collect();

        // Miss path: full server-side forward pass, layer-timed.
        let miss = client
            .gnn_infer(
                "t",
                model_id,
                precision,
                60_000,
                &[],
                fx.features.rows(),
                fx.features.cols(),
                fx.features.as_slice(),
            )
            .unwrap_or_else(|e| panic!("infer (precision {precision}) failed: {e}"));
        assert!(!miss.cache_hit, "first request at precision {precision} must miss");
        assert_eq!(miss.rows, fx.adj.rows());
        assert_eq!(miss.classes, fx.classes);
        assert_eq!(miss.layer_micros.len(), weights.num_layers());
        let got: Vec<u32> = miss.scores.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            got,
            want,
            "{} served logits diverge from offline fs-gnn at precision {precision}",
            weights.kind()
        );

        // Hit path: identical bytes, zero layer time.
        let hit = client
            .gnn_infer(
                "t",
                model_id,
                precision,
                60_000,
                &[],
                fx.features.rows(),
                fx.features.cols(),
                fx.features.as_slice(),
            )
            .unwrap_or_else(|e| panic!("cached infer failed: {e}"));
        assert!(hit.cache_hit, "repeat request at precision {precision} must hit");
        assert!(hit.layer_micros.iter().all(|&us| us == 0));
        let hit_bits: Vec<u32> = hit.scores.iter().map(|v| v.to_bits()).collect();
        assert_eq!(hit_bits, want, "cache hit must replay the miss bytes exactly");

        // Mini-batch: scores for a node subset are the matching rows of
        // the full-graph logits, in request order.
        let nodes = [5u32, 0, 63];
        let some = client
            .gnn_infer(
                "t",
                model_id,
                precision,
                60_000,
                &nodes,
                fx.features.rows(),
                fx.features.cols(),
                fx.features.as_slice(),
            )
            .unwrap_or_else(|e| panic!("mini-batch infer failed: {e}"));
        assert_eq!(some.rows as usize, nodes.len());
        for (slot, &node) in nodes.iter().enumerate() {
            let got = &some.scores[slot * fx.classes..(slot + 1) * fx.classes];
            let exp = &offline.as_slice()[node as usize * fx.classes..][..fx.classes];
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                exp.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "node {node} at precision {precision}"
            );
        }
    }

    // The metrics document carries the gnn section with live counters.
    let metrics = client.metrics().unwrap_or_else(|e| panic!("metrics failed: {e}"));
    assert!(metrics.contains("\"gnn\":{"), "{metrics}");
    assert!(metrics.contains("\"models\":1"), "{metrics}");

    client.shutdown().unwrap_or_else(|e| panic!("shutdown failed: {e}"));
    server_thread
        .join()
        .unwrap_or_else(|_| panic!("server thread panicked"))
        .unwrap_or_else(|e| panic!("server run failed: {e}"));
}

#[test]
fn gcn_served_matches_offline_bitwise_at_every_precision() {
    let fx = fixture();
    serve_and_check(trained_gcn(&fx), &fx);
}

#[test]
fn agnn_served_matches_offline_bitwise_at_every_precision() {
    let fx = fixture();
    let model = AgnnModel::new(fx.features.cols(), 12, fx.classes, 2, 0.01, 5);
    serve_and_check(model.export_weights(), &fx);
}

/// Bad requests fail cleanly over the wire — wrong precision, wrong
/// feature dims, unknown model — and the connection stays usable.
#[test]
fn gnn_wire_errors_are_clean_and_survivable() {
    let fx = fixture();
    let weights = trained_gcn(&fx);
    let server =
        Server::bind(&ServerConfig::default()).unwrap_or_else(|e| panic!("bind failed: {e}"));
    let addr = server.local_addr();
    let server_thread = thread::spawn(move || server.run());
    let mut client = ServeClient::connect_with_retry(&addr, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("connect failed: {e}"));
    let loaded = client.load_matrix("t", &fx.adj).unwrap_or_else(|e| panic!("load: {e}"));
    let (kind, wire, scalars) = weights.export_wire();
    let wire: Vec<(u32, u32, Vec<f32>)> =
        wire.into_iter().map(|(r, c, d)| (r as u32, c as u32, d)).collect();

    // Register against a nonexistent graph: UnknownMatrix.
    assert!(client.gnn_register("t", 999, kind, wire.clone(), scalars.clone()).is_err());
    let (model_id, _, _) = client
        .gnn_register("t", loaded.matrix_id, kind, wire, scalars)
        .unwrap_or_else(|e| panic!("register: {e}"));

    let f = fx.features.as_slice();
    // Precision 7 does not exist.
    assert!(client
        .gnn_infer("t", model_id, 7, 0, &[], fx.features.rows(), fx.features.cols(), f)
        .is_err());
    // Feature rows must match the graph's node count.
    assert!(client
        .gnn_infer("t", model_id, 0, 0, &[], 3, fx.features.cols(), &f[..3 * 16])
        .is_err());
    // Node id outside the graph.
    assert!(client
        .gnn_infer("t", model_id, 0, 0, &[9999], fx.features.rows(), fx.features.cols(), f)
        .is_err());
    // Unknown model id.
    assert!(client
        .gnn_infer("t", 424_242, 0, 0, &[], fx.features.rows(), fx.features.cols(), f)
        .is_err());

    // The connection survived all of it.
    let ok = client
        .gnn_infer("t", model_id, 2, 0, &[0], fx.features.rows(), fx.features.cols(), f)
        .unwrap_or_else(|e| panic!("valid request after errors failed: {e}"));
    assert_eq!(ok.rows, 1);

    client.shutdown().unwrap_or_else(|e| panic!("shutdown: {e}"));
    server_thread
        .join()
        .unwrap_or_else(|_| panic!("server thread panicked"))
        .unwrap_or_else(|e| panic!("server run failed: {e}"));
}

/// Evicting the graph matrix invalidates the embedding cache of every
/// model bound to it: the next inference misses and recomputes (here it
/// fails cleanly, because the graph itself is gone).
#[test]
fn graph_eviction_invalidates_the_embedding_cache() {
    let fx = fixture();
    let weights = trained_gcn(&fx);
    let engine = ServeEngine::start(EngineConfig::default());
    let graph = engine.register_matrix("t", fx.adj.clone()).expect("graph registered");
    let info = engine.gnn_register("t", graph.id, weights).expect("model registered");
    let warm = engine
        .gnn_infer(GnnInferRequest {
            tenant: "t".into(),
            model_id: info.id,
            precision: 2,
            deadline: None,
            node_ids: Vec::new(),
            features: fx.features.clone(),
        })
        .expect("warm-up inference");
    assert!(!warm.cache_hit);
    assert!(engine.evict_matrix(graph.id));
    let err = engine
        .gnn_infer(GnnInferRequest {
            tenant: "t".into(),
            model_id: info.id,
            precision: 2,
            deadline: None,
            node_ids: Vec::new(),
            features: fx.features.clone(),
        })
        .expect_err("graph is gone");
    assert!(matches!(err, GnnError::UnknownGraph(_)), "{err}");
    // The invalidation shows up in the metrics document.
    let metrics = engine.metrics_json();
    let gnn = metrics.find("\"gnn\":{").map(|i| &metrics[i..]).unwrap_or("");
    assert!(!gnn.contains("\"invalidations\":0"), "expected nonzero invalidations: {gnn}");
    engine.shutdown();
}

/// The circuit-breaker hook: when an SpMM on the graph fails kernel
/// verification (forced here with an impossible tolerance), embeddings
/// aggregated over that graph are no longer trusted — the next GNN
/// request must miss the cache and recompute, even though the request
/// itself is byte-identical to the warm one.
#[test]
fn spmm_verify_failure_invalidates_the_embedding_cache() {
    let fx = fixture();
    let weights = trained_gcn(&fx);
    let engine = ServeEngine::start(EngineConfig {
        workers: 1,
        verify: true,
        verify_tolerance: -1.0,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_secs(600),
        ..EngineConfig::default()
    });
    let graph = engine.register_matrix("t", fx.adj.clone()).expect("graph registered");
    let info = engine.gnn_register("t", graph.id, weights).expect("model registered");
    let req = || GnnInferRequest {
        tenant: "t".into(),
        model_id: info.id,
        precision: 2,
        deadline: None,
        node_ids: Vec::new(),
        features: fx.features.clone(),
    };
    let warm = engine.gnn_infer(req()).expect("warm-up inference");
    assert!(!warm.cache_hit);
    let hit = engine.gnn_infer(req()).expect("cached inference");
    assert!(hit.cache_hit, "cache must be warm before the fault");

    // The impossible tolerance fails every verification rung; the
    // request still completes on the trusted scalar fallback.
    let b = DenseMatrix::from_fn(fx.adj.cols(), 8, |r, c| ((r + c) % 5) as f32 * 0.25);
    let outcome = engine
        .spmm_blocking(SpmmRequest {
            tenant: "t".into(),
            matrix_id: graph.id,
            b,
            deadline: Some(Duration::from_secs(60)),
        })
        .expect("admitted");
    assert!(matches!(outcome, SpmmOutcome::Done(_)), "{outcome:?}");
    let (verify_failures, _, _, _) = engine.resilience_stats();
    assert!(verify_failures > 0, "the impossible tolerance must fail verification");

    let recompute = engine.gnn_infer(req()).expect("recompute after invalidation");
    assert!(!recompute.cache_hit, "verify failure must poison the embedding cache");
    // The recomputed logits still match the warm ones bitwise: the GNN
    // path itself was never corrupted, only distrusted.
    let warm_bits: Vec<u32> = warm.scores.iter().map(|v| v.to_bits()).collect();
    let re_bits: Vec<u32> = recompute.scores.iter().map(|v| v.to_bits()).collect();
    assert_eq!(warm_bits, re_bits);
    engine.shutdown();
}
