//! Classic sparse matrix formats (COO, CSR, CSC) and the gold reference
//! kernels every optimized implementation in the workspace is validated
//! against.

mod coo;
mod csc;
mod csr;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
