//! Compressed Sparse Row matrices and the gold SpMM/SDDMM reference kernels.

use fs_precision::Scalar;

use crate::dense::DenseMatrix;
use crate::sparse::{CooMatrix, CscMatrix};

/// A CSR sparse matrix: `row_ptr` (len rows+1), `col_idx`, `values`.
///
/// Column indices are `u32` (all evaluation matrices fit comfortably) which
/// halves index memory traffic versus `usize`, as the real kernels do.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix<S: Scalar> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<S>,
}

impl<S: Scalar> CsrMatrix<S> {
    /// Build from raw arrays, validating the invariants.
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<S>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length must be rows+1");
        assert_eq!(col_idx.len(), values.len(), "col_idx and values must be parallel");
        assert_eq!(row_ptr[rows], col_idx.len(), "row_ptr must end at nnz");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        for w in row_ptr.windows(2) {
            assert!(w[0] <= w[1], "row_ptr must be non-decreasing");
        }
        for &c in &col_idx {
            assert!((c as usize) < cols, "column index {c} out of bounds");
        }
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// An empty matrix of the given shape.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Compress a COO matrix (duplicates summed, columns sorted per row).
    pub fn from_coo(coo: &CooMatrix<S>) -> Self {
        let deduped = coo.clone().dedup();
        let rows = deduped.rows();
        let cols = deduped.cols();
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in deduped.entries() {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = row_ptr[rows];
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![S::ZERO; nnz];
        // Entries are already (row, col)-sorted after dedup.
        for (i, &(_, c, v)) in deduped.entries().iter().enumerate() {
            col_idx[i] = c;
            values[i] = v;
        }
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row pointer array (length `rows()+1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[S] {
        &self.values
    }

    /// Mutable values (pattern is fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [S] {
        &mut self.values
    }

    /// The column indices of row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// The values of row `r`.
    #[inline]
    pub fn row_values(&self, r: usize) -> &[S] {
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Number of nonzeros in row `r`.
    #[inline]
    pub fn row_len(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Iterate `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, S)> + '_ {
        (0..self.rows).flat_map(move |r| {
            self.row_cols(r).iter().zip(self.row_values(r)).map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Expand to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix<S> {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, v);
        }
        out
    }

    /// Convert to COO triplets.
    pub fn to_coo(&self) -> CooMatrix<S> {
        CooMatrix::from_entries(
            self.rows,
            self.cols,
            self.iter().map(|(r, c, v)| (r as u32, c as u32, v)).collect(),
        )
    }

    /// Convert to CSC.
    pub fn to_csc(&self) -> CscMatrix<S> {
        CscMatrix::from_coo(&self.to_coo())
    }

    /// Transposed copy (CSR of Aᵀ).
    pub fn transpose(&self) -> CsrMatrix<S> {
        CsrMatrix::from_coo(&self.to_coo().transpose())
    }

    /// Convert values to a different precision, keeping the pattern.
    pub fn cast<T: Scalar>(&self) -> CsrMatrix<T> {
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|v| T::from_f32(v.to_f32())).collect(),
        }
    }

    /// The submatrix of the first `r` rows (same column space) — used for
    /// sampling-based kernel auto-tuning.
    pub fn head_rows(&self, r: usize) -> CsrMatrix<S> {
        let r = r.min(self.rows);
        let end = self.row_ptr[r];
        CsrMatrix {
            rows: r,
            cols: self.cols,
            row_ptr: self.row_ptr[..=r].to_vec(),
            col_idx: self.col_idx[..end].to_vec(),
            values: self.values[..end].to_vec(),
        }
    }

    /// The submatrix of rows `lo..hi` (same column space), with row
    /// pointers rebased to the slice. Generalizes [`Self::head_rows`];
    /// the pipelined cold path translates and executes row-window slabs
    /// through this so format conversion overlaps compute.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> CsrMatrix<S> {
        let hi = hi.min(self.rows);
        let lo = lo.min(hi);
        let start = self.row_ptr[lo];
        let end = self.row_ptr[hi];
        CsrMatrix {
            rows: hi - lo,
            cols: self.cols,
            row_ptr: self.row_ptr[lo..=hi].iter().map(|&p| p - start).collect(),
            col_idx: self.col_idx[start..end].to_vec(),
            values: self.values[start..end].to_vec(),
        }
    }

    /// Replace all values with ones (adjacency-style pattern matrix).
    pub fn with_unit_values(&self) -> CsrMatrix<S> {
        let mut out = self.clone();
        out.values_mut().iter_mut().for_each(|v| *v = S::ONE);
        out
    }

    /// Gold SpMM: `C = self × B` with f32 accumulation, sequential, no
    /// blocking — the oracle for every optimized SpMM in the workspace.
    pub fn spmm_reference<T: Scalar>(&self, b: &DenseMatrix<T>) -> DenseMatrix<f32> {
        assert_eq!(self.cols, b.rows(), "inner dimensions must agree");
        let n = b.cols();
        let mut out = DenseMatrix::zeros(self.rows, n);
        for r in 0..self.rows {
            let orow = out.row_mut(r);
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_values(r)) {
                let a = v.to_f32();
                let brow = b.row(c as usize);
                for j in 0..n {
                    orow[j] += a * brow[j].to_f32();
                }
            }
        }
        out
    }

    /// Gold SDDMM: `C = (A·Bᵀ) ⊙ mask(self)` where `A` is `rows×k`, `B` is
    /// `cols×k`; returns a CSR with this matrix's pattern whose values are
    /// the sampled dot products **scaled by this matrix's values** (the
    /// general form; pass a unit-valued matrix for pure sampling).
    pub fn sddmm_reference<T: Scalar>(
        &self,
        a: &DenseMatrix<T>,
        b: &DenseMatrix<T>,
    ) -> CsrMatrix<f32> {
        assert_eq!(a.rows(), self.rows, "A rows must match mask rows");
        assert_eq!(b.rows(), self.cols, "B rows must match mask cols");
        assert_eq!(a.cols(), b.cols(), "A and B must share the inner dimension");
        let k = a.cols();
        let mut values = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (&c, &m) in self.row_cols(r).iter().zip(self.row_values(r)) {
                let mut acc = 0.0f32;
                for t in 0..k {
                    acc += a.get_f32(r, t) * b.get_f32(c as usize, t);
                }
                values.push(acc * m.to_f32());
            }
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix<f32> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        CsrMatrix::from_coo(&CooMatrix::from_entries(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        ))
    }

    #[test]
    fn from_coo_layout() {
        let m = small();
        assert_eq!(m.row_ptr(), &[0, 2, 2, 4]);
        assert_eq!(m.col_idx(), &[0, 2, 0, 1]);
        assert_eq!(m.values(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_len(1), 0);
    }

    #[test]
    fn invariant_validation() {
        let r = std::panic::catch_unwind(|| {
            CsrMatrix::<f32>::new(2, 2, vec![0, 1], vec![0], vec![1.0])
        });
        assert!(r.is_err(), "short row_ptr must be rejected");
        let r = std::panic::catch_unwind(|| {
            CsrMatrix::<f32>::new(1, 2, vec![0, 1], vec![5], vec![1.0])
        });
        assert!(r.is_err(), "out-of-bounds column must be rejected");
    }

    #[test]
    fn dense_roundtrip() {
        let m = small();
        let d = m.to_dense();
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(1, 1), 0.0);
        let back = CsrMatrix::from_coo(&m.to_coo());
        assert_eq!(back, m);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = small();
        assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn spmm_reference_matches_dense_matmul() {
        let m = small();
        let b = DenseMatrix::<f32>::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let via_sparse = m.spmm_reference(&b);
        let via_dense = m.to_dense().matmul(&b);
        assert_eq!(via_sparse.max_abs_diff(&via_dense), 0.0);
    }

    #[test]
    fn sddmm_reference_known_values() {
        // mask has nnz at (0,0) and (1,2); A=2x2, B=3x2.
        let mask =
            CsrMatrix::from_coo(&CooMatrix::from_entries(2, 3, vec![(0, 0, 1.0), (1, 2, 2.0)]));
        let a = DenseMatrix::<f32>::from_f32_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::<f32>::from_f32_slice(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let out = mask.sddmm_reference(&a, &b);
        // (0,0): <(1,2),(1,0)> * 1 = 1 ; (1,2): <(3,4),(1,1)> * 2 = 14
        assert_eq!(out.values(), &[1.0, 14.0]);
        assert_eq!(out.col_idx(), mask.col_idx());
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::<f32>::empty(5, 7);
        assert_eq!(m.nnz(), 0);
        let b = DenseMatrix::<f32>::zeros(7, 3);
        let c = m.spmm_reference(&b);
        assert_eq!(c.max_abs_diff(&DenseMatrix::<f32>::zeros(5, 3)), 0.0);
    }

    #[test]
    fn head_rows_subsets() {
        let m = small();
        let h = m.head_rows(2);
        assert_eq!(h.rows(), 2);
        assert_eq!(h.cols(), 3);
        assert_eq!(h.nnz(), 2);
        assert_eq!(h.to_dense().get(0, 2), 2.0);
        // Clamped.
        assert_eq!(m.head_rows(100).nnz(), m.nnz());
        assert_eq!(m.head_rows(0).nnz(), 0);
    }

    #[test]
    fn unit_values() {
        let m = small().with_unit_values();
        assert!(m.values().iter().all(|&v| v == 1.0));
        assert_eq!(m.col_idx(), small().col_idx());
    }
}
