//! Coordinate-format sparse matrices — the interchange format every
//! generator produces and every compressed format is built from.

use fs_precision::Scalar;

/// A sparse matrix as unordered `(row, col, value)` triplets.
#[derive(Clone, Debug)]
pub struct CooMatrix<S: Scalar> {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, S)>,
}

impl<S: Scalar> CooMatrix<S> {
    /// An empty matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix { rows, cols, entries: Vec::new() }
    }

    /// Build from triplets. Duplicates are allowed and are summed when the
    /// matrix is compressed to CSR/CSC.
    pub fn from_entries(rows: usize, cols: usize, entries: Vec<(u32, u32, S)>) -> Self {
        for &(r, c, _) in &entries {
            assert!((r as usize) < rows && (c as usize) < cols, "entry ({r},{c}) out of bounds");
        }
        CooMatrix { rows, cols, entries }
    }

    /// Append one entry.
    pub fn push(&mut self, row: usize, col: usize, value: S) {
        assert!(row < self.rows && col < self.cols);
        self.entries.push((row as u32, col as u32, value));
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (before duplicate merging).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The triplets.
    #[inline]
    pub fn entries(&self) -> &[(u32, u32, S)] {
        &self.entries
    }

    /// Consume into triplets.
    pub fn into_entries(self) -> Vec<(u32, u32, S)> {
        self.entries
    }

    /// Sort by (row, col) and merge duplicate coordinates by f32 addition.
    pub fn dedup(mut self) -> Self {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut merged: Vec<(u32, u32, S)> = Vec::with_capacity(self.entries.len());
        for (r, c, v) in self.entries {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => {
                    last.2 = S::from_f32(last.2.to_f32() + v.to_f32());
                }
                _ => merged.push((r, c, v)),
            }
        }
        self.entries = merged;
        self
    }

    /// Transposed copy (swaps row/col of every entry).
    pub fn transpose(&self) -> Self {
        CooMatrix {
            rows: self.cols,
            cols: self.rows,
            entries: self.entries.iter().map(|&(r, c, v)| (c, r, v)).collect(),
        }
    }

    /// Convert values to a different precision.
    pub fn cast<T: Scalar>(&self) -> CooMatrix<T> {
        CooMatrix {
            rows: self.rows,
            cols: self.cols,
            entries: self
                .entries
                .iter()
                .map(|&(r, c, v)| (r, c, T::from_f32(v.to_f32())))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_bounds() {
        let mut m = CooMatrix::<f32>::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(2, 2, 2.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_rejected() {
        CooMatrix::<f32>::from_entries(2, 2, vec![(2, 0, 1.0)]);
    }

    #[test]
    fn dedup_merges_duplicates() {
        let m = CooMatrix::<f32>::from_entries(
            2,
            2,
            vec![(0, 1, 1.0), (0, 1, 2.0), (1, 0, 3.0), (0, 0, 4.0)],
        )
        .dedup();
        assert_eq!(m.entries(), &[(0, 0, 4.0), (0, 1, 3.0), (1, 0, 3.0)]);
    }

    #[test]
    fn transpose_swaps_coords() {
        let m = CooMatrix::<f32>::from_entries(2, 3, vec![(0, 2, 5.0)]);
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.entries(), &[(2, 0, 5.0)]);
    }
}
