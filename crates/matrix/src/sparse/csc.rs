//! Compressed Sparse Column matrices — used by the SDDMM baselines that walk
//! the dense B operand column-major.

use fs_precision::Scalar;

use crate::dense::DenseMatrix;
use crate::sparse::CooMatrix;

/// A CSC sparse matrix: `col_ptr` (len cols+1), `row_idx`, `values`.
#[derive(Clone, Debug, PartialEq)]
pub struct CscMatrix<S: Scalar> {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<S>,
}

impl<S: Scalar> CscMatrix<S> {
    /// Compress a COO matrix (duplicates summed, rows sorted per column).
    pub fn from_coo(coo: &CooMatrix<S>) -> Self {
        // Dedup in transposed order so entries come out column-major.
        let t = coo.transpose().dedup();
        let rows = coo.rows();
        let cols = coo.cols();
        let mut col_ptr = vec![0usize; cols + 1];
        for &(c, _, _) in t.entries() {
            col_ptr[c as usize + 1] += 1;
        }
        for i in 0..cols {
            col_ptr[i + 1] += col_ptr[i];
        }
        let nnz = col_ptr[cols];
        let mut row_idx = vec![0u32; nnz];
        let mut values = vec![S::ZERO; nnz];
        for (i, &(_, r, v)) in t.entries().iter().enumerate() {
            row_idx[i] = r;
            values[i] = v;
        }
        CscMatrix { rows, cols, col_ptr, row_idx, values }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The column pointer array (length `cols()+1`).
    #[inline]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row index array.
    #[inline]
    pub fn row_idx(&self) -> &[u32] {
        &self.row_idx
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[S] {
        &self.values
    }

    /// Row indices of column `c`.
    #[inline]
    pub fn col_rows(&self, c: usize) -> &[u32] {
        &self.row_idx[self.col_ptr[c]..self.col_ptr[c + 1]]
    }

    /// Values of column `c`.
    #[inline]
    pub fn col_values(&self, c: usize) -> &[S] {
        &self.values[self.col_ptr[c]..self.col_ptr[c + 1]]
    }

    /// Expand to dense.
    pub fn to_dense(&self) -> DenseMatrix<S> {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for c in 0..self.cols {
            for (&r, &v) in self.col_rows(c).iter().zip(self.col_values(c)) {
                out.set(r as usize, c, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    #[test]
    fn csc_matches_csr_dense() {
        let coo = CooMatrix::from_entries(
            3,
            4,
            vec![(0, 0, 1.0f32), (0, 3, 2.0), (2, 1, 3.0), (1, 1, 4.0)],
        );
        let csr = CsrMatrix::from_coo(&coo);
        let csc = CscMatrix::from_coo(&coo);
        assert_eq!(csc.to_dense(), csr.to_dense());
        assert_eq!(csc.nnz(), 4);
    }

    #[test]
    fn column_access() {
        let coo = CooMatrix::from_entries(3, 2, vec![(0, 1, 1.0f32), (2, 1, 2.0), (1, 0, 3.0)]);
        let csc = CscMatrix::from_coo(&coo);
        assert_eq!(csc.col_rows(1), &[0, 2]);
        assert_eq!(csc.col_values(1), &[1.0, 2.0]);
        assert_eq!(csc.col_ptr(), &[0, 1, 3]);
    }

    #[test]
    fn roundtrip_via_csr() {
        let coo = CooMatrix::from_entries(4, 4, vec![(3, 0, 9.0f32), (0, 3, 8.0)]);
        let csr = CsrMatrix::from_coo(&coo);
        let csc = csr.to_csc();
        assert_eq!(csc.to_dense(), csr.to_dense());
    }
}
