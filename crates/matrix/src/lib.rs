//! Matrix types, graph generators and the evaluation dataset suite for the
//! FlashSparse reproduction.
//!
//! This crate provides the substrates every kernel in the workspace consumes:
//!
//! * [`DenseMatrix`] — row-major dense matrices generic over storage
//!   precision ([`fs_precision::Scalar`]).
//! * [`CsrMatrix`] / [`CooMatrix`] / [`CscMatrix`] — the classic sparse
//!   formats, with conversions between them and reference (gold) kernels for
//!   SpMM and SDDMM used to validate every optimized implementation.
//! * [`gen`] — deterministic random sparse-matrix/graph generators (R-MAT
//!   power-law graphs, Erdős–Rényi, stochastic block model, banded, block
//!   sparse).
//! * [`suite`] — the evaluation dataset collection: scaled-down synthetic
//!   stand-ins for the paper's Table 4 graphs plus a SuiteSparse-like sweep
//!   of matrices used for the 515-matrix experiments.
//! * [`io`] — Matrix Market (`.mtx`) reading and writing.
//! * [`stats`] — sparsity statistics (row-length distribution, densities)
//!   reported by several experiments.

// Indexed loops mirror the row/column math of the kernels they model;
// iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]

pub mod dense;
pub mod gen;
pub mod io;
pub mod render;
pub mod reorder;
pub mod sparse;
pub mod stats;
pub mod suite;

pub use dense::DenseMatrix;
pub use sparse::{CooMatrix, CscMatrix, CsrMatrix};
