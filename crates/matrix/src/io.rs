//! Matrix Market (`.mtx`) reading and writing — the SuiteSparse interchange
//! format, so real matrices can be dropped into the evaluation when
//! available.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

use fs_precision::Scalar;

use crate::sparse::{CooMatrix, CsrMatrix};

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file violates the Matrix Market format.
    Parse(String),
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "I/O error: {e}"),
            MtxError::Parse(msg) => write!(f, "matrix market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<io::Error> for MtxError {
    fn from(e: io::Error) -> Self {
        MtxError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MtxError {
    MtxError::Parse(msg.into())
}

/// Read a Matrix Market coordinate-format file.
///
/// Supports `real`, `integer` and `pattern` fields with `general` or
/// `symmetric` symmetry. Pattern entries get value 1.0. Symmetric files are
/// expanded to full storage.
pub fn read_matrix_market<S: Scalar, R: Read>(reader: R) -> Result<CooMatrix<S>, MtxError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.starts_with("%%matrixmarket") {
        return Err(parse_err("missing %%MatrixMarket header"));
    }
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(parse_err("only coordinate-format matrices are supported"));
    }
    let field = tokens[3];
    let symmetry = tokens[4];
    let pattern = match field {
        "real" | "integer" => false,
        "pattern" => true,
        other => return Err(parse_err(format!("unsupported field type {other}"))),
    };
    let symmetric = match symmetry {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(format!("unsupported symmetry {other}"))),
    };

    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines.next().ok_or_else(|| parse_err("missing size line"))??;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break trimmed.to_string();
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_err(format!("bad size token {t}"))))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must be `rows cols nnz`"));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut entries = Vec::with_capacity(if symmetric { nnz * 2 } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row"))?
            .parse()
            .map_err(|_| parse_err("bad row index"))?;
        let c: usize = it
            .next()
            .ok_or_else(|| parse_err("missing col"))?
            .parse()
            .map_err(|_| parse_err("bad col index"))?;
        let v: f32 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err("bad value"))?
        };
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(parse_err(format!("entry ({r},{c}) out of bounds (1-based)")));
        }
        let (r0, c0) = (r - 1, c - 1);
        entries.push((r0 as u32, c0 as u32, S::from_f32(v)));
        if symmetric && r0 != c0 {
            entries.push((c0 as u32, r0 as u32, S::from_f32(v)));
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(CooMatrix::from_entries(rows, cols, entries))
}

/// Read a `.mtx` file from disk into CSR.
pub fn read_mtx_file<S: Scalar>(path: impl AsRef<Path>) -> Result<CsrMatrix<S>, MtxError> {
    let file = std::fs::File::open(path)?;
    Ok(CsrMatrix::from_coo(&read_matrix_market(file)?))
}

/// Write a CSR matrix as Matrix Market coordinate/real/general.
pub fn write_matrix_market<S: Scalar, W: Write>(
    matrix: &CsrMatrix<S>,
    mut writer: W,
) -> io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by flashsparse-rs")?;
    writeln!(writer, "{} {} {}", matrix.rows(), matrix.cols(), matrix.nnz())?;
    for (r, c, v) in matrix.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v.to_f32())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "%%MatrixMarket matrix coordinate real general\n\
% a comment\n\
3 4 3\n\
1 1 1.5\n\
2 3 -2.0\n\
3 4 0.25\n";

    #[test]
    fn read_general_real() {
        let coo = read_matrix_market::<f32, _>(SAMPLE.as_bytes()).unwrap();
        assert_eq!((coo.rows(), coo.cols(), coo.nnz()), (3, 4, 3));
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.to_dense().get(1, 2), -2.0);
    }

    #[test]
    fn read_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
2 2 2\n\
1 1 5.0\n\
2 1 7.0\n";
        let coo = read_matrix_market::<f32, _>(text.as_bytes()).unwrap();
        let d = CsrMatrix::from_coo(&coo).to_dense();
        assert_eq!(d.get(0, 1), 7.0);
        assert_eq!(d.get(1, 0), 7.0);
        assert_eq!(d.get(0, 0), 5.0);
    }

    #[test]
    fn read_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
2 2 1\n\
2 2\n";
        let coo = read_matrix_market::<f32, _>(text.as_bytes()).unwrap();
        assert_eq!(coo.entries(), &[(1, 1, 1.0)]);
    }

    #[test]
    fn roundtrip() {
        let coo = read_matrix_market::<f32, _>(SAMPLE.as_bytes()).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let mut buf = Vec::new();
        write_matrix_market(&csr, &mut buf).unwrap();
        let back = CsrMatrix::from_coo(&read_matrix_market::<f32, _>(&buf[..]).unwrap());
        assert_eq!(back, csr);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_matrix_market::<f32, _>("hello\n".as_bytes()).is_err());
        assert!(read_matrix_market::<f32, _>(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market::<f32, _>(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n".as_bytes()
        )
        .is_err());
    }
}
