//! The evaluation dataset collection.
//!
//! Two populations mirror the paper's setup (Section 4):
//!
//! * [`table4_datasets`] — named, scaled-down synthetic stand-ins for the 15
//!   GNN graphs of Table 4, generated with R-MAT so the degree skew of each
//!   original is preserved while node counts shrink to CPU-simulable sizes.
//! * [`matrix_suite`] — a parameterized sweep standing in for the 500
//!   SuiteSparse matrices: a deterministic mix of power-law graphs,
//!   uniform-random, banded/stencil and block-sparse matrices across sizes
//!   and densities.
//!
//! Every matrix is deterministic in (name, seed), so experiment tables are
//! reproducible run to run.

use fs_precision::Scalar;

use crate::gen::{banded, block_sparse, random_uniform, rmat, RmatConfig};
use crate::sparse::CsrMatrix;
use crate::stats::sparsity_stats;

/// Structural family of a generated dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// Power-law graph (R-MAT).
    PowerLaw,
    /// Uniform random pattern.
    Uniform,
    /// Banded / stencil structure.
    Banded,
    /// Clustered block-sparse structure.
    BlockSparse,
}

/// A named evaluation matrix.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name (for Table 4 stand-ins, the original graph's name).
    pub name: String,
    /// The sparse matrix (f32 master copy; cast per experiment).
    pub matrix: CsrMatrix<f32>,
    /// Structural family.
    pub kind: DatasetKind,
}

impl Dataset {
    /// The matrix cast to precision `S`.
    pub fn matrix_as<S: Scalar>(&self) -> CsrMatrix<S> {
        self.matrix.cast()
    }
}

/// How aggressively to scale the Table 4 stand-ins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ~1–4k nodes — unit/integration tests.
    Tiny,
    /// ~4–16k nodes — default for experiment tables.
    Small,
}

/// Spec of one Table 4 stand-in: (name, paper avg row length, skew).
const TABLE4: &[(&str, f64, bool)] = &[
    ("GitHub", 16.33, true),
    ("Artist", 32.4, true),
    ("Blog", 47.2, true),
    ("Ell", 3.3, false),
    ("Yelp", 19.46, true),
    ("DD", 5.03, false),
    ("Reddit", 492.98, true),
    ("Amazon", 22.48, true),
    ("Amazon0505", 11.89, true),
    ("Comamazon", 5.5, false),
    ("Yeast", 3.1, false),
    ("OGBProducts", 51.52, true),
    ("AmazonProducts", 128.37, true),
    ("IGB-small", 13.06, false),
    ("IGB-medium", 12.99, false),
];

/// Scaled stand-ins for the paper's Table 4 GNN graphs.
///
/// Node counts are scaled to the given [`Scale`]; the average row length of
/// each original is preserved (capped so Reddit's 493 average stays
/// simulable), and heavy-tailed originals use Graph500 R-MAT parameters.
pub fn table4_datasets(scale: Scale) -> Vec<Dataset> {
    let log_nodes: u32 = match scale {
        Scale::Tiny => 10,
        Scale::Small => 12,
    };
    let nodes = 1usize << log_nodes;
    TABLE4
        .iter()
        .enumerate()
        .map(|(i, &(name, avg_deg, skewed))| {
            // Cap degree so nnz stays bounded; preserve ordering of densities.
            let deg = avg_deg.min(nodes as f64 / 16.0).max(2.0);
            let edge_factor = (deg / 2.0).round().max(1.0) as usize;
            let config = if skewed { RmatConfig::GRAPH500 } else { RmatConfig::MILD };
            let coo = rmat::<f32>(log_nodes, edge_factor, config, true, 0x7ab1e4 + i as u64);
            Dataset {
                name: name.to_string(),
                matrix: CsrMatrix::from_coo(&coo),
                kind: DatasetKind::PowerLaw,
            }
        })
        .collect()
}

/// The SuiteSparse-like sweep: `count` deterministic matrices cycling through
/// the four structural families at geometrically spaced sizes and densities.
///
/// The paper uses 500 SuiteSparse matrices + 15 graphs = 515; pass
/// `count = 500` for the full population or something smaller (e.g. 45) for
/// quick runs. Matrices are sorted by nnz, matching Figure 11's x-axis.
pub fn matrix_suite(count: usize, seed: u64) -> Vec<Dataset> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let s = seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        // Geometric size ladder: 256 … 4096 rows.
        let size_step = i % 5;
        let n = 256usize << size_step;
        let dataset = match i % 4 {
            0 => {
                let ef = 2 + (i / 4) % 8;
                let coo = rmat::<f32>(n.trailing_zeros(), ef, RmatConfig::GRAPH500, false, s);
                Dataset {
                    name: format!("rmat_{n}_{ef}_{i}"),
                    matrix: CsrMatrix::from_coo(&coo),
                    kind: DatasetKind::PowerLaw,
                }
            }
            1 => {
                let nnz = n * (3 + (i / 4) % 12);
                let coo = random_uniform::<f32>(n, n, nnz, s);
                Dataset {
                    name: format!("uniform_{n}_{nnz}_{i}"),
                    matrix: CsrMatrix::from_coo(&coo),
                    kind: DatasetKind::Uniform,
                }
            }
            2 => {
                // Stencil-like: diagonals at ±1, ±w where w emulates a 2-D mesh.
                let w = (n as f64).sqrt() as i64;
                let fill = 0.7 + 0.3 * ((i / 4) % 2) as f64;
                let coo = banded::<f32>(n, &[-w, -1, 0, 1, w], fill, s);
                Dataset {
                    name: format!("stencil_{n}_{i}"),
                    matrix: CsrMatrix::from_coo(&coo),
                    kind: DatasetKind::Banded,
                }
            }
            _ => {
                let bd = 0.02 + 0.01 * ((i / 4) % 5) as f64;
                let coo = block_sparse::<f32>(n, n, 8, 8, bd, 0.8, s);
                Dataset {
                    name: format!("block_{n}_{i}"),
                    matrix: CsrMatrix::from_coo(&coo),
                    kind: DatasetKind::BlockSparse,
                }
            }
        };
        out.push(dataset);
    }
    out.sort_by_key(|d| d.matrix.nnz());
    out
}

/// The full evaluation population: the suite plus the Table 4 stand-ins,
/// sorted by nnz (the paper's 515-matrix population).
pub fn full_population(suite_count: usize, scale: Scale, seed: u64) -> Vec<Dataset> {
    let mut all = matrix_suite(suite_count, seed);
    all.extend(table4_datasets(scale));
    all.sort_by_key(|d| d.matrix.nnz());
    all
}

/// Print a Table 4-style summary row for a dataset.
pub fn describe(d: &Dataset) -> String {
    let s = sparsity_stats(&d.matrix);
    format!(
        "{:<16} {:>8} vertices {:>10} edges  avg-row {:.2}  cv {:.2}",
        d.name, s.rows, s.nnz, s.avg_row_length, s.row_cv
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_15_named_graphs() {
        let ds = table4_datasets(Scale::Tiny);
        assert_eq!(ds.len(), 15);
        assert!(ds.iter().any(|d| d.name == "Reddit"));
        for d in &ds {
            assert_eq!(d.matrix.rows(), 1024);
            assert!(d.matrix.nnz() > 0, "{} must not be empty", d.name);
        }
    }

    #[test]
    fn table4_density_ordering_roughly_preserved() {
        let ds = table4_datasets(Scale::Tiny);
        let get = |name: &str| ds.iter().find(|d| d.name == name).map(|d| d.matrix.nnz()).unwrap();
        // Reddit (deg 493, capped to 64) must still be the densest;
        // Yeast (3.1) among the sparsest.
        assert!(get("Reddit") > get("Yeast"));
        assert!(get("Blog") > get("Ell"));
    }

    #[test]
    fn suite_is_deterministic_and_sorted() {
        let a = matrix_suite(16, 42);
        let b = matrix_suite(16, 42);
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.matrix.nnz(), y.matrix.nnz());
        }
        for w in a.windows(2) {
            assert!(w[0].matrix.nnz() <= w[1].matrix.nnz());
        }
    }

    #[test]
    fn suite_covers_all_families() {
        let ds = matrix_suite(16, 1);
        for kind in [
            DatasetKind::PowerLaw,
            DatasetKind::Uniform,
            DatasetKind::Banded,
            DatasetKind::BlockSparse,
        ] {
            assert!(ds.iter().any(|d| d.kind == kind), "{kind:?} missing");
        }
    }

    #[test]
    fn full_population_combines() {
        let all = full_population(10, Scale::Tiny, 0);
        assert_eq!(all.len(), 25);
    }
}
