//! Row/column reordering — the inspector-side optimization that packs
//! similar rows into the same window to raise nonzero-vector density.
//!
//! The tensor-core formats (ME-BCRS and friends) store a window's union of
//! column indices: rows that share columns share vectors. Reordering rows
//! so that similar rows are adjacent therefore reduces stored zeros,
//! TC-block counts and MMA work. DTC-SpMM applies a similar reordering in
//! its preprocessing; FlashSparse's evaluation uses matrices as-is, so we
//! expose reordering as an *optional* extension (see the `reorder`
//! experiment in `fs-bench`).
//!
//! Two classic orderings are provided:
//!
//! * [`degree_sort_permutation`] — rows sorted by descending nonzero
//!   count; cheap, groups hubs of power-law graphs together.
//! * [`rcm_permutation`] — reverse Cuthill–McKee: BFS from a peripheral
//!   low-degree vertex, neighbors visited in degree order, sequence
//!   reversed. Clusters structurally-adjacent rows, reducing bandwidth.

use fs_precision::Scalar;

use crate::sparse::{CooMatrix, CsrMatrix};

/// Validate that `perm` is a permutation of `0..n` (each value once).
fn assert_permutation(perm: &[u32], n: usize) {
    assert_eq!(perm.len(), n, "permutation length must match");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(
            (p as usize) < n && !seen[p as usize],
            "not a permutation: duplicate or out-of-range {p}"
        );
        seen[p as usize] = true;
    }
}

/// Rows sorted by descending nonzero count (ties by original index, so
/// the ordering is deterministic). `perm[new_row] = old_row`.
pub fn degree_sort_permutation<S: Scalar>(m: &CsrMatrix<S>) -> Vec<u32> {
    let mut order: Vec<u32> = (0..m.rows() as u32).collect();
    order.sort_by_key(|&r| (std::cmp::Reverse(m.row_len(r as usize)), r));
    order
}

/// Reverse Cuthill–McKee ordering of a square matrix treated as an
/// undirected graph (the pattern is symmetrized implicitly by following
/// out-edges; for GNN adjacencies the pattern is symmetric anyway).
/// `perm[new_row] = old_row`. Disconnected components are processed from
/// their lowest-degree unvisited vertex.
pub fn rcm_permutation<S: Scalar>(m: &CsrMatrix<S>) -> Vec<u32> {
    assert_eq!(m.rows(), m.cols(), "RCM needs a square (graph) matrix");
    let n = m.rows();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);

    // Vertices by ascending degree for start-vertex selection.
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&r| (m.row_len(r as usize), r));

    let mut queue = std::collections::VecDeque::new();
    for &start in &by_degree {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut neighbors: Vec<u32> =
                m.row_cols(v as usize).iter().copied().filter(|&c| !visited[c as usize]).collect();
            neighbors.sort_by_key(|&c| (m.row_len(c as usize), c));
            for c in neighbors {
                if !visited[c as usize] {
                    visited[c as usize] = true;
                    queue.push_back(c);
                }
            }
        }
    }
    order.reverse();
    order
}

/// Apply a row permutation: row `i` of the result is row `perm[i]` of the
/// input (columns untouched). Panics if `perm` is not a permutation.
pub fn permute_rows<S: Scalar>(m: &CsrMatrix<S>, perm: &[u32]) -> CsrMatrix<S> {
    assert_permutation(perm, m.rows());
    let mut coo = CooMatrix::new(m.rows(), m.cols());
    for (new_r, &old_r) in perm.iter().enumerate() {
        for (&c, &v) in m.row_cols(old_r as usize).iter().zip(m.row_values(old_r as usize)) {
            coo.push(new_r, c as usize, v);
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Apply a symmetric permutation `P·A·Pᵀ` to a square matrix: entry
/// `(i, j)` of the result is entry `(perm[i], perm[j])` of the input —
/// what a graph relabeling does to an adjacency matrix (an SpMM over the
/// permuted matrix with correspondingly permuted dense rows computes the
/// same result up to row order).
pub fn permute_symmetric<S: Scalar>(m: &CsrMatrix<S>, perm: &[u32]) -> CsrMatrix<S> {
    assert_eq!(m.rows(), m.cols(), "symmetric permutation needs a square matrix");
    assert_permutation(perm, m.rows());
    // inverse[old] = new
    let mut inverse = vec![0u32; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inverse[old as usize] = new as u32;
    }
    let mut coo = CooMatrix::new(m.rows(), m.cols());
    for (r, c, v) in m.iter() {
        coo.push(inverse[r] as usize, inverse[c] as usize, v);
    }
    CsrMatrix::from_coo(&coo)
}

/// Pattern bandwidth: `max |i − j|` over nonzeros (0 for empty/diagonal).
pub fn bandwidth<S: Scalar>(m: &CsrMatrix<S>) -> usize {
    m.iter().map(|(r, c, _)| r.abs_diff(c)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{banded, random_uniform, rmat, RmatConfig};
    use fs_format_testutil::*;

    // fs-format is a downstream crate; keep a local fill-ratio proxy here.
    mod fs_format_testutil {
        use super::super::super::sparse::CsrMatrix;
        use fs_precision::Scalar;

        /// Stored cells under an 8-row-window vector partition.
        pub fn window_cells<S: Scalar>(m: &CsrMatrix<S>, v: usize) -> usize {
            let mut cells = 0usize;
            let windows = m.rows().div_ceil(v);
            for w in 0..windows {
                let lo = w * v;
                let hi = ((w + 1) * v).min(m.rows());
                let mut cols: Vec<u32> =
                    (lo..hi).flat_map(|r| m.row_cols(r).iter().copied()).collect();
                cols.sort_unstable();
                cols.dedup();
                cells += cols.len() * v;
            }
            cells
        }
    }

    #[test]
    fn degree_sort_is_a_valid_descending_permutation() {
        let m = CsrMatrix::from_coo(&rmat::<f32>(7, 6, RmatConfig::GRAPH500, false, 1));
        let perm = degree_sort_permutation(&m);
        assert_permutation(&perm, m.rows());
        for w in perm.windows(2) {
            assert!(m.row_len(w[0] as usize) >= m.row_len(w[1] as usize));
        }
    }

    #[test]
    fn rcm_reduces_bandwidth_of_a_shuffled_band() {
        // Take a banded matrix, scramble it symmetrically, and check RCM
        // restores a narrow band.
        let band = CsrMatrix::from_coo(&banded::<f32>(128, &[-2, -1, 0, 1, 2], 1.0, 3));
        // Symmetrize the pattern so RCM's BFS sees an undirected graph.
        let sym = {
            let mut coo = CooMatrix::new(128, 128);
            for (r, c, v) in band.iter() {
                coo.push(r, c, v);
                coo.push(c, r, v);
            }
            CsrMatrix::from_coo(&coo.dedup())
        };
        let scramble: Vec<u32> = {
            // Deterministic shuffle.
            let mut p: Vec<u32> = (0..128).collect();
            for i in (1..128usize).rev() {
                let j = (i * 2654435761) % (i + 1);
                p.swap(i, j);
            }
            p
        };
        let scrambled = permute_symmetric(&sym, &scramble);
        assert!(bandwidth(&scrambled) > 60, "scramble must destroy the band");
        let rcm = rcm_permutation(&scrambled);
        let restored = permute_symmetric(&scrambled, &rcm);
        assert!(
            bandwidth(&restored) < bandwidth(&scrambled) / 2,
            "RCM must substantially reduce bandwidth: {} -> {}",
            bandwidth(&scrambled),
            bandwidth(&restored)
        );
    }

    #[test]
    fn permutations_preserve_content() {
        let m = CsrMatrix::from_coo(&random_uniform::<f32>(40, 40, 200, 7));
        let perm = degree_sort_permutation(&m);
        let pm = permute_rows(&m, &perm);
        assert_eq!(pm.nnz(), m.nnz());
        for (new_r, &old_r) in perm.iter().enumerate() {
            assert_eq!(pm.row_cols(new_r), m.row_cols(old_r as usize));
            assert_eq!(pm.row_values(new_r), m.row_values(old_r as usize));
        }
        // Symmetric permutation preserves the multiset of values and
        // degree sequence.
        let ps = permute_symmetric(&m, &perm);
        assert_eq!(ps.nnz(), m.nnz());
        let mut d1: Vec<usize> = (0..m.rows()).map(|r| m.row_len(r)).collect();
        let mut d2: Vec<usize> = (0..ps.rows()).map(|r| ps.row_len(r)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn degree_sort_improves_window_density_on_power_law() {
        // Hubs share many columns; grouping them shrinks the number of
        // stored window cells (= fewer nonzero vectors = fewer MMAs).
        let g = CsrMatrix::from_coo(&rmat::<f32>(9, 6, RmatConfig::GRAPH500, true, 11));
        let before = window_cells(&g, 8);
        let after = window_cells(&permute_rows(&g, &degree_sort_permutation(&g)), 8);
        assert!(after < before, "degree sort must reduce stored cells: {before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invalid_permutation_rejected() {
        let m = CsrMatrix::from_coo(&random_uniform::<f32>(4, 4, 4, 0));
        permute_rows(&m, &[0, 1, 1, 3]);
    }
}
