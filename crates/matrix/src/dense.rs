//! Row-major dense matrices generic over storage precision.

use fs_precision::Scalar;

/// A row-major dense matrix with entries of storage precision `S`.
///
/// All arithmetic in the workspace accumulates in `f32` regardless of `S`,
/// mirroring the tensor-core datapath, so this type only stores and converts.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix<S: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> DenseMatrix<S> {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![S::ZERO; rows * cols] }
    }

    /// Build from a generator function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(S::from_f32(f(r, c)));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        DenseMatrix { rows, cols, data }
    }

    /// Build from f32 values, rounding each into `S`.
    pub fn from_f32_slice(rows: usize, cols: usize, values: &[f32]) -> Self {
        assert_eq!(values.len(), rows * cols);
        DenseMatrix { rows, cols, data: values.iter().map(|&v| S::from_f32(v)).collect() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> S {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Entry at `(row, col)` widened to f32.
    #[inline]
    pub fn get_f32(&self, row: usize, col: usize) -> f32 {
        self.get(row, col).to_f32()
    }

    /// Set the entry at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: S) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// A row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[S] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// A mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [S] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The whole backing buffer, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutable backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// The byte address of entry `(row, col)` assuming the buffer starts at
    /// address 0 — used by the memory-transaction simulator.
    #[inline]
    pub fn addr_of(&self, row: usize, col: usize) -> u64 {
        ((row * self.cols + col) * S::BYTES) as u64
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Convert every entry to a different storage precision.
    pub fn cast<T: Scalar>(&self) -> DenseMatrix<T> {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| T::from_f32(v.to_f32())).collect(),
        }
    }

    /// Copy out as f32 values, row-major.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        self.data.iter().map(|v| v.to_f32()).collect()
    }

    /// Reference dense GEMM: `self × rhs` with f32 accumulation. Gold kernel
    /// for test oracles; O(m·n·k), no blocking.
    pub fn matmul<T: Scalar>(&self, rhs: &DenseMatrix<T>) -> DenseMatrix<f32> {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get_f32(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + a * rhs.get_f32(k, j));
                }
            }
        }
        out
    }

    /// Maximum absolute difference against another matrix (any precision).
    pub fn max_abs_diff<T: Scalar>(&self, other: &DenseMatrix<T>) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a.to_f32() - b.to_f32()).abs())
            .fold(0.0, f32::max)
    }

    /// Relative Frobenius-norm difference `‖self−other‖_F / max(‖other‖_F, ε)`.
    pub fn rel_frob_diff<T: Scalar>(&self, other: &DenseMatrix<T>) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (a, b) in self.data.iter().zip(other.data.iter()) {
            let d = (a.to_f32() - b.to_f32()) as f64;
            num += d * d;
            den += (b.to_f32() as f64).powi(2);
        }
        (num.sqrt() / den.sqrt().max(1e-30)) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_precision::F16;

    #[test]
    fn construction_and_access() {
        let mut m = DenseMatrix::<f32>::zeros(3, 4);
        assert_eq!((m.rows(), m.cols(), m.len()), (3, 4, 12));
        m.set(2, 3, 7.5);
        assert_eq!(m.get(2, 3), 7.5);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.row(2), &[0.0, 0.0, 0.0, 7.5]);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = DenseMatrix::<f32>::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn transpose_involutive() {
        let m = DenseMatrix::<f32>::from_fn(4, 7, |r, c| (r * 31 + c * 3) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(3, 2), m.get(2, 3));
    }

    #[test]
    fn matmul_identity() {
        let a = DenseMatrix::<f32>::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let b = DenseMatrix::<f32>::from_fn(3, 3, |r, c| (r + 2 * c) as f32);
        let c = a.matmul(&b);
        assert_eq!(c.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn matmul_known_values() {
        // [1 2; 3 4] × [5 6; 7 8] = [19 22; 43 50]
        let a = DenseMatrix::<f32>::from_f32_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::<f32>::from_f32_slice(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn cast_rounds_precision() {
        let m = DenseMatrix::<f32>::from_f32_slice(1, 2, &[1.0, 2049.0]);
        let h: DenseMatrix<F16> = m.cast();
        assert_eq!(h.get_f32(0, 0), 1.0);
        assert_eq!(h.get_f32(0, 1), 2048.0); // rounded to even
    }

    #[test]
    fn addr_of_respects_element_size() {
        let m = DenseMatrix::<F16>::zeros(4, 8);
        assert_eq!(m.addr_of(0, 0), 0);
        assert_eq!(m.addr_of(0, 3), 6);
        assert_eq!(m.addr_of(1, 0), 16);
        let m32 = DenseMatrix::<f32>::zeros(4, 8);
        assert_eq!(m32.addr_of(1, 1), 36);
    }

    #[test]
    fn diff_metrics() {
        let a = DenseMatrix::<f32>::from_f32_slice(1, 3, &[1.0, 2.0, 3.0]);
        let b = DenseMatrix::<f32>::from_f32_slice(1, 3, &[1.0, 2.5, 3.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(a.rel_frob_diff(&a) == 0.0);
        assert!(a.rel_frob_diff(&b) > 0.0);
    }
}
