//! Stochastic block model graphs with node features and labels — the
//! synthetic node-classification datasets used for the end-to-end GNN
//! accuracy experiments (the paper's Table 8 uses Cora-like citation
//! graphs; an SBM with planted communities is the standard synthetic
//! equivalent with a controllable signal-to-noise ratio).

use fs_precision::Scalar;
use rand::RngExt;

use super::rng_for;
use crate::dense::DenseMatrix;
use crate::sparse::{CooMatrix, CsrMatrix};

/// Parameters for an SBM node-classification dataset.
#[derive(Clone, Copy, Debug)]
pub struct SbmConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of communities (= classification classes).
    pub classes: usize,
    /// Probability of an edge inside a community.
    pub p_in: f64,
    /// Probability of an edge across communities.
    pub p_out: f64,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Standard deviation of the per-class feature centroids' separation;
    /// larger = easier task.
    pub feature_signal: f32,
    /// Fraction of nodes in the training split (the rest is test).
    pub train_fraction: f64,
}

impl Default for SbmConfig {
    fn default() -> Self {
        SbmConfig {
            nodes: 256,
            classes: 4,
            p_in: 0.08,
            p_out: 0.005,
            feature_dim: 32,
            feature_signal: 1.0,
            train_fraction: 0.5,
        }
    }
}

/// A node-classification dataset: symmetric graph + features + labels +
/// train/test split.
#[derive(Clone, Debug)]
pub struct SbmDataset {
    /// Symmetric adjacency (unit values, no self loops).
    pub adjacency: CsrMatrix<f32>,
    /// Node features, `nodes × feature_dim`.
    pub features: DenseMatrix<f32>,
    /// Ground-truth class per node.
    pub labels: Vec<usize>,
    /// Indices of training nodes.
    pub train_idx: Vec<usize>,
    /// Indices of test nodes.
    pub test_idx: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

/// Generate an SBM dataset. Features are drawn from a Gaussian-ish mixture:
/// each class has a random centroid (scaled by `feature_signal`) plus
/// unit-scale noise, so accuracy saturates below 100% and the precision
/// comparison in Table 8 is meaningful.
pub fn sbm(config: SbmConfig, seed: u64) -> SbmDataset {
    let mut rng = rng_for(seed);
    let n = config.nodes;
    let k = config.classes;
    assert!(k >= 2 && n >= k, "need at least 2 classes and n >= classes");

    // Assign labels round-robin then shuffle for balanced classes.
    let mut labels: Vec<usize> = (0..n).map(|i| i % k).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        labels.swap(i, j);
    }

    // Edges: Bernoulli per unordered pair. O(n²) is fine at these scales.
    let mut coo = CooMatrix::<f32>::new(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let p = if labels[i] == labels[j] { config.p_in } else { config.p_out };
            if rng.random::<f64>() < p {
                coo.push(i, j, 1.0);
                coo.push(j, i, 1.0);
            }
        }
    }
    let adjacency = CsrMatrix::from_coo(&coo);

    // Class centroids and noisy features. Box-Muller for normals.
    let normal = move |rng: &mut rand::rngs::StdRng| -> f32 {
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    };
    let mut centroids = vec![vec![0.0f32; config.feature_dim]; k];
    for c in centroids.iter_mut() {
        for x in c.iter_mut() {
            *x = normal(&mut rng) * config.feature_signal;
        }
    }
    let features = {
        let mut f = DenseMatrix::<f32>::zeros(n, config.feature_dim);
        for i in 0..n {
            for d in 0..config.feature_dim {
                let v = centroids[labels[i]][d] + normal(&mut rng);
                f.set(i, d, v);
            }
        }
        f
    };

    // Train/test split.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    let n_train = ((n as f64) * config.train_fraction).round() as usize;
    let train_idx = idx[..n_train].to_vec();
    let test_idx = idx[n_train..].to_vec();

    SbmDataset { adjacency, features, labels, train_idx, test_idx, classes: k }
}

impl SbmDataset {
    /// The adjacency with values cast to precision `S`.
    pub fn adjacency_as<S: Scalar>(&self) -> CsrMatrix<S> {
        self.adjacency.cast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let ds = sbm(SbmConfig::default(), 1);
        assert_eq!(ds.adjacency.rows(), 256);
        assert_eq!(ds.labels.len(), 256);
        assert_eq!(ds.train_idx.len() + ds.test_idx.len(), 256);
        assert_eq!(ds.features.rows(), 256);
        assert_eq!(ds.features.cols(), 32);
        // No self loops; symmetric.
        for (r, c, _) in ds.adjacency.iter() {
            assert_ne!(r, c);
        }
        let d = ds.adjacency.to_dense();
        for r in 0..d.rows() {
            for c in 0..d.cols() {
                assert_eq!(d.get(r, c), d.get(c, r));
            }
        }
    }

    #[test]
    fn communities_are_denser_inside() {
        let ds = sbm(SbmConfig { nodes: 200, ..Default::default() }, 3);
        let mut inside = 0usize;
        let mut across = 0usize;
        for (r, c, _) in ds.adjacency.iter() {
            if ds.labels[r] == ds.labels[c] {
                inside += 1;
            } else {
                across += 1;
            }
        }
        assert!(inside > across, "inside={inside} across={across}");
    }

    #[test]
    fn balanced_classes() {
        let ds = sbm(SbmConfig { nodes: 100, classes: 4, ..Default::default() }, 5);
        let mut counts = [0usize; 4];
        for &l in &ds.labels {
            counts[l] += 1;
        }
        assert_eq!(counts, [25, 25, 25, 25]);
    }

    #[test]
    fn deterministic() {
        let a = sbm(SbmConfig::default(), 9);
        let b = sbm(SbmConfig::default(), 9);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.adjacency, b.adjacency);
    }
}
