//! Uniform random sparse matrices (Erdős–Rényi patterns).

use fs_precision::Scalar;
use rand::RngExt;

use super::{assign_values, rng_for};
use crate::sparse::CooMatrix;

/// An Erdős–Rényi G(n, m) graph: exactly `edges` distinct directed edges
/// drawn uniformly (before duplicate merging) over an `n×n` adjacency matrix.
pub fn erdos_renyi<S: Scalar>(n: usize, edges: usize, seed: u64) -> CooMatrix<S> {
    random_uniform(n, n, edges, seed)
}

/// A uniform random rectangular sparse matrix with approximately `nnz`
/// nonzeros (duplicate coordinates merge).
pub fn random_uniform<S: Scalar>(rows: usize, cols: usize, nnz: usize, seed: u64) -> CooMatrix<S> {
    assert!(rows > 0 && cols > 0, "matrix must be non-empty");
    let mut rng = rng_for(seed);
    let mut pattern = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let r = rng.random_range(0..rows) as u32;
        let c = rng.random_range(0..cols) as u32;
        pattern.push((r, c));
    }
    assign_values(rows, cols, pattern, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    #[test]
    fn density_close_to_requested() {
        let m = random_uniform::<f32>(100, 200, 2000, 1);
        let csr = CsrMatrix::from_coo(&m);
        // Collisions are rare at 10% density... actually 2000/20000 = 10%,
        // expect ≥ 90% retained.
        assert!(csr.nnz() > 1800, "nnz={}", csr.nnz());
        assert_eq!(csr.rows(), 100);
        assert_eq!(csr.cols(), 200);
    }

    #[test]
    fn values_in_range() {
        let m = random_uniform::<f32>(10, 10, 50, 2);
        for &(_, _, v) in m.entries() {
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn deterministic() {
        let a = erdos_renyi::<f32>(64, 512, 9);
        let b = erdos_renyi::<f32>(64, 512, 9);
        assert_eq!(a.entries(), b.entries());
    }
}
