//! Deterministic random sparse-matrix and graph generators.
//!
//! All generators take an explicit `seed` and are reproducible across runs
//! and platforms. They produce [`CooMatrix`]es; compress with
//! [`CsrMatrix::from_coo`](crate::CsrMatrix::from_coo).
//!
//! The paper's evaluation covers two matrix populations:
//! * SuiteSparse matrices (scientific-computing structure: banded, block,
//!   mesh-like) — covered by [`banded`], [`block_sparse`] and [`random_uniform`];
//! * GNN graphs (power-law degree distributions, community structure) —
//!   covered by [`rmat`] and [`sbm`].

mod banded;
mod block;
mod erdos;
mod rmat;
mod sbm;

pub use banded::banded;
pub use block::block_sparse;
pub use erdos::{erdos_renyi, random_uniform};
pub use rmat::{rmat, RmatConfig};
pub use sbm::{sbm, SbmConfig, SbmDataset};

use fs_precision::Scalar;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::sparse::CooMatrix;

/// Fill the values of a pattern with uniform random values in `[-1, 1)`.
pub(crate) fn assign_values<S: Scalar>(
    rows: usize,
    cols: usize,
    pattern: Vec<(u32, u32)>,
    rng: &mut StdRng,
) -> CooMatrix<S> {
    let entries = pattern
        .into_iter()
        .map(|(r, c)| (r, c, S::from_f32(rng.random_range(-1.0f32..1.0))))
        .collect();
    CooMatrix::from_entries(rows, cols, entries)
}

/// A fresh deterministic RNG for a generator invocation.
pub(crate) fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
