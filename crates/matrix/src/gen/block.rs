//! Block-sparse matrices — clustered nonzeros that favour tensor-core
//! blocking (the regime where even 16×1 vectors are fairly dense).

use fs_precision::Scalar;
use rand::RngExt;

use super::rng_for;
use crate::sparse::CooMatrix;

/// A matrix of `rows×cols` covered by dense `bh×bw` tiles: each tile is
/// present with probability `block_density`, and within a present tile each
/// entry is kept with probability `inner_fill`.
pub fn block_sparse<S: Scalar>(
    rows: usize,
    cols: usize,
    bh: usize,
    bw: usize,
    block_density: f64,
    inner_fill: f64,
    seed: u64,
) -> CooMatrix<S> {
    assert!(bh > 0 && bw > 0);
    let mut rng = rng_for(seed);
    let mut entries = Vec::new();
    let tiles_r = rows.div_ceil(bh);
    let tiles_c = cols.div_ceil(bw);
    for tr in 0..tiles_r {
        for tc in 0..tiles_c {
            if rng.random::<f64>() > block_density {
                continue;
            }
            for dr in 0..bh {
                for dc in 0..bw {
                    let r = tr * bh + dr;
                    let c = tc * bw + dc;
                    if r >= rows || c >= cols {
                        continue;
                    }
                    if inner_fill < 1.0 && rng.random::<f64>() > inner_fill {
                        continue;
                    }
                    entries.push((r as u32, c as u32, S::from_f32(rng.random_range(-1.0f32..1.0))));
                }
            }
        }
    }
    CooMatrix::from_entries(rows, cols, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    #[test]
    fn full_blocks_everywhere_is_dense() {
        let m = block_sparse::<f32>(16, 16, 4, 4, 1.0, 1.0, 0);
        assert_eq!(CsrMatrix::from_coo(&m).nnz(), 256);
    }

    #[test]
    fn zero_density_is_empty() {
        let m = block_sparse::<f32>(16, 16, 4, 4, 0.0, 1.0, 0);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn ragged_edges_clipped() {
        let m = block_sparse::<f32>(10, 10, 4, 4, 1.0, 1.0, 0);
        assert_eq!(CsrMatrix::from_coo(&m).nnz(), 100);
    }

    #[test]
    fn nonzeros_cluster_into_tiles() {
        let m = block_sparse::<f32>(64, 64, 8, 8, 0.3, 1.0, 5);
        let csr = CsrMatrix::from_coo(&m);
        // Every populated tile is fully dense, so nnz must be a multiple of 64.
        assert_eq!(csr.nnz() % 64, 0);
        assert!(csr.nnz() > 0);
    }
}
