//! R-MAT (recursive matrix) graph generator — the standard model for the
//! skewed, power-law degree distributions of real-world graphs such as the
//! Reddit / AmazonProducts / IGB datasets in the paper's Table 4.

use fs_precision::Scalar;
use rand::RngExt;

use super::{assign_values, rng_for};
use crate::sparse::CooMatrix;

/// Parameters of the R-MAT recursion.
///
/// Each edge is placed by recursively descending into one of the four
/// quadrants of the adjacency matrix with probabilities `(a, b, c, d)`,
/// `d = 1 − a − b − c`. The classic Graph500 setting `a=0.57, b=0.19, c=0.19`
/// yields strongly skewed (power-law-ish) degree distributions; `a=b=c=0.25`
/// degenerates to Erdős–Rényi.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Per-level probability noise, breaking up exact self-similarity.
    pub noise: f64,
}

impl RmatConfig {
    /// The Graph500 reference parameters.
    pub const GRAPH500: RmatConfig = RmatConfig { a: 0.57, b: 0.19, c: 0.19, noise: 0.1 };

    /// Mildly skewed parameters (closer to uniform).
    pub const MILD: RmatConfig = RmatConfig { a: 0.45, b: 0.22, c: 0.22, noise: 0.05 };
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig::GRAPH500
    }
}

/// Generate an R-MAT graph adjacency matrix with `2^scale` vertices and
/// approximately `edge_factor · 2^scale` distinct edges (duplicates are
/// merged, so the final count is slightly lower; the structure is what
/// matters for the experiments).
///
/// The graph is made undirected (symmetrized) when `symmetric` is true, which
/// matches how GNN frameworks ingest these datasets.
pub fn rmat<S: Scalar>(
    scale: u32,
    edge_factor: usize,
    config: RmatConfig,
    symmetric: bool,
    seed: u64,
) -> CooMatrix<S> {
    let n = 1usize << scale;
    let mut rng = rng_for(seed);
    let target = n * edge_factor;
    let mut pattern = Vec::with_capacity(target * if symmetric { 2 } else { 1 });

    for _ in 0..target {
        let (mut r0, mut r1, mut c0, mut c1) = (0usize, n, 0usize, n);
        while r1 - r0 > 1 {
            // Jitter the quadrant probabilities per level.
            let jitter = |p: f64, rng: &mut rand::rngs::StdRng| {
                (p * (1.0 + config.noise * (rng.random::<f64>() - 0.5))).max(0.0)
            };
            let a = jitter(config.a, &mut rng);
            let b = jitter(config.b, &mut rng);
            let c = jitter(config.c, &mut rng);
            let d = (1.0 - config.a - config.b - config.c).max(0.0);
            let d = jitter(d, &mut rng);
            let sum = a + b + c + d;
            let x = rng.random::<f64>() * sum;
            let (down, right) = if x < a {
                (false, false)
            } else if x < a + b {
                (false, true)
            } else if x < a + b + c {
                (true, false)
            } else {
                (true, true)
            };
            let rm = (r0 + r1) / 2;
            let cm = (c0 + c1) / 2;
            if down {
                r0 = rm;
            } else {
                r1 = rm;
            }
            if right {
                c0 = cm;
            } else {
                c1 = cm;
            }
        }
        pattern.push((r0 as u32, c0 as u32));
        if symmetric {
            pattern.push((c0 as u32, r0 as u32));
        }
    }

    assign_values(n, n, pattern, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    #[test]
    fn shape_and_rough_edge_count() {
        let g = rmat::<f32>(8, 8, RmatConfig::GRAPH500, false, 42);
        assert_eq!(g.rows(), 256);
        assert_eq!(g.cols(), 256);
        let csr = CsrMatrix::from_coo(&g);
        // Duplicates merge, but we should retain a decent fraction.
        assert!(csr.nnz() > 256 * 4, "nnz={}", csr.nnz());
        assert!(csr.nnz() <= 256 * 8);
    }

    #[test]
    fn deterministic() {
        let a = rmat::<f32>(6, 4, RmatConfig::GRAPH500, true, 7);
        let b = rmat::<f32>(6, 4, RmatConfig::GRAPH500, true, 7);
        assert_eq!(a.entries(), b.entries());
        let c = rmat::<f32>(6, 4, RmatConfig::GRAPH500, true, 8);
        assert_ne!(a.entries(), c.entries());
    }

    #[test]
    fn symmetric_graphs_are_symmetric() {
        let g = rmat::<f32>(6, 4, RmatConfig::GRAPH500, true, 3);
        let csr = CsrMatrix::from_coo(&g);
        let d = csr.to_dense();
        for r in 0..d.rows() {
            for c in 0..d.cols() {
                assert_eq!(d.get(r, c) != 0.0, d.get(c, r) != 0.0, "pattern symmetry ({r},{c})");
            }
        }
    }

    #[test]
    fn skewed_degree_distribution() {
        // Graph500 parameters should give a max degree far above the mean.
        let g = rmat::<f32>(10, 8, RmatConfig::GRAPH500, false, 11);
        let csr = CsrMatrix::from_coo(&g);
        let mean = csr.nnz() as f64 / csr.rows() as f64;
        let max = (0..csr.rows()).map(|r| csr.row_len(r)).max().unwrap();
        assert!(max as f64 > 4.0 * mean, "expected skew: max={max} mean={mean:.1}");
    }
}
