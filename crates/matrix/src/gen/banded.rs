//! Banded matrices — stand-ins for the PDE/mesh matrices that dominate
//! SuiteSparse (structured diagonals, low bandwidth, regular row lengths).

use fs_precision::Scalar;
use rand::RngExt;

use super::rng_for;
use crate::sparse::CooMatrix;

/// A square banded matrix of order `n` with the given signed diagonal
/// offsets, each fully populated with random values, plus a `fill`
/// probability of keeping each entry (1.0 = dense band).
///
/// `offsets = [-1, 0, 1]` with `fill = 1.0` is the classic tridiagonal
/// stencil; wider offset lists emulate 2-D/3-D mesh discretizations.
pub fn banded<S: Scalar>(n: usize, offsets: &[i64], fill: f64, seed: u64) -> CooMatrix<S> {
    assert!((0.0..=1.0).contains(&fill), "fill must be a probability");
    let mut rng = rng_for(seed);
    let mut entries = Vec::new();
    for &off in offsets {
        for r in 0..n as i64 {
            let c = r + off;
            if c < 0 || c >= n as i64 {
                continue;
            }
            if fill < 1.0 && rng.random::<f64>() > fill {
                continue;
            }
            entries.push((r as u32, c as u32, S::from_f32(rng.random_range(-1.0f32..1.0))));
        }
    }
    CooMatrix::from_entries(n, n, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    #[test]
    fn tridiagonal_structure() {
        let m = banded::<f32>(10, &[-1, 0, 1], 1.0, 0);
        let csr = CsrMatrix::from_coo(&m);
        assert_eq!(csr.nnz(), 10 + 9 + 9);
        for (r, c, _) in csr.iter() {
            assert!((r as i64 - c as i64).abs() <= 1);
        }
    }

    #[test]
    fn fill_probability_thins_the_band() {
        let full = banded::<f32>(200, &[0, 5, -5], 1.0, 1);
        let thin = banded::<f32>(200, &[0, 5, -5], 0.5, 1);
        assert!(thin.nnz() < full.nnz());
        assert!(thin.nnz() > full.nnz() / 4, "roughly half retained");
    }

    #[test]
    fn out_of_range_offsets_are_clipped() {
        let m = banded::<f32>(4, &[-10, 10, 0], 1.0, 2);
        let csr = CsrMatrix::from_coo(&m);
        assert_eq!(csr.nnz(), 4, "only the main diagonal fits");
    }
}
