//! Sparsity statistics reported throughout the paper's evaluation
//! (Table 4's AvgRowLength, row-length skew, densities).

use fs_precision::Scalar;

use crate::sparse::CsrMatrix;

/// Summary statistics of a sparse matrix's structure.
#[derive(Clone, Debug, PartialEq)]
pub struct SparsityStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// Mean nonzeros per row (Table 4's "AvgRowLength").
    pub avg_row_length: f64,
    /// Longest row.
    pub max_row_length: usize,
    /// Shortest row.
    pub min_row_length: usize,
    /// Number of completely empty rows.
    pub empty_rows: usize,
    /// Fraction of entries that are nonzero.
    pub density: f64,
    /// Coefficient of variation of row lengths (σ/μ) — the load-imbalance
    /// signal RoDe's decomposition targets.
    pub row_cv: f64,
}

/// Compute [`SparsityStats`] for a CSR matrix.
pub fn sparsity_stats<S: Scalar>(m: &CsrMatrix<S>) -> SparsityStats {
    let rows = m.rows();
    let lengths: Vec<usize> = (0..rows).map(|r| m.row_len(r)).collect();
    let nnz = m.nnz();
    let mean = if rows > 0 { nnz as f64 / rows as f64 } else { 0.0 };
    let var = if rows > 0 {
        lengths.iter().map(|&l| (l as f64 - mean).powi(2)).sum::<f64>() / rows as f64
    } else {
        0.0
    };
    SparsityStats {
        rows,
        cols: m.cols(),
        nnz,
        avg_row_length: mean,
        max_row_length: lengths.iter().copied().max().unwrap_or(0),
        min_row_length: lengths.iter().copied().min().unwrap_or(0),
        empty_rows: lengths.iter().filter(|&&l| l == 0).count(),
        density: if rows > 0 && m.cols() > 0 {
            nnz as f64 / (rows as f64 * m.cols() as f64)
        } else {
            0.0
        },
        row_cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
    }
}

/// Geometric mean of a sequence of positive values; 0 if empty.
pub fn geometric_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geometric mean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Percentile (0–100, linear interpolation) of an unsorted slice.
pub fn percentile(values: &[f64], pct: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&pct));
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{banded, rmat, RmatConfig};
    use crate::sparse::{CooMatrix, CsrMatrix};

    #[test]
    fn stats_on_known_matrix() {
        // rows: 2, 0, 1 nonzeros
        let m = CsrMatrix::from_coo(&CooMatrix::from_entries(
            3,
            4,
            vec![(0, 0, 1.0f32), (0, 1, 1.0), (2, 3, 1.0)],
        ));
        let s = sparsity_stats(&m);
        assert_eq!(s.nnz, 3);
        assert_eq!(s.max_row_length, 2);
        assert_eq!(s.min_row_length, 0);
        assert_eq!(s.empty_rows, 1);
        assert!((s.avg_row_length - 1.0).abs() < 1e-12);
        assert!((s.density - 0.25).abs() < 1e-12);
    }

    #[test]
    fn banded_has_low_cv_rmat_has_high_cv() {
        let b = CsrMatrix::from_coo(&banded::<f32>(256, &[-1, 0, 1], 1.0, 0));
        let g = CsrMatrix::from_coo(&rmat::<f32>(8, 8, RmatConfig::GRAPH500, false, 0));
        let sb = sparsity_stats(&b);
        let sg = sparsity_stats(&g);
        assert!(sb.row_cv < 0.2, "banded cv={}", sb.row_cv);
        assert!(sg.row_cv > 0.5, "rmat cv={}", sg.row_cv);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 25.0), 2.0);
    }
}
