//! ASCII sparsity-pattern rendering — quick structural inspection of a
//! matrix in a terminal (the "spy plot" of the Rust world).

use fs_precision::Scalar;

use crate::sparse::CsrMatrix;

/// Render the sparsity pattern as a grid of density glyphs, downsampling
/// the matrix into at most `max_cells`×`max_cells` character cells.
///
/// Glyph scale (fraction of the cell that is nonzero):
/// `' '` = 0, `'.'` < 5%, `':'` < 20%, `'+'` < 50%, `'#'` ≥ 50%.
pub fn render_sparsity<S: Scalar>(m: &CsrMatrix<S>, max_cells: usize) -> String {
    assert!(max_cells > 0);
    if m.rows() == 0 || m.cols() == 0 {
        return String::new();
    }
    let cell_h = m.rows().div_ceil(max_cells).max(1);
    let cell_w = m.cols().div_ceil(max_cells).max(1);
    let grid_h = m.rows().div_ceil(cell_h);
    let grid_w = m.cols().div_ceil(cell_w);

    let mut counts = vec![0u32; grid_h * grid_w];
    for (r, c, _) in m.iter() {
        counts[(r / cell_h) * grid_w + c / cell_w] += 1;
    }

    let mut out = String::with_capacity(grid_h * (grid_w + 1));
    for gr in 0..grid_h {
        for gc in 0..grid_w {
            let rows_in = cell_h.min(m.rows() - gr * cell_h);
            let cols_in = cell_w.min(m.cols() - gc * cell_w);
            let density = counts[gr * grid_w + gc] as f64 / (rows_in * cols_in) as f64;
            out.push(match density {
                d if d <= 0.0 => ' ',
                d if d < 0.05 => '.',
                d if d < 0.20 => ':',
                d if d < 0.50 => '+',
                _ => '#',
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::banded;
    use crate::sparse::CooMatrix;

    #[test]
    fn diagonal_renders_as_diagonal() {
        let m = CsrMatrix::from_coo(&banded::<f32>(64, &[0], 1.0, 0));
        let art = render_sparsity(&m, 8);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8);
        for (i, line) in lines.iter().enumerate() {
            for (j, ch) in line.chars().enumerate() {
                if i == j {
                    assert_ne!(ch, ' ', "diagonal cell ({i},{j}) must be marked");
                } else {
                    assert_eq!(ch, ' ', "off-diagonal cell ({i},{j}) must be empty");
                }
            }
        }
    }

    #[test]
    fn dense_block_is_hash() {
        let entries: Vec<(u32, u32, f32)> =
            (0..8).flat_map(|r| (0..8).map(move |c| (r, c, 1.0))).collect();
        let m = CsrMatrix::from_coo(&CooMatrix::from_entries(8, 8, entries));
        let art = render_sparsity(&m, 4);
        assert!(art.chars().filter(|&c| c != '\n').all(|c| c == '#'));
    }

    #[test]
    fn empty_matrix_is_blank() {
        let m = CsrMatrix::<f32>::empty(16, 16);
        let art = render_sparsity(&m, 4);
        assert!(art.chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    fn non_square_shapes() {
        let m = CsrMatrix::from_coo(&CooMatrix::from_entries(3, 100, vec![(0, 0, 1.0f32)]));
        let art = render_sparsity(&m, 10);
        assert!(!art.is_empty());
        assert!(
            art.starts_with('.')
                || art.starts_with(':')
                || art.starts_with('+')
                || art.starts_with('#')
        );
    }
}
