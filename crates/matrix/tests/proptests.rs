//! Property-based tests for the matrix substrate: format roundtrips,
//! reference-kernel algebra, generator invariants, I/O.

use fs_matrix::gen::{random_uniform, rmat, RmatConfig};
use fs_matrix::io::{read_matrix_market, write_matrix_market};
use fs_matrix::stats::sparsity_stats;
use fs_matrix::{CooMatrix, CscMatrix, CsrMatrix, DenseMatrix};
use proptest::prelude::*;

fn arb_csr() -> impl Strategy<Value = CsrMatrix<f32>> {
    (1usize..60, 1usize..60, 0usize..300, 0u64..10_000)
        .prop_map(|(r, c, nnz, seed)| CsrMatrix::from_coo(&random_uniform::<f32>(r, c, nnz, seed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSR ↔ COO ↔ CSC all describe the same matrix.
    #[test]
    fn format_roundtrips(csr in arb_csr()) {
        let coo = csr.to_coo();
        prop_assert_eq!(CsrMatrix::from_coo(&coo), csr.clone());
        let csc = CscMatrix::from_coo(&coo);
        prop_assert_eq!(csc.to_dense(), csr.to_dense());
        prop_assert_eq!(csc.nnz(), csr.nnz());
    }

    /// Transposition is an involution and swaps the dense axes.
    #[test]
    fn transpose_involution(csr in arb_csr()) {
        let t = csr.transpose();
        prop_assert_eq!((t.rows(), t.cols()), (csr.cols(), csr.rows()));
        prop_assert_eq!(t.transpose(), csr.clone());
        prop_assert_eq!(t.to_dense(), csr.to_dense().transpose());
    }

    /// SpMM against the identity returns the dense expansion.
    #[test]
    fn spmm_identity(csr in arb_csr()) {
        let eye = DenseMatrix::<f32>::from_fn(csr.cols(), csr.cols(), |r, c| {
            if r == c { 1.0 } else { 0.0 }
        });
        let out = csr.spmm_reference(&eye);
        prop_assert_eq!(out.max_abs_diff(&csr.to_dense()), 0.0);
    }

    /// SpMM is linear in the dense operand: A(B₁+B₂) = AB₁ + AB₂.
    #[test]
    fn spmm_linearity(csr in arb_csr(), n in 1usize..12) {
        let b1 = DenseMatrix::<f32>::from_fn(csr.cols(), n, |r, c| ((r * 3 + c) % 8) as f32);
        let b2 = DenseMatrix::<f32>::from_fn(csr.cols(), n, |r, c| ((r + 5 * c) % 6) as f32);
        let sum = DenseMatrix::<f32>::from_fn(csr.cols(), n, |r, c| {
            b1.get(r, c) + b2.get(r, c)
        });
        let lhs = csr.spmm_reference(&sum);
        let r1 = csr.spmm_reference(&b1);
        let r2 = csr.spmm_reference(&b2);
        for i in 0..lhs.rows() {
            for j in 0..n {
                let rhs = r1.get(i, j) + r2.get(i, j);
                prop_assert!((lhs.get(i, j) - rhs).abs() < 1e-3 * (1.0 + rhs.abs()));
            }
        }
    }

    /// SDDMM with a unit mask samples the dense product exactly.
    #[test]
    fn sddmm_samples_dense_product(csr in arb_csr(), k in 1usize..10) {
        let mask = csr.with_unit_values();
        let a = DenseMatrix::<f32>::from_fn(mask.rows(), k, |r, c| ((r + c) % 5) as f32 * 0.5);
        let b = DenseMatrix::<f32>::from_fn(mask.cols(), k, |r, c| ((r * 2 + c) % 7) as f32 * 0.25);
        let out = mask.sddmm_reference(&a, &b);
        let full = a.matmul(&b.transpose());
        for (r, c, v) in out.iter() {
            prop_assert!((v - full.get(r, c)).abs() < 1e-3);
        }
    }

    /// head_rows produces a consistent prefix.
    #[test]
    fn head_rows_prefix(csr in arb_csr(), r in 0usize..80) {
        let h = csr.head_rows(r);
        prop_assert_eq!(h.rows(), r.min(csr.rows()));
        for row in 0..h.rows() {
            prop_assert_eq!(h.row_cols(row), csr.row_cols(row));
            prop_assert_eq!(h.row_values(row), csr.row_values(row));
        }
    }

    /// Matrix Market write → read is the identity.
    #[test]
    fn matrix_market_roundtrip(csr in arb_csr()) {
        let mut buf = Vec::new();
        write_matrix_market(&csr, &mut buf).unwrap();
        let back = CsrMatrix::from_coo(&read_matrix_market::<f32, _>(&buf[..]).unwrap());
        prop_assert_eq!(back, csr);
    }

    /// Statistics are internally consistent.
    #[test]
    fn stats_consistency(csr in arb_csr()) {
        let s = sparsity_stats(&csr);
        prop_assert_eq!(s.nnz, csr.nnz());
        prop_assert!(s.min_row_length <= s.max_row_length);
        prop_assert!(s.avg_row_length <= s.max_row_length as f64 + 1e-12);
        prop_assert!(s.avg_row_length >= s.min_row_length as f64 - 1e-12);
        prop_assert!((0.0..=1.0).contains(&s.density));
        if s.nnz == 0 {
            prop_assert_eq!(s.empty_rows, s.rows);
        }
    }

    /// Dedup is idempotent and never increases nnz.
    #[test]
    fn dedup_idempotent(
        rows in 1usize..40,
        cols in 1usize..40,
        entries in prop::collection::vec((0u32..40, 0u32..40, -10i32..10), 0..120),
    ) {
        let entries: Vec<(u32, u32, f32)> = entries
            .into_iter()
            .map(|(r, c, v)| (r % rows as u32, c % cols as u32, v as f32))
            .collect();
        let raw_len = entries.len();
        let coo = CooMatrix::from_entries(rows, cols, entries);
        let once = coo.clone().dedup();
        prop_assert!(once.nnz() <= raw_len);
        let twice = once.clone().dedup();
        prop_assert_eq!(once.entries(), twice.entries());
    }
}

/// Deterministic generators stay deterministic across the API surface.
#[test]
fn generators_are_stable_across_calls() {
    let a = rmat::<f32>(6, 4, RmatConfig::GRAPH500, true, 123);
    let b = rmat::<f32>(6, 4, RmatConfig::GRAPH500, true, 123);
    assert_eq!(CsrMatrix::from_coo(&a), CsrMatrix::from_coo(&b));
}
