//! `cargo run -p xtask -- lint` — run the repo lint pass; see the library
//! crate docs for the rules.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    // CARGO_MANIFEST_DIR = <repo>/crates/xtask.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("repo root"); // lint: allow-panic - compile-time path has two parents
    let diags = match xtask::lint_tree(root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lint walk failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if diags.is_empty() {
        println!("lint: clean ({} rules over the workspace)", 5);
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            eprintln!("{d}");
        }
        eprintln!("lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
