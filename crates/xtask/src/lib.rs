//! The repo's custom lint pass (`cargo run -p xtask -- lint`).
//!
//! Five rules tuned to the failure modes of this codebase, enforced on top
//! of the `[workspace.lints]` clippy configuration (which cannot express
//! them — they are path- and annotation-sensitive):
//!
//! 1. **checked-cast** — truncating `as u32` / `as u16` casts in kernel
//!    modules (`crates/tcu`, `crates/core`). Address and index arithmetic
//!    there feeds the transaction simulator; a silent 32-bit truncation
//!    produces wrong-but-plausible traffic counts. Every such cast must
//!    carry a `// lint: checked-cast` note arguing why it cannot truncate.
//! 2. **allow-panic** — `.unwrap()` / `.expect(` in library crates.
//!    Allowed in tests, benches, examples, and the `fs-bench` harness;
//!    elsewhere each use needs a `// lint: allow-panic` justification.
//! 3. **no-unsafe** — `unsafe` anywhere outside the (currently empty)
//!    allowlist. The simulator is pure safe Rust; keep it that way.
//! 4. **no-todo** — `todo!` / `unimplemented!` anywhere, tests included.
//! 5. **counted-catch** — `catch_unwind` in library code. A swallowed
//!    panic is how injected faults (fs-chaos worker kills) or real bugs
//!    turn into silent corruption; every unwind boundary must carry a
//!    `// lint: counted-catch` note saying where the panic is counted
//!    and surfaced. Vendored shims under `crates/shims/` are exempt.
//!
//! The pass is deliberately lexical (line-based with comment/test-module
//! awareness), not a parser: it runs in milliseconds, works offline, and
//! the annotations double as reviewer-facing documentation.

use std::fmt;
use std::path::{Path, PathBuf};

/// Which lint rule fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    CheckedCast,
    AllowPanic,
    NoUnsafe,
    NoTodo,
    CountedCatch,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::CheckedCast => "checked-cast",
            Rule::AllowPanic => "allow-panic",
            Rule::NoUnsafe => "no-unsafe",
            Rule::NoTodo => "no-todo",
            Rule::CountedCatch => "counted-catch",
        })
    }
}

/// One lint finding, printed as `file:line: [rule] message`.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub file: PathBuf,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// How a file is classified, deciding which rules apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Kernel/simulator library code: all five rules.
    KernelLib,
    /// Other library code: panic, unsafe, todo, and counted-catch rules.
    Lib,
    /// Tests, benches, examples, the bench harness, and xtask itself:
    /// only unsafe and todo rules.
    TestOrBench,
}

/// Classify a repo-relative path.
pub fn classify(path: &Path) -> FileClass {
    let p = path.to_string_lossy().replace('\\', "/");
    let is_test_like = p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.starts_with("examples/")
        || p.starts_with("tests/")
        || p.contains("crates/bench/")
        || p.contains("crates/xtask/");
    if is_test_like {
        return FileClass::TestOrBench;
    }
    if p.contains("crates/tcu/src/") || p.contains("crates/core/src/") {
        return FileClass::KernelLib;
    }
    FileClass::Lib
}

/// Paths (substring match) where `unsafe` is tolerated. Currently empty:
/// the whole workspace is safe Rust.
pub const UNSAFE_ALLOWLIST: &[&str] = &[];

/// Paths (substring match) exempt from the counted-catch rule: vendored
/// shims mirror external crates' APIs and own their panic handling.
pub const COUNTED_CATCH_EXEMPT: &[&str] = &["crates/shims/"];

fn is_comment_only(trimmed: &str) -> bool {
    trimmed.starts_with("//")
}

/// Lint one file's source text. `path` is used for diagnostics and for
/// the unsafe allowlist; classification is the caller's job so tests can
/// exercise any class on inline fixtures.
pub fn lint_source(path: &Path, content: &str, class: FileClass) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let unsafe_allowed =
        UNSAFE_ALLOWLIST.iter().any(|allow| path.to_string_lossy().contains(allow));
    let counted_catch_exempt = COUNTED_CATCH_EXEMPT
        .iter()
        .any(|allow| path.to_string_lossy().replace('\\', "/").contains(allow));
    // Heuristic matching this repo's layout: the first `#[cfg(test)]`
    // starts the test module, which by convention is the tail of the file.
    let mut in_tests = false;
    let lines: Vec<&str> = content.lines().collect();

    for (idx, &line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let trimmed = line.trim_start();
        // An annotation may sit on the flagged line itself or, when rustfmt
        // wraps the code past the width limit, on the line directly above.
        let annotated = |marker: &str| -> bool {
            line.contains(marker)
                || (idx > 0 && {
                    let prev = lines[idx - 1].trim_start();
                    is_comment_only(prev) && prev.contains(marker)
                })
        };
        if trimmed.contains("#[cfg(test)]") {
            in_tests = true;
        }
        if is_comment_only(trimmed) {
            continue;
        }

        if trimmed.contains("todo!(") || trimmed.contains("unimplemented!(") {
            out.push(Diagnostic {
                file: path.to_path_buf(),
                line: lineno,
                rule: Rule::NoTodo,
                message: "todo!/unimplemented! must not be committed".into(),
            });
        }

        if !unsafe_allowed && contains_word(line, "unsafe") {
            out.push(Diagnostic {
                file: path.to_path_buf(),
                line: lineno,
                rule: Rule::NoUnsafe,
                message: "unsafe code outside the allowlist".into(),
            });
        }

        if in_tests || class == FileClass::TestOrBench {
            continue;
        }

        if class == FileClass::KernelLib
            && (contains_cast(line, "u32") || contains_cast(line, "u16"))
            && !annotated("lint: checked-cast")
        {
            out.push(Diagnostic {
                file: path.to_path_buf(),
                line: lineno,
                rule: Rule::CheckedCast,
                message: "truncating cast in kernel code needs a \
                          `// lint: checked-cast` justification"
                    .into(),
            });
        }

        if (line.contains(".unwrap()") || line.contains(".expect("))
            && !annotated("lint: allow-panic")
        {
            out.push(Diagnostic {
                file: path.to_path_buf(),
                line: lineno,
                rule: Rule::AllowPanic,
                message: "unwrap/expect in library code needs a \
                          `// lint: allow-panic` justification"
                    .into(),
            });
        }

        if !counted_catch_exempt
            && contains_word(line, "catch_unwind")
            // Importing the name is not an unwind boundary; only a call is.
            && !trimmed.starts_with("use ")
            && !annotated("lint: counted-catch")
        {
            out.push(Diagnostic {
                file: path.to_path_buf(),
                line: lineno,
                rule: Rule::CountedCatch,
                message: "catch_unwind in library code needs a \
                          `// lint: counted-catch` note saying where the \
                          panic is counted and surfaced"
                    .into(),
            });
        }
    }
    out
}

fn contains_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let begin = start + pos;
        let end = begin + word.len();
        let left_ok = begin == 0 || !is_ident_char(bytes[begin - 1]);
        let right_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        start = end;
    }
    false
}

fn contains_cast(line: &str, target: &str) -> bool {
    let needle = format!("as {target}");
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(&needle) {
        let begin = start + pos;
        let end = begin + needle.len();
        let left_ok = begin == 0 || bytes[begin - 1] == b' ' || bytes[begin - 1] == b'(';
        let right_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        start = end;
    }
    false
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Collect every `.rs` file under `root` (skipping `target/`, hidden
/// directories, and this linter's own sources — which necessarily contain
/// every banned pattern as rule definitions and test fixtures), lint each,
/// and return all diagnostics.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file);
        if rel.to_string_lossy().replace('\\', "/").contains("crates/xtask/") {
            continue;
        }
        let content = std::fs::read_to_string(&file)?;
        out.extend(lint_source(rel, &content, classify(rel)));
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_fixture(path: &str, src: &str, class: FileClass) -> Vec<Diagnostic> {
        lint_source(Path::new(path), src, class)
    }

    #[test]
    fn classification_by_path() {
        assert_eq!(classify(Path::new("crates/tcu/src/mma.rs")), FileClass::KernelLib);
        assert_eq!(classify(Path::new("crates/core/src/spmm.rs")), FileClass::KernelLib);
        assert_eq!(classify(Path::new("crates/format/src/mebcrs.rs")), FileClass::Lib);
        // The serving crate is library code end to end: the engine, the
        // protocol, and its binaries all get the allow-panic rule.
        assert_eq!(classify(Path::new("crates/serve/src/engine.rs")), FileClass::Lib);
        assert_eq!(classify(Path::new("crates/serve/src/bin/fs_serve.rs")), FileClass::Lib);
        assert_eq!(classify(Path::new("crates/serve/tests/e2e.rs")), FileClass::TestOrBench);
        assert_eq!(classify(Path::new("crates/bench/src/algos.rs")), FileClass::TestOrBench);
        assert_eq!(classify(Path::new("crates/core/tests/x.rs")), FileClass::TestOrBench);
        assert_eq!(classify(Path::new("crates/tcu/benches/b.rs")), FileClass::TestOrBench);
        assert_eq!(classify(Path::new("examples/quickstart.rs")), FileClass::TestOrBench);
    }

    #[test]
    fn unannotated_truncating_cast_in_kernel_flagged() {
        let src = "fn f(x: usize) -> u32 { x as u32 }\n";
        let d = lint_fixture("crates/tcu/src/x.rs", src, FileClass::KernelLib);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::CheckedCast);
        assert_eq!(d[0].line, 1);
        let u16src = "fn g(x: usize) -> u16 { x as u16 }\n";
        let d = lint_fixture("crates/tcu/src/x.rs", u16src, FileClass::KernelLib);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn annotated_cast_passes() {
        let src = "let w = idx as u32; // lint: checked-cast - window count < 2^32\n";
        assert!(lint_fixture("crates/tcu/src/x.rs", src, FileClass::KernelLib).is_empty());
    }

    #[test]
    fn annotation_on_preceding_comment_line_honored() {
        // rustfmt moves over-long trailing comments; a standalone comment
        // directly above the flagged line must work too.
        let src = "// lint: checked-cast - element size is 2 or 4\nlet w = idx as u32;\n";
        assert!(lint_fixture("crates/tcu/src/x.rs", src, FileClass::KernelLib).is_empty());
        let panic_src = "// lint: allow-panic - key inserted above\nlet v = m.get(&k).unwrap();\n";
        assert!(lint_fixture("crates/format/src/x.rs", panic_src, FileClass::Lib).is_empty());
        // A blank line in between breaks the association.
        let gap = "// lint: checked-cast - stale\n\nlet w = idx as u32;\n";
        assert_eq!(lint_fixture("crates/tcu/src/x.rs", gap, FileClass::KernelLib).len(), 1);
    }

    #[test]
    fn cast_outside_kernel_modules_not_flagged() {
        let src = "fn f(x: usize) -> u32 { x as u32 }\n";
        assert!(lint_fixture("crates/matrix/src/x.rs", src, FileClass::Lib).is_empty());
    }

    #[test]
    fn cast_to_other_widths_not_flagged() {
        let src = "let a = x as u64;\nlet b = y as usize;\nlet c = z as u8;\n";
        assert!(lint_fixture("crates/tcu/src/x.rs", src, FileClass::KernelLib).is_empty());
    }

    #[test]
    fn unwrap_in_lib_flagged_and_annotation_honored() {
        let src = "let v = map.get(&k).unwrap();\n";
        let d = lint_fixture("crates/format/src/x.rs", src, FileClass::Lib);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::AllowPanic);
        let ok = "let v = map.get(&k).unwrap(); // lint: allow-panic - key inserted above\n";
        assert!(lint_fixture("crates/format/src/x.rs", ok, FileClass::Lib).is_empty());
        let exp = "let v = opt.expect(\"invariant\");\n";
        assert_eq!(lint_fixture("crates/format/src/x.rs", exp, FileClass::Lib).len(), 1);
    }

    #[test]
    fn unwrap_in_bench_and_tests_allowed() {
        let src = "let v = m.iter().max().unwrap();\n";
        assert!(lint_fixture("crates/bench/src/x.rs", src, FileClass::TestOrBench).is_empty());
        let with_tests = "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn g() { x.unwrap(); }\n}\n";
        assert!(lint_fixture("crates/format/src/x.rs", with_tests, FileClass::Lib).is_empty());
    }

    #[test]
    fn unsafe_flagged_everywhere() {
        let src = "unsafe { *ptr }\n";
        for class in [FileClass::KernelLib, FileClass::Lib, FileClass::TestOrBench] {
            let d = lint_fixture("crates/gnn/src/x.rs", src, class);
            assert_eq!(d.len(), 1, "{class:?}");
            assert_eq!(d[0].rule, Rule::NoUnsafe);
        }
        // `unsafe` as part of a longer identifier is not a hit.
        let ident = "let not_unsafe_here = 1;\n";
        assert!(lint_fixture("crates/gnn/src/x.rs", ident, FileClass::Lib).is_empty());
    }

    #[test]
    fn todo_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { todo!(\"later\") }\n}\n";
        let d = lint_fixture("crates/tcu/src/x.rs", src, FileClass::KernelLib);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::NoTodo);
        assert_eq!(d[0].line, 3);
        let d = lint_fixture("crates/tcu/src/x.rs", "unimplemented!()\n", FileClass::KernelLib);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn catch_unwind_in_lib_needs_counted_catch_note() {
        let src = "let r = std::panic::catch_unwind(|| run());\n";
        let d = lint_fixture("crates/serve/src/x.rs", src, FileClass::Lib);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::CountedCatch);
        let ok =
            "let r = catch_unwind(|| run()); // lint: counted-catch - panics counted in stats\n";
        assert!(lint_fixture("crates/serve/src/x.rs", ok, FileClass::Lib).is_empty());
        // The note also works on the preceding comment line.
        let above =
            "// lint: counted-catch - worker respawned by the monitor\nlet r = catch_unwind(f);\n";
        assert!(lint_fixture("crates/serve/src/x.rs", above, FileClass::Lib).is_empty());
    }

    #[test]
    fn catch_unwind_in_tests_and_shims_exempt() {
        let src = "let r = std::panic::catch_unwind(|| run());\n";
        assert!(lint_fixture("crates/serve/tests/x.rs", src, FileClass::TestOrBench).is_empty());
        let in_mod = "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn g() { catch_unwind(h); }\n}\n";
        assert!(lint_fixture("crates/matrix/src/x.rs", in_mod, FileClass::Lib).is_empty());
        assert!(lint_fixture("crates/shims/proptest/src/lib.rs", src, FileClass::Lib).is_empty());
        // A longer identifier is not a hit, and neither is the import.
        let ident = "let my_catch_unwind_count = 1;\n";
        assert!(lint_fixture("crates/serve/src/x.rs", ident, FileClass::Lib).is_empty());
        let import = "use std::panic::{catch_unwind, AssertUnwindSafe};\n";
        assert!(lint_fixture("crates/serve/src/x.rs", import, FileClass::Lib).is_empty());
    }

    #[test]
    fn comment_lines_are_skipped() {
        let src = "// calling .unwrap() here would be wrong; x as u32 too\n";
        assert!(lint_fixture("crates/tcu/src/x.rs", src, FileClass::KernelLib).is_empty());
    }

    #[test]
    fn diagnostics_format_as_file_line_rule() {
        let d = lint_fixture(
            "crates/tcu/src/x.rs",
            "fn f(x: usize) -> u32 { x as u32 }\n",
            FileClass::KernelLib,
        );
        let s = d[0].to_string();
        assert!(s.starts_with("crates/tcu/src/x.rs:1: [checked-cast]"), "{s}");
    }

    #[test]
    fn workspace_is_lint_clean() {
        // The acceptance criterion: the real tree passes its own linter.
        // CARGO_MANIFEST_DIR = crates/xtask → repo root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("repo root");
        let diags = lint_tree(root).expect("lint walk");
        assert!(
            diags.is_empty(),
            "workspace has lint violations:\n{}",
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
