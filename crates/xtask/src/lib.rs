//! The repo's custom lint pass (`cargo run -p xtask -- lint`) — now a
//! thin shim over the token-level implementation in `crates/analyze`.
//!
//! The five rules (checked-cast, allow-panic, no-unsafe, no-todo,
//! counted-catch), their path classification, and the `// lint: …`
//! annotation scheme live in [`analyze::lint`]; this crate re-exports
//! that API so `xtask::lint_tree` keeps working for callers and for the
//! `cargo run -p xtask -- lint` entry point.
//!
//! What changed in the migration: the original pass matched **substrings
//! of raw lines**, so a banned pattern spelled inside a string literal or
//! a doc comment would fire the rule. The token rules only see code.
//! The original matchers are kept below (crate-private) purely as the
//! regression fixture demonstrating the false-positive class the lexer
//! killed — see the `legacy_false_positives` tests.

pub use analyze::diag::{Diagnostic, Severity};
pub use analyze::lint::{
    classify, lint_source, lint_tree, FileClass, COUNTED_CATCH_EXEMPT, UNSAFE_ALLOWLIST,
};

/// The old line-based word matcher (identifier-boundary substring
/// search). Kept only to demonstrate the false positives that motivated
/// the token-level rewrite; not used by any rule.
#[doc(hidden)]
pub fn legacy_contains_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let begin = start + pos;
        let end = begin + word.len();
        let left_ok = begin == 0 || !is_ident_char(bytes[begin - 1]);
        let right_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        start = end;
    }
    false
}

/// The old line-based cast matcher. Kept only for the false-positive
/// demonstration; not used by any rule.
#[doc(hidden)]
pub fn legacy_contains_cast(line: &str, target: &str) -> bool {
    let needle = format!("as {target}");
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(&needle) {
        let begin = start + pos;
        let end = begin + needle.len();
        let left_ok = begin == 0 || bytes[begin - 1] == b' ' || bytes[begin - 1] == b'(';
        let right_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        start = end;
    }
    false
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    // The shimmed API keeps the old behavior on real violations…
    #[test]
    fn shim_still_flags_real_violations() {
        let d = lint_source(
            Path::new("crates/tcu/src/x.rs"),
            "fn f(x: usize) -> u32 { x as u32 }\n",
            FileClass::KernelLib,
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "checked-cast");
        assert!(d[0].to_string().starts_with("crates/tcu/src/x.rs:1: [checked-cast]"));

        let d = lint_source(
            Path::new("crates/format/src/x.rs"),
            "let v = map.get(&k).unwrap();\n",
            FileClass::Lib,
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "allow-panic");
    }

    #[test]
    fn shim_classification_matches_old_table() {
        assert_eq!(classify(Path::new("crates/tcu/src/mma.rs")), FileClass::KernelLib);
        assert_eq!(classify(Path::new("crates/core/src/spmm.rs")), FileClass::KernelLib);
        assert_eq!(classify(Path::new("crates/serve/src/engine.rs")), FileClass::Lib);
        assert_eq!(classify(Path::new("crates/serve/tests/e2e.rs")), FileClass::TestOrBench);
        assert_eq!(classify(Path::new("crates/bench/src/algos.rs")), FileClass::TestOrBench);
        assert_eq!(classify(Path::new("crates/xtask/src/lib.rs")), FileClass::TestOrBench);
        assert_eq!(classify(Path::new("examples/quickstart.rs")), FileClass::TestOrBench);
    }

    // …while the false-positive class of the legacy matchers is gone.
    // Each case below shows the OLD matcher firing on text that is not
    // code, and the token-backed rule staying silent on the same input.
    mod legacy_false_positives {
        use super::*;

        #[test]
        fn word_in_string_literal() {
            let line = "let msg = \"an unsafe operation was rejected\";";
            assert!(legacy_contains_word(line, "unsafe"), "legacy matcher fired inside a string");
            let d = lint_source(Path::new("crates/gnn/src/x.rs"), line, FileClass::Lib);
            assert!(d.is_empty(), "token rule must not fire inside a string: {d:?}");
        }

        #[test]
        fn cast_in_doc_comment() {
            let line = "/// Truncates with `x as u32` semantics before staging.";
            assert!(legacy_contains_cast(line, "u32"), "legacy matcher fired in a doc comment");
            let src = format!("{line}\nfn f() {{}}\n");
            let d = lint_source(Path::new("crates/tcu/src/x.rs"), &src, FileClass::KernelLib);
            assert!(d.is_empty(), "token rule must not fire in a doc comment: {d:?}");
        }

        #[test]
        fn catch_unwind_in_raw_string() {
            let line = "let snippet = r#\"std::panic::catch_unwind(run)\"#;";
            assert!(legacy_contains_word(line, "catch_unwind"));
            let d = lint_source(Path::new("crates/serve/src/x.rs"), line, FileClass::Lib);
            assert!(d.is_empty(), "token rule must not fire in a raw string: {d:?}");
        }

        #[test]
        fn unwrap_in_string_vs_real_unwrap() {
            // Old matcher: `.unwrap()` anywhere on the line, string or not.
            let in_string = "let help = \"retry instead of .unwrap() here\";";
            assert!(in_string.contains(".unwrap()"), "substring match fired inside a string");
            let d = lint_source(Path::new("crates/format/src/x.rs"), in_string, FileClass::Lib);
            assert!(d.is_empty(), "{d:?}");
            // The same file with a *real* unwrap still gets caught.
            let real = "let v = o.unwrap();";
            let d = lint_source(Path::new("crates/format/src/x.rs"), real, FileClass::Lib);
            assert_eq!(d.len(), 1);
        }

        #[test]
        fn annotation_marker_inside_string_no_longer_annotates() {
            // The old pass read `line.contains(marker)`, so a marker spelled
            // inside a string literal suppressed the rule on that line.
            let fake = "let s = \"lint: allow-panic\"; let v = o.unwrap();";
            let d = lint_source(Path::new("crates/format/src/x.rs"), fake, FileClass::Lib);
            assert_eq!(d.len(), 1, "string-literal marker must not annotate: {d:?}");
        }
    }

    #[test]
    fn workspace_is_lint_clean() {
        // The acceptance criterion: the real tree passes its own linter.
        // CARGO_MANIFEST_DIR = crates/xtask → repo root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("repo root");
        let diags = lint_tree(root).expect("lint walk");
        assert!(
            diags.is_empty(),
            "workspace has lint violations:\n{}",
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
