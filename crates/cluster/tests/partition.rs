//! Property tests for the two facts the cluster layer leans on:
//!
//! 1. Row partitioning is *exact* for SpMM: each output row of `A·B`
//!    depends only on its own sparse row of `A`, so concatenating
//!    per-slab fast-path outputs over ANY ragged row partition is
//!    bit-identical to the unsharded fast path — provided every slab
//!    runs the same tuned variant, which is why the test pins the
//!    full-matrix [`TuneChoice`] for all slabs the way a cluster of
//!    identically-configured shards would.
//! 2. [`ShardMap`] placement is a pure function of the shard *address
//!    set* and the matrix fingerprint — join order never matters — so a
//!    restarted router reproduces the identical slab → shard map.

use flashsparse::{auto_tune, ThreadMapping, TranslatedMatrix};
use fs_chaos::splitmix64;
use fs_cluster::ShardMap;
use fs_matrix::gen::random_uniform;
use fs_matrix::{CooMatrix, CsrMatrix, DenseMatrix};
use fs_tcu::GpuSpec;
use proptest::prelude::*;

/// Extract rows `range` of `csr` as a standalone CSR with slab-local
/// row indices — the same rebase the router performs at `Load`.
fn slice_rows(csr: &CsrMatrix<f32>, range: std::ops::Range<usize>) -> CsrMatrix<f32> {
    let mut coo = CooMatrix::new(range.len(), csr.cols());
    for r in range.clone() {
        for (c, v) in csr.row_cols(r).iter().zip(csr.row_values(r)) {
            coo.push(r - range.start, *c as usize, *v);
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Turn arbitrary cut fractions into a ragged partition of `0..rows`:
/// contiguous, covering, arbitrarily uneven, no empty slabs.
fn ragged_partition(rows: usize, fractions: &[f64]) -> Vec<std::ops::Range<usize>> {
    let mut cuts: Vec<usize> =
        fractions.iter().map(|f| ((f.clamp(0.0, 1.0)) * rows as f64) as usize).collect();
    cuts.push(0);
    cuts.push(rows);
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2).map(|w| w[0]..w[1]).filter(|r| !r.is_empty()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concatenated per-slab fast-path outputs over a ragged row
    /// partition are bit-identical to the single-process fast path.
    #[test]
    fn ragged_row_partition_concat_is_bit_identical(
        rows in 1usize..140,
        cols in 1usize..120,
        nnz in 0usize..900,
        n in 1usize..40,
        seed in 0u64..10_000,
        fractions in prop::collection::vec(0.0f64..1.0, 0..6),
    ) {
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(rows, cols, nnz, seed));
        let b = DenseMatrix::from_fn(cols, n, |r, c| {
            (((r * 7 + c * 13 + 1) % 23) as f32 - 11.0) * 0.25
        });

        // One tuned variant for the whole cluster, as identically
        // configured shards would pick for identical content.
        let choice = auto_tune(&csr, n, GpuSpec::RTX4090);
        let full = TranslatedMatrix::translate(&csr, &choice)
            .spmm_f32(&b, ThreadMapping::default())
            .0
            .to_f32_vec();

        let mut concat: Vec<f32> = Vec::with_capacity(rows * n);
        for range in ragged_partition(rows, &fractions) {
            let slab = slice_rows(&csr, range);
            let out = TranslatedMatrix::translate(&slab, &choice)
                .spmm_f32(&b, ThreadMapping::default())
                .0
                .to_f32_vec();
            concat.extend_from_slice(&out);
        }

        prop_assert_eq!(full.len(), concat.len());
        for (i, (a, c)) in full.iter().zip(&concat).enumerate() {
            prop_assert_eq!(
                a.to_bits(), c.to_bits(),
                "row {} col {} differs: {} vs {}", i / n, i % n, a, c
            );
        }
    }

    /// Placement (and the full slab assignment) is identical across any
    /// join order of the same address set — the router-restart contract.
    #[test]
    fn placement_is_join_order_independent(
        count in 1usize..8,
        shuffle_seed in 0u64..10_000,
        fp_hi in 0u64..u64::MAX,
        fp_lo in 0u64..u64::MAX,
        rows in 1usize..500,
    ) {
        let addrs: Vec<String> = (0..count).map(|i| format!("10.0.0.{i}:7949")).collect();
        let mut shuffled = addrs.clone();
        // Fisher-Yates off a deterministic stream.
        let mut s = shuffle_seed;
        for i in (1..shuffled.len()).rev() {
            s = splitmix64(s);
            shuffled.swap(i, (s % (i as u64 + 1)) as usize);
        }

        let a = ShardMap::from_addrs(addrs, true);
        let b = ShardMap::from_addrs(shuffled, true);
        let fp = (fp_hi, fp_lo);

        let slab_addrs = |m: &ShardMap| -> Vec<(std::ops::Range<usize>, String, Option<String>)> {
            m.assign(fp, rows)
                .into_iter()
                .map(|s| {
                    (
                        s.rows,
                        m.shards()[s.primary].addr.clone(),
                        s.replica.map(|r| m.shards()[r].addr.clone()),
                    )
                })
                .collect()
        };
        prop_assert_eq!(slab_addrs(&a), slab_addrs(&b));
    }

    /// Slab ranges partition `0..rows` exactly for any shard count.
    #[test]
    fn slab_ranges_always_partition(rows in 0usize..10_000, parts in 0usize..40) {
        let ranges = ShardMap::slab_ranges(rows, parts);
        let mut expect = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, expect);
            prop_assert!(r.end >= r.start);
            expect = r.end;
        }
        prop_assert_eq!(expect, rows);
        if rows > 0 {
            prop_assert!(ranges.iter().all(|r| !r.is_empty()));
        }
    }
}
