//! End-to-end cluster tests: 3 in-process `fs-serve` shards behind a
//! router, all over real loopback TCP.
//!
//! Own test binary: an installed fault plan is process-global state, so
//! every test here holds a [`ChaosScope`] — including the chaos-free
//! ones — because the scope also serializes the tests against each
//! other; unscoped traffic racing a scoped soak would consume draw
//! indices and break replay.

use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

use flashsparse::auto_tune;
use fs_chaos::{ChaosScope, FaultPlan, FaultSite};
use fs_cluster::{Router, RouterConfig, ShardMap};
use fs_matrix::gen::random_uniform;
use fs_matrix::{CooMatrix, CsrMatrix, DenseMatrix};
use fs_serve::protocol::ErrorCode;
use fs_serve::{ClientError, EngineConfig, ServeClient, Server, ServerConfig};
use fs_tcu::GpuSpec;

type ServerHandle = thread::JoinHandle<std::io::Result<()>>;

/// Start one in-process shard; returns its address, bind epoch, and the
/// accept-loop handle (joined after the router propagates shutdown).
fn start_shard(max_matrix_bytes: usize) -> (SocketAddr, u64, ServerHandle) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            workers: 1,
            max_batch: 1,
            // Breaker bypass depends on wall-clock cooldowns; keep the
            // soak a pure function of the fault plan.
            breaker_threshold: u32::MAX,
            max_matrix_bytes,
            // Scatter-gather bits are compared against a tuned-variant
            // local reference; the pipelined cold path would serve the
            // first request from the FALLBACK variant instead.
            pipeline: false,
            ..EngineConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| panic!("shard bind failed: {e}"));
    let addr = server.local_addr();
    let epoch = server.start_epoch();
    (addr, epoch, thread::spawn(move || server.run()))
}

/// Start a router over `shards`; returns its address and accept-loop
/// handle. Shutting the router down tears the shards down too.
fn start_router(
    shards: &[(SocketAddr, u64)],
    replicate: bool,
) -> (SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
    let router = Router::bind(&RouterConfig { replicate, ..RouterConfig::default() })
        .unwrap_or_else(|e| panic!("router bind failed: {e}"));
    for (addr, epoch) in shards {
        router.state().join_shard(addr.to_string(), *epoch);
    }
    let addr = router.local_addr();
    (addr, thread::spawn(move || router.run()))
}

fn join_all(router: ServerHandle, shards: Vec<ServerHandle>) {
    router
        .join()
        .unwrap_or_else(|_| panic!("router thread panicked"))
        .unwrap_or_else(|e| panic!("router run failed: {e}"));
    for s in shards {
        s.join()
            .unwrap_or_else(|_| panic!("shard thread panicked"))
            .unwrap_or_else(|e| panic!("shard run failed: {e}"));
    }
}

/// Rows slab `range` of `csr`, rebased — the router's Load split,
/// reproduced here to pre-check that every slab tunes to the same
/// variant as the full matrix (the precondition for bit-identity).
fn slice_rows(csr: &CsrMatrix<f32>, range: std::ops::Range<usize>) -> CsrMatrix<f32> {
    let mut coo = CooMatrix::new(range.len(), csr.cols());
    for r in range.clone() {
        for (c, v) in csr.row_cols(r).iter().zip(csr.row_values(r)) {
            coo.push(r - range.start, *c as usize, *v);
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// The ISSUE's budget acceptance: a matrix whose resident bytes exceed
/// any single shard's `max_matrix_bytes` must be refused by a shard,
/// served by the cluster, and the scatter-gather output must be
/// bit-identical to an unsharded server with room for the whole thing.
#[test]
fn over_budget_matrix_is_served_bit_identical_to_unsharded() {
    let plan: FaultPlan = "seed=1".parse().expect("plan parses");
    let _scope = ChaosScope::install(plan);

    // ~51 KiB resident ((rows+1)*8 + nnz*8) against a 24 KiB budget:
    // the full matrix busts one shard, each third fits comfortably.
    let budget = 24_000;
    let csr = CsrMatrix::from_coo(&random_uniform::<f32>(384, 256, 6000, 17));
    let n = 32;
    let b: Vec<f32> = (0..csr.cols() * n).map(|i| ((i % 13) as f32 - 6.0) * 0.125).collect();

    // Bit-identity across the cluster requires every shard to pick the
    // variant the unsharded server picks; identical configs tune by
    // content, so check the precondition explicitly.
    let full_choice = auto_tune(&csr, n, GpuSpec::RTX4090);
    for range in ShardMap::slab_ranges(csr.rows(), 3) {
        let slab_choice = auto_tune(&slice_rows(&csr, range.clone()), n, GpuSpec::RTX4090);
        assert_eq!(
            slab_choice.variant_name(),
            full_choice.variant_name(),
            "slab {range:?} tunes differently; pick a different test matrix"
        );
    }

    let shards: Vec<(SocketAddr, u64, ServerHandle)> =
        (0..3).map(|_| start_shard(budget)).collect();
    let shard_ids: Vec<(SocketAddr, u64)> = shards.iter().map(|s| (s.0, s.1)).collect();
    let (router_addr, router_handle) = start_router(&shard_ids, false);
    let (ref_addr, _ref_epoch, ref_handle) = start_shard(1 << 30);

    // A single shard refuses the full matrix: the budget is real.
    let mut direct = ServeClient::connect_with_retry(&shards[0].0, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("shard connect failed: {e}"));
    match direct.load_matrix("t", &csr) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ResourceExhausted),
        other => panic!("full matrix must bust the shard budget, got {other:?}"),
    }

    // The cluster serves it: three slabs, each within budget.
    let mut client = ServeClient::connect_with_retry(&router_addr, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("router connect failed: {e}"));
    let loaded = client.load_matrix("t", &csr).unwrap_or_else(|e| panic!("cluster load: {e}"));
    assert_eq!(loaded.nnz as usize, csr.nnz());
    let got = client
        .cluster_spmm("t", loaded.matrix_id, csr.cols(), n, &b, 60_000)
        .unwrap_or_else(|e| panic!("cluster spmm: {e}"));
    assert!(!got.degraded, "healthy cluster must not degrade");
    assert_eq!((got.rows, got.n), (csr.rows(), n));
    assert_eq!(got.shards_ok, 3);
    assert_eq!(got.shards_failed, 0);
    assert!(got.row_present(0) && got.row_present(csr.rows() - 1));

    // The unsharded reference: same content, one big server.
    let mut reference = ServeClient::connect_with_retry(&ref_addr, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("reference connect failed: {e}"));
    let ref_loaded =
        reference.load_matrix("t", &csr).unwrap_or_else(|e| panic!("reference load: {e}"));
    let want = reference
        .spmm("t", ref_loaded.matrix_id, csr.cols(), n, &b, 60_000)
        .unwrap_or_else(|e| panic!("reference spmm: {e}"));

    assert_eq!(got.out.len(), want.out.len());
    for (i, (g, w)) in got.out.iter().zip(&want.out).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "row {} col {} differs: {g} vs {w}", i / n, i % n);
    }

    reference.shutdown().unwrap_or_else(|e| panic!("reference shutdown: {e}"));
    ref_handle
        .join()
        .unwrap_or_else(|_| panic!("reference thread panicked"))
        .unwrap_or_else(|e| panic!("reference run failed: {e}"));
    client.shutdown().unwrap_or_else(|e| panic!("router shutdown: {e}"));
    join_all(router_handle, shards.into_iter().map(|s| s.2).collect());
}

/// One response from a seeded soak, everything that must replay.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SoakResponse {
    out_bits: Vec<u32>,
    degraded: bool,
    present: Vec<u8>,
    shards_ok: u32,
    shards_failed: u32,
}

struct SoakOutcome {
    responses: Vec<SoakResponse>,
    kill_counters: (u64, u64),
    stall_counters: (u64, u64),
}

/// Run `requests` identical cluster SpMMs through 3 shards + router
/// under `plan`, over ONE connection so draws are sequential. Verifies
/// every response row-wise (present rows correct, absent rows zero) and
/// that every degraded bitmap is slab-aligned: a row slab is lost whole
/// or not at all.
fn cluster_soak(plan: &FaultPlan, requests: usize, replicate: bool) -> SoakOutcome {
    let _scope = ChaosScope::install(plan.clone());
    let shards: Vec<(SocketAddr, u64, ServerHandle)> =
        (0..3).map(|_| start_shard(1 << 30)).collect();
    let shard_ids: Vec<(SocketAddr, u64)> = shards.iter().map(|s| (s.0, s.1)).collect();
    let (router_addr, router_handle) = start_router(&shard_ids, replicate);

    let csr = CsrMatrix::from_coo(&random_uniform::<f32>(96, 96, 800, 3));
    let n = 16;
    let b: Vec<f32> = (0..csr.cols() * n).map(|i| ((i % 5) as f32) * 0.25).collect();
    let dense = DenseMatrix::<f32>::from_f32_slice(csr.cols(), n, &b);
    let reference = csr.spmm_reference(&dense).as_slice().to_vec();
    let slab_ranges = ShardMap::slab_ranges(csr.rows(), 3);

    let mut client = ServeClient::connect_with_retry(&router_addr, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("router connect failed: {e}"));
    let loaded = client.load_matrix("t", &csr).unwrap_or_else(|e| panic!("cluster load: {e}"));

    let mut responses = Vec::with_capacity(requests);
    for i in 0..requests {
        let resp = client
            .cluster_spmm("t", loaded.matrix_id, csr.cols(), n, &b, 60_000)
            .unwrap_or_else(|e| panic!("request {i}: {e}"));
        assert_eq!((resp.rows, resp.n), (csr.rows(), n), "request {i}");
        // Row-wise verification: the soak contract is that a lost slab
        // degrades the response, never corrupts it.
        for r in 0..resp.rows {
            let row = &resp.out[r * n..(r + 1) * n];
            if resp.row_present(r) {
                let exp = &reference[r * n..(r + 1) * n];
                assert!(
                    row.iter().zip(exp).all(|(a, e)| (a - e).abs() <= 0.5),
                    "request {i} row {r}: wrong present row"
                );
            } else {
                assert!(
                    row.iter().all(|&v| v == 0.0),
                    "request {i} row {r}: absent row not zero-filled"
                );
            }
        }
        // Bitmap is slab-aligned: each slab is lost whole or not at all,
        // so the absent set is exactly the union of killed shards' slabs.
        for range in &slab_ranges {
            let present: Vec<bool> = range.clone().map(|r| resp.row_present(r)).collect();
            assert!(
                present.iter().all(|&p| p) || present.iter().all(|&p| !p),
                "request {i}: slab {range:?} partially present"
            );
        }
        if !resp.degraded {
            assert!(resp.present.is_empty(), "request {i}: clean response with a bitmap");
        }
        responses.push(SoakResponse {
            out_bits: resp.out.iter().map(|v| v.to_bits()).collect(),
            degraded: resp.degraded,
            present: resp.present,
            shards_ok: resp.shards_ok,
            shards_failed: resp.shards_failed,
        });
    }

    let report = fs_chaos::report();
    let outcome = SoakOutcome {
        responses,
        kill_counters: report.site(FaultSite::ShardKill),
        stall_counters: report.site(FaultSite::ShardStall),
    };
    client.shutdown().unwrap_or_else(|e| panic!("router shutdown: {e}"));
    join_all(router_handle, shards.into_iter().map(|s| s.2).collect());
    outcome
}

/// The ISSUE's seed-replay acceptance: the same plan string must
/// reproduce bit-identical response bytes (including degraded bitmaps)
/// and identical shard-kill/stall counters across two full cluster
/// soaks — fresh processes, fresh ports, same seed.
#[test]
fn seeded_cluster_soak_replays_bit_identically() {
    let plan: FaultPlan =
        "seed=11;shard-kill=0.15;shard-stall=0.1;stall-ms=2".parse().expect("plan parses");
    let requests = 30;
    let a = cluster_soak(&plan, requests, false);
    let b = cluster_soak(&plan, requests, false);

    assert_eq!(a.responses, b.responses, "response bytes must replay from the seed alone");
    assert_eq!(a.kill_counters, b.kill_counters, "shard-kill counters must replay");
    assert_eq!(a.stall_counters, b.stall_counters, "shard-stall counters must replay");

    // The plan must actually bite: every request draws once per slab,
    // and rate 0.15 over 90 draws fires with near-certainty.
    assert_eq!(a.kill_counters.0, (requests * 3) as u64, "one kill draw per slab per request");
    assert!(a.kill_counters.1 > 0, "no kills fired at rate 0.15 over 90 draws");
    assert!(a.responses.iter().any(|r| r.degraded), "kills without replicas must degrade");
    assert!(a.responses.iter().any(|r| !r.degraded), "some requests must come through clean");
}

/// With replication on, every injected primary kill is absorbed by the
/// replica: zero degraded responses, bit-identical output throughout,
/// and the failures are visible in `shards_failed`.
#[test]
fn replicas_absorb_injected_shard_kills() {
    let plan: FaultPlan = "seed=11;shard-kill=0.15".parse().expect("plan parses");
    let outcome = cluster_soak(&plan, 30, true);

    assert!(outcome.kill_counters.1 > 0, "plan must inject kills");
    assert!(
        outcome.responses.iter().all(|r| !r.degraded),
        "a replicated cluster must absorb single-shard kills"
    );
    assert!(
        outcome.responses.iter().any(|r| r.shards_failed > 0),
        "replica serves must be visible as failed primary attempts"
    );
    let first = &outcome.responses[0].out_bits;
    assert!(
        outcome.responses.iter().all(|r| &r.out_bits == first),
        "replica-served responses must be bit-identical to primary-served ones"
    );
}

/// Topology plumbing: `ShardJoin` through the wire, restart detection
/// in the router metrics, and the wrong-op rejections in both
/// directions (plain SpMM at a router, cluster ops at a shard).
#[test]
fn shard_join_restart_detection_and_wrong_op_rejections() {
    let plan: FaultPlan = "seed=1".parse().expect("plan parses");
    let _scope = ChaosScope::install(plan);
    let (shard_addr, shard_epoch, shard_handle) = start_shard(1 << 30);
    let (router_addr, router_handle) = start_router(&[(shard_addr, shard_epoch)], false);

    let mut client = ServeClient::connect_with_retry(&router_addr, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("router connect failed: {e}"));

    // A second shard joins over the wire. The router holds no slabs
    // itself, so its inventory reply is always empty.
    let (index, count, resident) =
        client.shard_join("127.0.0.1:1", 5).unwrap_or_else(|e| panic!("join failed: {e}"));
    assert_eq!((index, count), (1, 2));
    assert!(resident.is_empty(), "router inventory must be empty");
    // Same address, advanced epoch: the process restarted.
    let (index, count, _) =
        client.shard_join("127.0.0.1:1", 9).unwrap_or_else(|e| panic!("rejoin failed: {e}"));
    assert_eq!((index, count), (1, 2));
    let metrics = client.metrics().unwrap_or_else(|e| panic!("metrics failed: {e}"));
    assert!(metrics.contains("\"shard_restarts\":1"), "{metrics}");
    assert!(metrics.contains("\"addr\":\"127.0.0.1:1\",\"start_epoch\":9"), "{metrics}");

    // Plain SpMM at a router is a clean BadRequest, not a hang.
    match client.spmm("t", 1, 4, 4, &[0.0; 16], 0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("router must reject plain SpMM, got {other:?}"),
    }

    // A shard answers ShardJoin with its resident inventory — the
    // anti-entropy handshake — rather than rejecting it.
    let mut direct = ServeClient::connect_with_retry(&shard_addr, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("shard connect failed: {e}"));
    let (_, _, resident) =
        direct.shard_join("127.0.0.1:1", 1).unwrap_or_else(|e| panic!("inventory failed: {e}"));
    assert!(resident.is_empty(), "fresh shard must report no resident matrices");
    // ClusterSpmm at a plain shard is still a clean BadRequest.
    match direct.cluster_spmm("t", 1, 4, 4, &[0.0; 16], 0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("shard must reject ClusterSpmm, got {other:?}"),
    }

    client.shutdown().unwrap_or_else(|e| panic!("router shutdown: {e}"));
    // The router propagates shutdown to reachable shards; the fake
    // 10.9.9.9 one is simply skipped after its dial fails.
    join_all(router_handle, vec![shard_handle]);
}
