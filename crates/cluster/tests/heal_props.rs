//! Property tests for the self-healing layer.
//!
//! 1. **Journal prefix safety** — whatever happens to the journal's
//!    tail (truncation mid-frame, bit flips), recovery yields an exact
//!    *prefix* of the appended records, never a partial or corrupted
//!    record, and the journal stays appendable afterwards.
//! 2. **Repair convergence** — after killing any single shard of a
//!    replicated 3-shard cluster (R = 2, so ≤ R−1 concurrent losses),
//!    the heal loop converges back to full replication on the survivors
//!    and a follow-up cluster SpMM is bit-identical to an unsharded
//!    reference server, with an empty present-rows bitmap.
//!
//! Every case holds a [`ChaosScope`]: the scope serializes cases against
//! any chaos-scoped test in the workspace AND pins the draw stream, so
//! the journal's `journal-corrupt` draw sites stay quiet here.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

use flashsparse::auto_tune;
use fs_chaos::{ChaosScope, FaultPlan};
use fs_cluster::journal::{Journal, Record, SlabRecord};
use fs_cluster::{heal_tick, Router, RouterConfig, ShardMap};
use fs_matrix::gen::random_uniform;
use fs_matrix::{CooMatrix, CsrMatrix};
use fs_serve::{EngineConfig, ServeClient, Server, ServerConfig};
use fs_tcu::GpuSpec;
use proptest::prelude::*;

/// A collision-free temp path per proptest case.
fn temp_journal(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok - uniqueness only
    std::env::temp_dir().join(format!("fs-heal-props-{tag}-{}-{n}.journal", std::process::id()))
}

/// A small deterministic record stream: alternating Load / Assign.
fn make_records(count: usize, seed: u64) -> Vec<Record> {
    (0..count)
        .map(|i| {
            let s = seed.wrapping_add(i as u64);
            let slab = SlabRecord {
                start: (i * 10) as u64,
                end: (i * 10 + 10) as u64,
                fp: (s, s ^ 0xF00D),
                primary_addr: format!("10.0.0.{}:7949", i % 4),
                primary_id: s % 97,
                replica: (i % 2 == 0).then(|| (format!("10.0.0.{}:7949", (i + 1) % 4), s % 89)),
            };
            if i % 2 == 0 {
                Record::Load {
                    matrix_id: i as u64 + 1,
                    tenant: format!("t{}", s % 5),
                    fp: (s ^ 0xABCD, s),
                    rows: 10,
                    cols: 8,
                    entries: vec![(0, (s % 8) as u32, s as f32), (9, 7, -1.5)],
                    slabs: vec![slab],
                }
            } else {
                Record::Assign { matrix_id: i as u64, slab_index: (i % 3) as u32, slab }
            }
        })
        .collect()
}

type ServerHandle = thread::JoinHandle<std::io::Result<()>>;

fn start_shard() -> (SocketAddr, u64, ServerHandle) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            workers: 1,
            max_batch: 1,
            breaker_threshold: u32::MAX,
            // Bit-stability across shard replacement assumes every shard
            // serves the auto-tuned variant from the first request; the
            // pipelined cold path would answer the first miss with the
            // FALLBACK variant instead.
            pipeline: false,
            ..EngineConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| panic!("shard bind failed: {e}"));
    let addr = server.local_addr();
    let epoch = server.start_epoch();
    (addr, epoch, thread::spawn(move || server.run()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Write → mangle tail → recover: the checksummed frames guarantee
    /// the recovered stream is an exact prefix, and appends continue
    /// from the valid prefix.
    #[test]
    fn journal_recovery_is_always_an_exact_prefix(
        count in 1usize..8,
        seed in 0u64..10_000,
        cut in 0usize..64,
        flips in prop::collection::vec((0usize..4096, 0u32..8), 0..4),
    ) {
        let plan: FaultPlan = "seed=1".parse().expect("plan parses");
        let _scope = ChaosScope::install(plan);
        let path = temp_journal("prefix");
        let records = make_records(count, seed);

        let (mut journal, fresh) = Journal::open(&path).expect("open fresh");
        prop_assert!(fresh.records.is_empty());
        for rec in &records {
            journal.append(rec).expect("append");
        }
        drop(journal);

        // Mangle the tail: drop `cut` bytes off the end, then flip bits
        // anywhere in the file.
        let mut bytes = std::fs::read(&path).expect("read journal");
        let keep = bytes.len().saturating_sub(cut);
        bytes.truncate(keep);
        for (offset, bit) in &flips {
            if bytes.is_empty() {
                break;
            }
            let at = offset % bytes.len();
            bytes[at] ^= 1u8 << bit;
        }
        std::fs::write(&path, &bytes).expect("write mangled journal");

        let (mut journal, recovered) = Journal::open(&path).expect("reopen");
        // Exact-prefix property: every recovered record equals the
        // record written at its position — nothing partial, nothing
        // reordered, nothing invented.
        prop_assert!(recovered.records.len() <= records.len());
        prop_assert_eq!(&recovered.records[..], &records[..recovered.records.len()]);
        prop_assert!(recovered.valid_bytes as usize <= bytes.len());

        // The journal stays appendable: a new record lands after the
        // valid prefix and survives another recovery.
        let extra = make_records(1, seed ^ 0x5EED).pop().expect("one record");
        journal.append(&extra).expect("append after recovery");
        drop(journal);
        let (_, again) = Journal::open(&path).expect("final reopen");
        let mut expect = recovered.records.clone();
        expect.push(extra);
        prop_assert_eq!(again.records, expect);
        prop_assert!(!again.dropped_tail, "clean reopen must not drop anything");

        let _ = std::fs::remove_file(&path);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Kill any one shard of a replicated 3-shard cluster: two heal
    /// ticks (down_after = 2) detect the loss, repair converges back to
    /// full replication on the survivors, and a follow-up cluster SpMM
    /// is bit-identical to an unsharded reference with an empty bitmap.
    #[test]
    fn single_shard_kill_repairs_to_full_replication(
        kill in 0usize..3,
        mseed in 0u64..100,
    ) {
        let plan: FaultPlan = "seed=1".parse().expect("plan parses");
        let _scope = ChaosScope::install(plan);

        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(96, 96, 800, mseed));
        let n = 16;
        let b: Vec<f32> = (0..csr.cols() * n).map(|i| ((i % 5) as f32) * 0.25).collect();

        // Bit-identity needs every slab to tune like the full matrix
        // (identically configured shards tune by content).
        let full_choice = auto_tune(&csr, n, GpuSpec::RTX4090);
        let consistent = ShardMap::slab_ranges(csr.rows(), 3).into_iter().all(|range| {
            let mut coo = CooMatrix::new(range.len(), csr.cols());
            for r in range.clone() {
                for (c, v) in csr.row_cols(r).iter().zip(csr.row_values(r)) {
                    coo.push(r - range.start, *c as usize, *v);
                }
            }
            auto_tune(&CsrMatrix::from_coo(&coo), n, GpuSpec::RTX4090).variant_name()
                == full_choice.variant_name()
        });
        prop_assume!(consistent);

        let shards: Vec<(SocketAddr, u64, ServerHandle)> = (0..3).map(|_| start_shard()).collect();
        let router = Router::bind(&RouterConfig {
            replicate: true,
            connect_timeout: Duration::from_millis(300),
            ..RouterConfig::default()
        })
        .expect("router bind");
        for (addr, epoch, _) in &shards {
            router.state().join_shard(addr.to_string(), *epoch);
        }
        let state = std::sync::Arc::clone(router.state());
        let router_addr = router.local_addr();
        let router_handle = thread::spawn(move || router.run());

        let mut client = ServeClient::connect_with_retry(&router_addr, Duration::from_secs(10))
            .expect("router connect");
        let loaded = client.load_matrix("t", &csr).expect("cluster load");

        // Unsharded reference server for the bit-identity check.
        let (ref_addr, _, ref_handle) = start_shard();
        let mut reference =
            ServeClient::connect_with_retry(&ref_addr, Duration::from_secs(10)).expect("ref");
        let ref_loaded = reference.load_matrix("t", &csr).expect("reference load");
        let want =
            reference.spmm("t", ref_loaded.matrix_id, csr.cols(), n, &b, 60_000).expect("ref spmm");

        // Kill one shard for real: shut it down and join its accept
        // loop so every socket it held is closed before the first probe.
        let mut shards = shards;
        let mut victim = ServeClient::connect_with_retry(&shards[kill].0, Duration::from_secs(10))
            .expect("victim connect");
        victim.shutdown().expect("victim shutdown");
        let (_, _, victim_handle) = shards.remove(kill);
        victim_handle.join().expect("victim thread").expect("victim run");

        // Two ticks take the shard Up → Suspect → Down and trigger repair.
        let t1 = heal_tick(&state);
        prop_assert!(t1.went_down.is_empty(), "first failure is only Suspect");
        let t2 = heal_tick(&state);
        prop_assert_eq!(&t2.went_down[..], &[kill], "second failure must go Down");
        prop_assert!(t2.repaired_slabs > 0, "the dead shard held slabs to repair");

        // Convergence: no slab references the dead shard, and every slab
        // is fully replicated again across the two survivors.
        for (_, slabs) in state.placements() {
            for (_, primary, replica) in slabs {
                prop_assert_ne!(primary, kill, "primary still on the dead shard");
                let replica = replica.expect("replication must be restored");
                prop_assert_ne!(replica, kill, "replica still on the dead shard");
                prop_assert_ne!(replica, primary, "replica must differ from primary");
            }
        }
        prop_assert!(state.heal_state().repairs_completed() > 0);

        // Post-repair response: clean, empty bitmap, bit-identical.
        let got = client
            .cluster_spmm("t", loaded.matrix_id, csr.cols(), n, &b, 60_000)
            .expect("post-repair spmm");
        prop_assert!(!got.degraded, "repaired cluster must serve clean");
        prop_assert!(got.present.is_empty(), "clean response carries no bitmap");
        prop_assert_eq!(got.out.len(), want.out.len());
        for (g, w) in got.out.iter().zip(&want.out) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }

        reference.shutdown().expect("reference shutdown");
        ref_handle.join().expect("ref thread").expect("ref run");
        client.shutdown().expect("router shutdown");
        router_handle.join().expect("router thread").expect("router run");
        for (_, _, handle) in shards {
            handle.join().expect("shard thread").expect("shard run");
        }
    }
}
