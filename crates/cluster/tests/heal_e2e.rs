//! End-to-end self-healing tests: real shards behind a router over
//! loopback TCP, real kills, the heal loop driven tick by tick.
//!
//! Every test holds a [`ChaosScope`] — the scope serializes tests
//! against each other and pins the global draw stream, which is what
//! makes the seeded replay test meaningful.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use fs_chaos::{ChaosScope, FaultPlan, FaultSite};
use fs_cluster::{heal_tick, revalidate, Router, RouterConfig, RouterState};
use fs_matrix::gen::random_uniform;
use fs_matrix::CsrMatrix;
use fs_serve::{EngineConfig, ServeClient, Server, ServerConfig};

type ServerHandle = thread::JoinHandle<std::io::Result<()>>;

fn start_shard_at(addr: &str) -> (SocketAddr, u64, ServerHandle) {
    // A fixed port may linger briefly after the previous run's listener
    // closed; retry the bind for a moment instead of flaking.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let server = loop {
        match Server::bind(&ServerConfig {
            addr: addr.to_string(),
            engine: EngineConfig {
                workers: 1,
                max_batch: 1,
                breaker_threshold: u32::MAX,
                // Post-repair bits must match pre-kill bits: pin the
                // classic path so a freshly repaired (cold) shard picks
                // the same tuned variant as the shard it replaced.
                pipeline: false,
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        }) {
            Ok(s) => break s,
            Err(_) if std::time::Instant::now() < deadline => {
                thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("shard bind {addr} failed: {e}"),
        }
    };
    let bound = server.local_addr();
    let epoch = server.start_epoch();
    (bound, epoch, thread::spawn(move || server.run()))
}

fn start_router(cfg: &RouterConfig, shards: &[(SocketAddr, u64)]) -> (Router, SocketAddr) {
    let router = Router::bind(cfg).unwrap_or_else(|e| panic!("router bind failed: {e}"));
    for (addr, epoch) in shards {
        router.state().join_shard(addr.to_string(), *epoch);
    }
    let addr = router.local_addr();
    (router, addr)
}

/// Per-shard assignment counts `(as_primary, as_replica)` from the live
/// manifest — placement hashes shard addresses, so which shard holds
/// what differs per run and tests must pick victims from the manifest.
fn held_by(state: &RouterState, shard_count: usize) -> Vec<(usize, usize)> {
    let mut held = vec![(0usize, 0usize); shard_count];
    for (_, slabs) in state.placements() {
        for (_, primary, replica) in slabs {
            held[primary].0 += 1;
            if let Some(r) = replica {
                held[r].1 += 1;
            }
        }
    }
    held
}

/// Normalize a manifest to addresses so two routers with different join
/// orders compare fingerprint-for-fingerprint.
fn placements_by_addr(
    state: &RouterState,
) -> Vec<(u64, Vec<((u64, u64), String, Option<String>)>)> {
    let addrs = state.shard_addrs();
    state
        .placements()
        .into_iter()
        .map(|(id, slabs)| {
            (
                id,
                slabs
                    .into_iter()
                    .map(|(fp, p, r)| (fp, addrs[p].clone(), r.map(|i| addrs[i].clone())))
                    .collect(),
            )
        })
        .collect()
}

/// The ISSUE's mid-soak acceptance: kill one shard of a replicated
/// 3-shard cluster under an injected-kill plan — responses degrade
/// (the slab whose replica died loses both copies), the heal loop
/// detects and repairs, and post-repair responses are clean (empty
/// bitmap) and bit-identical to the pre-kill output.
#[test]
fn kill_degrades_then_repair_restores_clean_responses() {
    // Rate 1.0: every primary attempt is injected-killed, so every slab
    // serves from its replica — which makes "the replica's shard died"
    // observable as a degraded response, whatever the placement.
    let plan: FaultPlan = "seed=3;shard-kill=1.0".parse().expect("plan parses");
    let _scope = ChaosScope::install(plan);

    let shards: Vec<(SocketAddr, u64, ServerHandle)> =
        (0..3).map(|_| start_shard_at("127.0.0.1:0")).collect();
    let shard_ids: Vec<(SocketAddr, u64)> = shards.iter().map(|s| (s.0, s.1)).collect();
    let (router, router_addr) = start_router(
        &RouterConfig {
            replicate: true,
            connect_timeout: Duration::from_millis(300),
            ..RouterConfig::default()
        },
        &shard_ids,
    );
    let state = Arc::clone(router.state());
    let router_handle = thread::spawn(move || router.run());

    let csr = CsrMatrix::from_coo(&random_uniform::<f32>(96, 96, 800, 3));
    let n = 16;
    let b: Vec<f32> = (0..csr.cols() * n).map(|i| ((i % 5) as f32) * 0.25).collect();
    let mut client = ServeClient::connect_with_retry(&router_addr, Duration::from_secs(10))
        .expect("router connect");
    let loaded = client.load_matrix("t", &csr).expect("cluster load");

    // Healthy phase: primaries all killed by chaos, replicas absorb.
    let clean = client
        .cluster_spmm("t", loaded.matrix_id, csr.cols(), n, &b, 60_000)
        .expect("healthy spmm");
    assert!(!clean.degraded, "replicas must absorb injected kills");
    assert_eq!(clean.shards_failed, 3, "all three primaries chaos-killed");

    // Kill a shard that backs at least one replica — with primaries
    // injected-killed, that slab then has no copies left.
    let victim = held_by(&state, 3)
        .iter()
        .position(|&(_, as_replica)| as_replica > 0)
        .expect("every slab has a replica, so some shard backs one");
    let mut shards = shards;
    let mut victim_client =
        ServeClient::connect_with_retry(&shards[victim].0, Duration::from_secs(10))
            .expect("victim connect");
    victim_client.shutdown().expect("victim shutdown");
    let (_, _, victim_handle) = shards.remove(victim);
    victim_handle.join().expect("victim thread").expect("victim run");

    let degraded = client
        .cluster_spmm("t", loaded.matrix_id, csr.cols(), n, &b, 60_000)
        .expect("degraded spmm");
    assert!(degraded.degraded, "losing a replica under kill=1.0 must degrade");
    assert!(!degraded.present.is_empty(), "degraded response carries the bitmap");
    assert!(
        (0..degraded.rows).any(|r| !degraded.row_present(r)),
        "some rows must be marked absent"
    );

    // Two ticks: Suspect, then Down → repair.
    let t1 = heal_tick(&state);
    assert!(t1.went_down.is_empty(), "first failure is only Suspect");
    let t2 = heal_tick(&state);
    assert_eq!(t2.went_down, vec![victim]);
    assert!(t2.repaired_slabs > 0, "repair must move the dead shard's slabs");
    assert!(state.heal_state().repairs_completed() > 0);
    assert!(
        state
            .heal_state()
            .log_lines()
            .iter()
            .any(|l| l.contains(&format!("shard={victim} suspect->down"))),
        "transition must be logged: {:?}",
        state.heal_state().log_lines()
    );

    // Degraded flips back to clean: replication is restored on the two
    // survivors, so injected kills are absorbed again — bit-identically.
    let healed =
        client.cluster_spmm("t", loaded.matrix_id, csr.cols(), n, &b, 60_000).expect("healed spmm");
    assert!(!healed.degraded, "repair must restore clean responses");
    assert!(healed.present.is_empty());
    for (h, c) in healed.out.iter().zip(&clean.out) {
        assert_eq!(h.to_bits(), c.to_bits(), "post-repair output must match pre-kill output");
    }

    client.shutdown().expect("router shutdown");
    router_handle.join().expect("router thread").expect("router run");
    for (_, _, handle) in shards {
        handle.join().expect("shard thread").expect("shard run");
    }
}

/// One observed response in a replayable soak.
#[derive(Debug, PartialEq)]
struct SoakStep {
    out_bits: Vec<u32>,
    degraded: bool,
    present: Vec<u8>,
    shards_ok: u32,
    shards_failed: u32,
}

/// One full kill→detect→repair soak on FIXED shard ports (placement
/// hashes addresses, so replay across runs needs identical addresses).
fn heal_soak(plan: &FaultPlan) -> (Vec<SoakStep>, Vec<String>, (u64, u64), (u64, u64)) {
    let _scope = ChaosScope::install(plan.clone());
    let ports = ["127.0.0.1:38651", "127.0.0.1:38652", "127.0.0.1:38653"];
    let shards: Vec<(SocketAddr, u64, ServerHandle)> =
        ports.iter().map(|p| start_shard_at(p)).collect();
    let shard_ids: Vec<(SocketAddr, u64)> = shards.iter().map(|s| (s.0, s.1)).collect();
    let (router, router_addr) = start_router(
        &RouterConfig {
            replicate: true,
            connect_timeout: Duration::from_millis(300),
            ..RouterConfig::default()
        },
        &shard_ids,
    );
    let state = Arc::clone(router.state());
    let router_handle = thread::spawn(move || router.run());

    let csr = CsrMatrix::from_coo(&random_uniform::<f32>(96, 96, 800, 7));
    let n = 16;
    let b: Vec<f32> = (0..csr.cols() * n).map(|i| ((i % 5) as f32) * 0.25).collect();
    let mut client = ServeClient::connect_with_retry(&router_addr, Duration::from_secs(10))
        .expect("router connect");
    let loaded = client.load_matrix("t", &csr).expect("cluster load");

    let mut shards = shards;
    let mut steps = Vec::new();
    for i in 0..8 {
        // Kill the shard on port 38653 (map index 2) for real between
        // request 2 and 3 — the same point in the draw stream every run.
        if i == 3 {
            let mut victim = ServeClient::connect_with_retry(&shards[2].0, Duration::from_secs(10))
                .expect("victim connect");
            victim.shutdown().expect("victim shutdown");
            let (_, _, handle) = shards.remove(2);
            handle.join().expect("victim thread").expect("victim run");
        }
        let resp = client
            .cluster_spmm("t", loaded.matrix_id, csr.cols(), n, &b, 60_000)
            .unwrap_or_else(|e| panic!("request {i}: {e}"));
        steps.push(SoakStep {
            out_bits: resp.out.iter().map(|v| v.to_bits()).collect(),
            degraded: resp.degraded,
            present: resp.present,
            shards_ok: resp.shards_ok,
            shards_failed: resp.shards_failed,
        });
        let _ = heal_tick(&state);
    }

    let log = state.heal_state().log_lines();
    let report = fs_chaos::report();
    let kills = report.site(FaultSite::ShardKill);
    let flaps = report.site(FaultSite::ShardFlap);

    client.shutdown().expect("router shutdown");
    router_handle.join().expect("router thread").expect("router run");
    for (_, _, handle) in shards {
        handle.join().expect("shard thread").expect("shard run");
    }
    (steps, log, kills, flaps)
}

/// The ISSUE's replay acceptance: the same seeded kill→recover soak —
/// fresh listeners, same fixed addresses — replays bit-identical
/// response bytes, identical repair logs, and identical fault counters.
#[test]
fn seeded_kill_recover_soak_replays_identically() {
    let plan: FaultPlan = "seed=5;shard-kill=0.4;shard-flap=0.15".parse().expect("plan parses");
    let a = heal_soak(&plan);
    let b = heal_soak(&plan);
    assert_eq!(a.0, b.0, "response bytes must replay from the plan string alone");
    assert_eq!(a.1, b.1, "heal/repair logs must replay line for line");
    assert_eq!(a.2, b.2, "shard-kill counters must replay");
    assert_eq!(a.3, b.3, "shard-flap counters must replay");
    // The soak must actually exercise the heal path: the real kill takes
    // the shard Down and its slabs get repaired.
    assert!(
        a.1.iter().any(|l| l.contains("->down")),
        "the killed shard must be detected: {:?}",
        a.1
    );
    assert!(a.1.iter().any(|l| l.contains(" repair ")), "repairs must be logged: {:?}", a.1);
    assert_eq!(a.3 .0, 8 * 3, "one flap draw per shard per tick");
}

/// The ISSUE's recovery acceptance: a restarted router pointed at the
/// same journal rebuilds an identical manifest — shard map and
/// placements, fingerprint-for-fingerprint — without re-receiving a
/// single Load, re-validates residency against the live shards, and a
/// replayed client Load resolves idempotently to the original id.
#[test]
fn router_restart_rebuilds_manifest_from_journal() {
    let plan: FaultPlan = "seed=1".parse().expect("plan parses");
    let _scope = ChaosScope::install(plan);
    let journal_path: PathBuf =
        std::env::temp_dir().join(format!("fs-heal-e2e-restart-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);

    let shards: Vec<(SocketAddr, u64, ServerHandle)> =
        (0..3).map(|_| start_shard_at("127.0.0.1:0")).collect();
    let shard_ids: Vec<(SocketAddr, u64)> = shards.iter().map(|s| (s.0, s.1)).collect();

    // Router A journals its manifest and leaves the shards running on
    // shutdown.
    let (router_a, addr_a) = start_router(
        &RouterConfig {
            replicate: true,
            journal: Some(journal_path.clone()),
            propagate_shutdown: false,
            connect_timeout: Duration::from_millis(300),
            ..RouterConfig::default()
        },
        &shard_ids,
    );
    let state_a = Arc::clone(router_a.state());
    let handle_a = thread::spawn(move || router_a.run());

    let csr = CsrMatrix::from_coo(&random_uniform::<f32>(96, 96, 800, 9));
    let n = 16;
    let b: Vec<f32> = (0..csr.cols() * n).map(|i| ((i % 5) as f32) * 0.25).collect();
    let mut client =
        ServeClient::connect_with_retry(&addr_a, Duration::from_secs(10)).expect("connect A");
    let loaded = client.load_matrix("t", &csr).expect("load via A");
    let before =
        client.cluster_spmm("t", loaded.matrix_id, csr.cols(), n, &b, 60_000).expect("spmm via A");
    assert!(!before.degraded);
    let manifest_a = placements_by_addr(&state_a);
    let addrs_a = {
        let mut a = state_a.shard_addrs();
        a.sort();
        a
    };

    client.shutdown().expect("shutdown A");
    handle_a.join().expect("router A thread").expect("router A run");

    // Router B: no static shards, no Loads — everything from the journal.
    let (router_b, addr_b) = start_router(
        &RouterConfig {
            replicate: true,
            journal: Some(journal_path.clone()),
            connect_timeout: Duration::from_millis(300),
            ..RouterConfig::default()
        },
        &[],
    );
    let state_b = Arc::clone(router_b.state());
    assert_eq!(state_b.matrix_count(), 1, "manifest must be rebuilt from the journal");
    let addrs_b = {
        let mut a = state_b.shard_addrs();
        a.sort();
        a
    };
    assert_eq!(addrs_a, addrs_b, "shard map must be rebuilt from the journal");
    assert_eq!(
        manifest_a,
        placements_by_addr(&state_b),
        "placements must match fingerprint-for-fingerprint"
    );

    let handle_b = thread::spawn(move || router_b.run());

    // Residency re-validation: the shards never restarted, so the
    // manifest's ids all still resolve — nothing evicted, nothing pushed.
    let reconciled = revalidate(&state_b);
    assert_eq!(reconciled, 3, "all three shards must answer the inventory call");
    assert!(
        state_b
            .heal_state()
            .log_lines()
            .iter()
            .all(|l| !l.contains("rejoin") || l.contains("evicted=0 adopted=0 pushed=0")),
        "no divergence expected on a clean restart: {:?}",
        state_b.heal_state().log_lines()
    );

    // Serving continues bit-identically without any re-Load...
    let mut client_b =
        ServeClient::connect_with_retry(&addr_b, Duration::from_secs(10)).expect("connect B");
    let after = client_b
        .cluster_spmm("t", loaded.matrix_id, csr.cols(), n, &b, 60_000)
        .expect("spmm via B");
    assert!(!after.degraded, "recovered manifest must serve clean");
    for (x, y) in after.out.iter().zip(&before.out) {
        assert_eq!(x.to_bits(), y.to_bits(), "recovered router must serve identical bytes");
    }

    // ...and a client replaying its Load gets the original id back.
    let reloaded = client_b.load_matrix("t", &csr).expect("idempotent re-load");
    assert_eq!(reloaded.matrix_id, loaded.matrix_id, "Load must be idempotent by fingerprint");
    assert_eq!(state_b.matrix_count(), 1, "re-load must not duplicate the matrix");

    client_b.shutdown().expect("shutdown B");
    handle_b.join().expect("router B thread").expect("router B run");
    for (_, _, handle) in shards {
        handle.join().expect("shard thread").expect("shard run");
    }
    let _ = std::fs::remove_file(&journal_path);
}

/// Anti-entropy: a shard that flaps Down (probe-level only — the
/// process stays alive and keeps its slabs) has its slabs repaired
/// away; when it probes healthy again, the rejoin pass evicts the
/// now-stale copies it still holds.
#[test]
fn flapped_shard_rejoins_and_stale_slabs_are_evicted() {
    let _scope = ChaosScope::install("seed=1".parse().expect("plan parses"));

    let shards: Vec<(SocketAddr, u64, ServerHandle)> =
        (0..3).map(|_| start_shard_at("127.0.0.1:0")).collect();
    let shard_ids: Vec<(SocketAddr, u64)> = shards.iter().map(|s| (s.0, s.1)).collect();
    let (router, router_addr) = start_router(
        &RouterConfig {
            replicate: true,
            connect_timeout: Duration::from_millis(300),
            ..RouterConfig::default()
        },
        &shard_ids,
    );
    let state = Arc::clone(router.state());
    let router_handle = thread::spawn(move || router.run());

    let csr = CsrMatrix::from_coo(&random_uniform::<f32>(96, 96, 800, 5));
    let mut client = ServeClient::connect_with_retry(&router_addr, Duration::from_secs(10))
        .expect("router connect");
    let _loaded = client.load_matrix("t", &csr).expect("cluster load");

    // Flap a shard that actually holds slabs.
    let victim = held_by(&state, 3)
        .iter()
        .position(|&(p, r)| p + r > 0)
        .expect("six assignments over three shards: someone holds one");
    let mut direct = ServeClient::connect_with_retry(&shards[victim].0, Duration::from_secs(10))
        .expect("direct connect");
    let (_, _, resident_before) = direct.shard_join("inventory-probe", 0).expect("inventory");
    assert!(!resident_before.is_empty(), "victim must report its slabs");

    // Drive the flap through the real `shard-flap` site: scan for a
    // seed whose draw stream flaps exactly the victim on ticks 1 and 2
    // (one draw per shard per tick, index order) and nobody on tick 3.
    // `FaultPlan::decide` is pure, so the scan is cheap and exact;
    // installing the plan restarts the draw counters at zero. The
    // ChaosScope stays held throughout — only the plan changes.
    let want: Vec<bool> = (0..9).map(|i| i % 3 == victim && i / 3 < 2).collect();
    let seed = (0u64..1_000_000)
        .find(|s| {
            let plan: FaultPlan = format!("seed={s};shard-flap=0.5").parse().expect("plan parses");
            want.iter()
                .enumerate()
                .all(|(i, w)| plan.decide(FaultSite::ShardFlap, i as u64).is_some() == *w)
        })
        .expect("a 9-draw pattern at rate 0.5 appears within a million seeds");
    fs_chaos::install(format!("seed={seed};shard-flap=0.5").parse().expect("plan parses"));

    let t1 = heal_tick(&state);
    assert!(t1.went_down.is_empty(), "first flap is only Suspect");
    let t2 = heal_tick(&state);
    assert_eq!(t2.went_down, vec![victim], "second flap must take the victim Down");
    assert!(t2.repaired_slabs > 0, "slabs must be repaired away from the flapped shard");

    // The flap clears: the next tick probes the victim successfully
    // (the process never died), the rejoin pass runs, and the stale
    // copies it still held are evicted.
    let t3 = heal_tick(&state);
    assert_eq!(t3.came_up, vec![victim], "victim must come back Up");
    assert_eq!(t3.rejoined, 1, "rejoin must reconcile the returning shard");
    let (_, _, resident_after) = direct.shard_join("inventory-probe", 0).expect("inventory after");
    assert!(
        resident_after.len() < resident_before.len(),
        "stale slabs must be evicted: {} -> {}",
        resident_before.len(),
        resident_after.len()
    );
    assert!(
        state
            .heal_state()
            .log_lines()
            .iter()
            .any(|l| l.contains(&format!("rejoin shard={victim}")) && !l.contains("evicted=0")),
        "the eviction must be logged: {:?}",
        state.heal_state().log_lines()
    );

    client.shutdown().expect("router shutdown");
    router_handle.join().expect("router thread").expect("router run");
    for (_, _, handle) in shards {
        handle.join().expect("shard thread").expect("shard run");
    }
}
