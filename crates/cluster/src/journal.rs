//! The durable cluster manifest: an append-only journal of every
//! successful `Load` (and every repair-driven reassignment), so a
//! restarted router rebuilds its matrix registry and slab map without
//! re-receiving a single `Load` request.
//!
//! ## Record format
//!
//! Each record rides in the same frame the wire protocol uses — `[u32 LE
//! payload length][u64 LE FNV-1a checksum][payload]` — so a torn or
//! corrupted tail is detected exactly like wire corruption. Recovery
//! reads the longest valid prefix and stops at the first short or
//! checksum-failing record: a partial record can never contribute a
//! partial matrix to the rebuilt map (pinned by the corrupt-tail
//! proptest in `tests/heal_props.rs`).
//!
//! The `journal-corrupt` chaos site corrupts one payload byte of a
//! record as it is appended, which is how the seeded soaks exercise the
//! prefix-recovery path deterministically.

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use fs_chaos::FaultSite;
use fs_serve::protocol::{frame_bytes, read_frame, FRAME_HEADER_BYTES};

/// Where one slab of a journaled matrix lives.
#[derive(Clone, Debug, PartialEq)]
pub struct SlabRecord {
    /// Global row range `[start, end)`.
    pub start: u64,
    /// Global row range end (exclusive).
    pub end: u64,
    /// Content fingerprint of the slab's rebased CSR — the identity the
    /// anti-entropy pass matches against a shard's resident inventory.
    pub fp: (u64, u64),
    /// Primary shard address.
    pub primary_addr: String,
    /// The slab's matrix id on the primary shard.
    pub primary_id: u64,
    /// Replica shard address and shard-side id, when replicated.
    pub replica: Option<(String, u64)>,
}

/// One journal record.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A matrix was registered through the router. Carries the spilled
    /// source entries so a repair can re-slice any slab even when no
    /// replica survives.
    Load {
        /// Router-issued matrix id.
        matrix_id: u64,
        /// Tenant the matrix was registered under.
        tenant: String,
        /// Content fingerprint of the full (deduplicated) matrix.
        fp: (u64, u64),
        /// Matrix rows.
        rows: u64,
        /// Matrix columns.
        cols: u64,
        /// Deduplicated COO entries in CSR iteration order.
        entries: Vec<(u32, u32, f32)>,
        /// Slab placement at load time.
        slabs: Vec<SlabRecord>,
    },
    /// A repair (or rejoin) moved one slab; applied over the matching
    /// `Load` record in journal order at recovery.
    Assign {
        /// Router-issued matrix id the slab belongs to.
        matrix_id: u64,
        /// Slab index within the matrix.
        slab_index: u32,
        /// The slab's new placement.
        slab: SlabRecord,
    },
}

const REC_LOAD: u8 = 1;
const REC_ASSIGN: u8 = 2;

fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize) as u16; // lint: checked-cast - clamped
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&bytes[..len as usize]);
}

fn put_slab(out: &mut Vec<u8>, slab: &SlabRecord) {
    out.extend_from_slice(&slab.start.to_le_bytes());
    out.extend_from_slice(&slab.end.to_le_bytes());
    out.extend_from_slice(&slab.fp.0.to_le_bytes());
    out.extend_from_slice(&slab.fp.1.to_le_bytes());
    put_string(out, &slab.primary_addr);
    out.extend_from_slice(&slab.primary_id.to_le_bytes());
    match &slab.replica {
        Some((addr, id)) => {
            out.push(1);
            put_string(out, addr);
            out.extend_from_slice(&id.to_le_bytes());
        }
        None => out.push(0),
    }
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if n > self.data.len() - self.pos {
            return None;
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| {
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            u64::from_le_bytes(a)
        })
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn slab(&mut self) -> Option<SlabRecord> {
        let start = self.u64()?;
        let end = self.u64()?;
        let fp = (self.u64()?, self.u64()?);
        let primary_addr = self.string()?;
        let primary_id = self.u64()?;
        let replica = match self.u8()? {
            0 => None,
            _ => Some((self.string()?, self.u64()?)),
        };
        Some(SlabRecord { start, end, fp, primary_addr, primary_id, replica })
    }
}

/// Encode one record to its frame payload (the checksummed frame is
/// added by [`Journal::append`]).
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let mut out = Vec::new();
    match rec {
        Record::Load { matrix_id, tenant, fp, rows, cols, entries, slabs } => {
            out.push(REC_LOAD);
            out.extend_from_slice(&matrix_id.to_le_bytes());
            put_string(&mut out, tenant);
            out.extend_from_slice(&fp.0.to_le_bytes());
            out.extend_from_slice(&fp.1.to_le_bytes());
            out.extend_from_slice(&rows.to_le_bytes());
            out.extend_from_slice(&cols.to_le_bytes());
            out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
            for (r, c, v) in entries {
                out.extend_from_slice(&r.to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            let n = slabs.len().min(u32::MAX as usize) as u32; // lint: checked-cast - clamped
            out.extend_from_slice(&n.to_le_bytes());
            for slab in slabs {
                put_slab(&mut out, slab);
            }
        }
        Record::Assign { matrix_id, slab_index, slab } => {
            out.push(REC_ASSIGN);
            out.extend_from_slice(&matrix_id.to_le_bytes());
            out.extend_from_slice(&slab_index.to_le_bytes());
            put_slab(&mut out, slab);
        }
    }
    out
}

/// Decode one record payload; `None` on any truncation or malformed
/// field (recovery treats it as end-of-valid-prefix).
pub fn decode_record(payload: &[u8]) -> Option<Record> {
    let mut c = Cursor { data: payload, pos: 0 };
    let rec = match c.u8()? {
        REC_LOAD => {
            let matrix_id = c.u64()?;
            let tenant = c.string()?;
            let fp = (c.u64()?, c.u64()?);
            let rows = c.u64()?;
            let cols = c.u64()?;
            let n = c.u64()? as usize;
            let mut entries = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                entries.push((c.u32()?, c.u32()?, f32::from_bits(c.u32()?)));
            }
            let slab_count = c.u32()? as usize;
            let mut slabs = Vec::with_capacity(slab_count.min(1 << 10));
            for _ in 0..slab_count {
                slabs.push(c.slab()?);
            }
            Record::Load { matrix_id, tenant, fp, rows, cols, entries, slabs }
        }
        REC_ASSIGN => Record::Assign { matrix_id: c.u64()?, slab_index: c.u32()?, slab: c.slab()? },
        _ => return None,
    };
    if c.pos != c.data.len() {
        return None;
    }
    Some(rec)
}

/// What recovery found in an existing journal file.
#[derive(Debug)]
pub struct Recovered {
    /// Every record in the valid prefix, in append order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix.
    pub valid_bytes: u64,
    /// Whether a corrupt or torn tail was dropped (the file is truncated
    /// back to `valid_bytes` so future appends extend a clean prefix).
    pub dropped_tail: bool,
}

/// An open, append-only manifest journal.
pub struct Journal {
    file: File,
    path: PathBuf,
    appended: u64,
}

impl Journal {
    /// Open (creating if absent) the journal at `path`, recover its
    /// valid record prefix, and truncate any corrupt tail so appends
    /// continue from a clean boundary.
    pub fn open(path: &Path) -> io::Result<(Journal, Recovered)> {
        let mut file = OpenOptions::new().read(true).write(true).create(true).open(path)?;
        let mut records = Vec::new();
        let mut valid_bytes: u64 = 0;
        let mut dropped_tail = false;
        {
            let mut reader = BufReader::new(&mut file);
            loop {
                match read_frame(&mut reader) {
                    Ok(Some(payload)) => match decode_record(&payload) {
                        Some(rec) => {
                            valid_bytes += (FRAME_HEADER_BYTES + payload.len()) as u64;
                            records.push(rec);
                        }
                        None => {
                            dropped_tail = true;
                            break;
                        }
                    },
                    Ok(None) => break, // clean EOF at a record boundary
                    Err(_) => {
                        // Short read mid-record or checksum mismatch:
                        // the valid prefix ends here.
                        dropped_tail = true;
                        break;
                    }
                }
            }
        }
        let total = file.metadata()?.len();
        if dropped_tail || total > valid_bytes {
            file.set_len(valid_bytes)?;
            dropped_tail = true;
        }
        file.seek(SeekFrom::Start(valid_bytes))?;
        let journal = Journal { file, path: path.to_path_buf(), appended: 0 };
        Ok((journal, Recovered { records, valid_bytes, dropped_tail }))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this handle (not counting the recovered
    /// prefix).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Append one record, fsync-free (the durability story is "survives
    /// a router restart", not "survives power loss"). Consults the
    /// `journal-corrupt` chaos site: a fired draw flips one payload byte
    /// of the framed record, which recovery later detects and truncates.
    pub fn append(&mut self, rec: &Record) -> io::Result<()> {
        let payload = encode_record(rec);
        let mut framed = frame_bytes(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if fs_chaos::chaos_enabled() {
            if let Some(d) = fs_chaos::draw(FaultSite::JournalCorrupt) {
                if framed.len() > FRAME_HEADER_BYTES {
                    let span = (framed.len() - FRAME_HEADER_BYTES) as u64;
                    let i = FRAME_HEADER_BYTES + d.select(0, span) as usize;
                    framed[i] ^= 1u8 << d.select(1, 8);
                }
            }
        }
        self.file.write_all(&framed)?;
        self.file.flush()?;
        self.appended += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_load(id: u64) -> Record {
        Record::Load {
            matrix_id: id,
            tenant: "t".into(),
            fp: (0xAB, 0xCD),
            rows: 10,
            cols: 8,
            entries: vec![(0, 1, 1.5), (9, 7, -0.25)],
            slabs: vec![
                SlabRecord {
                    start: 0,
                    end: 5,
                    fp: (1, 2),
                    primary_addr: "127.0.0.1:7001".into(),
                    primary_id: 3,
                    replica: Some(("127.0.0.1:7002".into(), 4)),
                },
                SlabRecord {
                    start: 5,
                    end: 10,
                    fp: (5, 6),
                    primary_addr: "127.0.0.1:7002".into(),
                    primary_id: 7,
                    replica: None,
                },
            ],
        }
    }

    #[test]
    fn records_roundtrip() {
        let load = sample_load(1);
        assert_eq!(decode_record(&encode_record(&load)), Some(load));
        let assign = Record::Assign {
            matrix_id: 9,
            slab_index: 1,
            slab: SlabRecord {
                start: 5,
                end: 10,
                fp: (5, 6),
                primary_addr: "127.0.0.1:7003".into(),
                primary_id: 11,
                replica: Some(("127.0.0.1:7001".into(), 12)),
            },
        };
        assert_eq!(decode_record(&encode_record(&assign)), Some(assign));
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let bytes = encode_record(&sample_load(1));
        for cut in 0..bytes.len() {
            assert_eq!(decode_record(&bytes[..cut]), None, "cut at {cut}");
        }
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(decode_record(&trailing), None);
        assert_eq!(decode_record(&[99]), None);
    }

    #[test]
    fn open_append_reopen_recovers_everything() {
        let dir = std::env::temp_dir().join(format!("fs-heal-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("roundtrip.journal");
        let _ = std::fs::remove_file(&path);
        let (mut j, rec) = Journal::open(&path).expect("open");
        assert!(rec.records.is_empty());
        assert!(!rec.dropped_tail);
        j.append(&sample_load(1)).expect("append");
        j.append(&sample_load(2)).expect("append");
        drop(j);
        let (_, rec) = Journal::open(&path).expect("reopen");
        assert_eq!(rec.records.len(), 2);
        assert!(!rec.dropped_tail);
        assert_eq!(rec.records[0], sample_load(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_tail_is_truncated_and_appends_continue() {
        let dir = std::env::temp_dir().join(format!("fs-heal-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("corrupt.journal");
        let _ = std::fs::remove_file(&path);
        let (mut j, _) = Journal::open(&path).expect("open");
        j.append(&sample_load(1)).expect("append");
        j.append(&sample_load(2)).expect("append");
        drop(j);
        // Flip a byte inside the second record's payload.
        let mut bytes = std::fs::read(&path).expect("read");
        let first_len = {
            let first = frame_bytes(&encode_record(&sample_load(1))).expect("frame");
            first.len()
        };
        bytes[first_len + FRAME_HEADER_BYTES + 3] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write");
        let (mut j, rec) = Journal::open(&path).expect("reopen");
        assert_eq!(rec.records.len(), 1, "only the intact prefix survives");
        assert!(rec.dropped_tail);
        assert_eq!(rec.valid_bytes, first_len as u64);
        // The file was truncated; a fresh append lands on a clean boundary.
        j.append(&sample_load(3)).expect("append after truncate");
        drop(j);
        let (_, rec) = Journal::open(&path).expect("re-reopen");
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[1], sample_load(3));
        assert!(!rec.dropped_tail);
        let _ = std::fs::remove_file(&path);
    }
}
