//! Failure detection and self-healing replication for the router.
//!
//! Three cooperating mechanisms keep a replicated cluster serving clean
//! (non-degraded) responses across shard failures:
//!
//! 1. **Failure detector** — [`heal_tick`] probes every shard with a
//!    `Ping` (under a `heal.probe` span) and runs a per-shard
//!    Up→Suspect→Down state machine on consecutive failures. The
//!    thresholds live in [`HealConfig`]; transitions are appended to the
//!    heal log and exported in the router's `heal` metrics section.
//! 2. **Repair** — when a shard transitions to Down, every slab it held
//!    is repaired in deterministic order (matrix id ascending, then slab
//!    index ascending): a lost primary is promoted from its replica (or
//!    re-pushed from the retained source entries when no replica
//!    survives), and replication is restored by exporting the slab from
//!    a surviving holder — falling back to re-slicing the source — onto
//!    the next healthy shard along the placement ring. Each move is
//!    journaled as an `Assign` record.
//! 3. **Anti-entropy rejoin** — when a Down shard probes healthy again,
//!    its resident-matrix inventory (the extended `RESP_SHARD_JOINED`)
//!    is reconciled against the manifest: slabs the manifest no longer
//!    places there are evicted, slabs it should hold but lost are
//!    re-pushed, and ids that diverged (a restarted shard hands out
//!    fresh ids) are adopted.
//!
//! ## Determinism
//!
//! Nothing here reads the wall clock or an unseeded RNG. The tick
//! counter is logical; repair ordering is total; the `shard-flap` chaos
//! draw is taken once per shard per tick in index order *before* any
//! network traffic, so a seeded kill→recover→rejoin soak replays
//! bit-identical heal logs from the plan string alone.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fs_chaos::FaultSite;
use fs_matrix::{CooMatrix, CsrMatrix};
use fs_serve::Fingerprint;
use fs_trace::Site;
use parking_lot::Mutex;

use crate::router::{ClusterMatrix, RouterState, SlabState};

/// One shard's health as seen by the failure detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Responding to probes.
    Up,
    /// At least `suspect_after` consecutive probe failures — still
    /// routed to, but on notice.
    Suspect,
    /// At least `down_after` consecutive probe failures — skipped by the
    /// scatter path and scheduled for repair.
    Down,
}

impl ShardHealth {
    /// Lowercase wire/metrics name.
    pub fn name(self) -> &'static str {
        match self {
            ShardHealth::Up => "up",
            ShardHealth::Suspect => "suspect",
            ShardHealth::Down => "down",
        }
    }
}

/// Failure-detector tuning.
#[derive(Clone, Debug)]
pub struct HealConfig {
    /// Cadence of the router's background probe thread. `Duration::ZERO`
    /// (the default) disables the thread; ticks are then driven
    /// explicitly via [`heal_tick`] — what the deterministic tests do.
    pub probe_interval: Duration,
    /// Consecutive probe failures before Up→Suspect.
    pub suspect_after: u32,
    /// Consecutive probe failures before →Down (triggers repair).
    pub down_after: u32,
}

impl Default for HealConfig {
    fn default() -> HealConfig {
        HealConfig { probe_interval: Duration::ZERO, suspect_after: 1, down_after: 2 }
    }
}

/// Per-shard detector entry.
#[derive(Clone, Debug)]
struct ShardEntry {
    failures: u32,
    health: ShardHealth,
}

/// Detector state, repair counters, and the append-only heal log.
/// Lives in [`RouterState`]; indexed by shard-map index.
pub struct HealState {
    cfg: HealConfig,
    shards: Mutex<Vec<ShardEntry>>,
    tick: AtomicU64,
    repairs_completed: AtomicU64,
    last_repair_tick: AtomicU64,
    rejoins: AtomicU64,
    log: Mutex<Vec<String>>,
}

impl HealState {
    /// Fresh state: every shard starts Up with zero failures.
    pub fn new(cfg: HealConfig) -> HealState {
        HealState {
            cfg,
            shards: Mutex::new(Vec::new()),
            tick: AtomicU64::new(0),
            repairs_completed: AtomicU64::new(0),
            last_repair_tick: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &HealConfig {
        &self.cfg
    }

    /// Whether shard `index` is currently Down (unknown shards are Up).
    pub fn is_down(&self, index: usize) -> bool {
        self.shards.lock().get(index).map(|e| e.health == ShardHealth::Down).unwrap_or(false)
    }

    /// Every tracked shard's health, by shard-map index.
    pub fn health(&self) -> Vec<ShardHealth> {
        self.shards.lock().iter().map(|e| e.health).collect()
    }

    /// Logical ticks elapsed (one per [`heal_tick`] call).
    pub fn ticks(&self) -> u64 {
        self.tick.load(Ordering::Relaxed) // lint: relaxed-ok - metrics read
    }

    /// Slab repairs completed since start.
    pub fn repairs_completed(&self) -> u64 {
        self.repairs_completed.load(Ordering::Relaxed) // lint: relaxed-ok - metrics read
    }

    /// Logical tick of the most recent completed repair (0 = never).
    pub fn last_repair_tick(&self) -> u64 {
        self.last_repair_tick.load(Ordering::Relaxed) // lint: relaxed-ok - metrics read
    }

    /// Anti-entropy rejoin passes completed.
    pub fn rejoins(&self) -> u64 {
        self.rejoins.load(Ordering::Relaxed) // lint: relaxed-ok - metrics read
    }

    /// Snapshot of the append-only heal log (state transitions, repairs,
    /// rejoins — one deterministic line each).
    pub fn log_lines(&self) -> Vec<String> {
        self.log.lock().clone()
    }

    fn log(&self, line: String) {
        self.log.lock().push(line);
    }

    /// Grow the per-shard table to cover `n` shards (new entries Up).
    fn ensure(&self, n: usize) {
        let mut shards = self.shards.lock();
        while shards.len() < n {
            shards.push(ShardEntry { failures: 0, health: ShardHealth::Up });
        }
    }

    /// Feed one probe result into the state machine; returns the
    /// (old, new) health pair.
    fn observe(&self, index: usize, ok: bool) -> (ShardHealth, ShardHealth) {
        let mut shards = self.shards.lock();
        let entry = &mut shards[index];
        let old = entry.health;
        if ok {
            entry.failures = 0;
            entry.health = ShardHealth::Up;
        } else {
            entry.failures = entry.failures.saturating_add(1);
            if entry.failures >= self.cfg.down_after {
                entry.health = ShardHealth::Down;
            } else if entry.failures >= self.cfg.suspect_after {
                entry.health = ShardHealth::Suspect;
            }
        }
        (old, entry.health)
    }
}

/// What one [`heal_tick`] did.
#[derive(Clone, Debug, Default)]
pub struct TickReport {
    /// The logical tick number (1-based).
    pub tick: u64,
    /// Shards that transitioned to Down this tick.
    pub went_down: Vec<usize>,
    /// Shards that transitioned Down → Up this tick.
    pub came_up: Vec<usize>,
    /// Slab repairs completed this tick.
    pub repaired_slabs: u64,
    /// Rejoin reconciliations completed this tick.
    pub rejoined: usize,
}

/// One detector round: probe every shard in index order, run the state
/// machine, repair shards that went Down, reconcile shards that came
/// back Up. All chaos draws (`shard-flap`) happen sequentially on this
/// thread before any repair traffic, in shard-index order.
pub fn heal_tick(state: &Arc<RouterState>) -> TickReport {
    // lint: relaxed-ok - logical clock, single heal thread advances it
    let tick = state.heal.tick.fetch_add(1, Ordering::Relaxed) + 1;
    let addrs: Vec<String> = state.map.lock().shards().iter().map(|s| s.addr.clone()).collect();
    state.heal.ensure(addrs.len());

    let mut went_down = Vec::new();
    let mut came_up = Vec::new();
    for (i, addr) in addrs.iter().enumerate() {
        // An injected flap forces this probe to fail without touching
        // the wire — the shard "looks dead" to the detector only.
        let flap = fs_chaos::draw(FaultSite::ShardFlap).is_some();
        let ok = if flap {
            false
        } else {
            let _probe = fs_trace::span(Site::HealProbe);
            state.shard_call(addr, |c| c.ping()).is_ok()
        };
        let (old, new) = state.heal.observe(i, ok);
        if old != new {
            state.heal.log(format!("tick={tick} shard={i} {}->{}", old.name(), new.name()));
            if new == ShardHealth::Down {
                went_down.push(i);
            } else if old == ShardHealth::Down {
                came_up.push(i);
            }
        }
    }

    let mut repaired_slabs = 0u64;
    for &down in &went_down {
        repaired_slabs += repair_shard(state, tick, down);
    }
    let mut rejoined = 0usize;
    for &up in &came_up {
        if rejoin_shard(state, tick, up) {
            rejoined += 1;
        }
    }
    TickReport { tick, went_down, came_up, repaired_slabs, rejoined }
}

/// Re-validate every shard's residency against the manifest — the
/// post-recovery pass a restarted router runs after rebuilding its
/// registry from the journal. Returns how many shards reconciled
/// (unreachable shards are skipped; the detector picks them up).
pub fn revalidate(state: &Arc<RouterState>) -> usize {
    let n = state.map.lock().len();
    state.heal.ensure(n);
    let tick = state.heal.ticks();
    (0..n).filter(|&i| rejoin_shard(state, tick, i)).count()
}

/// Clone-out read of one manifest entry: the registry lock is released
/// before the caller does any repair network I/O.
fn matrix_snapshot(state: &RouterState, id: u64) -> Option<Arc<ClusterMatrix>> {
    state.matrices.lock().get(&id).cloned()
}

/// Repair every slab the Down shard `down` held, in deterministic order
/// (matrix id ascending, slab index ascending). Returns slabs repaired.
fn repair_shard(state: &Arc<RouterState>, tick: u64, down: usize) -> u64 {
    let mut ids: Vec<u64> = state.matrices.lock().keys().copied().collect();
    ids.sort_unstable();
    let mut repaired = 0u64;
    for id in ids {
        let Some(matrix) = matrix_snapshot(state, id) else { continue };
        for s in 0..matrix.slabs.len() {
            // Re-read: an earlier slab's repair swapped in a new Arc.
            let Some(matrix) = matrix_snapshot(state, id) else { break };
            let slab = &matrix.slabs[s];
            let touches = slab.primary == down || slab.replica.map(|(i, _)| i) == Some(down);
            if !touches {
                continue;
            }
            let _span = fs_trace::span(Site::HealRepair);
            match repair_slab(state, down, &matrix, s) {
                Some(new_slab) => {
                    let line = format!(
                        "tick={tick} repair matrix={id} slab={s} primary={} replica={}",
                        new_slab.primary,
                        new_slab
                            .replica
                            .map(|(i, _)| i.to_string())
                            .unwrap_or_else(|| "-".to_string()),
                    );
                    state.commit_slab(id, s, new_slab);
                    state.heal.log(line);
                    repaired += 1;
                }
                None => {
                    state.heal.log(format!("tick={tick} repair matrix={id} slab={s} failed"));
                }
            }
        }
    }
    if repaired > 0 {
        // lint: relaxed-ok - monotonic counter, read only for metrics
        state.heal.repairs_completed.fetch_add(repaired, Ordering::Relaxed);
        // lint: relaxed-ok - logical clock, read only for metrics
        state.heal.last_repair_tick.store(tick, Ordering::Relaxed);
    }
    repaired
}

/// Compute the repaired placement of `matrix`'s slab `s` after shard
/// `down` died: promote or re-push the primary, then restore the
/// replica. `None` only when the primary is unrecoverable (no healthy
/// target or every push failed).
fn repair_slab(
    state: &Arc<RouterState>,
    down: usize,
    matrix: &ClusterMatrix,
    s: usize,
) -> Option<SlabState> {
    let mut next = matrix.slabs[s].clone();
    if next.replica.map(|(i, _)| i) == Some(down) {
        next.replica = None;
    }
    if next.primary == down {
        if let Some((replica_idx, replica_id)) = next.replica.take() {
            // The replica survives: promote it — no bytes move.
            next.primary = replica_idx;
            next.primary_id = replica_id;
        } else {
            // No replica: re-push the slab from the retained source
            // entries onto the first healthy shard along the ring.
            let target = pick_target(state, matrix.fp, &[down])?;
            let new_id = push_slab(state, matrix, s, None, target)?;
            next.primary = target;
            next.primary_id = new_id;
        }
    }
    // Restore replication: export from the surviving primary (falling
    // back to a re-slice) onto the next healthy distinct shard.
    if state.map.lock().replicated() && next.replica.is_none() {
        if let Some(target) = pick_target(state, matrix.fp, &[down, next.primary]) {
            let holder = Some((next.primary, next.primary_id));
            if let Some(new_id) = push_slab(state, matrix, s, holder, target) {
                next.replica = Some((target, new_id));
            }
        }
    }
    Some(next)
}

/// First shard along the placement ring for `fp` that is neither
/// excluded nor Down.
fn pick_target(state: &RouterState, fp: (u64, u64), exclude: &[usize]) -> Option<usize> {
    let order = state.map.lock().placement(fp);
    order.into_iter().find(|i| !exclude.contains(i) && !state.heal.is_down(*i))
}

/// Materialize `matrix`'s slab `s` and load it onto shard `target`,
/// returning the target-side matrix id. Data comes from `holder`
/// (a surviving `(shard, id)` copy, fetched via `Export` and verified
/// against the slab fingerprint) or, failing that, a re-slice of the
/// retained source entries — bit-identical by construction, since both
/// paths rebuild the same rebased CSR the original `Load` registered.
fn push_slab(
    state: &Arc<RouterState>,
    matrix: &ClusterMatrix,
    s: usize,
    holder: Option<(usize, u64)>,
    target: usize,
) -> Option<u64> {
    let slab = &matrix.slabs[s];
    let csr = holder
        .and_then(|(idx, id)| export_slab(state, &matrix.tenant, idx, id, slab))
        .unwrap_or_else(|| reslice_slab(matrix, s));
    let addr = state.shard_addr(target)?;
    state.shard_call(&addr, |c| c.load_matrix(&matrix.tenant, &csr)).ok().map(|l| l.matrix_id)
}

/// Fetch a slab copy from a surviving holder and rebuild its CSR,
/// rejecting it (→ the caller re-slices) when the holder is Down, the
/// export fails, or the content no longer matches the slab fingerprint.
fn export_slab(
    state: &Arc<RouterState>,
    tenant: &str,
    holder_idx: usize,
    holder_id: u64,
    slab: &SlabState,
) -> Option<CsrMatrix<f32>> {
    if state.heal.is_down(holder_idx) {
        return None;
    }
    let addr = state.shard_addr(holder_idx)?;
    let (rows, cols, entries) =
        state.shard_call(&addr, |c| c.export_matrix(tenant, holder_id)).ok()?;
    let mut coo = CooMatrix::new(rows as usize, cols as usize);
    for (r, c, v) in &entries {
        coo.push(*r as usize, *c as usize, *v);
    }
    let csr = CsrMatrix::from_coo(&coo);
    let fp = Fingerprint::of(&csr);
    ((fp.hi(), fp.lo()) == slab.fp).then_some(csr)
}

/// Rebuild `matrix`'s slab `s` from the retained source entries: the
/// same rebase `route_load` performed, so the CSR — and its fingerprint
/// — is identical.
fn reslice_slab(matrix: &ClusterMatrix, s: usize) -> CsrMatrix<f32> {
    let range = &matrix.slabs[s].rows;
    let mut coo = CooMatrix::new(range.len(), matrix.cols);
    for (r, c, v) in matrix.entries.iter() {
        let r = *r as usize;
        if range.contains(&r) {
            coo.push(r - range.start, *c as usize, *v);
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// The slabs the manifest places on shard `index`, in deterministic
/// order: `(matrix_id, slab_index, fingerprint, is_primary, shard-side id)`.
fn expected_on(state: &RouterState, index: usize) -> Vec<(u64, usize, (u64, u64), bool, u64)> {
    let matrices = state.matrices.lock();
    let mut ids: Vec<u64> = matrices.keys().copied().collect();
    ids.sort_unstable();
    let mut expected = Vec::new();
    for id in ids {
        let matrix = &matrices[&id];
        for (s, slab) in matrix.slabs.iter().enumerate() {
            if slab.primary == index {
                expected.push((id, s, slab.fp, true, slab.primary_id));
            }
            if let Some((ri, rid)) = slab.replica {
                if ri == index {
                    expected.push((id, s, slab.fp, false, rid));
                }
            }
        }
    }
    expected
}

/// Anti-entropy reconciliation for shard `index` (a shard that just came
/// back Up, or any shard during post-recovery [`revalidate`]): fetch its
/// resident inventory, evict slabs the manifest does not place there,
/// adopt diverged ids, and re-push slabs it should hold but lost.
/// Returns `false` when the shard cannot be reached.
fn rejoin_shard(state: &Arc<RouterState>, tick: u64, index: usize) -> bool {
    let _span = fs_trace::span(Site::HealRejoin);
    let Some(addr) = state.shard_addr(index) else { return false };
    let Ok((_, _, resident)) = state.shard_call(&addr, |c| c.shard_join(&addr, 0)) else {
        return false;
    };
    let inventory: HashMap<(u64, u64), u64> =
        resident.iter().map(|&(hi, lo, id)| ((hi, lo), id)).collect();
    let expected = expected_on(state, index);
    let expected_fps: Vec<(u64, u64)> = expected.iter().map(|e| e.2).collect();

    // Evict resident matrices the manifest no longer places here, in
    // ascending shard-side id order (deterministic).
    let mut evicted = 0usize;
    let mut stray: Vec<u64> = resident
        .iter()
        .filter(|(hi, lo, _)| !expected_fps.contains(&(*hi, *lo)))
        .map(|&(_, _, id)| id)
        .collect();
    stray.sort_unstable();
    for id in stray {
        if state.shard_call(&addr, |c| c.evict_matrix("", id)).unwrap_or(false) {
            evicted += 1;
        }
    }

    let mut adopted = 0usize;
    let mut pushed = 0usize;
    for (matrix_id, s, fp, is_primary, current_id) in expected {
        let new_id = match inventory.get(&fp) {
            Some(&shard_id) if shard_id == current_id => continue,
            Some(&shard_id) => Some(shard_id), // resident under a diverged id: adopt
            None => {
                // Lost: re-push from the other holder, else re-slice.
                let Some(matrix) = matrix_snapshot(state, matrix_id) else { continue };
                let slab = &matrix.slabs[s];
                let holder = if is_primary {
                    slab.replica.filter(|(i, _)| *i != index)
                } else {
                    (slab.primary != index).then_some((slab.primary, slab.primary_id))
                };
                push_slab(state, &matrix, s, holder, index)
            }
        };
        let Some(new_id) = new_id else { continue };
        let Some(matrix) = matrix_snapshot(state, matrix_id) else { continue };
        let mut slab = matrix.slabs[s].clone();
        if is_primary {
            slab.primary_id = new_id;
        } else {
            slab.replica = Some((index, new_id));
        }
        state.commit_slab(matrix_id, s, slab);
        if inventory.contains_key(&fp) {
            adopted += 1;
        } else {
            pushed += 1;
        }
    }

    state.heal.log(format!(
        "tick={tick} rejoin shard={index} evicted={evicted} adopted={adopted} pushed={pushed}"
    ));
    // lint: relaxed-ok - monotonic counter, read only for metrics
    state.heal.rejoins.fetch_add(1, Ordering::Relaxed);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_machine_escalates_and_recovers() {
        let heal =
            HealState::new(HealConfig { suspect_after: 1, down_after: 3, ..HealConfig::default() });
        heal.ensure(1);
        assert_eq!(heal.observe(0, false), (ShardHealth::Up, ShardHealth::Suspect));
        assert_eq!(heal.observe(0, false), (ShardHealth::Suspect, ShardHealth::Suspect));
        assert_eq!(heal.observe(0, false), (ShardHealth::Suspect, ShardHealth::Down));
        assert!(heal.is_down(0));
        assert_eq!(heal.observe(0, true), (ShardHealth::Down, ShardHealth::Up));
        assert!(!heal.is_down(0));
    }

    #[test]
    fn one_success_fully_resets_the_failure_count() {
        let heal =
            HealState::new(HealConfig { suspect_after: 1, down_after: 2, ..HealConfig::default() });
        heal.ensure(1);
        let _ = heal.observe(0, false);
        let _ = heal.observe(0, true);
        // A fresh failure starts from zero again: Suspect, not Down.
        assert_eq!(heal.observe(0, false).1, ShardHealth::Suspect);
    }

    #[test]
    fn unknown_shards_default_to_up() {
        let heal = HealState::new(HealConfig::default());
        assert!(!heal.is_down(7));
        assert!(heal.health().is_empty());
    }

    #[test]
    fn health_names_are_stable() {
        assert_eq!(ShardHealth::Up.name(), "up");
        assert_eq!(ShardHealth::Suspect.name(), "suspect");
        assert_eq!(ShardHealth::Down.name(), "down");
    }
}
