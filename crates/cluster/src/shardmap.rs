//! Shard topology: which shard owns which row slab of which matrix.
//!
//! Placement is rendezvous (highest-random-weight) hashing of the
//! matrix's content fingerprint against each shard's *address* — not its
//! join index — so the slab → shard assignment is a pure function of
//! `(shard address set, fingerprint)`. A router that restarts and
//! re-learns the same shards in any order reproduces the identical
//! placement, which is what lets it re-route to shards that still hold
//! their slabs instead of reloading the world.
//!
//! Row slabs are contiguous and near-even: slab `s` of `k` over `rows`
//! rows is `[rows·s/k, rows·(s+1)/k)`. SpMM partitions cleanly along
//! sparse rows (each output row depends only on its own sparse row), so
//! concatenating per-slab outputs reproduces the unsharded result bit
//! for bit — the property the partition proptests pin down.

use std::ops::Range;

use fs_chaos::splitmix64;
use fs_serve::protocol::fnv1a64;

/// One shard the router knows about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// The shard's listen address (`host:port`) — its identity for
    /// placement purposes.
    pub addr: String,
    /// The shard's bind-time epoch (milliseconds since the Unix epoch);
    /// a higher value than previously recorded means the shard
    /// restarted and lost its registered slabs.
    pub start_epoch: u64,
}

/// Outcome of a [`ShardMap::join`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinOutcome {
    /// The shard's index in the map.
    pub index: usize,
    /// Whether this address was already registered with an older
    /// `start_epoch` — i.e. the shard restarted.
    pub restarted: bool,
}

/// The slab → shard assignment for one matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlabAssignment {
    /// The global row range this slab covers.
    pub rows: Range<usize>,
    /// Shard index serving the slab.
    pub primary: usize,
    /// Shard index holding the replica copy (replicated maps with ≥ 2
    /// shards only).
    pub replica: Option<usize>,
}

/// The shard set plus the placement and slab-split rules.
#[derive(Clone, Debug, Default)]
pub struct ShardMap {
    shards: Vec<ShardInfo>,
    replicate: bool,
}

/// Rendezvous weight of `addr` for a matrix fingerprint: a pure mix of
/// the two, so every (shard, matrix) pair draws an independent score.
fn weight(addr: &str, fingerprint: (u64, u64)) -> u64 {
    splitmix64(fnv1a64(addr.as_bytes()) ^ splitmix64(fingerprint.0 ^ splitmix64(fingerprint.1)))
}

impl ShardMap {
    /// An empty map; `replicate` turns on per-slab replica assignment.
    pub fn new(replicate: bool) -> ShardMap {
        ShardMap { shards: Vec::new(), replicate }
    }

    /// A map pre-seeded with `addrs` (epochs unknown until they join).
    pub fn from_addrs<S: Into<String>>(addrs: Vec<S>, replicate: bool) -> ShardMap {
        let mut map = ShardMap::new(replicate);
        for addr in addrs {
            map.join(addr.into(), 0);
        }
        map
    }

    /// Register `addr` (or refresh its epoch). Re-joining with a higher
    /// epoch reports `restarted = true`: the process behind the address
    /// is new and its registered slabs are gone.
    pub fn join(&mut self, addr: String, start_epoch: u64) -> JoinOutcome {
        if let Some(index) = self.shards.iter().position(|s| s.addr == addr) {
            let restarted = start_epoch > self.shards[index].start_epoch;
            if restarted {
                self.shards[index].start_epoch = start_epoch;
            }
            return JoinOutcome { index, restarted };
        }
        self.shards.push(ShardInfo { addr, start_epoch });
        JoinOutcome { index: self.shards.len() - 1, restarted: false }
    }

    /// Whether replica slabs are assigned.
    pub fn replicated(&self) -> bool {
        self.replicate
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the map has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Every shard, in join order.
    pub fn shards(&self) -> &[ShardInfo] {
        &self.shards
    }

    /// The shard at `index`, if any.
    pub fn shard(&self, index: usize) -> Option<&ShardInfo> {
        self.shards.get(index)
    }

    /// Shard indices ordered by descending rendezvous weight for
    /// `fingerprint` (ties broken by address so the order is total).
    /// The *addresses* along this order depend only on the shard set and
    /// the fingerprint — never on join order.
    pub fn placement(&self, fingerprint: (u64, u64)) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        order.sort_by(|&a, &b| {
            let (wa, wb) = (
                weight(&self.shards[a].addr, fingerprint),
                weight(&self.shards[b].addr, fingerprint),
            );
            wb.cmp(&wa).then_with(|| self.shards[a].addr.cmp(&self.shards[b].addr))
        });
        order
    }

    /// Contiguous near-even row split: `parts` ranges covering
    /// `0..rows`, sizes differing by at most one, none empty (parts is
    /// clamped to `rows` for tiny matrices).
    pub fn slab_ranges(rows: usize, parts: usize) -> Vec<Range<usize>> {
        let parts = parts.clamp(1, rows.max(1));
        (0..parts).map(|s| (rows * s / parts)..(rows * (s + 1) / parts)).collect()
    }

    /// The full slab → shard assignment for a matrix: one slab per
    /// shard (fewer for matrices with fewer rows than shards), primary
    /// shards in placement order, replica = the next shard along the
    /// placement ring when replication is on.
    pub fn assign(&self, fingerprint: (u64, u64), rows: usize) -> Vec<SlabAssignment> {
        let order = self.placement(fingerprint);
        let k = order.len();
        if k == 0 {
            return Vec::new();
        }
        ShardMap::slab_ranges(rows, k)
            .into_iter()
            .enumerate()
            .map(|(s, range)| SlabAssignment {
                rows: range,
                primary: order[s % k],
                replica: if self.replicate && k > 1 { Some(order[(s + 1) % k]) } else { None },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_ranges_cover_contiguously() {
        for rows in [1usize, 2, 3, 7, 100, 101] {
            for parts in [1usize, 2, 3, 5] {
                let ranges = ShardMap::slab_ranges(rows, parts);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().map(|r| r.end), Some(rows));
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                assert!(ranges.iter().all(|r| !r.is_empty()), "{rows} rows / {parts}");
            }
        }
    }

    #[test]
    fn placement_is_independent_of_join_order() {
        let fp = (0xDEAD_BEEF, 0x1234_5678);
        let a = ShardMap::from_addrs(vec!["s1:1", "s2:2", "s3:3"], true);
        let b = ShardMap::from_addrs(vec!["s3:3", "s1:1", "s2:2"], true);
        let addrs = |m: &ShardMap, fp| -> Vec<String> {
            m.placement(fp).into_iter().map(|i| m.shards()[i].addr.clone()).collect()
        };
        assert_eq!(addrs(&a, fp), addrs(&b, fp));
    }

    #[test]
    fn assignment_spreads_and_replicas_differ() {
        let map = ShardMap::from_addrs(vec!["a:1", "b:2", "c:3"], true);
        let slabs = map.assign((1, 2), 90);
        assert_eq!(slabs.len(), 3);
        let mut primaries: Vec<usize> = slabs.iter().map(|s| s.primary).collect();
        primaries.sort_unstable();
        assert_eq!(primaries, vec![0, 1, 2], "each shard serves exactly one slab");
        for slab in &slabs {
            let replica = slab.replica.expect("replicated map");
            assert_ne!(replica, slab.primary);
        }
    }

    #[test]
    fn join_detects_restarts() {
        let mut map = ShardMap::new(false);
        let first = map.join("s:1".into(), 100);
        assert_eq!(first, JoinOutcome { index: 0, restarted: false });
        assert_eq!(map.join("s:1".into(), 100), JoinOutcome { index: 0, restarted: false });
        assert_eq!(map.join("s:1".into(), 250), JoinOutcome { index: 0, restarted: true });
        assert_eq!(map.shard(0).map(|s| s.start_epoch), Some(250));
        assert_eq!(map.join("t:2".into(), 50), JoinOutcome { index: 1, restarted: false });
    }

    #[test]
    fn single_shard_has_no_replica_even_when_replicated() {
        let map = ShardMap::from_addrs(vec!["only:1"], true);
        let slabs = map.assign((9, 9), 10);
        assert_eq!(slabs.len(), 1);
        assert_eq!(slabs[0].replica, None);
    }
}
