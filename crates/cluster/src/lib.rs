//! fs-cluster: sharded multi-node serving with scatter-gather SpMM.
//!
//! One `fs-serve` process caps how large a registered matrix can be
//! (`--max-matrix-mb`) and how much SpMM throughput one socket can
//! carry. This crate shards *across* processes without touching them:
//! shards are plain `fs-serve` servers, and the router speaks the same
//! length-prefixed protocol on both sides.
//!
//! - [`shardmap`] — rendezvous-hash placement of matrices onto shard
//!   *addresses* plus contiguous near-even row-slab assignment, so the
//!   slab layout is a pure function of `(shard set, fingerprint)` and
//!   survives router restarts.
//! - [`router`] — the front-end daemon: `Load` splits a matrix into row
//!   slabs and registers each on its primary (and optional replica)
//!   shard; `ClusterSpmm` scatters the dense operand, bounds each shard
//!   by the request deadline, retries lost slabs on replicas, and
//!   gathers the row slabs back into one output. A slab lost past its
//!   replica degrades the response — zero-filled rows plus a
//!   present-rows bitmap — instead of failing it.
//!
//! Row partitioning is exact for SpMM: each output row of `A·B` depends
//! only on its own sparse row of `A`, so concatenating per-slab outputs
//! is bit-identical to the unsharded product (pinned by proptests in
//! `tests/partition.rs`).
//!
//! - [`heal`] — self-healing: a heartbeat failure detector
//!   (Up→Suspect→Down per shard), deterministic re-replication of the
//!   slabs a Down shard held, and anti-entropy reconciliation of a
//!   returning shard's resident inventory against the manifest.
//! - [`journal`] — the durable cluster manifest: every successful
//!   `Load` and every repair reassignment appended as a checksummed
//!   record, so a restarted router rebuilds its shard map and matrix
//!   registry from the journal's valid prefix without re-receiving a
//!   single `Load`.
//!
//! Chaos integration: `shard-kill` / `shard-stall` fault sites are drawn
//! sequentially per slab on the request thread before the scatter fans
//! out, and the heal loop draws `shard-flap` per shard (plus
//! `journal-corrupt` per journal append) in index order before any
//! repair traffic — so a seeded kill→recover→rejoin soak replays
//! bit-identical response bytes, repair logs, and fault counters from
//! the plan string alone. Scatter phases are traced under the
//! `cluster.route` / `cluster.scatter` / `cluster.gather` /
//! `cluster.shard_wait` spans; the heal loop under `heal.probe` /
//! `heal.repair` / `heal.rejoin`.
//!
//! # Example
//!
//! Placement is deterministic and join-order independent:
//!
//! ```
//! use fs_cluster::ShardMap;
//!
//! let a = ShardMap::from_addrs(vec!["10.0.0.1:7949", "10.0.0.2:7949"], true);
//! let b = ShardMap::from_addrs(vec!["10.0.0.2:7949", "10.0.0.1:7949"], true);
//! let fingerprint = (0x5EED, 0xF00D);
//! let slabs = a.assign(fingerprint, 100);
//! assert_eq!(slabs.len(), 2);
//! assert_eq!(slabs[0].rows, 0..50);
//! // Same addresses, different join order: same slab -> address map.
//! let addr = |m: &ShardMap, i: usize| m.shards()[i].addr.clone();
//! assert_eq!(
//!     addr(&a, a.assign(fingerprint, 100)[0].primary),
//!     addr(&b, b.assign(fingerprint, 100)[0].primary),
//! );
//! ```

pub mod heal;
pub mod journal;
pub mod router;
pub mod shardmap;

pub use heal::{heal_tick, revalidate, HealConfig, HealState, ShardHealth, TickReport};
pub use journal::{Journal, Record, Recovered, SlabRecord};
pub use router::{parse_start_epoch, Router, RouterConfig, RouterState};
pub use shardmap::{JoinOutcome, ShardInfo, ShardMap, SlabAssignment};
