//! The scatter-gather router: the TCP front end clients talk to when a
//! matrix is too large (or too hot) for one `fs-serve` process.
//!
//! The router speaks the same length-prefixed protocol as the shards it
//! fronts. `Load` row-partitions the matrix into contiguous slabs —
//! placement by [`crate::ShardMap`] — and registers each slab (rebased
//! to slab-local row indices) on its primary shard and, when replication
//! is on, its replica. `ClusterSpmm` scatters the dense operand to every
//! slab holder in parallel, bounded per shard by the request deadline,
//! and gathers the row slabs back into one output.
//!
//! ## Partial failure
//!
//! A slab whose primary fails (connection refused, deadline, injected
//! `shard-kill`) is retried on its replica; a slab lost past its replica
//! degrades the response instead of failing it: missing rows are
//! zero-filled and a present-rows bitmap tells the client exactly which
//! rows to trust. `shards_ok` / `shards_failed` make the retry traffic
//! visible per response.
//!
//! ## Determinism under chaos
//!
//! The `shard-kill` / `shard-stall` draws for all slabs are taken
//! *sequentially on the request thread before the fan-out spawns*, in
//! slab order — the parallel scatter workers never touch the injector —
//! so a seeded soak over one connection replays bit-identical response
//! bytes and fault counters from the plan string alone.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use fs_chaos::FaultSite;
use fs_matrix::{CooMatrix, CsrMatrix};
use fs_serve::client::{ClientError, ServeClient};
use fs_serve::protocol::{read_frame, write_frame, ErrorCode, Request, Response};
use fs_serve::{Fingerprint, DEFAULT_MAX_LOAD_DIM};
use fs_trace::Site;
use parking_lot::Mutex;

use crate::shardmap::ShardMap;

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Static shard addresses (more can join via `ShardJoin`).
    pub shards: Vec<String>,
    /// Register every slab on a replica shard as well.
    pub replicate: bool,
    /// TCP dial bound for shard connections.
    pub connect_timeout: Duration,
    /// Per-shard deadline when a request carries none.
    pub default_deadline_ms: u32,
    /// Largest rows/cols a `Load` may declare (same guard as the shard
    /// front end: dimensions are bounded before anything allocates).
    pub max_load_dim: u32,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            replicate: false,
            connect_timeout: Duration::from_secs(2),
            default_deadline_ms: 0,
            max_load_dim: DEFAULT_MAX_LOAD_DIM,
        }
    }
}

/// One slab of a registered matrix: where its rows live.
#[derive(Clone, Debug)]
struct SlabState {
    /// Global row range.
    rows: Range<usize>,
    /// Primary shard index.
    primary: usize,
    /// The slab's matrix id on the primary shard.
    primary_id: u64,
    /// Replica shard index and the slab's matrix id there.
    replica: Option<(usize, u64)>,
}

/// A matrix registered through the router.
#[derive(Debug)]
struct ClusterMatrix {
    tenant: String,
    rows: usize,
    cols: usize,
    slabs: Vec<SlabState>,
}

/// A pooled connection to one shard. The slot is `None` until first use
/// and after a transport error (the next call redials).
#[derive(Default)]
struct ShardConn {
    client: Mutex<Option<ServeClient>>,
}

/// Cumulative router counters (exported in the metrics document).
#[derive(Default)]
struct RouterStats {
    cluster_requests: AtomicU64,
    degraded: AtomicU64,
    shard_failures: AtomicU64,
    replica_serves: AtomicU64,
    shard_restarts: AtomicU64,
}

/// Shared router state: topology, matrix registry, connection pool.
pub struct RouterState {
    map: Mutex<ShardMap>,
    matrices: Mutex<HashMap<u64, Arc<ClusterMatrix>>>,
    conns: Mutex<HashMap<String, Arc<ShardConn>>>,
    next_id: AtomicU64,
    stats: RouterStats,
    connect_timeout: Duration,
    default_deadline_ms: u32,
    max_load_dim: u32,
}

impl RouterState {
    fn new(cfg: &RouterConfig) -> RouterState {
        RouterState {
            map: Mutex::new(ShardMap::from_addrs(cfg.shards.clone(), cfg.replicate)),
            matrices: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            stats: RouterStats::default(),
            connect_timeout: cfg.connect_timeout,
            default_deadline_ms: cfg.default_deadline_ms,
            max_load_dim: cfg.max_load_dim,
        }
    }

    /// The pooled connection slot for `addr` (created on first use).
    /// Takes only the pool-map lock; the per-shard client lock is the
    /// caller's, so two slabs on different shards never serialize.
    fn conn(&self, addr: &str) -> Arc<ShardConn> {
        let mut conns = self.conns.lock();
        Arc::clone(conns.entry(addr.to_string()).or_default())
    }

    /// Run `f` against the pooled client for `addr`, dialing if the slot
    /// is empty and dropping the connection after transport-level
    /// failures so the next call starts fresh.
    fn shard_call<T>(
        &self,
        addr: &str,
        f: impl FnOnce(&mut ServeClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let conn = self.conn(addr);
        let mut slot = conn.client.lock();
        if slot.is_none() {
            *slot = Some(ServeClient::connect_with_timeout(addr, self.connect_timeout)?);
        }
        let result = match slot.as_mut() {
            Some(client) => f(client),
            None => Err(ClientError::Unexpected("no shard connection".to_string())),
        };
        if matches!(
            result,
            Err(ClientError::Io(_) | ClientError::Proto(_) | ClientError::Unexpected(_))
        ) {
            *slot = None;
        }
        result
    }

    /// Address of shard `index` (snapshot under the map lock).
    fn shard_addr(&self, index: usize) -> Option<String> {
        self.map.lock().shard(index).map(|s| s.addr.clone())
    }

    /// Register a shard (or refresh its epoch) — what the `ShardJoin`
    /// request does, exposed for the daemon's startup probe.
    pub fn join_shard(&self, addr: String, start_epoch: u64) -> crate::shardmap::JoinOutcome {
        let outcome = self.map.lock().join(addr, start_epoch);
        if outcome.restarted {
            // lint: relaxed-ok - monotonic counter, read only for metrics
            self.stats.shard_restarts.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }
}

/// A bound, running router. Accepts until a `Shutdown` message arrives.
pub struct Router {
    state: Arc<RouterState>,
    listener: TcpListener,
    addr: SocketAddr,
    start_epoch: u64,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<(thread::JoinHandle<()>, TcpStream)>>>,
}

impl Router {
    /// Bind the listener. The accept loop runs on the caller's thread
    /// via [`Router::run`].
    pub fn bind(cfg: &RouterConfig) -> io::Result<Router> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let start_epoch = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64) // lint: checked-cast - clamped
            .unwrap_or(0);
        Ok(Router {
            state: Arc::new(RouterState::new(cfg)),
            listener,
            addr,
            start_epoch,
            stop: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared router state (topology and counters).
    pub fn state(&self) -> &Arc<RouterState> {
        &self.state
    }

    /// Accept and serve connections until a `Shutdown` request arrives,
    /// then propagate the shutdown to every shard and join every
    /// connection thread.
    pub fn run(self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => return Err(e),
            };
            let peer = match stream.try_clone() {
                Ok(p) => p,
                Err(_) => continue,
            };
            let state = Arc::clone(&self.state);
            let stop = Arc::clone(&self.stop);
            let addr = self.addr;
            let start_epoch = self.start_epoch;
            let handle = thread::Builder::new()
                .name("fs-cluster-conn".to_string())
                .spawn(move || handle_connection(stream, &state, &stop, addr, start_epoch))?;
            self.conns.lock().push((handle, peer));
            if self.stop.load(Ordering::Acquire) {
                break;
            }
        }
        // Tell every shard to drain too: one Shutdown against the router
        // tears the whole cluster down, which is what scripted runs want.
        let addrs: Vec<String> =
            self.state.map.lock().shards().iter().map(|s| s.addr.clone()).collect();
        for addr in addrs {
            let _ = self.state.shard_call(&addr, |c| c.shutdown());
        }
        let conns: Vec<(thread::JoinHandle<()>, TcpStream)> =
            std::mem::take(&mut *self.conns.lock());
        for (_, peer) in &conns {
            let _ = peer.shutdown(Shutdown::Read);
        }
        for (h, _) in conns {
            let _ = h.join();
        }
        Ok(())
    }
}

fn handle_connection(
    stream: TcpStream,
    state: &Arc<RouterState>,
    stop: &Arc<AtomicBool>,
    router_addr: SocketAddr,
    start_epoch: u64,
) {
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                let resp = dispatch(req, state, router_addr, start_epoch);
                if is_shutdown {
                    let _ = resp.encode().map(|bytes| write_frame(&mut writer, &bytes));
                    stop.store(true, Ordering::Release);
                    let _ = TcpStream::connect_timeout(&router_addr, Duration::from_secs(1));
                    return;
                }
                resp
            }
            Err(e) => Response::Error { code: ErrorCode::BadRequest, message: e.to_string() },
        };
        let bytes = match response.encode() {
            Ok(b) => b,
            Err(e) => {
                let fallback =
                    Response::Error { code: ErrorCode::Internal, message: e.to_string() };
                match fallback.encode() {
                    Ok(b) => b,
                    Err(_) => return,
                }
            }
        };
        if write_frame(&mut writer, &bytes).is_err() {
            return;
        }
    }
}

fn dispatch(
    req: Request,
    state: &Arc<RouterState>,
    addr: SocketAddr,
    start_epoch: u64,
) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::ShutdownAck,
        Request::Metrics => Response::Metrics { json: metrics_json(state, addr, start_epoch) },
        Request::Trace => {
            let snap = fs_trace::snapshot();
            Response::Trace {
                prometheus: fs_trace::export::prometheus_text(&snap),
                chrome: fs_trace::export::chrome_trace(&snap),
            }
        }
        Request::ShardJoin { addr: shard_addr, start_epoch: shard_epoch } => {
            let outcome = state.join_shard(shard_addr, shard_epoch);
            let count = state.map.lock().len();
            Response::ShardJoined {
                shard_index: outcome.index.min(u32::MAX as usize) as u32,
                shard_count: count.min(u32::MAX as usize) as u32,
            }
        }
        Request::Load { tenant, rows, cols, entries } => {
            route_load(state, tenant, rows, cols, entries)
        }
        Request::ClusterSpmm { tenant: _, matrix_id, deadline_ms, b_rows, n, b } => {
            cluster_spmm(state, matrix_id, deadline_ms, b_rows, n, b)
        }
        Request::Spmm { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "this is a router: use the cluster SpMM op (REQ_CLUSTER_SPMM)".to_string(),
        },
    }
}

/// Partition `entries` into row slabs and register each slab on its
/// primary (and replica) shard. The router's matrix id maps to the
/// per-shard slab ids.
fn route_load(
    state: &Arc<RouterState>,
    tenant: String,
    rows: u32,
    cols: u32,
    entries: Vec<(u32, u32, f32)>,
) -> Response {
    let _route = fs_trace::span(Site::ClusterRoute);
    if rows > state.max_load_dim || cols > state.max_load_dim {
        return Response::Error {
            code: ErrorCode::BadRequest,
            message: format!(
                "matrix dimensions {rows}x{cols} exceed the router cap {}",
                state.max_load_dim
            ),
        };
    }
    let (rows, cols) = (rows as usize, cols as usize);
    let mut coo = CooMatrix::new(rows, cols);
    for (r, c, v) in &entries {
        if *r as usize >= rows || *c as usize >= cols {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("entry ({r},{c}) outside {rows}x{cols}"),
            };
        }
        coo.push(*r as usize, *c as usize, *v);
    }
    let csr = CsrMatrix::from_coo(&coo.dedup());
    let fp = Fingerprint::of(&csr);
    let assignments = state.map.lock().assign((fp.hi(), fp.lo()), rows);
    if assignments.is_empty() {
        return Response::Error {
            code: ErrorCode::ResourceExhausted,
            message: "no shards joined".to_string(),
        };
    }

    let mut slabs = Vec::with_capacity(assignments.len());
    for a in &assignments {
        // Rebase the slab's entries to slab-local row indices; columns
        // are untouched (a row slab keeps every column).
        let mut slab_coo = CooMatrix::new(a.rows.len(), cols);
        for r in a.rows.clone() {
            for (c, v) in csr.row_cols(r).iter().zip(csr.row_values(r)) {
                slab_coo.push(r - a.rows.start, *c as usize, *v);
            }
        }
        let slab_csr = CsrMatrix::from_coo(&slab_coo);
        let primary_id = {
            let Some(addr) = state.shard_addr(a.primary) else {
                return Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("shard {} left the map", a.primary),
                };
            };
            match state.shard_call(&addr, |c| c.load_matrix(&tenant, &slab_csr)) {
                Ok(loaded) => loaded.matrix_id,
                Err(ClientError::Server { code, message }) => {
                    return Response::Error { code, message }
                }
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("slab load on {addr} failed: {e}"),
                    }
                }
            }
        };
        // Replica registration is best-effort: a slab without a replica
        // still serves, it just cannot survive a primary failure.
        let replica = a.replica.and_then(|idx| {
            let addr = state.shard_addr(idx)?;
            state
                .shard_call(&addr, |c| c.load_matrix(&tenant, &slab_csr))
                .ok()
                .map(|loaded| (idx, loaded.matrix_id))
        });
        slabs.push(SlabState { rows: a.rows.clone(), primary: a.primary, primary_id, replica });
    }

    let nnz = csr.nnz() as u64;
    // lint: relaxed-ok - id allocation needs uniqueness, not ordering
    let matrix_id = state.next_id.fetch_add(1, Ordering::Relaxed);
    let matrix = Arc::new(ClusterMatrix { tenant, rows, cols, slabs });
    state.matrices.lock().insert(matrix_id, matrix);
    Response::Loaded { matrix_id, fingerprint_hi: fp.hi(), fingerprint_lo: fp.lo(), nnz }
}

/// One slab's scatter outcome.
struct SlabOutcome {
    rows: Range<usize>,
    out: Option<Vec<f32>>,
    failures: u64,
    replica_served: bool,
}

/// Scatter the operand to every slab holder, gather the row slabs back.
fn cluster_spmm(
    state: &Arc<RouterState>,
    matrix_id: u64,
    deadline_ms: u32,
    b_rows: u32,
    n: u32,
    b: Vec<f32>,
) -> Response {
    // lint: relaxed-ok - monotonic counter, read only for metrics
    state.stats.cluster_requests.fetch_add(1, Ordering::Relaxed);
    let matrix = {
        let _route = fs_trace::span(Site::ClusterRoute);
        match state.matrices.lock().get(&matrix_id) {
            Some(m) => Arc::clone(m),
            None => {
                return Response::Error {
                    code: ErrorCode::UnknownMatrix,
                    message: format!("unknown matrix id {matrix_id}"),
                }
            }
        }
    };
    if b_rows as usize != matrix.cols || b.len() != b_rows as usize * n as usize {
        return Response::Error {
            code: ErrorCode::BadRequest,
            message: format!(
                "operand is {b_rows}x{n} ({} values); matrix needs {} rows",
                b.len(),
                matrix.cols
            ),
        };
    }
    let deadline_ms = if deadline_ms == 0 { state.default_deadline_ms } else { deadline_ms };

    // All chaos decisions for this request are drawn here, sequentially,
    // in slab order — before any parallelism — so a seeded soak replays
    // the identical fault pattern regardless of scatter thread timing.
    let faults: Vec<(bool, bool)> = matrix
        .slabs
        .iter()
        .map(|_| {
            (
                fs_chaos::draw(FaultSite::ShardKill).is_some(),
                fs_chaos::draw(FaultSite::ShardStall).is_some(),
            )
        })
        .collect();
    let stall = fs_chaos::stall_duration();

    let n_usize = n as usize;
    let outcomes: Vec<SlabOutcome> = {
        let _scatter = fs_trace::span(Site::ClusterScatter);
        thread::scope(|scope| {
            let handles: Vec<_> = matrix
                .slabs
                .iter()
                .zip(&faults)
                .map(|(slab, &(kill, stall_hit))| {
                    let state = Arc::clone(state);
                    let tenant = matrix.tenant.clone();
                    let b = &b;
                    scope.spawn(move || {
                        serve_slab(&state, &tenant, slab, b, n_usize, deadline_ms, kill, {
                            if stall_hit {
                                Some(stall)
                            } else {
                                None
                            }
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .zip(&matrix.slabs)
                .map(|(h, slab)| match h.join() {
                    Ok(outcome) => outcome,
                    Err(_) => SlabOutcome {
                        rows: slab.rows.clone(),
                        out: None,
                        failures: 1,
                        replica_served: false,
                    },
                })
                .collect()
        })
    };

    let _gather = fs_trace::span(Site::ClusterGather);
    let rows = matrix.rows;
    let mut out = vec![0.0f32; rows * n_usize];
    let mut present = vec![0u8; rows.div_ceil(8)];
    let mut degraded = false;
    let mut shards_ok: u32 = 0;
    let mut shards_failed: u64 = 0;
    let mut replica_serves: u64 = 0;
    for o in &outcomes {
        shards_failed += o.failures;
        if o.replica_served {
            replica_serves += 1;
        }
        match &o.out {
            Some(slab_out) => {
                out[o.rows.start * n_usize..o.rows.end * n_usize].copy_from_slice(slab_out);
                for r in o.rows.clone() {
                    present[r / 8] |= 1 << (r % 8);
                }
                shards_ok += 1;
            }
            None => degraded = true,
        }
    }
    if degraded {
        // lint: relaxed-ok - monotonic counter, read only for metrics
        state.stats.degraded.fetch_add(1, Ordering::Relaxed);
    }
    // lint: relaxed-ok - monotonic counter, read only for metrics
    state.stats.shard_failures.fetch_add(shards_failed, Ordering::Relaxed);
    // lint: relaxed-ok - monotonic counter, read only for metrics
    state.stats.replica_serves.fetch_add(replica_serves, Ordering::Relaxed);
    Response::ClusterSpmm {
        rows: rows.min(u32::MAX as usize) as u32,
        n,
        out,
        degraded,
        present: if degraded { present } else { Vec::new() },
        shards_ok,
        shards_failed: shards_failed.min(u64::from(u32::MAX)) as u32,
    }
}

/// One slab of a scatter: primary, then replica, inside a
/// `cluster.shard_wait` span (the per-shard contribution to the fan-out
/// tail).
#[allow(clippy::too_many_arguments)]
fn serve_slab(
    state: &RouterState,
    tenant: &str,
    slab: &SlabState,
    b: &[f32],
    n: usize,
    deadline_ms: u32,
    kill: bool,
    stall: Option<Duration>,
) -> SlabOutcome {
    let _wait = fs_trace::span(Site::ClusterShardWait);
    if let Some(d) = stall {
        thread::sleep(d);
    }
    let mut failures = 0u64;
    let slab_rows = slab.rows.len();
    // An injected kill means "the primary is gone this round": the
    // attempt fails without touching the wire, exactly like a dead host
    // behind a connect timeout, minus the wait.
    if !kill {
        if let Some(addr) = state.shard_addr(slab.primary) {
            match state.shard_call(&addr, |c| {
                c.spmm(tenant, slab.primary_id, b.len() / n.max(1), n, b, deadline_ms)
            }) {
                Ok(resp) if resp.rows == slab_rows && resp.n == n => {
                    return SlabOutcome {
                        rows: slab.rows.clone(),
                        out: Some(resp.out),
                        failures,
                        replica_served: false,
                    };
                }
                _ => failures += 1,
            }
        } else {
            failures += 1;
        }
    } else {
        failures += 1;
    }
    if let Some((replica_idx, replica_id)) = slab.replica {
        if let Some(addr) = state.shard_addr(replica_idx) {
            match state.shard_call(&addr, |c| {
                c.spmm(tenant, replica_id, b.len() / n.max(1), n, b, deadline_ms)
            }) {
                Ok(resp) if resp.rows == slab_rows && resp.n == n => {
                    return SlabOutcome {
                        rows: slab.rows.clone(),
                        out: Some(resp.out),
                        failures,
                        replica_served: true,
                    };
                }
                _ => failures += 1,
            }
        } else {
            failures += 1;
        }
    }
    SlabOutcome { rows: slab.rows.clone(), out: None, failures, replica_served: false }
}

/// The router's metrics document: a `server` section (shape-compatible
/// with the shard one, so clients parse either), the shard topology, and
/// the cumulative scatter-gather counters.
fn metrics_json(state: &Arc<RouterState>, addr: SocketAddr, start_epoch: u64) -> String {
    let (shards, replicated) = {
        let map = state.map.lock();
        let shards: Vec<(String, u64)> =
            map.shards().iter().map(|s| (s.addr.clone(), s.start_epoch)).collect();
        (shards, map.replicated())
    };
    let matrices = state.matrices.lock().len();
    let mut shard_items = String::new();
    for (i, (shard_addr, epoch)) in shards.iter().enumerate() {
        if i > 0 {
            shard_items.push(',');
        }
        shard_items.push_str(&format!("{{\"addr\":\"{shard_addr}\",\"start_epoch\":{epoch}}}"));
    }
    let s = &state.stats;
    format!(
        "{{\"server\":{{\"addr\":\"{addr}\",\"start_epoch\":{start_epoch}}},\
         \"cluster\":{{\"shards\":[{shard_items}],\"replicate\":{replicated},\
         \"matrices\":{matrices},\"requests\":{},\"degraded\":{},\"shard_failures\":{},\
         \"replica_serves\":{},\"shard_restarts\":{}}}}}",
        s.cluster_requests.load(Ordering::Relaxed), // lint: relaxed-ok - metrics read
        s.degraded.load(Ordering::Relaxed),         // lint: relaxed-ok - metrics read
        s.shard_failures.load(Ordering::Relaxed),   // lint: relaxed-ok - metrics read
        s.replica_serves.load(Ordering::Relaxed),   // lint: relaxed-ok - metrics read
        s.shard_restarts.load(Ordering::Relaxed),   // lint: relaxed-ok - metrics read
    )
}

/// Pull `"start_epoch":N` out of a shard's metrics document (the
/// `server` section leads, so the first occurrence is the server's).
pub fn parse_start_epoch(metrics_json: &str) -> Option<u64> {
    let needle = "\"start_epoch\":";
    let i = metrics_json.find(needle)?;
    let rest = &metrics_json[i + needle.len()..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_start_epoch_reads_the_server_section() {
        let m = "{\"server\":{\"addr\":\"127.0.0.1:9\",\"start_epoch\":1234},\"cache\":{}}";
        assert_eq!(parse_start_epoch(m), Some(1234));
        assert_eq!(parse_start_epoch("{}"), None);
    }

    #[test]
    fn router_metrics_document_shape() {
        let cfg = RouterConfig {
            shards: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
            replicate: true,
            ..RouterConfig::default()
        };
        let state = Arc::new(RouterState::new(&cfg));
        let json = metrics_json(&state, SocketAddr::from(([127, 0, 0, 1], 7)), 42);
        for key in [
            "\"server\":{\"addr\":\"127.0.0.1:7\",\"start_epoch\":42}",
            "\"shards\":[{\"addr\":\"127.0.0.1:1\",\"start_epoch\":0}",
            "\"replicate\":true",
            "\"requests\":0",
            "\"degraded\":0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(parse_start_epoch(&json), Some(42));
    }
}
