//! The scatter-gather router: the TCP front end clients talk to when a
//! matrix is too large (or too hot) for one `fs-serve` process.
//!
//! The router speaks the same length-prefixed protocol as the shards it
//! fronts. `Load` row-partitions the matrix into contiguous slabs —
//! placement by [`crate::ShardMap`] — and registers each slab (rebased
//! to slab-local row indices) on its primary shard and, when replication
//! is on, its replica. `ClusterSpmm` scatters the dense operand to every
//! slab holder in parallel, bounded per shard by the request deadline,
//! and gathers the row slabs back into one output.
//!
//! ## Partial failure
//!
//! A slab whose primary fails (connection refused, deadline, injected
//! `shard-kill`) is retried on its replica; a slab lost past its replica
//! degrades the response instead of failing it: missing rows are
//! zero-filled and a present-rows bitmap tells the client exactly which
//! rows to trust. `shards_ok` / `shards_failed` make the retry traffic
//! visible per response.
//!
//! ## Determinism under chaos
//!
//! The `shard-kill` / `shard-stall` draws for all slabs are taken
//! *sequentially on the request thread before the fan-out spawns*, in
//! slab order — the parallel scatter workers never touch the injector —
//! so a seeded soak over one connection replays bit-identical response
//! bytes and fault counters from the plan string alone.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use fs_chaos::{Backoff, FaultSite};
use fs_matrix::{CooMatrix, CsrMatrix};
use fs_serve::client::{ClientError, ServeClient};
use fs_serve::protocol::{fnv1a64, read_frame, write_frame, ErrorCode, Request, Response};
use fs_serve::{Fingerprint, DEFAULT_MAX_LOAD_DIM};
use fs_trace::Site;
use parking_lot::Mutex;

use crate::heal::{HealConfig, HealState};
use crate::journal::{Journal, Record, SlabRecord};
use crate::shardmap::ShardMap;

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Static shard addresses (more can join via `ShardJoin`).
    pub shards: Vec<String>,
    /// Register every slab on a replica shard as well.
    pub replicate: bool,
    /// TCP dial bound for shard connections.
    pub connect_timeout: Duration,
    /// Per-shard deadline when a request carries none.
    pub default_deadline_ms: u32,
    /// Largest rows/cols a `Load` may declare (same guard as the shard
    /// front end: dimensions are bounded before anything allocates).
    pub max_load_dim: u32,
    /// Failure-detector settings (probe cadence and the consecutive-
    /// failure thresholds of the Up→Suspect→Down state machine). A zero
    /// `probe_interval` disables the background heal thread; ticks can
    /// still be driven explicitly via [`crate::heal::heal_tick`].
    pub heal: HealConfig,
    /// Durable manifest journal path. When set, every successful `Load`
    /// and every repair reassignment is appended, and `bind` recovers
    /// the registry from the journal's valid prefix.
    pub journal: Option<PathBuf>,
    /// Propagate a router `Shutdown` to every shard (the scripted-run
    /// default). Turn off to restart the router under live shards.
    pub propagate_shutdown: bool,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            replicate: false,
            connect_timeout: Duration::from_secs(2),
            default_deadline_ms: 0,
            max_load_dim: DEFAULT_MAX_LOAD_DIM,
            heal: HealConfig::default(),
            journal: None,
            propagate_shutdown: true,
        }
    }
}

/// One slab of a registered matrix: where its rows live.
#[derive(Clone, Debug)]
pub(crate) struct SlabState {
    /// Global row range.
    pub(crate) rows: Range<usize>,
    /// Content fingerprint of the slab's rebased CSR — the identity the
    /// anti-entropy pass matches against shard inventories.
    pub(crate) fp: (u64, u64),
    /// Primary shard index.
    pub(crate) primary: usize,
    /// The slab's matrix id on the primary shard.
    pub(crate) primary_id: u64,
    /// Replica shard index and the slab's matrix id there.
    pub(crate) replica: Option<(usize, u64)>,
}

/// A matrix registered through the router.
#[derive(Clone, Debug)]
pub(crate) struct ClusterMatrix {
    pub(crate) tenant: String,
    /// Content fingerprint of the full deduplicated matrix — the
    /// placement key and the `Load` idempotency key.
    pub(crate) fp: (u64, u64),
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// The deduplicated source entries, retained so repair can re-slice
    /// any slab when no replica survives (the journal spills the same
    /// bytes for a restarted router).
    pub(crate) entries: Arc<Vec<(u32, u32, f32)>>,
    pub(crate) slabs: Vec<SlabState>,
}

/// A pooled connection to one shard. The slot is `None` until first use
/// and after a transport error; redials go through a capped
/// exponential-backoff gate so a dead shard cannot spin callers (the
/// repair thread probes every tick) into tight reconnect loops.
struct ShardConn {
    client: Mutex<Option<ServeClient>>,
    gate: Mutex<DialGate>,
}

/// Dial-backoff bookkeeping for one shard address. Jitter is seeded from
/// the address, so the delay schedule is deterministic per shard.
struct DialGate {
    backoff: Backoff,
    /// Dialing is allowed again at this instant (`None` = now).
    not_before: Option<Instant>,
}

impl ShardConn {
    fn new(addr: &str) -> ShardConn {
        ShardConn {
            client: Mutex::new(None),
            gate: Mutex::new(DialGate {
                backoff: Backoff::for_client(fnv1a64(addr.as_bytes())),
                not_before: None,
            }),
        }
    }
}

/// Cumulative router counters (exported in the metrics document).
#[derive(Default)]
struct RouterStats {
    cluster_requests: AtomicU64,
    degraded: AtomicU64,
    shard_failures: AtomicU64,
    replica_serves: AtomicU64,
    shard_restarts: AtomicU64,
    /// Actual TCP dials attempted (successful or not). Stays far below
    /// the call count against a dead shard — the backoff-gate contract
    /// pinned by `dial_backoff_gates_reconnect_attempts`.
    dial_attempts: AtomicU64,
    /// Calls refused by the dial gate without touching the wire.
    dial_suppressed: AtomicU64,
}

/// Shared router state: topology, matrix registry, connection pool,
/// failure detector, and the durable manifest journal.
pub struct RouterState {
    pub(crate) map: Mutex<ShardMap>,
    pub(crate) matrices: Mutex<HashMap<u64, Arc<ClusterMatrix>>>,
    conns: Mutex<HashMap<String, Arc<ShardConn>>>,
    next_id: AtomicU64,
    stats: RouterStats,
    pub(crate) heal: HealState,
    pub(crate) journal: Mutex<Option<Journal>>,
    connect_timeout: Duration,
    default_deadline_ms: u32,
    max_load_dim: u32,
}

impl RouterState {
    fn new(cfg: &RouterConfig) -> io::Result<RouterState> {
        let state = RouterState {
            map: Mutex::new(ShardMap::from_addrs(cfg.shards.clone(), cfg.replicate)),
            matrices: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            stats: RouterStats::default(),
            heal: HealState::new(cfg.heal.clone()),
            journal: Mutex::new(None),
            connect_timeout: cfg.connect_timeout,
            default_deadline_ms: cfg.default_deadline_ms,
            max_load_dim: cfg.max_load_dim,
        };
        if let Some(path) = &cfg.journal {
            let (journal, recovered) = Journal::open(path)?;
            state.rebuild_from_journal(recovered.records);
            *state.journal.lock() = Some(journal);
        }
        Ok(state)
    }

    /// Rebuild the matrix registry from a recovered journal prefix:
    /// `Load` records re-create matrices (joining their shard addresses
    /// into the map), `Assign` records replay repair-time reassignments
    /// in order. Pure bookkeeping — no shard is contacted; residency is
    /// re-validated separately via [`crate::heal::revalidate`].
    fn rebuild_from_journal(&self, records: Vec<Record>) {
        let mut max_id = 0u64;
        for rec in records {
            match rec {
                Record::Load { matrix_id, tenant, fp, rows, cols, entries, slabs } => {
                    max_id = max_id.max(matrix_id);
                    let slabs = slabs.into_iter().map(|s| self.slab_from_record(s)).collect();
                    let matrix = Arc::new(ClusterMatrix {
                        tenant,
                        fp,
                        rows: rows as usize,
                        cols: cols as usize,
                        entries: Arc::new(entries),
                        slabs,
                    });
                    self.matrices.lock().insert(matrix_id, matrix);
                }
                Record::Assign { matrix_id, slab_index, slab } => {
                    let mut matrices = self.matrices.lock();
                    if let Some(m) = matrices.get(&matrix_id) {
                        let mut next = (**m).clone();
                        if let Some(s) = next.slabs.get_mut(slab_index as usize) {
                            *s = self.slab_from_record(slab);
                            matrices.insert(matrix_id, Arc::new(next));
                        }
                    }
                }
            }
        }
        let floor = max_id + 1;
        self.next_id.fetch_max(floor, Ordering::Relaxed); // lint: relaxed-ok - id allocation needs uniqueness, not ordering
    }

    /// Resolve a journal slab record's addresses back to map indices
    /// (joining addresses the map has not seen yet).
    fn slab_from_record(&self, s: SlabRecord) -> SlabState {
        let mut map = self.map.lock();
        let primary = map.join(s.primary_addr, 0).index;
        let replica = s.replica.map(|(addr, id)| (map.join(addr, 0).index, id));
        SlabState {
            rows: s.start as usize..s.end as usize,
            fp: s.fp,
            primary,
            primary_id: s.primary_id,
            replica,
        }
    }

    /// The pooled connection slot for `addr` (created on first use).
    /// Takes only the pool-map lock; the per-shard client lock is the
    /// caller's, so two slabs on different shards never serialize.
    fn conn(&self, addr: &str) -> Arc<ShardConn> {
        let mut conns = self.conns.lock();
        Arc::clone(conns.entry(addr.to_string()).or_insert_with(|| Arc::new(ShardConn::new(addr))))
    }

    /// Run `f` against the pooled client for `addr`, dialing if the slot
    /// is empty and dropping the connection after transport-level
    /// failures so the next call starts fresh. Redials are gated by the
    /// address's backoff schedule: inside the hold-off window the call
    /// fails immediately (`WouldBlock`) without touching the wire.
    pub(crate) fn shard_call<T>(
        &self,
        addr: &str,
        f: impl FnOnce(&mut ServeClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let conn = self.conn(addr);
        let mut slot = conn.client.lock();
        if slot.is_none() {
            let mut gate = conn.gate.lock();
            if let Some(t) = gate.not_before {
                if Instant::now() < t {
                    // lint: relaxed-ok - monotonic counter, read only for metrics
                    self.stats.dial_suppressed.fetch_add(1, Ordering::Relaxed);
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        format!("dial backoff holding off {addr}"),
                    )));
                }
            }
            // lint: relaxed-ok - monotonic counter, read only for metrics
            self.stats.dial_attempts.fetch_add(1, Ordering::Relaxed);
            match ServeClient::connect_with_timeout(addr, self.connect_timeout) {
                Ok(client) => {
                    gate.backoff.reset();
                    gate.not_before = None;
                    *slot = Some(client);
                }
                Err(e) => {
                    let delay = gate.backoff.next_delay_floored();
                    gate.not_before = Some(Instant::now() + delay);
                    return Err(e);
                }
            }
        }
        let result = match slot.as_mut() {
            Some(client) => f(client),
            None => Err(ClientError::Unexpected("no shard connection".to_string())),
        };
        if matches!(
            result,
            Err(ClientError::Io(_) | ClientError::Proto(_) | ClientError::Unexpected(_))
        ) {
            *slot = None;
        }
        result
    }

    /// Address of shard `index` (snapshot under the map lock).
    pub(crate) fn shard_addr(&self, index: usize) -> Option<String> {
        self.map.lock().shard(index).map(|s| s.addr.clone())
    }

    /// Serialize a slab's placement for the journal (indices → addrs).
    pub(crate) fn slab_record(&self, slab: &SlabState) -> Option<SlabRecord> {
        let map = self.map.lock();
        let primary_addr = map.shard(slab.primary)?.addr.clone();
        let replica = match slab.replica {
            Some((i, id)) => Some((map.shard(i)?.addr.clone(), id)),
            None => None,
        };
        Some(SlabRecord {
            start: slab.rows.start as u64,
            end: slab.rows.end as u64,
            fp: slab.fp,
            primary_addr,
            primary_id: slab.primary_id,
            replica,
        })
    }

    /// Append a record to the manifest journal, if one is configured.
    /// Append failures are swallowed: the in-memory manifest stays
    /// authoritative for this process; only recovery fidelity degrades.
    pub(crate) fn append_journal(&self, rec: &Record) {
        if let Some(journal) = self.journal.lock().as_mut() {
            let _ = journal.append(rec);
        }
    }

    /// Swap slab `slab_index` of matrix `matrix_id` to `new_slab`:
    /// journal the reassignment, then publish a copy-on-write update of
    /// the matrix so in-flight scatters keep their consistent snapshot.
    pub(crate) fn commit_slab(&self, matrix_id: u64, slab_index: usize, new_slab: SlabState) {
        if let Some(slab) = self.slab_record(&new_slab) {
            self.append_journal(&Record::Assign {
                matrix_id,
                slab_index: slab_index.min(u32::MAX as usize) as u32, // lint: checked-cast - clamped
                slab,
            });
        }
        let mut matrices = self.matrices.lock();
        if let Some(m) = matrices.get(&matrix_id) {
            let mut next = (**m).clone();
            if let Some(slot) = next.slabs.get_mut(slab_index) {
                *slot = new_slab;
                matrices.insert(matrix_id, Arc::new(next));
            }
        }
    }

    /// Number of matrices in the manifest.
    pub fn matrix_count(&self) -> usize {
        self.matrices.lock().len()
    }

    /// The failure detector's state and counters.
    pub fn heal_state(&self) -> &HealState {
        &self.heal
    }

    /// Shard addresses in map-index order.
    pub fn shard_addrs(&self) -> Vec<String> {
        self.map.lock().shards().iter().map(|s| s.addr.clone()).collect()
    }

    /// The manifest's slab placements, sorted by matrix id: for each
    /// matrix, each slab's `(fingerprint, primary index, replica index)`.
    /// Inspection surface for tests and the recovery acceptance check —
    /// two routers whose placements compare equal agree
    /// fingerprint-for-fingerprint on who holds what.
    pub fn placements(&self) -> Vec<(u64, Vec<((u64, u64), usize, Option<usize>)>)> {
        let matrices = self.matrices.lock();
        let mut out: Vec<(u64, Vec<((u64, u64), usize, Option<usize>)>)> = matrices
            .iter()
            .map(|(&id, m)| {
                (id, m.slabs.iter().map(|s| (s.fp, s.primary, s.replica.map(|(i, _)| i))).collect())
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Dial-gate counters: `(attempts, suppressed)` — actual TCP dials
    /// vs. calls the backoff gate refused without touching the wire.
    pub fn dial_stats(&self) -> (u64, u64) {
        (
            self.stats.dial_attempts.load(Ordering::Relaxed), // lint: relaxed-ok - metrics read
            self.stats.dial_suppressed.load(Ordering::Relaxed), // lint: relaxed-ok - metrics read
        )
    }

    /// Register a shard (or refresh its epoch) — what the `ShardJoin`
    /// request does, exposed for the daemon's startup probe.
    pub fn join_shard(&self, addr: String, start_epoch: u64) -> crate::shardmap::JoinOutcome {
        let outcome = self.map.lock().join(addr, start_epoch);
        if outcome.restarted {
            // lint: relaxed-ok - monotonic counter, read only for metrics
            self.stats.shard_restarts.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }
}

/// A bound, running router. Accepts until a `Shutdown` message arrives.
pub struct Router {
    state: Arc<RouterState>,
    listener: TcpListener,
    addr: SocketAddr,
    start_epoch: u64,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<(thread::JoinHandle<()>, TcpStream)>>>,
    propagate_shutdown: bool,
}

impl Router {
    /// Bind the listener. The accept loop runs on the caller's thread
    /// via [`Router::run`]. When a journal is configured, the manifest
    /// is recovered from its valid prefix before the listener accepts.
    pub fn bind(cfg: &RouterConfig) -> io::Result<Router> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let start_epoch = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64) // lint: checked-cast - clamped
            .unwrap_or(0);
        Ok(Router {
            state: Arc::new(RouterState::new(cfg)?),
            listener,
            addr,
            start_epoch,
            stop: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(Vec::new())),
            propagate_shutdown: cfg.propagate_shutdown,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared router state (topology and counters).
    pub fn state(&self) -> &Arc<RouterState> {
        &self.state
    }

    /// Accept and serve connections until a `Shutdown` request arrives,
    /// then propagate the shutdown to every shard (unless configured
    /// not to) and join every connection thread. A non-zero
    /// `probe_interval` also runs the heal loop — probe, repair,
    /// rejoin — on a background thread for the router's lifetime.
    pub fn run(self) -> io::Result<()> {
        let heal_handle = {
            let interval = self.state.heal.config().probe_interval;
            if interval > Duration::ZERO {
                let stop = Arc::clone(&self.stop);
                let state = Arc::clone(&self.state);
                Some(thread::Builder::new().name("fs-cluster-heal".to_string()).spawn(
                    move || {
                        while !stop.load(Ordering::Acquire) {
                            thread::sleep(interval);
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            let _ = crate::heal::heal_tick(&state);
                        }
                    },
                )?)
            } else {
                None
            }
        };
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => return Err(e),
            };
            let peer = match stream.try_clone() {
                Ok(p) => p,
                Err(_) => continue,
            };
            let state = Arc::clone(&self.state);
            let stop = Arc::clone(&self.stop);
            let addr = self.addr;
            let start_epoch = self.start_epoch;
            let handle = thread::Builder::new()
                .name("fs-cluster-conn".to_string())
                .spawn(move || handle_connection(stream, &state, &stop, addr, start_epoch))?;
            self.conns.lock().push((handle, peer));
            if self.stop.load(Ordering::Acquire) {
                break;
            }
        }
        if let Some(h) = heal_handle {
            let _ = h.join();
        }
        // Tell every shard to drain too: one Shutdown against the router
        // tears the whole cluster down, which is what scripted runs want.
        // (A restart-bound router leaves its shards running instead.)
        if self.propagate_shutdown {
            let addrs: Vec<String> =
                self.state.map.lock().shards().iter().map(|s| s.addr.clone()).collect();
            for addr in addrs {
                let _ = self.state.shard_call(&addr, |c| c.shutdown());
            }
        }
        let conns: Vec<(thread::JoinHandle<()>, TcpStream)> =
            std::mem::take(&mut *self.conns.lock());
        for (_, peer) in &conns {
            let _ = peer.shutdown(Shutdown::Read);
        }
        for (h, _) in conns {
            let _ = h.join();
        }
        Ok(())
    }
}

fn handle_connection(
    stream: TcpStream,
    state: &Arc<RouterState>,
    stop: &Arc<AtomicBool>,
    router_addr: SocketAddr,
    start_epoch: u64,
) {
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                let resp = dispatch(req, state, router_addr, start_epoch);
                if is_shutdown {
                    let _ = resp.encode().map(|bytes| write_frame(&mut writer, &bytes));
                    stop.store(true, Ordering::Release);
                    let _ = TcpStream::connect_timeout(&router_addr, Duration::from_secs(1));
                    return;
                }
                resp
            }
            Err(e) => Response::Error { code: ErrorCode::BadRequest, message: e.to_string() },
        };
        let bytes = match response.encode() {
            Ok(b) => b,
            Err(e) => {
                let fallback =
                    Response::Error { code: ErrorCode::Internal, message: e.to_string() };
                match fallback.encode() {
                    Ok(b) => b,
                    Err(_) => return,
                }
            }
        };
        if write_frame(&mut writer, &bytes).is_err() {
            return;
        }
    }
}

fn dispatch(
    req: Request,
    state: &Arc<RouterState>,
    addr: SocketAddr,
    start_epoch: u64,
) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::ShutdownAck,
        Request::Metrics => Response::Metrics { json: metrics_json(state, addr, start_epoch) },
        Request::Trace => {
            let snap = fs_trace::snapshot();
            Response::Trace {
                prometheus: fs_trace::export::prometheus_text(&snap),
                chrome: fs_trace::export::chrome_trace(&snap),
            }
        }
        Request::ShardJoin { addr: shard_addr, start_epoch: shard_epoch } => {
            let outcome = state.join_shard(shard_addr, shard_epoch);
            let count = state.map.lock().len();
            Response::ShardJoined {
                shard_index: outcome.index.min(u32::MAX as usize) as u32,
                shard_count: count.min(u32::MAX as usize) as u32,
                // Routers hold no slabs themselves; the inventory reply
                // is the shards' side of the anti-entropy protocol.
                resident: Vec::new(),
            }
        }
        Request::Export { .. } | Request::Evict { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "export/evict are shard-level ops; the router manages slabs itself"
                .to_string(),
        },
        Request::Load { tenant, rows, cols, entries } => {
            route_load(state, tenant, rows, cols, entries)
        }
        Request::ClusterSpmm { tenant: _, matrix_id, deadline_ms, b_rows, n, b } => {
            cluster_spmm(state, matrix_id, deadline_ms, b_rows, n, b)
        }
        Request::Spmm { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "this is a router: use the cluster SpMM op (REQ_CLUSTER_SPMM)".to_string(),
        },
        // GNN models aggregate over a whole adjacency; a router only
        // holds row slabs of it, so inference belongs on a plain
        // fs-serve instance that owns the full graph.
        Request::GnnRegister { .. } | Request::GnnInfer { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "gnn inference is not sharded: register the graph on a plain fs-serve \
                      instance"
                .to_string(),
        },
    }
}

/// Partition `entries` into row slabs and register each slab on its
/// primary (and replica) shard. The router's matrix id maps to the
/// per-shard slab ids.
fn route_load(
    state: &Arc<RouterState>,
    tenant: String,
    rows: u32,
    cols: u32,
    entries: Vec<(u32, u32, f32)>,
) -> Response {
    let _route = fs_trace::span(Site::ClusterRoute);
    if rows > state.max_load_dim || cols > state.max_load_dim {
        return Response::Error {
            code: ErrorCode::BadRequest,
            message: format!(
                "matrix dimensions {rows}x{cols} exceed the router cap {}",
                state.max_load_dim
            ),
        };
    }
    let (rows, cols) = (rows as usize, cols as usize);
    let mut coo = CooMatrix::new(rows, cols);
    for (r, c, v) in &entries {
        if *r as usize >= rows || *c as usize >= cols {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("entry ({r},{c}) outside {rows}x{cols}"),
            };
        }
        coo.push(*r as usize, *c as usize, *v);
    }
    let csr = CsrMatrix::from_coo(&coo.dedup());
    let fp = Fingerprint::of(&csr);
    let fp_pair = (fp.hi(), fp.lo());
    let nnz = csr.nnz() as u64;
    // Idempotent by (tenant, fingerprint): a client replaying its Load
    // against a recovered router (whose manifest already has the matrix
    // from the journal) gets the original id back — nothing re-pushes.
    {
        let matrices = state.matrices.lock();
        if let Some((&id, _)) = matrices.iter().find(|(_, m)| m.fp == fp_pair && m.tenant == tenant)
        {
            return Response::Loaded {
                matrix_id: id,
                fingerprint_hi: fp.hi(),
                fingerprint_lo: fp.lo(),
                nnz,
            };
        }
    }
    let assignments = state.map.lock().assign(fp_pair, rows);
    if assignments.is_empty() {
        return Response::Error {
            code: ErrorCode::ResourceExhausted,
            message: "no shards joined".to_string(),
        };
    }

    let mut slabs = Vec::with_capacity(assignments.len());
    for a in &assignments {
        // Rebase the slab's entries to slab-local row indices; columns
        // are untouched (a row slab keeps every column).
        let mut slab_coo = CooMatrix::new(a.rows.len(), cols);
        for r in a.rows.clone() {
            for (c, v) in csr.row_cols(r).iter().zip(csr.row_values(r)) {
                slab_coo.push(r - a.rows.start, *c as usize, *v);
            }
        }
        let slab_csr = CsrMatrix::from_coo(&slab_coo);
        let slab_fp = Fingerprint::of(&slab_csr);
        let primary_id = {
            let Some(addr) = state.shard_addr(a.primary) else {
                return Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("shard {} left the map", a.primary),
                };
            };
            match state.shard_call(&addr, |c| c.load_matrix(&tenant, &slab_csr)) {
                Ok(loaded) => loaded.matrix_id,
                Err(ClientError::Server { code, message }) => {
                    return Response::Error { code, message }
                }
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("slab load on {addr} failed: {e}"),
                    }
                }
            }
        };
        // Replica registration is best-effort: a slab without a replica
        // still serves, it just cannot survive a primary failure.
        let replica = a.replica.and_then(|idx| {
            let addr = state.shard_addr(idx)?;
            state
                .shard_call(&addr, |c| c.load_matrix(&tenant, &slab_csr))
                .ok()
                .map(|loaded| (idx, loaded.matrix_id))
        });
        slabs.push(SlabState {
            rows: a.rows.clone(),
            fp: (slab_fp.hi(), slab_fp.lo()),
            primary: a.primary,
            primary_id,
            replica,
        });
    }

    // Retain the deduplicated entries in CSR iteration order: the repair
    // path re-slices slabs from them, and the journal spills the same
    // bytes so a restarted router can too.
    let mut dedup_entries = Vec::with_capacity(csr.nnz());
    for r in 0..rows {
        for (c, v) in csr.row_cols(r).iter().zip(csr.row_values(r)) {
            dedup_entries.push((r.min(u32::MAX as usize) as u32, *c, *v)); // lint: checked-cast - rows capped by max_load_dim
        }
    }
    // lint: relaxed-ok - id allocation needs uniqueness, not ordering
    let matrix_id = state.next_id.fetch_add(1, Ordering::Relaxed);
    let matrix = Arc::new(ClusterMatrix {
        tenant,
        fp: fp_pair,
        rows,
        cols,
        entries: Arc::new(dedup_entries),
        slabs,
    });
    let slab_records: Option<Vec<SlabRecord>> =
        matrix.slabs.iter().map(|s| state.slab_record(s)).collect();
    if let Some(slab_records) = slab_records {
        state.append_journal(&Record::Load {
            matrix_id,
            tenant: matrix.tenant.clone(),
            fp: fp_pair,
            rows: rows as u64,
            cols: cols as u64,
            entries: (*matrix.entries).clone(),
            slabs: slab_records,
        });
    }
    state.matrices.lock().insert(matrix_id, matrix);
    Response::Loaded { matrix_id, fingerprint_hi: fp.hi(), fingerprint_lo: fp.lo(), nnz }
}

/// One slab's scatter outcome.
struct SlabOutcome {
    rows: Range<usize>,
    out: Option<Vec<f32>>,
    failures: u64,
    replica_served: bool,
}

/// Scatter the operand to every slab holder, gather the row slabs back.
fn cluster_spmm(
    state: &Arc<RouterState>,
    matrix_id: u64,
    deadline_ms: u32,
    b_rows: u32,
    n: u32,
    b: Vec<f32>,
) -> Response {
    // lint: relaxed-ok - monotonic counter, read only for metrics
    state.stats.cluster_requests.fetch_add(1, Ordering::Relaxed);
    let matrix = {
        let _route = fs_trace::span(Site::ClusterRoute);
        match state.matrices.lock().get(&matrix_id) {
            Some(m) => Arc::clone(m),
            None => {
                return Response::Error {
                    code: ErrorCode::UnknownMatrix,
                    message: format!("unknown matrix id {matrix_id}"),
                }
            }
        }
    };
    if b_rows as usize != matrix.cols || b.len() != b_rows as usize * n as usize {
        return Response::Error {
            code: ErrorCode::BadRequest,
            message: format!(
                "operand is {b_rows}x{n} ({} values); matrix needs {} rows",
                b.len(),
                matrix.cols
            ),
        };
    }
    let deadline_ms = if deadline_ms == 0 { state.default_deadline_ms } else { deadline_ms };

    // All chaos decisions for this request are drawn here, sequentially,
    // in slab order — before any parallelism — so a seeded soak replays
    // the identical fault pattern regardless of scatter thread timing.
    let faults: Vec<(bool, bool)> = matrix
        .slabs
        .iter()
        .map(|_| {
            (
                fs_chaos::draw(FaultSite::ShardKill).is_some(),
                fs_chaos::draw(FaultSite::ShardStall).is_some(),
            )
        })
        .collect();
    let stall = fs_chaos::stall_duration();

    let n_usize = n as usize;
    let outcomes: Vec<SlabOutcome> = {
        let _scatter = fs_trace::span(Site::ClusterScatter);
        thread::scope(|scope| {
            let handles: Vec<_> = matrix
                .slabs
                .iter()
                .zip(&faults)
                .map(|(slab, &(kill, stall_hit))| {
                    let state = Arc::clone(state);
                    let tenant = matrix.tenant.clone();
                    let b = &b;
                    scope.spawn(move || {
                        serve_slab(&state, &tenant, slab, b, n_usize, deadline_ms, kill, {
                            if stall_hit {
                                Some(stall)
                            } else {
                                None
                            }
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .zip(&matrix.slabs)
                .map(|(h, slab)| match h.join() {
                    Ok(outcome) => outcome,
                    Err(_) => SlabOutcome {
                        rows: slab.rows.clone(),
                        out: None,
                        failures: 1,
                        replica_served: false,
                    },
                })
                .collect()
        })
    };

    let _gather = fs_trace::span(Site::ClusterGather);
    let rows = matrix.rows;
    let mut out = vec![0.0f32; rows * n_usize];
    let mut present = vec![0u8; rows.div_ceil(8)];
    let mut degraded = false;
    let mut shards_ok: u32 = 0;
    let mut shards_failed: u64 = 0;
    let mut replica_serves: u64 = 0;
    for o in &outcomes {
        shards_failed += o.failures;
        if o.replica_served {
            replica_serves += 1;
        }
        match &o.out {
            Some(slab_out) => {
                out[o.rows.start * n_usize..o.rows.end * n_usize].copy_from_slice(slab_out);
                for r in o.rows.clone() {
                    present[r / 8] |= 1 << (r % 8);
                }
                shards_ok += 1;
            }
            None => degraded = true,
        }
    }
    if degraded {
        // lint: relaxed-ok - monotonic counter, read only for metrics
        state.stats.degraded.fetch_add(1, Ordering::Relaxed);
    }
    // lint: relaxed-ok - monotonic counter, read only for metrics
    state.stats.shard_failures.fetch_add(shards_failed, Ordering::Relaxed);
    // lint: relaxed-ok - monotonic counter, read only for metrics
    state.stats.replica_serves.fetch_add(replica_serves, Ordering::Relaxed);
    Response::ClusterSpmm {
        rows: rows.min(u32::MAX as usize) as u32,
        n,
        out,
        degraded,
        present: if degraded { present } else { Vec::new() },
        shards_ok,
        shards_failed: shards_failed.min(u64::from(u32::MAX)) as u32,
    }
}

/// One slab of a scatter: primary, then replica, inside a
/// `cluster.shard_wait` span (the per-shard contribution to the fan-out
/// tail).
#[allow(clippy::too_many_arguments)]
fn serve_slab(
    state: &RouterState,
    tenant: &str,
    slab: &SlabState,
    b: &[f32],
    n: usize,
    deadline_ms: u32,
    kill: bool,
    stall: Option<Duration>,
) -> SlabOutcome {
    let _wait = fs_trace::span(Site::ClusterShardWait);
    if let Some(d) = stall {
        thread::sleep(d);
    }
    let mut failures = 0u64;
    let slab_rows = slab.rows.len();
    // An injected kill means "the primary is gone this round": the
    // attempt fails without touching the wire, exactly like a dead host
    // behind a connect timeout, minus the wait. A shard the failure
    // detector holds Down is skipped the same way — fail fast to the
    // replica instead of burning the deadline on a dead host.
    if !kill && !state.heal.is_down(slab.primary) {
        if let Some(addr) = state.shard_addr(slab.primary) {
            match state.shard_call(&addr, |c| {
                c.spmm(tenant, slab.primary_id, b.len() / n.max(1), n, b, deadline_ms)
            }) {
                Ok(resp) if resp.rows == slab_rows && resp.n == n => {
                    return SlabOutcome {
                        rows: slab.rows.clone(),
                        out: Some(resp.out),
                        failures,
                        replica_served: false,
                    };
                }
                _ => failures += 1,
            }
        } else {
            failures += 1;
        }
    } else {
        failures += 1;
    }
    if let Some((replica_idx, replica_id)) = slab.replica {
        if state.heal.is_down(replica_idx) {
            return SlabOutcome {
                rows: slab.rows.clone(),
                out: None,
                failures: failures + 1,
                replica_served: false,
            };
        }
        if let Some(addr) = state.shard_addr(replica_idx) {
            match state.shard_call(&addr, |c| {
                c.spmm(tenant, replica_id, b.len() / n.max(1), n, b, deadline_ms)
            }) {
                Ok(resp) if resp.rows == slab_rows && resp.n == n => {
                    return SlabOutcome {
                        rows: slab.rows.clone(),
                        out: Some(resp.out),
                        failures,
                        replica_served: true,
                    };
                }
                _ => failures += 1,
            }
        } else {
            failures += 1;
        }
    }
    SlabOutcome { rows: slab.rows.clone(), out: None, failures, replica_served: false }
}

/// The router's metrics document: a `server` section (shape-compatible
/// with the shard one, so clients parse either), the shard topology, and
/// the cumulative scatter-gather counters.
fn metrics_json(state: &Arc<RouterState>, addr: SocketAddr, start_epoch: u64) -> String {
    let (shards, replicated) = {
        let map = state.map.lock();
        let shards: Vec<(String, u64)> =
            map.shards().iter().map(|s| (s.addr.clone(), s.start_epoch)).collect();
        (shards, map.replicated())
    };
    let matrices = state.matrices.lock().len();
    let mut shard_items = String::new();
    for (i, (shard_addr, epoch)) in shards.iter().enumerate() {
        if i > 0 {
            shard_items.push(',');
        }
        shard_items.push_str(&format!("{{\"addr\":\"{shard_addr}\",\"start_epoch\":{epoch}}}"));
    }
    let health = state.heal.health();
    let mut heal_states = String::new();
    for (i, (shard_addr, _)) in shards.iter().enumerate() {
        if i > 0 {
            heal_states.push(',');
        }
        let name = health.get(i).map(|h| h.name()).unwrap_or("up");
        heal_states
            .push_str(&format!("{{\"shard\":{i},\"addr\":\"{shard_addr}\",\"state\":\"{name}\"}}"));
    }
    let s = &state.stats;
    format!(
        "{{\"server\":{{\"addr\":\"{addr}\",\"start_epoch\":{start_epoch}}},\
         \"cluster\":{{\"shards\":[{shard_items}],\"replicate\":{replicated},\
         \"matrices\":{matrices},\"requests\":{},\"degraded\":{},\"shard_failures\":{},\
         \"replica_serves\":{},\"shard_restarts\":{}}},\
         \"heal\":{{\"states\":[{heal_states}],\"ticks\":{},\"repairs_completed\":{},\
         \"last_repair_epoch\":{},\"rejoins\":{},\"dial_attempts\":{},\"dial_suppressed\":{}}}}}",
        s.cluster_requests.load(Ordering::Relaxed), // lint: relaxed-ok - metrics read
        s.degraded.load(Ordering::Relaxed),         // lint: relaxed-ok - metrics read
        s.shard_failures.load(Ordering::Relaxed),   // lint: relaxed-ok - metrics read
        s.replica_serves.load(Ordering::Relaxed),   // lint: relaxed-ok - metrics read
        s.shard_restarts.load(Ordering::Relaxed),   // lint: relaxed-ok - metrics read
        state.heal.ticks(),
        state.heal.repairs_completed(),
        state.heal.last_repair_tick(),
        state.heal.rejoins(),
        s.dial_attempts.load(Ordering::Relaxed), // lint: relaxed-ok - metrics read
        s.dial_suppressed.load(Ordering::Relaxed), // lint: relaxed-ok - metrics read
    )
}

/// Pull `"start_epoch":N` out of a shard's metrics document (the
/// `server` section leads, so the first occurrence is the server's).
pub fn parse_start_epoch(metrics_json: &str) -> Option<u64> {
    let needle = "\"start_epoch\":";
    let i = metrics_json.find(needle)?;
    let rest = &metrics_json[i + needle.len()..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_start_epoch_reads_the_server_section() {
        let m = "{\"server\":{\"addr\":\"127.0.0.1:9\",\"start_epoch\":1234},\"cache\":{}}";
        assert_eq!(parse_start_epoch(m), Some(1234));
        assert_eq!(parse_start_epoch("{}"), None);
    }

    #[test]
    fn dial_backoff_gates_reconnect_attempts() {
        // A dead address: every dial is refused. Without the gate, all
        // 50 calls would dial; with it, the exponential hold-off windows
        // absorb almost all of them without touching the wire.
        let dead = "127.0.0.1:1";
        let cfg = RouterConfig {
            shards: vec![dead.to_string()],
            connect_timeout: Duration::from_millis(50),
            ..RouterConfig::default()
        };
        let state = Arc::new(RouterState::new(&cfg).expect("no journal: state is infallible"));
        for _ in 0..50 {
            let _ = state.shard_call(dead, |c| c.ping());
        }
        let (attempts, suppressed) = state.dial_stats();
        assert!(attempts >= 1, "the first call must really dial");
        assert!(attempts <= 10, "backoff gate must suppress most dials, saw {attempts}");
        assert_eq!(attempts + suppressed, 50, "every call either dials or is suppressed");
    }

    #[test]
    fn router_metrics_document_shape() {
        let cfg = RouterConfig {
            shards: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
            replicate: true,
            ..RouterConfig::default()
        };
        let state = Arc::new(RouterState::new(&cfg).expect("no journal: state is infallible"));
        let json = metrics_json(&state, SocketAddr::from(([127, 0, 0, 1], 7)), 42);
        for key in [
            "\"server\":{\"addr\":\"127.0.0.1:7\",\"start_epoch\":42}",
            "\"shards\":[{\"addr\":\"127.0.0.1:1\",\"start_epoch\":0}",
            "\"replicate\":true",
            "\"requests\":0",
            "\"degraded\":0",
            "\"heal\":{\"states\":[",
            "\"repairs_completed\":0",
            "\"last_repair_epoch\":0",
            "\"dial_attempts\":0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(parse_start_epoch(&json), Some(42));
    }
}
