//! The `fs-cluster` router daemon: scatter-gather SpMM over fs-serve shards.
//!
//! ```text
//! fs-cluster --shards HOST:PORT,HOST:PORT,... [--addr 127.0.0.1:7948]
//!            [--replicate] [--deadline-ms MS] [--connect-timeout-ms MS]
//!            [--max-dim N] [--journal FILE] [--probe-interval-ms MS]
//!            [--suspect-after N] [--down-after N] [--keep-shards]
//!            [--chaos PLAN] [--trace] [--trace-out FILE]
//! ```
//!
//! Shards are plain `fs-serve` processes started separately; the router
//! pings each one at startup and records its `start_epoch` from the
//! metrics document so later restarts are detected. `--replicate`
//! registers every row slab on a second shard so a single shard loss
//! degrades nothing.
//!
//! Self-healing: `--probe-interval-ms` runs the heartbeat failure
//! detector (Up→Suspect→Down per shard, thresholds from
//! `--suspect-after` / `--down-after`), which re-replicates the slabs of
//! a Down shard onto survivors and reconciles a returning shard's
//! inventory against the manifest. `--journal FILE` makes the manifest
//! durable: a restarted router pointed at the same journal rebuilds its
//! shard map and matrix registry — and re-validates shard residency —
//! without re-receiving a single `Load`. `--keep-shards` stops the
//! router's own shutdown from propagating to the shards (for restarts).
//!
//! `--chaos PLAN` installs a deterministic fault plan (e.g.
//! `seed=7;shard-kill=0.05`) on the *router* — injected shard kills and
//! stalls exercise the retry/degrade paths without touching the real
//! shard processes, and the final fault report prints on clean exit so
//! a soak replays from the seed string alone.

use std::time::Duration;

use fs_cluster::{parse_start_epoch, Router, RouterConfig};
use fs_serve::{FlagParser, ServeClient};

fn usage() -> ! {
    eprintln!(
        "usage: fs-cluster --shards HOST:PORT,... [--addr HOST:PORT] [--replicate]\n\
         \x20                 [--deadline-ms MS] [--connect-timeout-ms MS] [--max-dim N]\n\
         \x20                 [--journal FILE] [--probe-interval-ms MS] [--suspect-after N]\n\
         \x20                 [--down-after N] [--keep-shards]\n\
         \x20                 [--chaos PLAN] [--trace] [--trace-out FILE]"
    );
    std::process::exit(2);
}

struct TraceFlags {
    armed: bool,
    out: Option<String>,
}

fn apply_flag(
    flag: &str,
    p: &mut FlagParser,
    cfg: &mut RouterConfig,
    chaos: &mut Option<fs_chaos::FaultPlan>,
    trace: &mut TraceFlags,
) -> Result<(), String> {
    match flag {
        "--addr" => cfg.addr = p.value(flag)?,
        "--shards" => {
            cfg.shards = p.value(flag)?.split(',').map(str::trim).map(str::to_string).collect();
            cfg.shards.retain(|s| !s.is_empty());
        }
        "--replicate" => cfg.replicate = true,
        "--deadline-ms" => cfg.default_deadline_ms = p.typed(flag)?,
        "--connect-timeout-ms" => {
            cfg.connect_timeout = Duration::from_millis(p.typed::<u64>(flag)?);
        }
        "--max-dim" => cfg.max_load_dim = p.typed(flag)?,
        "--journal" => cfg.journal = Some(std::path::PathBuf::from(p.value(flag)?)),
        "--probe-interval-ms" => {
            cfg.heal.probe_interval = Duration::from_millis(p.typed::<u64>(flag)?);
        }
        "--suspect-after" => cfg.heal.suspect_after = p.typed(flag)?,
        "--down-after" => cfg.heal.down_after = p.typed(flag)?,
        "--keep-shards" => cfg.propagate_shutdown = false,
        "--chaos" => *chaos = Some(p.typed(flag)?),
        "--trace" => trace.armed = true,
        "--trace-out" => {
            trace.armed = true;
            trace.out = Some(p.value(flag)?);
        }
        other => return Err(format!("unknown flag {other}")),
    }
    Ok(())
}

/// Probe one shard: ping it and read its `start_epoch` so the router
/// can tell a restart from a reconnect later. A refused dial (shard
/// still coming up) is retried until the connect-timeout budget is
/// spent, so router and shards can be launched in the same breath.
fn probe_shard(addr: &str, connect_timeout: Duration) -> Result<u64, String> {
    let deadline = std::time::Instant::now() + connect_timeout;
    let mut client = loop {
        match ServeClient::connect_with_timeout(addr, connect_timeout) {
            Ok(c) => break c,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(format!("shard {addr} unreachable: {e}")),
        }
    };
    let metrics = client.metrics().map_err(|e| format!("shard {addr} metrics failed: {e}"))?;
    parse_start_epoch(&metrics).ok_or_else(|| format!("shard {addr} metrics carry no start_epoch"))
}

fn main() {
    let mut p = FlagParser::from_env();
    let mut cfg = RouterConfig { addr: "127.0.0.1:7948".to_string(), ..RouterConfig::default() };
    let mut chaos: Option<fs_chaos::FaultPlan> = None;
    let mut trace = TraceFlags { armed: false, out: None };

    while let Some(flag) = p.next_flag() {
        if matches!(flag.as_str(), "--help" | "-h") {
            usage();
        }
        if let Err(msg) = apply_flag(&flag, &mut p, &mut cfg, &mut chaos, &mut trace) {
            eprintln!("fs-cluster: {msg}");
            usage();
        }
    }
    if cfg.shards.is_empty() {
        eprintln!("fs-cluster: at least one --shards address is required");
        usage();
    }

    if trace.armed {
        fs_trace::set_armed(true);
        println!("fs-cluster tracing: armed");
    }
    if let Some(plan) = &chaos {
        fs_chaos::install(plan.clone());
        println!("fs-cluster chaos plan: {plan}");
    }

    // Probe every static shard up front: fail fast on a typo'd address
    // instead of degrading the first real request.
    let mut epochs = Vec::with_capacity(cfg.shards.len());
    for addr in &cfg.shards {
        match probe_shard(addr, cfg.connect_timeout) {
            Ok(epoch) => {
                println!("fs-cluster shard {addr}: start_epoch={epoch}");
                epochs.push((addr.clone(), epoch));
            }
            Err(msg) => {
                eprintln!("fs-cluster: {msg}");
                std::process::exit(1);
            }
        }
    }

    let router = match Router::bind(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fs-cluster: failed to bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    for (addr, epoch) in epochs {
        router.state().join_shard(addr, epoch);
    }
    if cfg.journal.is_some() {
        // A recovered manifest is only a claim about residency; ask
        // every shard what it actually holds and repair the difference.
        let reconciled = fs_cluster::revalidate(router.state());
        let matrices = router.state().matrix_count();
        println!(
            "fs-cluster journal: {} matrix(es) recovered, {reconciled} shard(s) revalidated",
            matrices
        );
    }
    println!(
        "fs-cluster routing on {} over {} shard(s){}",
        router.local_addr(),
        cfg.shards.len(),
        if cfg.replicate { ", REPLICATED" } else { "" },
    );
    if let Err(e) = router.run() {
        eprintln!("fs-cluster: accept loop failed: {e}");
        std::process::exit(1);
    }
    if chaos.is_some() {
        println!("fs-cluster chaos faults: {}", fs_chaos::report().to_json());
    }
    if trace.armed {
        let snap = fs_trace::snapshot();
        print!("{}", fs_trace::export::prometheus_text(&snap));
        if let Some(path) = &trace.out {
            let chrome = fs_trace::export::chrome_trace(&snap);
            match std::fs::write(path, chrome) {
                Ok(()) => println!("fs-cluster trace timeline: {path}"),
                Err(e) => {
                    eprintln!("fs-cluster: failed to write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    println!("fs-cluster: drained and stopped");
}
