//! Property-based tests for the tensor-core sparse formats.

use fs_format::{footprint_reduction, vector_stats, MeBcrs, SrBcrs, TcFormatSpec};
use fs_matrix::gen::random_uniform;
use fs_matrix::CsrMatrix;
use fs_precision::F16;
use proptest::prelude::*;

const SPECS: [TcFormatSpec; 4] = [
    TcFormatSpec::FLASH_FP16,
    TcFormatSpec::FLASH_TF32,
    TcFormatSpec::FLASH_FP16_K16,
    TcFormatSpec::SOTA16_FP16,
];

fn arb_matrix() -> impl Strategy<Value = CsrMatrix<F16>> {
    (1usize..80, 1usize..80, 0usize..400, 0u64..10_000).prop_map(|(r, c, nnz, seed)| {
        CsrMatrix::from_coo(&random_uniform::<f32>(r, c, nnz, seed)).cast()
    })
}

fn spec_strategy() -> impl Strategy<Value = TcFormatSpec> {
    prop::sample::select(SPECS.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ME-BCRS round-trips through dense for every spec.
    #[test]
    fn mebcrs_roundtrip(csr in arb_matrix(), spec in spec_strategy()) {
        let me = MeBcrs::from_csr(&csr, spec);
        prop_assert_eq!(me.to_dense(), csr.to_dense());
        prop_assert_eq!(me.nnz(), csr.nnz());
    }

    /// SR-BCRS round-trips and never stores less than ME-BCRS.
    #[test]
    fn srbcrs_roundtrip_and_dominates(csr in arb_matrix(), spec in spec_strategy()) {
        let sr = SrBcrs::from_csr(&csr, spec);
        prop_assert_eq!(sr.to_dense(), csr.to_dense());
        let me = MeBcrs::from_csr(&csr, spec);
        prop_assert!(sr.footprint_bytes() >= me.footprint_bytes());
        // SR blocks are always full width.
        prop_assert!(sr.num_blocks() >= me.num_blocks());
    }

    /// Structural invariants of the ME-BCRS arrays.
    #[test]
    fn mebcrs_structural_invariants(csr in arb_matrix(), spec in spec_strategy()) {
        let me = MeBcrs::from_csr(&csr, spec);
        // Values length is exactly vectors × v (no padding, nothing lost).
        prop_assert_eq!(me.values().len(), me.num_vectors() * spec.vector_len);
        // Window pointers form a monotone prefix sum ending at num_vectors.
        prop_assert_eq!(me.window_ptr().len(), me.num_windows() + 1);
        prop_assert_eq!(*me.window_ptr().last().unwrap(), me.num_vectors());
        for w in me.window_ptr().windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Columns ascend strictly within each window; block widths are
        // in 1..=k with only the last block ragged.
        for w in 0..me.num_windows() {
            let cols = &me.col_indices()[me.window_ptr()[w]..me.window_ptr()[w + 1]];
            for pair in cols.windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
            let nb = me.blocks_in_window(w);
            for b in 0..nb {
                let width = me.block_width(w, b);
                prop_assert!(width >= 1 && width <= spec.block_k);
                if b + 1 < nb {
                    prop_assert_eq!(width, spec.block_k, "only the last block may be ragged");
                }
            }
        }
    }

    /// to_csr inverts from_csr up to exactly-zero stored values.
    #[test]
    fn mebcrs_to_csr_roundtrip(csr in arb_matrix(), spec in spec_strategy()) {
        let me = MeBcrs::from_csr(&csr, spec);
        let back = me.to_csr();
        prop_assert_eq!(back.to_dense(), csr.to_dense());
    }

    /// Vector statistics: zeros-in-vectors is exactly stored − nnz, and
    /// the 8×1 partition never stores more zeros than the 16×1 one.
    #[test]
    fn vector_stats_invariants(csr in arb_matrix()) {
        let s8 = vector_stats(&csr, TcFormatSpec::FLASH_FP16);
        let s16 = vector_stats(&csr, TcFormatSpec::SOTA16_FP16);
        prop_assert_eq!(s8.nnz, csr.nnz());
        prop_assert_eq!(
            s8.zeros_in_vectors + s8.nnz,
            s8.nonzero_vectors * 8
        );
        prop_assert!(
            s8.zeros_in_vectors <= s16.zeros_in_vectors,
            "halving the vector can only reduce fill: {} vs {}",
            s8.zeros_in_vectors,
            s16.zeros_in_vectors
        );
        prop_assert!(s8.fill_ratio() >= s16.fill_ratio() - 1e-12);
    }

    /// Footprint reduction is always in [0, 1).
    #[test]
    fn footprint_reduction_bounded(csr in arb_matrix(), spec in spec_strategy()) {
        let red = footprint_reduction(&csr, spec);
        prop_assert!((0.0..1.0).contains(&red) || red.abs() < 1e-12, "red={red}");
    }

    /// The invariant validator accepts everything from_csr produces.
    #[test]
    fn validate_clean_on_translated_matrices(csr in arb_matrix(), spec in spec_strategy()) {
        let me = MeBcrs::from_csr(&csr, spec);
        prop_assert!(me.validate().is_empty(), "{:?}", me.validate());
        let sr = SrBcrs::from_csr(&csr, spec);
        prop_assert!(sr.validate().is_empty(), "{:?}", sr.validate());
    }

    /// Mutation test: corrupting a window_ptr entry is always caught.
    #[test]
    fn validate_catches_window_ptr_corruption(
        csr in arb_matrix(),
        spec in spec_strategy(),
        which in 0usize..64,
        bump in 1usize..16,
    ) {
        let me = MeBcrs::from_csr(&csr, spec);
        prop_assume!(me.num_vectors() > 0);
        let mut ptr = me.window_ptr().to_vec();
        let i = which % ptr.len();
        ptr[i] += bump; // breaks base-zero, monotonicity, or the final total
        let corrupt = MeBcrs::from_raw_parts(
            spec, me.rows(), me.cols(), ptr,
            me.col_indices().to_vec(), me.values().to_vec(), me.nnz(),
        );
        prop_assert!(!corrupt.validate().is_empty());
    }

    /// Mutation test: breaking column order or range is always caught.
    #[test]
    fn validate_catches_col_index_corruption(
        csr in arb_matrix(),
        spec in spec_strategy(),
        which in 0usize..64,
    ) {
        let me = MeBcrs::from_csr(&csr, spec);
        prop_assume!(me.num_vectors() > 0);
        let mut cols = me.col_indices().to_vec();
        let i = which % cols.len();
        // Push the column past the matrix width: out-of-range for sure,
        // and possibly out of order too.
        cols[i] = me.cols() as u32 + 1 + cols[i];
        let corrupt = MeBcrs::from_raw_parts(
            spec, me.rows(), me.cols(), me.window_ptr().to_vec(),
            cols, me.values().to_vec(), me.nnz(),
        );
        prop_assert!(!corrupt.validate().is_empty());
    }

    /// with_values preserves structure and recounts nnz.
    #[test]
    fn with_values_recounts(csr in arb_matrix()) {
        let me = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        let zeros = vec![F16::ZERO; me.values().len()];
        let emptied = me.with_values(zeros);
        prop_assert_eq!(emptied.nnz(), 0);
        prop_assert_eq!(emptied.num_vectors(), me.num_vectors());
        prop_assert_eq!(emptied.window_ptr(), me.window_ptr());
    }
}
