//! ME-BCRS: the paper's memory-efficient blocked compressed row storage
//! (Section 3.5, Figure 10).
//!
//! Three arrays describe the sparse TC blocks of every row window:
//!
//! 1. **RowPointers** (`window_ptr`) — where each window's nonzero vectors
//!    start in `ColumnIndices` (we store `M+1` prefix-sum entries; the
//!    padding-based SR-BCRS needs `2M`).
//! 2. **ColumnIndices** (`col_indices`) — the column of every nonzero
//!    vector, window by window, ascending within a window.
//! 3. **Values** — TC block after TC block, each block row-major with its
//!    *actual* width (the last block of a window is ragged, ≤ `k` vectors
//!    wide). No zero vectors are ever materialized; the kernels handle the
//!    residue block with modulo arithmetic, exactly as the paper describes.

use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_precision::Scalar;
use rayon::prelude::*;

use crate::spec::TcFormatSpec;

/// A sparse matrix in ME-BCRS form.
#[derive(Clone, Debug)]
pub struct MeBcrs<S: Scalar> {
    spec: TcFormatSpec,
    rows: usize,
    cols: usize,
    window_ptr: Vec<usize>,
    col_indices: Vec<u32>,
    values: Vec<S>,
    /// Nonzeros of the original matrix (excluding fill zeros inside
    /// nonzero vectors) — kept for statistics.
    nnz: usize,
    /// Structural-validity witness: `true` when the arrays are known to
    /// satisfy every [`MeBcrs::validate`] invariant ([`MeBcrs::from_csr`]
    /// guarantees it by construction). Kernels on the fast execution path
    /// skip their per-launch format walk when the witness is set;
    /// [`MeBcrs::from_raw_parts`] leaves it unset.
    validated: bool,
}

/// Equality compares the matrix itself (spec, shape, and arrays); the
/// `validated` witness is provenance metadata, not part of the value.
impl<S: Scalar> PartialEq for MeBcrs<S> {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.rows == other.rows
            && self.cols == other.cols
            && self.nnz == other.nnz
            && self.window_ptr == other.window_ptr
            && self.col_indices == other.col_indices
            && self.values == other.values
    }
}

impl<S: Scalar> MeBcrs<S> {
    /// Translate a CSR matrix. The per-window work is embarrassingly
    /// parallel and runs under Rayon, mirroring the paper's CUDA
    /// preprocessing kernels ("the matrix translation process leverages
    /// CUDA for parallel processing").
    ///
    /// ```
    /// use fs_format::{MeBcrs, TcFormatSpec};
    /// use fs_matrix::{CooMatrix, CsrMatrix};
    ///
    /// let coo = CooMatrix::from_entries(8, 8, vec![(0, 1, 2.0f32), (7, 3, 4.0)]);
    /// let csr = CsrMatrix::from_coo(&coo);
    /// let me = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
    /// assert_eq!(me.num_windows(), 1);
    /// assert_eq!(me.num_vectors(), 2); // columns 1 and 3
    /// assert_eq!(me.to_dense(), csr.to_dense());
    /// ```
    pub fn from_csr(csr: &CsrMatrix<S>, spec: TcFormatSpec) -> Self {
        let v = spec.vector_len;
        let rows = csr.rows();
        let num_windows = spec.num_windows(rows);

        // Pass 1 (parallel over windows): the sorted distinct columns of
        // each window = its nonzero vectors.
        let window_cols: Vec<Vec<u32>> = (0..num_windows)
            .into_par_iter()
            .map(|w| {
                let lo = w * v;
                let hi = ((w + 1) * v).min(rows);
                let mut cols: Vec<u32> =
                    (lo..hi).flat_map(|r| csr.row_cols(r).iter().copied()).collect();
                cols.sort_unstable();
                cols.dedup();
                cols
            })
            .collect();

        // Prefix sum into window_ptr.
        let mut window_ptr = Vec::with_capacity(num_windows + 1);
        let mut total_vectors = 0usize;
        window_ptr.push(0usize);
        for wc in &window_cols {
            total_vectors += wc.len();
            window_ptr.push(total_vectors);
        }
        let col_indices: Vec<u32> = window_cols.iter().flatten().copied().collect();

        // Pass 2 (parallel over windows): scatter values into the ragged
        // block-major layout. Each window owns a disjoint slice of `values`.
        let mut values = vec![S::ZERO; total_vectors * v];
        let value_ranges: Vec<(usize, usize)> =
            (0..num_windows).map(|w| (window_ptr[w] * v, window_ptr[w + 1] * v)).collect();
        // Split `values` into per-window slices for safe parallel writes.
        let mut slices: Vec<&mut [S]> = Vec::with_capacity(num_windows);
        let mut rest = values.as_mut_slice();
        for w in 0..num_windows {
            let len = value_ranges[w].1 - value_ranges[w].0;
            let (head, tail) = rest.split_at_mut(len);
            slices.push(head);
            rest = tail;
        }
        slices.into_par_iter().enumerate().for_each(|(w, slice)| {
            let wc = &window_cols[w];
            let nv = wc.len();
            let lo = w * v;
            let hi = ((w + 1) * v).min(rows);
            for r in lo..hi {
                let local_r = r - lo;
                for (&c, &val) in csr.row_cols(r).iter().zip(csr.row_values(r)) {
                    let j = wc.binary_search(&c).expect("column must be a nonzero vector"); // lint: allow-panic - pass 1 inserted every column
                    let b = j / spec.block_k;
                    let jl = j - b * spec.block_k;
                    let w_b = spec.block_k.min(nv - b * spec.block_k);
                    let idx = b * spec.block_k * v + local_r * w_b + jl;
                    slice[idx] = val;
                }
            }
        });

        let me = MeBcrs {
            spec,
            rows,
            cols: csr.cols(),
            window_ptr,
            col_indices,
            values,
            nnz: csr.nnz(),
            // Correct by construction: pass 1 emits sorted distinct
            // columns and a monotone prefix sum, pass 2 only scatters
            // values (debug builds re-check below).
            validated: true,
        };
        #[cfg(debug_assertions)]
        {
            let violations = me.validate();
            debug_assert!(
                violations.is_empty(),
                "from_csr produced a malformed matrix: {violations:?}"
            );
        }
        me
    }

    /// Assemble an ME-BCRS matrix directly from its raw arrays, with **no
    /// invariant checking** — the escape hatch [`MeBcrs::validate`]'s own
    /// tests use to construct deliberately corrupt instances. Kernels fed a
    /// matrix built this way may panic or return garbage; run `validate()`
    /// first if the arrays come from anywhere untrusted.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        spec: TcFormatSpec,
        rows: usize,
        cols: usize,
        window_ptr: Vec<usize>,
        col_indices: Vec<u32>,
        values: Vec<S>,
        nnz: usize,
    ) -> Self {
        MeBcrs { spec, rows, cols, window_ptr, col_indices, values, nnz, validated: false }
    }

    /// Whether this matrix carries the structural-validity witness (see
    /// the field docs): `true` means every [`MeBcrs::validate`] invariant
    /// is known to hold and per-launch re-validation can be skipped.
    #[inline]
    pub fn is_validated(&self) -> bool {
        self.validated
    }

    /// Run [`MeBcrs::validate`] and set the witness when it comes back
    /// clean. Returns the witness state afterwards — `false` means the
    /// arrays are malformed and the witness stays unset.
    pub fn mark_validated(&mut self) -> bool {
        if !self.validated {
            self.validated = self.validate().is_empty();
        }
        self.validated
    }

    /// The format spec (vector height, block width).
    #[inline]
    pub fn spec(&self) -> TcFormatSpec {
        self.spec
    }

    /// Number of matrix rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of matrix columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Nonzeros of the source matrix.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of row windows.
    #[inline]
    pub fn num_windows(&self) -> usize {
        self.window_ptr.len() - 1
    }

    /// Total nonzero vectors across all windows.
    #[inline]
    pub fn num_vectors(&self) -> usize {
        self.col_indices.len()
    }

    /// The RowPointers array.
    #[inline]
    pub fn window_ptr(&self) -> &[usize] {
        &self.window_ptr
    }

    /// The ColumnIndices array.
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// The Values array (block-major, ragged last block per window).
    #[inline]
    pub fn values(&self) -> &[S] {
        &self.values
    }

    /// Nonzero vectors in window `w`.
    #[inline]
    pub fn vectors_in_window(&self, w: usize) -> usize {
        self.window_ptr[w + 1] - self.window_ptr[w]
    }

    /// TC blocks in window `w` (ceil(nv/k)) — no padding blocks exist.
    #[inline]
    pub fn blocks_in_window(&self, w: usize) -> usize {
        self.spec.blocks_for(self.vectors_in_window(w))
    }

    /// Total TC blocks.
    pub fn num_blocks(&self) -> usize {
        (0..self.num_windows()).map(|w| self.blocks_in_window(w)).sum()
    }

    /// Width (vector count) of block `b` of window `w`; the last block may
    /// be ragged (`1..=k`).
    #[inline]
    pub fn block_width(&self, w: usize, b: usize) -> usize {
        let nv = self.vectors_in_window(w);
        self.spec.block_k.min(nv - b * self.spec.block_k)
    }

    /// Column indices of the vectors in block `b` of window `w`.
    #[inline]
    pub fn block_cols(&self, w: usize, b: usize) -> &[u32] {
        let start = self.window_ptr[w] + b * self.spec.block_k;
        &self.col_indices[start..start + self.block_width(w, b)]
    }

    /// Flat index into `values` of element `(local_row, local_vec)` of
    /// block `b` of window `w`.
    #[inline]
    pub fn value_index(&self, w: usize, b: usize, local_row: usize, local_vec: usize) -> usize {
        let v = self.spec.vector_len;
        let w_b = self.block_width(w, b);
        debug_assert!(local_row < v && local_vec < w_b);
        self.window_ptr[w] * v + b * self.spec.block_k * v + local_row * w_b + local_vec
    }

    /// One row of a TC block, contiguous in `values`.
    #[inline]
    pub fn block_row(&self, w: usize, b: usize, local_row: usize) -> &[S] {
        let start = self.value_index(w, b, local_row, 0);
        &self.values[start..start + self.block_width(w, b)]
    }

    /// Byte address of a value element (values array assumed based at 0) —
    /// for the memory-transaction simulator.
    #[inline]
    pub fn value_addr(&self, w: usize, b: usize, local_row: usize, local_vec: usize) -> u64 {
        (self.value_index(w, b, local_row, local_vec) * S::BYTES) as u64
    }

    /// Mutable access to the values array (structure is fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [S] {
        &mut self.values
    }

    /// A copy of this matrix's *structure* carrying different values —
    /// how the SDDMM kernel materializes its output directly in the layout
    /// the subsequent SpMM consumes (the paper's Figure 9 pipeline).
    ///
    /// `nnz` of the result counts the non-zero entries of `values`.
    ///
    /// # Panics
    /// Panics if `values` has the wrong length.
    pub fn with_values(&self, values: Vec<S>) -> MeBcrs<S> {
        assert_eq!(values.len(), self.values.len(), "values must match the structure");
        let nnz = values.iter().filter(|v| !v.is_zero()).count();
        MeBcrs {
            spec: self.spec,
            rows: self.rows,
            cols: self.cols,
            window_ptr: self.window_ptr.clone(),
            col_indices: self.col_indices.clone(),
            values,
            nnz,
            // The structure is cloned verbatim, so the witness carries
            // over (validity never depends on the value payload).
            validated: self.validated,
        }
    }

    /// Convert to CSR (entries that are exactly zero inside nonzero vectors
    /// are dropped).
    pub fn to_csr(&self) -> CsrMatrix<S> {
        let v = self.spec.vector_len;
        let mut coo = fs_matrix::CooMatrix::new(self.rows, self.cols);
        for w in 0..self.num_windows() {
            for b in 0..self.blocks_in_window(w) {
                let cols = self.block_cols(w, b);
                for lr in 0..v {
                    let r = w * v + lr;
                    if r >= self.rows {
                        break;
                    }
                    let row = self.block_row(w, b, lr);
                    for (jl, &c) in cols.iter().enumerate() {
                        if !row[jl].is_zero() {
                            coo.push(r, c as usize, row[jl]);
                        }
                    }
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Expand back to dense — the correctness oracle for the translation.
    pub fn to_dense(&self) -> DenseMatrix<S> {
        let v = self.spec.vector_len;
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for w in 0..self.num_windows() {
            for b in 0..self.blocks_in_window(w) {
                let cols = self.block_cols(w, b);
                for lr in 0..v {
                    let r = w * v + lr;
                    if r >= self.rows {
                        break;
                    }
                    let row = self.block_row(w, b, lr);
                    for (jl, &c) in cols.iter().enumerate() {
                        if !row[jl].is_zero() {
                            out.set(r, c as usize, row[jl]);
                        }
                    }
                }
            }
        }
        out
    }

    /// Bytes occupied by the three arrays (4-byte pointers/indices, the
    /// accounting used for Table 7).
    pub fn footprint_bytes(&self) -> usize {
        self.window_ptr.len() * 4 + self.col_indices.len() * 4 + self.values.len() * S::BYTES
    }

    /// Fill ratio of the stored blocks: original nonzeros over stored
    /// elements (higher = less zero-fill = less redundant compute).
    pub fn fill_ratio(&self) -> f64 {
        if self.values.is_empty() {
            1.0
        } else {
            self.nnz as f64 / self.values.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_matrix::gen::{random_uniform, rmat, RmatConfig};
    use fs_matrix::CooMatrix;

    /// The paper's Figure 2(a) sparse matrix: 16×16 with scattered nonzeros.
    fn figure2_matrix() -> CsrMatrix<f32> {
        // Construct a 16-row matrix whose top and bottom 8-row windows share
        // only some columns, so 16×1 vectors waste space but 8×1 are dense.
        let entries = vec![
            (0u32, 0u32, 1.0f32),
            (1, 2, 2.0),
            (3, 0, 3.0),
            (4, 5, 4.0),
            (6, 2, 5.0),
            (7, 7, 6.0),
            (8, 1, 7.0),
            (9, 3, 8.0),
            (11, 9, 9.0),
            (12, 1, 10.0),
            (14, 11, 11.0),
            (15, 3, 12.0),
        ];
        CsrMatrix::from_coo(&CooMatrix::from_entries(16, 16, entries))
    }

    #[test]
    fn roundtrip_small() {
        let csr = figure2_matrix();
        for spec in [TcFormatSpec::FLASH_FP16, TcFormatSpec::FLASH_TF32, TcFormatSpec::SOTA16_FP16]
        {
            let me = MeBcrs::from_csr(&csr, spec);
            assert_eq!(me.to_dense(), csr.to_dense(), "{spec:?}");
        }
    }

    #[test]
    fn roundtrip_random() {
        for seed in 0..5u64 {
            let coo = random_uniform::<f32>(100, 80, 600, seed);
            let csr = CsrMatrix::from_coo(&coo);
            for spec in
                [TcFormatSpec::FLASH_FP16, TcFormatSpec::FLASH_TF32, TcFormatSpec::SOTA16_FP16]
            {
                let me = MeBcrs::from_csr(&csr, spec);
                assert_eq!(me.to_dense(), csr.to_dense(), "seed={seed} {spec:?}");
                assert_eq!(me.nnz(), csr.nnz());
            }
        }
    }

    #[test]
    fn vectors_are_sorted_and_distinct_per_window() {
        let csr = CsrMatrix::from_coo(&rmat::<f32>(7, 6, RmatConfig::GRAPH500, false, 3));
        let me = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        for w in 0..me.num_windows() {
            let lo = me.window_ptr()[w];
            let hi = me.window_ptr()[w + 1];
            let cols = &me.col_indices()[lo..hi];
            for pair in cols.windows(2) {
                assert!(pair[0] < pair[1], "window {w} columns must be ascending");
            }
        }
    }

    #[test]
    fn eight_vectors_halve_the_fill_zeros() {
        // Table 2's claim: 8×1 vectors have far fewer stored zeros than 16×1.
        let csr = CsrMatrix::from_coo(&rmat::<f32>(9, 4, RmatConfig::GRAPH500, false, 5));
        let me8 = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        let me16 = MeBcrs::from_csr(&csr, TcFormatSpec::SOTA16_FP16);
        let zeros8 = me8.values().len() - me8.nnz();
        let zeros16 = me16.values().len() - me16.nnz();
        assert!((zeros8 as f64) < 0.65 * zeros16 as f64, "zeros8={zeros8} zeros16={zeros16}");
        assert!(me8.fill_ratio() > me16.fill_ratio());
    }

    #[test]
    fn ragged_last_block() {
        // One window, 10 nonzero vectors, k=8 → widths 8 and 2.
        let entries: Vec<(u32, u32, f32)> = (0..10).map(|j| (0u32, j as u32 * 3, 1.0)).collect();
        let csr = CsrMatrix::from_coo(&CooMatrix::from_entries(8, 32, entries));
        let me = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        assert_eq!(me.num_windows(), 1);
        assert_eq!(me.vectors_in_window(0), 10);
        assert_eq!(me.blocks_in_window(0), 2);
        assert_eq!(me.block_width(0, 0), 8);
        assert_eq!(me.block_width(0, 1), 2);
        // No padding: values length is exactly nv * v.
        assert_eq!(me.values().len(), 10 * 8);
        assert_eq!(me.to_dense(), csr.to_dense());
    }

    #[test]
    fn block_rows_are_contiguous_and_correct() {
        let csr = figure2_matrix();
        let me = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        let dense = csr.to_dense();
        for w in 0..me.num_windows() {
            for b in 0..me.blocks_in_window(w) {
                let cols = me.block_cols(w, b);
                for lr in 0..8 {
                    let row = me.block_row(w, b, lr);
                    for (jl, &c) in cols.iter().enumerate() {
                        assert_eq!(
                            row[jl],
                            dense.get(w * 8 + lr, c as usize),
                            "w={w} b={b} lr={lr} jl={jl}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn footprint_accounting() {
        let csr = figure2_matrix();
        let me = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        let expected =
            me.window_ptr().len() * 4 + me.col_indices().len() * 4 + me.values().len() * 4;
        assert_eq!(me.footprint_bytes(), expected);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::<f32>::empty(16, 16);
        let me = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        assert_eq!(me.num_vectors(), 0);
        assert_eq!(me.num_blocks(), 0);
        assert_eq!(me.to_dense(), csr.to_dense());
    }

    #[test]
    fn validity_witness_follows_provenance() {
        let csr = figure2_matrix();
        let me = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        assert!(me.is_validated(), "from_csr is correct by construction");
        assert!(me.with_values(me.values().to_vec()).is_validated(), "structure clone carries it");
        assert!(me.clone().is_validated());

        // Raw assembly starts unwitnessed even when the arrays are fine;
        // mark_validated runs the checks and sets it.
        let mut raw = MeBcrs::from_raw_parts(
            me.spec(),
            me.rows(),
            me.cols(),
            me.window_ptr().to_vec(),
            me.col_indices().to_vec(),
            me.values().to_vec(),
            me.nnz(),
        );
        assert!(!raw.is_validated());
        assert_eq!(raw, me, "the witness is metadata, not part of the value");
        assert!(raw.mark_validated());
        assert!(raw.is_validated());

        // A malformed matrix never earns the witness.
        let mut bad = MeBcrs::<f32>::from_raw_parts(
            TcFormatSpec::FLASH_FP16,
            8,
            8,
            vec![0, 2],
            vec![5, 3], // not ascending
            vec![0.0; 16],
            2,
        );
        assert!(!bad.mark_validated());
        assert!(!bad.is_validated());
    }

    #[test]
    fn rows_not_multiple_of_window() {
        let coo = random_uniform::<f32>(13, 20, 40, 1);
        let csr = CsrMatrix::from_coo(&coo);
        let me = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        assert_eq!(me.num_windows(), 2);
        assert_eq!(me.to_dense(), csr.to_dense());
    }
}
