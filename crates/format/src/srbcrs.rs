//! SR-BCRS: the zero-vector-padding storage scheme of Li et al. (SC'22,
//! reference \[26\] of the paper) that ME-BCRS is compared against in
//! Table 7.
//!
//! Every window's nonzero vectors are padded with zero vectors up to a
//! multiple of `k`, so all TC blocks are full `v×k` rectangles and the
//! kernel needs no residue handling — at the price of storing the padding.
//! Because blocks are the indexing unit, the scheme keeps *two* pointers
//! per window (block start and block count → `2M` entries total, as the
//! paper notes), whereas ME-BCRS stores `M+1`.

use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_precision::Scalar;

use crate::mebcrs::MeBcrs;
use crate::spec::TcFormatSpec;

/// A sparse matrix in padding-based SR-BCRS form.
#[derive(Clone, Debug, PartialEq)]
pub struct SrBcrs<S: Scalar> {
    spec: TcFormatSpec,
    rows: usize,
    cols: usize,
    /// Block start index per window (`M` entries).
    block_start: Vec<usize>,
    /// Block count per window (`M` entries) — together with `block_start`,
    /// the `2M` pointers of the padding scheme.
    block_count: Vec<usize>,
    /// Column index per vector slot, padded slots repeat `u32::MAX`.
    col_indices: Vec<u32>,
    /// `v×k` values per block, zero-padded.
    values: Vec<S>,
    nnz: usize,
}

/// Sentinel column index for padded (zero) vector slots.
pub const PAD_COL: u32 = u32::MAX;

impl<S: Scalar> SrBcrs<S> {
    /// Translate a CSR matrix via ME-BCRS then pad.
    pub fn from_csr(csr: &CsrMatrix<S>, spec: TcFormatSpec) -> Self {
        let me = MeBcrs::from_csr(csr, spec);
        let v = spec.vector_len;
        let k = spec.block_k;
        let num_windows = me.num_windows();

        let mut block_start = Vec::with_capacity(num_windows);
        let mut block_count = Vec::with_capacity(num_windows);
        let mut col_indices = Vec::new();
        let mut values = Vec::new();

        let mut next_block = 0usize;
        for w in 0..num_windows {
            let nb = me.blocks_in_window(w);
            block_start.push(next_block);
            block_count.push(nb);
            next_block += nb;
            for b in 0..nb {
                let cols = me.block_cols(w, b);
                let w_b = cols.len();
                for jl in 0..k {
                    col_indices.push(if jl < w_b { cols[jl] } else { PAD_COL });
                }
                for lr in 0..v {
                    let row = me.block_row(w, b, lr);
                    for jl in 0..k {
                        values.push(if jl < w_b { row[jl] } else { S::ZERO });
                    }
                }
            }
        }

        SrBcrs {
            spec,
            rows: csr.rows(),
            cols: csr.cols(),
            block_start,
            block_count,
            col_indices,
            values,
            nnz: csr.nnz(),
        }
    }

    /// The format spec.
    #[inline]
    pub fn spec(&self) -> TcFormatSpec {
        self.spec
    }

    /// Matrix rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of row windows.
    #[inline]
    pub fn num_windows(&self) -> usize {
        self.block_start.len()
    }

    /// TC blocks in window `w` — all full `v×k`.
    #[inline]
    pub fn blocks_in_window(&self, w: usize) -> usize {
        self.block_count[w]
    }

    /// Total TC blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.block_count.iter().sum()
    }

    /// Column indices (length `k`, padded slots = [`PAD_COL`]) of block `b`
    /// of window `w`.
    pub fn block_cols(&self, w: usize, b: usize) -> &[u32] {
        let k = self.spec.block_k;
        let base = (self.block_start[w] + b) * k;
        &self.col_indices[base..base + k]
    }

    /// One row of a block (always `k` wide).
    pub fn block_row(&self, w: usize, b: usize, local_row: usize) -> &[S] {
        let v = self.spec.vector_len;
        let k = self.spec.block_k;
        let base = (self.block_start[w] + b) * v * k + local_row * k;
        &self.values[base..base + k]
    }

    /// Expand back to dense.
    pub fn to_dense(&self) -> DenseMatrix<S> {
        let v = self.spec.vector_len;
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for w in 0..self.num_windows() {
            for b in 0..self.blocks_in_window(w) {
                let cols = self.block_cols(w, b);
                for lr in 0..v {
                    let r = w * v + lr;
                    if r >= self.rows {
                        break;
                    }
                    let row = self.block_row(w, b, lr);
                    for (jl, &c) in cols.iter().enumerate() {
                        if c != PAD_COL && !row[jl].is_zero() {
                            out.set(r, c as usize, row[jl]);
                        }
                    }
                }
            }
        }
        out
    }

    /// Bytes occupied: `2M` window pointers + padded column indices +
    /// padded values (the Table 7 accounting).
    pub fn footprint_bytes(&self) -> usize {
        (self.block_start.len() + self.block_count.len()) * 4
            + self.col_indices.len() * 4
            + self.values.len() * S::BYTES
    }

    /// Nonzeros of the source matrix.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Block start index per window (`M` entries).
    #[inline]
    pub fn block_start(&self) -> &[usize] {
        &self.block_start
    }

    /// Block count per window (`M` entries).
    #[inline]
    pub fn block_counts(&self) -> &[usize] {
        &self.block_count
    }

    /// The padded column-index array (`k` slots per block, padding =
    /// [`PAD_COL`]).
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// The padded values array (`v×k` per block).
    #[inline]
    pub fn values(&self) -> &[S] {
        &self.values
    }

    /// Assemble from raw arrays with **no invariant checking** — see
    /// [`MeBcrs::from_raw_parts`]; exists so [`SrBcrs::validate`]'s tests
    /// can construct corrupt instances.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        spec: TcFormatSpec,
        rows: usize,
        cols: usize,
        block_start: Vec<usize>,
        block_count: Vec<usize>,
        col_indices: Vec<u32>,
        values: Vec<S>,
        nnz: usize,
    ) -> Self {
        SrBcrs { spec, rows, cols, block_start, block_count, col_indices, values, nnz }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_matrix::gen::random_uniform;
    use fs_matrix::CooMatrix;

    #[test]
    fn roundtrip() {
        for seed in 0..3u64 {
            let csr = CsrMatrix::from_coo(&random_uniform::<f32>(50, 60, 300, seed));
            for spec in [TcFormatSpec::FLASH_FP16, TcFormatSpec::SOTA16_FP16] {
                let sr = SrBcrs::from_csr(&csr, spec);
                assert_eq!(sr.to_dense(), csr.to_dense(), "seed={seed} {spec:?}");
            }
        }
    }

    #[test]
    fn blocks_are_always_full_width() {
        // 10 vectors with k=8 → SR pads to 16 slots in 2 blocks.
        let entries: Vec<(u32, u32, f32)> = (0..10).map(|j| (0u32, j as u32 * 3, 1.0)).collect();
        let csr = CsrMatrix::from_coo(&CooMatrix::from_entries(8, 32, entries));
        let sr = SrBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        assert_eq!(sr.num_blocks(), 2);
        assert_eq!(sr.values.len(), 2 * 8 * 8);
        assert_eq!(sr.block_cols(0, 1)[2..], [PAD_COL; 6]);
    }

    #[test]
    fn footprint_always_at_least_mebcrs() {
        for seed in 0..4u64 {
            let csr = CsrMatrix::from_coo(&random_uniform::<f32>(
                64,
                64,
                100 + seed as usize * 200,
                seed,
            ));
            let me = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
            let sr = SrBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
            assert!(
                sr.footprint_bytes() >= me.footprint_bytes(),
                "seed={seed}: sr={} me={}",
                sr.footprint_bytes(),
                me.footprint_bytes()
            );
        }
    }

    #[test]
    fn padding_maximal_for_single_vector_windows() {
        // One nonzero per window → ME stores 1 vector, SR stores k.
        let entries: Vec<(u32, u32, f32)> = (0..8).map(|w| (w * 8, (w * 7) % 64, 1.0)).collect();
        let csr = CsrMatrix::from_coo(&CooMatrix::from_entries(64, 64, entries));
        let me = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        let sr = SrBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        assert_eq!(me.values().len(), 8 * 8);
        assert_eq!(sr.values.len(), 8 * 8 * 8);
        assert!(sr.footprint_bytes() > 3 * me.footprint_bytes());
    }
}
