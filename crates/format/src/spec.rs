//! Format specifications: vector height and TC-block width.

/// The two parameters of a tensor-core sparse format: vector height `v`
/// (rows per window) and block width `k` (nonzero vectors per TC block —
/// the MMA operand's inner dimension).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TcFormatSpec {
    /// Vector height `v`: 8 in FlashSparse, 16 in TC-GNN/DTC-SpMM.
    pub vector_len: usize,
    /// Vectors per sparse TC block (`k` of the MMA shape): 8 for FP16
    /// (m16n8k8), 4 for FlashSparse TF32 (m16n8k4).
    pub block_k: usize,
}

impl TcFormatSpec {
    /// FlashSparse FP16: 8×1 vectors, k=8 (`mma.m16n8k8.f16`, swapped).
    pub const FLASH_FP16: TcFormatSpec = TcFormatSpec { vector_len: 8, block_k: 8 };

    /// FlashSparse TF32: 8×1 vectors, k=4 (`mma.m16n8k4.tf32`, swapped).
    pub const FLASH_TF32: TcFormatSpec = TcFormatSpec { vector_len: 8, block_k: 4 };

    /// FlashSparse FP16 with the wide MMA: 8x1 vectors, k=16
    /// (`mma.m16n8k16`, swapped) - the block-width ablation variant.
    pub const FLASH_FP16_K16: TcFormatSpec = TcFormatSpec { vector_len: 8, block_k: 16 };

    /// DTC-SpMM-style: 16×1 vectors, k=8 (`mma.m16n8k8`, direct).
    pub const SOTA16_FP16: TcFormatSpec = TcFormatSpec { vector_len: 16, block_k: 8 };

    /// DTC-SpMM TF32: 16×1 vectors, k=8 (`mma.m16n8k8.tf32`, direct).
    pub const SOTA16_TF32: TcFormatSpec = TcFormatSpec { vector_len: 16, block_k: 8 };

    /// TC-GNN-style WMMA: 16×1 vectors, k=8 (`wmma.m16n16k8.tf32`).
    pub const TCGNN_WMMA: TcFormatSpec = TcFormatSpec { vector_len: 16, block_k: 8 };

    /// Number of row windows a matrix with `rows` rows splits into.
    #[inline]
    pub fn num_windows(&self, rows: usize) -> usize {
        rows.div_ceil(self.vector_len)
    }

    /// Number of TC blocks needed for `nv` nonzero vectors in one window.
    #[inline]
    pub fn blocks_for(&self, nv: usize) -> usize {
        nv.div_ceil(self.block_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_specs() {
        assert_eq!(TcFormatSpec::FLASH_FP16.vector_len, 8);
        assert_eq!(TcFormatSpec::FLASH_FP16.block_k, 8);
        assert_eq!(TcFormatSpec::FLASH_TF32.block_k, 4);
        assert_eq!(TcFormatSpec::SOTA16_FP16.vector_len, 16);
    }

    #[test]
    fn window_and_block_arithmetic() {
        let s = TcFormatSpec::FLASH_FP16;
        assert_eq!(s.num_windows(16), 2);
        assert_eq!(s.num_windows(17), 3);
        assert_eq!(s.num_windows(0), 0);
        assert_eq!(s.blocks_for(0), 0);
        assert_eq!(s.blocks_for(8), 1);
        assert_eq!(s.blocks_for(9), 2);
        assert_eq!(TcFormatSpec::FLASH_TF32.blocks_for(9), 3);
    }
}
