//! Partitioning statistics: the quantities behind the paper's Figure 1
//! (MMA invocation counts), Table 2 (zero-fill in nonzero vectors) and
//! Table 7 (footprint reduction).

use fs_matrix::CsrMatrix;
use fs_precision::Scalar;

use crate::mebcrs::MeBcrs;
use crate::spec::TcFormatSpec;
use crate::srbcrs::SrBcrs;

/// Partitioning statistics of one matrix under one format spec.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VectorStats {
    /// Vector height used.
    pub vector_len: usize,
    /// Total nonzero vectors.
    pub nonzero_vectors: usize,
    /// Total sparse TC blocks.
    pub tc_blocks: usize,
    /// Zero elements stored inside nonzero vectors (Table 2's metric).
    pub zeros_in_vectors: usize,
    /// Original nonzeros.
    pub nnz: usize,
}

impl VectorStats {
    /// Fraction of stored elements that are real nonzeros.
    pub fn fill_ratio(&self) -> f64 {
        let total = self.nnz + self.zeros_in_vectors;
        if total == 0 {
            1.0
        } else {
            self.nnz as f64 / total as f64
        }
    }
}

/// Compute [`VectorStats`] for a CSR matrix under `spec`.
pub fn vector_stats<S: Scalar>(csr: &CsrMatrix<S>, spec: TcFormatSpec) -> VectorStats {
    let me = MeBcrs::from_csr(csr, spec);
    VectorStats {
        vector_len: spec.vector_len,
        nonzero_vectors: me.num_vectors(),
        tc_blocks: me.num_blocks(),
        zeros_in_vectors: me.values().len() - me.nnz(),
        nnz: me.nnz(),
    }
}

/// Number of MMA invocations an SpMM over this format performs for a dense
/// operand with `n_cols` columns, given the output-tile width `n_tile`
/// covered by one MMA (Figure 1's metric).
///
/// * FlashSparse (8×1, swapped): each MMA covers 16 dense columns
///   (`n_tile = 16`).
/// * DTC-SpMM / TC-GNN (16×1, direct): each MMA covers 8 (`n_tile = 8`)
///   — 16 for the WMMA variant.
pub fn spmm_mma_count(stats: &VectorStats, n_cols: usize, n_tile: usize) -> u64 {
    stats.tc_blocks as u64 * n_cols.div_ceil(n_tile) as u64
}

/// Relative footprint reduction of ME-BCRS over SR-BCRS (Table 7's
/// percentage): `1 − me/sr`.
pub fn footprint_reduction<S: Scalar>(csr: &CsrMatrix<S>, spec: TcFormatSpec) -> f64 {
    let me = MeBcrs::from_csr(csr, spec).footprint_bytes() as f64;
    let sr = SrBcrs::from_csr(csr, spec).footprint_bytes() as f64;
    if sr == 0.0 {
        0.0
    } else {
        1.0 - me / sr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_matrix::gen::{rmat, RmatConfig};
    use fs_matrix::CooMatrix;

    fn graph() -> CsrMatrix<f32> {
        CsrMatrix::from_coo(&rmat::<f32>(9, 4, RmatConfig::GRAPH500, true, 17))
    }

    #[test]
    fn figure1_8x1_needs_fewer_mmas() {
        // Figure 1: at N=16, 8×1 reduces MMA invocations by ~43% on average.
        let g = graph();
        let s8 = vector_stats(&g, TcFormatSpec::FLASH_FP16);
        let s16 = vector_stats(&g, TcFormatSpec::SOTA16_FP16);
        let mma8 = spmm_mma_count(&s8, 16, 16);
        let mma16 = spmm_mma_count(&s16, 16, 8);
        assert!((mma8 as f64) < 0.75 * mma16 as f64, "mma8={mma8} mma16={mma16}");
    }

    #[test]
    fn table2_zero_elements_roughly_halved() {
        let g = graph();
        let s8 = vector_stats(&g, TcFormatSpec::FLASH_FP16);
        let s16 = vector_stats(&g, TcFormatSpec::SOTA16_FP16);
        assert!((s8.zeros_in_vectors as f64) < 0.7 * s16.zeros_in_vectors as f64);
        assert_eq!(s8.nnz, s16.nnz);
    }

    #[test]
    fn mma_count_arithmetic() {
        let stats = VectorStats {
            vector_len: 8,
            nonzero_vectors: 20,
            tc_blocks: 3,
            zeros_in_vectors: 100,
            nnz: 60,
        };
        assert_eq!(spmm_mma_count(&stats, 128, 16), 3 * 8);
        assert_eq!(spmm_mma_count(&stats, 17, 16), 3 * 2);
    }

    #[test]
    fn footprint_reduction_nonnegative() {
        let g = graph();
        let red = footprint_reduction(&g, TcFormatSpec::FLASH_FP16);
        assert!((0.0..1.0).contains(&red), "reduction={red}");
    }

    #[test]
    fn dense_single_window_no_reduction() {
        // A fully dense 8×8 window has exactly k vectors → no padding at all.
        let entries: Vec<(u32, u32, f32)> =
            (0..8).flat_map(|r| (0..8).map(move |c| (r as u32, c as u32, 1.0))).collect();
        let csr = CsrMatrix::from_coo(&CooMatrix::from_entries(8, 8, entries));
        let me = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        assert_eq!(me.values().len(), 64);
        let red = footprint_reduction(&csr, TcFormatSpec::FLASH_FP16);
        // Only the pointer-array difference remains; tiny but ≥ 0… SR stores
        // 2 pointers vs our 2 (M+1 = 2 for one window) → reduction ≈ 0.
        assert!(red.abs() < 0.05, "red={red}");
    }
}
