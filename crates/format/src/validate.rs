//! Structural invariant validation for the sparse formats.
//!
//! [`MeBcrs::validate`] and [`SrBcrs::validate`] walk the raw arrays and
//! return every broken invariant instead of panicking mid-kernel with an
//! index error three layers down. The checks run automatically in three
//! places: as a `debug_assert!` at the end of [`MeBcrs::from_csr`], from
//! the `fs-core` kernel entry points when the sanitizer is active, and
//! from the format property tests (including mutation tests that corrupt
//! `window_ptr` / `col_indices` through `from_raw_parts` and assert the
//! corruption is caught).

use std::fmt;

use fs_precision::Scalar;

use crate::mebcrs::MeBcrs;
use crate::srbcrs::{SrBcrs, PAD_COL};

/// One broken structural invariant, with the indices needed to locate it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormatViolation {
    /// `window_ptr` does not start at 0.
    WindowPtrBase { first: usize },
    /// `window_ptr` has the wrong number of entries for the matrix shape.
    WindowPtrLength { expected: usize, actual: usize },
    /// `window_ptr[w] > window_ptr[w + 1]` — the prefix sum decreases.
    WindowPtrNotMonotone { window: usize, prev: usize, next: usize },
    /// The final `window_ptr` entry disagrees with `col_indices.len()`.
    WindowPtrOutOfRange { last: usize, vectors: usize },
    /// Two adjacent column indices inside one window are not strictly
    /// ascending (equal = duplicate vector, decreasing = unsorted).
    ColumnsNotAscending { window: usize, position: usize, prev: u32, next: u32 },
    /// A column index is outside the matrix.
    ColumnOutOfRange { window: usize, position: usize, col: u32, cols: usize },
    /// `values.len()` disagrees with the vector count × vector length
    /// (ME-BCRS) or block count × v × k (SR-BCRS).
    ValuesLength { expected: usize, actual: usize },
    /// The recorded nonzero count exceeds the stored element slots.
    NnzExceedsSlots { nnz: usize, slots: usize },
    /// SR-BCRS: `block_start` is not the prefix sum of `block_count`.
    BlockStartMismatch { window: usize, expected: usize, actual: usize },
    /// SR-BCRS: the per-window pointer arrays have the wrong length.
    BlockPtrLength { expected: usize, actual: usize },
    /// SR-BCRS: a real column index appears after a [`PAD_COL`] sentinel
    /// within one block — padding must be a suffix.
    PadNotSuffix { window: usize, block: usize, slot: usize },
}

impl fmt::Display for FormatViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatViolation::WindowPtrBase { first } => {
                write!(f, "window_ptr[0] = {first}, expected 0")
            }
            FormatViolation::WindowPtrLength { expected, actual } => {
                write!(f, "window_ptr has {actual} entries, expected {expected}")
            }
            FormatViolation::WindowPtrNotMonotone { window, prev, next } => {
                write!(f, "window_ptr decreases at window {window}: {prev} -> {next}")
            }
            FormatViolation::WindowPtrOutOfRange { last, vectors } => {
                write!(f, "window_ptr ends at {last} but col_indices holds {vectors} vectors")
            }
            FormatViolation::ColumnsNotAscending { window, position, prev, next } => write!(
                f,
                "col_indices not strictly ascending in window {window} at position \
                 {position}: {prev} -> {next}"
            ),
            FormatViolation::ColumnOutOfRange { window, position, col, cols } => write!(
                f,
                "column {col} at window {window} position {position} exceeds matrix \
                 width {cols}"
            ),
            FormatViolation::ValuesLength { expected, actual } => {
                write!(f, "values holds {actual} elements, expected {expected}")
            }
            FormatViolation::NnzExceedsSlots { nnz, slots } => {
                write!(f, "nnz {nnz} exceeds the {slots} stored element slots")
            }
            FormatViolation::BlockStartMismatch { window, expected, actual } => write!(
                f,
                "block_start[{window}] = {actual}, but the block counts prefix-sum \
                 to {expected}"
            ),
            FormatViolation::BlockPtrLength { expected, actual } => {
                write!(f, "block pointer arrays hold {actual} windows, expected {expected}")
            }
            FormatViolation::PadNotSuffix { window, block, slot } => write!(
                f,
                "window {window} block {block}: real column at slot {slot} follows a \
                 padding sentinel"
            ),
        }
    }
}

impl<S: Scalar> MeBcrs<S> {
    /// Check every structural invariant, returning all violations found
    /// (empty = well-formed). Never panics, even on wildly inconsistent
    /// arrays — it is the tool you reach for *when* the arrays are wrong.
    pub fn validate(&self) -> Vec<FormatViolation> {
        let mut out = Vec::new();
        let spec = self.spec();
        let v = spec.vector_len;
        let ptr = self.window_ptr();
        let cols_arr = self.col_indices();

        let expected_ptr_len = spec.num_windows(self.rows()) + 1;
        if ptr.len() != expected_ptr_len {
            out.push(FormatViolation::WindowPtrLength {
                expected: expected_ptr_len,
                actual: ptr.len(),
            });
        }
        if let Some(&first) = ptr.first() {
            if first != 0 {
                out.push(FormatViolation::WindowPtrBase { first });
            }
        }
        for (w, pair) in ptr.windows(2).enumerate() {
            if pair[0] > pair[1] {
                out.push(FormatViolation::WindowPtrNotMonotone {
                    window: w,
                    prev: pair[0],
                    next: pair[1],
                });
            }
        }
        if let Some(&last) = ptr.last() {
            if last != cols_arr.len() {
                out.push(FormatViolation::WindowPtrOutOfRange { last, vectors: cols_arr.len() });
            }
        }

        // Per-window column ordering and range, on the clamped in-bounds
        // portion so a corrupt pointer cannot make the validator panic.
        for w in 0..ptr.len().saturating_sub(1) {
            let lo = ptr[w].min(cols_arr.len());
            let hi = ptr[w + 1].min(cols_arr.len());
            if lo >= hi {
                continue;
            }
            let win = &cols_arr[lo..hi];
            for (i, &c) in win.iter().enumerate() {
                if c as usize >= self.cols() {
                    out.push(FormatViolation::ColumnOutOfRange {
                        window: w,
                        position: i,
                        col: c,
                        cols: self.cols(),
                    });
                }
                if i > 0 && win[i - 1] >= c {
                    out.push(FormatViolation::ColumnsNotAscending {
                        window: w,
                        position: i,
                        prev: win[i - 1],
                        next: c,
                    });
                }
            }
        }

        // Every nonzero vector stores exactly `v` elements, ragged last
        // block or not — the total is independent of the block split.
        let expected_values = cols_arr.len() * v;
        if self.values().len() != expected_values {
            out.push(FormatViolation::ValuesLength {
                expected: expected_values,
                actual: self.values().len(),
            });
        }
        if self.nnz() > self.values().len() {
            out.push(FormatViolation::NnzExceedsSlots {
                nnz: self.nnz(),
                slots: self.values().len(),
            });
        }
        out
    }
}

impl<S: Scalar> SrBcrs<S> {
    /// The SR-BCRS counterpart of [`MeBcrs::validate`]: checks the `2M`
    /// pointer arrays, the padded index/value array lengths, and that
    /// padding sentinels form a suffix of every block.
    pub fn validate(&self) -> Vec<FormatViolation> {
        let mut out = Vec::new();
        let spec = self.spec();
        let (v, k) = (spec.vector_len, spec.block_k);
        let starts = self.block_start();
        let counts = self.block_counts();
        let cols_arr = self.col_indices();

        let expected_windows = spec.num_windows(self.rows());
        if starts.len() != expected_windows || counts.len() != expected_windows {
            out.push(FormatViolation::BlockPtrLength {
                expected: expected_windows,
                actual: starts.len().max(counts.len()),
            });
        }
        let mut running = 0usize;
        for (w, (&s, &c)) in starts.iter().zip(counts).enumerate() {
            if s != running {
                out.push(FormatViolation::BlockStartMismatch {
                    window: w,
                    expected: running,
                    actual: s,
                });
                running = s; // resynchronize so one bad start reports once
            }
            running += c;
        }
        let num_blocks = running;

        if cols_arr.len() != num_blocks * k {
            out.push(FormatViolation::ValuesLength {
                expected: num_blocks * k,
                actual: cols_arr.len(),
            });
        }
        if self.values().len() != num_blocks * v * k {
            out.push(FormatViolation::ValuesLength {
                expected: num_blocks * v * k,
                actual: self.values().len(),
            });
        }
        if self.nnz() > self.values().len() {
            out.push(FormatViolation::NnzExceedsSlots {
                nnz: self.nnz(),
                slots: self.values().len(),
            });
        }

        // Per-block: real columns strictly ascending, in range, and padding
        // only as a suffix. Walk the clamped in-bounds blocks.
        for (w, (&s, &c)) in starts.iter().zip(counts).enumerate() {
            for b in 0..c {
                let base = (s + b) * k;
                if base + k > cols_arr.len() {
                    break;
                }
                let block = &cols_arr[base..base + k];
                let mut padded = false;
                let mut prev: Option<u32> = None;
                for (slot, &col) in block.iter().enumerate() {
                    if col == PAD_COL {
                        padded = true;
                        continue;
                    }
                    if padded {
                        out.push(FormatViolation::PadNotSuffix { window: w, block: b, slot });
                    }
                    if col as usize >= self.cols() {
                        out.push(FormatViolation::ColumnOutOfRange {
                            window: w,
                            position: b * k + slot,
                            col,
                            cols: self.cols(),
                        });
                    }
                    if let Some(p) = prev {
                        if p >= col {
                            out.push(FormatViolation::ColumnsNotAscending {
                                window: w,
                                position: b * k + slot,
                                prev: p,
                                next: col,
                            });
                        }
                    }
                    prev = Some(col);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TcFormatSpec;
    use fs_matrix::gen::random_uniform;
    use fs_matrix::{CooMatrix, CsrMatrix};

    fn sample() -> MeBcrs<f32> {
        let coo = random_uniform::<f32>(40, 32, 150, 7);
        MeBcrs::from_csr(&CsrMatrix::from_coo(&coo), TcFormatSpec::FLASH_FP16)
    }

    #[test]
    fn well_formed_matrices_validate_clean() {
        let me = sample();
        assert_eq!(me.validate(), vec![]);
        let csr = me.to_csr();
        let sr = SrBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        assert_eq!(sr.validate(), vec![]);
        let empty = MeBcrs::<f32>::from_csr(&CsrMatrix::empty(16, 16), TcFormatSpec::FLASH_TF32);
        assert_eq!(empty.validate(), vec![]);
    }

    #[test]
    fn corrupt_window_ptr_detected() {
        let me = sample();
        let mut ptr = me.window_ptr().to_vec();
        let mid = ptr.len() / 2;
        ptr[mid] = ptr[mid].wrapping_add(100);
        let bad = MeBcrs::from_raw_parts(
            me.spec(),
            me.rows(),
            me.cols(),
            ptr,
            me.col_indices().to_vec(),
            me.values().to_vec(),
            me.nnz(),
        );
        let violations = bad.validate();
        assert!(
            violations.iter().any(|v| matches!(v, FormatViolation::WindowPtrNotMonotone { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn unsorted_and_out_of_range_columns_detected() {
        let me = sample();
        let mut cols = me.col_indices().to_vec();
        cols.swap(0, 1); // window 0 has ≥2 vectors at nnz=150 over 40×32
        cols[2] = 10_000;
        let bad = MeBcrs::from_raw_parts(
            me.spec(),
            me.rows(),
            me.cols(),
            me.window_ptr().to_vec(),
            cols,
            me.values().to_vec(),
            me.nnz(),
        );
        let violations = bad.validate();
        assert!(violations
            .iter()
            .any(|v| matches!(v, FormatViolation::ColumnsNotAscending { window: 0, .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, FormatViolation::ColumnOutOfRange { col: 10_000, .. })));
    }

    #[test]
    fn truncated_values_detected() {
        let me = sample();
        let mut values = me.values().to_vec();
        values.truncate(values.len() - 3);
        let bad = MeBcrs::from_raw_parts(
            me.spec(),
            me.rows(),
            me.cols(),
            me.window_ptr().to_vec(),
            me.col_indices().to_vec(),
            values,
            me.nnz(),
        );
        assert!(bad.validate().iter().any(|v| matches!(v, FormatViolation::ValuesLength { .. })));
    }

    #[test]
    fn nnz_overflow_detected() {
        let me = sample();
        let slots = me.values().len();
        let bad = MeBcrs::from_raw_parts(
            me.spec(),
            me.rows(),
            me.cols(),
            me.window_ptr().to_vec(),
            me.col_indices().to_vec(),
            me.values().to_vec(),
            slots + 1,
        );
        assert_eq!(
            bad.validate(),
            vec![FormatViolation::NnzExceedsSlots { nnz: slots + 1, slots }]
        );
    }

    #[test]
    fn srbcrs_pad_in_middle_detected() {
        // Build a 2-block window and punch a PAD_COL into the middle of a
        // full block.
        let entries: Vec<(u32, u32, f32)> = (0..10).map(|j| (0u32, j * 3, 1.0)).collect();
        let csr = CsrMatrix::from_coo(&CooMatrix::from_entries(8, 32, entries));
        let sr = SrBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        assert_eq!(sr.validate(), vec![]);
        let mut cols = sr.col_indices().to_vec();
        cols[3] = PAD_COL;
        let bad = SrBcrs::from_raw_parts(
            sr.spec(),
            sr.rows(),
            sr.cols(),
            sr.block_start().to_vec(),
            sr.block_counts().to_vec(),
            cols,
            sr.values().to_vec(),
            sr.nnz(),
        );
        assert!(bad
            .validate()
            .iter()
            .any(|v| matches!(v, FormatViolation::PadNotSuffix { window: 0, block: 0, slot: 4 })));
    }

    #[test]
    fn srbcrs_block_start_mismatch_detected() {
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(32, 32, 120, 9));
        let sr = SrBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        let mut starts = sr.block_start().to_vec();
        if starts.len() > 1 {
            starts[1] += 1;
        }
        let bad = SrBcrs::from_raw_parts(
            sr.spec(),
            sr.rows(),
            sr.cols(),
            starts,
            sr.block_counts().to_vec(),
            sr.col_indices().to_vec(),
            sr.values().to_vec(),
            sr.nnz(),
        );
        assert!(bad
            .validate()
            .iter()
            .any(|v| matches!(v, FormatViolation::BlockStartMismatch { window: 1, .. })));
    }

    #[test]
    fn violations_display_with_indices() {
        let v = FormatViolation::ColumnsNotAscending { window: 3, position: 2, prev: 9, next: 9 };
        let s = v.to_string();
        assert!(s.contains("window 3"), "{s}");
        assert!(s.contains("9 -> 9"), "{s}");
    }
}
