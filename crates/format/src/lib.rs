//! Tensor-core sparse matrix formats: nonzero-vector partitioning, the
//! paper's memory-efficient ME-BCRS format (Section 3.5), and the
//! padding-based SR-BCRS baseline it is compared against (Table 7).
//!
//! ## Vocabulary (Section 2.2 of the paper)
//!
//! A sparse matrix is partitioned into **vectors** of `v×1` (`v` consecutive
//! rows, one column). A horizontal strip of `v` rows is a **row window**.
//! Any vector containing at least one nonzero is a **nonzero vector**; the
//! all-zero vectors of a window are simply skipped. Each group of `k`
//! consecutive nonzero vectors in a window forms a **sparse TC block**
//! (`v×k`), the unit consumed by one MMA operand.
//!
//! The vector height `v` is the algorithmic knob the whole paper turns:
//! TC-GNN/DTC-SpMM require `v = 16` (the MMA `m` dimension); FlashSparse's
//! swap-and-transpose strategy achieves `v = 8` (the MMA `n` dimension),
//! roughly halving the zero-fill.
//!
//! # Example
//!
//! Translate a CSR matrix into ME-BCRS under the paper's 8×1 FP16
//! partitioning and inspect how much zero-fill the format carries:
//!
//! ```
//! use fs_format::{vector_stats, MeBcrs, TcFormatSpec};
//! use fs_matrix::{CooMatrix, CsrMatrix};
//! use fs_precision::F16;
//!
//! let coo = CooMatrix::from_entries(16, 16, vec![(0, 0, 1.0f32), (1, 0, 2.0), (9, 3, 4.0)]);
//! let csr = CsrMatrix::from_coo(&coo);
//!
//! let stats = vector_stats(&csr, TcFormatSpec::FLASH_FP16);
//! assert_eq!(stats.nonzero_vectors, 2); // rows 0–1 share one 8x1 vector
//!
//! let me: MeBcrs<F16> = MeBcrs::from_csr(&csr.cast(), TcFormatSpec::FLASH_FP16);
//! assert_eq!(me.nnz(), 3);
//! ```

// Indexed loops mirror the row/column math of the kernels they model;
// iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]

pub mod footprint;
pub mod mebcrs;
pub mod spec;
pub mod srbcrs;
pub mod stats;
pub mod validate;

pub use footprint::MemoryFootprint;
pub use mebcrs::MeBcrs;
pub use spec::TcFormatSpec;
pub use srbcrs::SrBcrs;
pub use stats::{footprint_reduction, vector_stats, VectorStats};
pub use validate::FormatViolation;
