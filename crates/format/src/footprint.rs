//! Resident-size accounting shared with the serving layer.
//!
//! The `fs-serve` format cache budgets translated matrices by bytes; this
//! trait is the hook it keys on, so any format this crate grows (and any
//! wrapper the serving layer builds around one) plugs into the same
//! accounting that produces the paper's Table 7 numbers.

use fs_precision::Scalar;

use crate::mebcrs::MeBcrs;
use crate::srbcrs::SrBcrs;

/// Types whose resident byte size a byte-budgeted cache can account for.
///
/// Implementations must agree with the format's own `footprint_bytes`
/// reporting (the Table 7 accounting: 4-byte pointers/indices plus the
/// values payload at its storage precision).
pub trait MemoryFootprint {
    /// Bytes this value keeps resident while cached.
    fn footprint_bytes(&self) -> usize;
}

impl<S: Scalar> MemoryFootprint for MeBcrs<S> {
    fn footprint_bytes(&self) -> usize {
        MeBcrs::footprint_bytes(self)
    }
}

impl<S: Scalar> MemoryFootprint for SrBcrs<S> {
    fn footprint_bytes(&self) -> usize {
        SrBcrs::footprint_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TcFormatSpec;
    use fs_matrix::gen::random_uniform;
    use fs_matrix::CsrMatrix;

    fn trait_footprint<T: MemoryFootprint>(t: &T) -> usize {
        t.footprint_bytes()
    }

    #[test]
    fn trait_agrees_with_inherent_accounting() {
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(64, 64, 400, 11));
        let me = MeBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        let sr = SrBcrs::from_csr(&csr, TcFormatSpec::FLASH_FP16);
        assert_eq!(trait_footprint(&me), me.footprint_bytes());
        assert_eq!(trait_footprint(&sr), sr.footprint_bytes());
        assert!(trait_footprint(&me) > 0);
    }
}
