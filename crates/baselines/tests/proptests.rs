//! Property-based tests for the baseline kernels and the wave model.

use fs_baselines::cuda;
use fs_baselines::tcu16::{dtc, SPEC16};
use fs_baselines::wave::{imbalance_factor, split_rows, swizzle};
use fs_format::MeBcrs;
use fs_matrix::gen::random_uniform;
use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_precision::F16;
use proptest::prelude::*;

fn arb_csr() -> impl Strategy<Value = CsrMatrix<f32>> {
    (1usize..60, 1usize..60, 0usize..300, 0u64..10_000)
        .prop_map(|(r, c, nnz, seed)| CsrMatrix::from_coo(&random_uniform::<f32>(r, c, nnz, seed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All five CUDA-core SpMM baselines compute the identical product.
    #[test]
    fn cuda_baselines_agree(csr in arb_csr(), n in 1usize..24) {
        let b = DenseMatrix::<f32>::from_fn(csr.cols(), n, |r, c| {
            ((r * 7 + c * 3) % 13) as f32 * 0.25 - 1.5
        });
        let gold = csr.spmm_reference(&b);
        let outs = [
            cuda::cusparse_like::spmm(&csr, &b).0,
            cuda::gespmm::spmm(&csr, &b).0,
            cuda::sputnik::spmm(&csr, &b).0,
            cuda::rode::spmm(&csr, &b).0,
            cuda::gnnadvisor::spmm(&csr, &b).0,
        ];
        for out in outs {
            prop_assert!(out.max_abs_diff(&gold) < 1e-3);
        }
    }

    /// 16×1 tensor-core SpMM matches the reference within FP16 rounding.
    #[test]
    fn dtc_16x1_matches_reference(csr in arb_csr(), n in 1usize..20) {
        let csr16: CsrMatrix<F16> = csr.cast();
        let me = MeBcrs::from_csr(&csr16, SPEC16);
        let b = DenseMatrix::<F16>::from_fn(csr.cols(), n, |r, c| {
            (((r + 2 * c) % 9) as f32 - 4.0) * 0.125
        });
        let (out, run) = dtc::spmm_16x1::<F16>(&me, &b);
        let gold = csr16.spmm_reference(&b);
        prop_assert!(out.max_abs_diff(&gold) < 0.6);
        prop_assert!(run.imbalance >= 1.0);
    }

    /// Wave-model invariants: factor ≥ 1, splitting preserves work and
    /// never hurts, swizzle preserves the multiset.
    #[test]
    fn wave_model_invariants(
        lens in prop::collection::vec(0u64..2000, 1..300),
        p in 1usize..600,
        bound in 1u64..500,
    ) {
        let f = imbalance_factor(&lens, p);
        prop_assert!(f >= 1.0);
        let split = split_rows(&lens, bound);
        prop_assert_eq!(split.iter().sum::<u64>(), lens.iter().sum::<u64>());
        prop_assert!(split.iter().all(|&l| l <= bound));
        // Splitting + sorting caps the worst wave near the bound, so the
        // factor cannot blow past the sorted factor — but wave-boundary
        // quantization (splitting changes the unit count and therefore
        // where waves fall) can nudge it slightly above, so the property
        // holds only up to that slack.
        let f_split = imbalance_factor(&swizzle(&split), p);
        let f_sorted = imbalance_factor(&swizzle(&lens), p);
        prop_assert!(
            f_split <= f_sorted * 1.3 + 0.1,
            "sorted+split ({f_split}) must stay near sorted ({f_sorted})"
        );
        let mut a = lens.clone();
        a.sort_unstable();
        let mut b = swizzle(&lens);
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Counter models scale linearly in N for the CUDA baselines.
    #[test]
    fn cuda_counters_scale_with_n(csr in arb_csr()) {
        prop_assume!(csr.nnz() > 0);
        let b1 = DenseMatrix::<f32>::zeros(csr.cols(), 32);
        let b2 = DenseMatrix::<f32>::zeros(csr.cols(), 64);
        let (_, r1) = cuda::gespmm::spmm(&csr, &b1);
        let (_, r2) = cuda::gespmm::spmm(&csr, &b2);
        prop_assert_eq!(r2.counters.cuda_flops, 2 * r1.counters.cuda_flops);
        prop_assert!(r2.counters.bytes_moved() > r1.counters.bytes_moved());
    }
}
