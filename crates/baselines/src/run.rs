//! The result bundle every baseline kernel returns.

use fs_tcu::cost::{ComputeClass, CostModel};
use fs_tcu::{GpuSpec, KernelCounters};

/// Counters plus scheduling metadata from one baseline kernel execution.
#[derive(Clone, Copy, Debug)]
pub struct BaselineRun {
    /// Operation / transaction / byte counts.
    pub counters: KernelCounters,
    /// Load-imbalance factor from the wave model (≥ 1).
    pub imbalance: f64,
    /// Which engine/precision the kernel runs on.
    pub class: ComputeClass,
}

impl BaselineRun {
    /// A perfectly balanced run.
    pub fn balanced(counters: KernelCounters, class: ComputeClass) -> Self {
        BaselineRun { counters, imbalance: 1.0, class }
    }

    /// Simulated execution time on `gpu`: roofline time (over both compute
    /// engines and memory) stretched by the imbalance factor — idle lanes
    /// don't make memory or ALUs faster.
    pub fn simulated_time(&self, gpu: GpuSpec) -> f64 {
        let model = CostModel::new(gpu);
        let base = model.kernel_time_full(&self.counters, self.class) - gpu.launch_overhead_s;
        base * self.imbalance + gpu.launch_overhead_s
    }

    /// Simulated throughput for `useful_flops` of operator work.
    pub fn simulated_gflops(&self, useful_flops: u64, gpu: GpuSpec) -> f64 {
        useful_flops as f64 / self.simulated_time(gpu) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_stretches_time() {
        let counters = KernelCounters { bytes_loaded: 1 << 20, ..Default::default() };
        let balanced = BaselineRun::balanced(counters, ComputeClass::CudaFp32);
        let skewed = BaselineRun { imbalance: 3.0, ..balanced };
        let gpu = GpuSpec::RTX4090;
        let tb = balanced.simulated_time(gpu) - gpu.launch_overhead_s;
        let ts = skewed.simulated_time(gpu) - gpu.launch_overhead_s;
        assert!((ts / tb - 3.0).abs() < 1e-9);
    }

    #[test]
    fn gflops_inverse_to_time() {
        let counters = KernelCounters { bytes_loaded: 1 << 20, ..Default::default() };
        let run = BaselineRun::balanced(counters, ComputeClass::CudaFp32);
        let gpu = GpuSpec::H100_PCIE;
        let g = run.simulated_gflops(1_000_000_000, gpu);
        assert!((g - 1.0 / run.simulated_time(gpu)).abs() < 1e-9);
    }
}
