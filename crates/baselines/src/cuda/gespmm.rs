//! GE-SpMM (Huang et al., SC'20): row-parallel SpMM with **Coalesced Row
//! Caching** — a warp stages its CSR row through shared memory once and
//! reuses it across all output-column tiles, eliminating the redundant
//! sparse re-reads of the generic kernel. Scheduling remains row-ordered.

use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_tcu::cost::ComputeClass;

use crate::run::BaselineRun;
use crate::wave::{imbalance_factor, DEFAULT_PARALLELISM};

use super::{row_lengths, spmm_counters, spmm_rows_f32};

/// GE-SpMM SpMM with CRC.
pub fn spmm(csr: &CsrMatrix<f32>, b: &DenseMatrix<f32>) -> (DenseMatrix<f32>, BaselineRun) {
    let out = spmm_rows_f32(csr, b);
    // CRC: the CSR arrays are read exactly once regardless of N.
    let counters = spmm_counters(csr, b.cols(), 1, 0);
    let lens = row_lengths(csr);
    let run = BaselineRun {
        counters,
        imbalance: imbalance_factor(&lens, DEFAULT_PARALLELISM),
        class: ComputeClass::CudaFp32,
    };
    (out, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_matrix::gen::random_uniform;

    #[test]
    fn correct_product_and_less_sparse_traffic_than_cusparse() {
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(64, 64, 600, 4));
        let b = DenseMatrix::<f32>::from_fn(64, 128, |r, c| ((r + c) % 11) as f32 * 0.1);
        let (out, run) = spmm(&csr, &b);
        assert!(out.max_abs_diff(&csr.spmm_reference(&b)) < 1e-4);
        let (_, cu) = super::super::cusparse_like::spmm(&csr, &b);
        assert!(
            run.counters.bytes_loaded < cu.counters.bytes_loaded,
            "CRC must cut sparse re-reads: ge={} cu={}",
            run.counters.bytes_loaded,
            cu.counters.bytes_loaded
        );
    }
}
