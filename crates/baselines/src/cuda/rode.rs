//! RoDe (Pang et al., PPoPP'24): row decomposition — the strongest
//! CUDA-core baseline in the paper.
//!
//! Rows are split into *regular* parts (long rows, decomposed into
//! bounded-size groups processed with full vectorization) and *residue*
//! parts (short rows). The bounded groups give near-perfect load balance
//! at the cost of writing partial results for split rows, which are then
//! merged.

use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_tcu::cost::ComputeClass;
use rayon::prelude::*;

use crate::run::BaselineRun;
use crate::wave::{imbalance_factor, split_rows, swizzle, DEFAULT_PARALLELISM};

use super::{row_lengths, sddmm_counters, sddmm_rows_f32, spmm_counters};

/// Maximum nonzeros per decomposed row group (RoDe's block size).
pub const GROUP_BOUND: u64 = 256;

/// RoDe SpMM: long rows are actually processed as independent partial
/// groups and merged, exercising the decomposition end to end.
pub fn spmm(csr: &CsrMatrix<f32>, b: &DenseMatrix<f32>) -> (DenseMatrix<f32>, BaselineRun) {
    let n = b.cols();
    let rows = csr.rows();
    let mut out = DenseMatrix::<f32>::zeros(rows, n);

    // Decompose: (row, start, end) groups of ≤ GROUP_BOUND nonzeros.
    let mut groups: Vec<(usize, usize, usize)> = Vec::new();
    for r in 0..rows {
        let len = csr.row_len(r);
        let mut start = 0usize;
        loop {
            let end = (start + GROUP_BOUND as usize).min(len);
            groups.push((r, start, end));
            if end == len {
                break;
            }
            start = end;
        }
    }

    // Process groups in parallel into per-group partial rows, then merge
    // (split rows produce multiple partials — RoDe's global-memory merge).
    let partials: Vec<(usize, Vec<f32>)> = groups
        .par_iter()
        .map(|&(r, start, end)| {
            let mut acc = vec![0.0f32; n];
            let cols = &csr.row_cols(r)[start..end];
            let vals = &csr.row_values(r)[start..end];
            for (&c, &v) in cols.iter().zip(vals) {
                let brow = b.row(c as usize);
                for j in 0..n {
                    acc[j] += v * brow[j];
                }
            }
            (r, acc)
        })
        .collect();
    for (r, acc) in partials {
        let orow = out.row_mut(r);
        for j in 0..n {
            orow[j] += acc[j];
        }
    }

    let lens = row_lengths(csr);
    // RoDe launches separate kernels for regular (split, uniformly sized)
    // and residue parts — scheduling is effectively size-class ordered.
    let units = swizzle(&split_rows(&lens, GROUP_BOUND));
    let extra_stores = (units.len() - rows) as u64; // partials for split rows
    let counters = spmm_counters(csr, n, 1, extra_stores);
    let run = BaselineRun {
        counters,
        imbalance: imbalance_factor(&units, DEFAULT_PARALLELISM),
        class: ComputeClass::CudaFp32,
    };
    (out, run)
}

/// RoDe SDDMM (decomposed edge-parallel).
pub fn sddmm(
    mask: &CsrMatrix<f32>,
    a: &DenseMatrix<f32>,
    b: &DenseMatrix<f32>,
) -> (CsrMatrix<f32>, BaselineRun) {
    let out = sddmm_rows_f32(mask, a, b);
    let lens = row_lengths(mask);
    let units = swizzle(&split_rows(&lens, GROUP_BOUND));
    let counters = sddmm_counters(mask, a.cols());
    let run = BaselineRun {
        counters,
        imbalance: imbalance_factor(&units, DEFAULT_PARALLELISM),
        class: ComputeClass::CudaFp32,
    };
    (out, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_matrix::gen::{random_uniform, rmat, RmatConfig};
    use fs_matrix::CooMatrix;

    #[test]
    fn correct_even_with_split_rows() {
        // One row with 1000 nonzeros (4 groups) plus background.
        let mut entries: Vec<(u32, u32, f32)> =
            (0..1000).map(|j| (5u32, j, (j % 7) as f32 * 0.1)).collect();
        entries.extend((0..200u32).map(|i| (i % 64, (i * 13) % 1000, 0.5)));
        let csr = CsrMatrix::from_coo(&CooMatrix::from_entries(64, 1000, entries));
        let b = DenseMatrix::<f32>::from_fn(1000, 24, |r, c| ((r + c) % 5) as f32 * 0.1);
        let (out, run) = spmm(&csr, &b);
        assert!(out.max_abs_diff(&csr.spmm_reference(&b)) < 1e-3);
        assert!(run.counters.bytes_stored > 0);
    }

    #[test]
    fn best_balance_among_cuda_baselines_on_skew() {
        let skewed = CsrMatrix::from_coo(&rmat::<f32>(11, 8, RmatConfig::GRAPH500, false, 9));
        let b = DenseMatrix::<f32>::zeros(2048, 32);
        let (_, rode) = spmm(&skewed, &b);
        let (_, sput) = super::super::sputnik::spmm(&skewed, &b);
        let (_, cu) = super::super::cusparse_like::spmm(&skewed, &b);
        assert!(rode.imbalance <= sput.imbalance);
        assert!(rode.imbalance < cu.imbalance);
    }

    #[test]
    fn sddmm_correct() {
        let mask = CsrMatrix::from_coo(&random_uniform::<f32>(40, 40, 200, 3));
        let a = DenseMatrix::<f32>::from_fn(40, 8, |r, c| (r + c) as f32 * 0.1);
        let b = DenseMatrix::<f32>::from_fn(40, 8, |r, c| (r * 2 + c) as f32 * 0.05);
        let (out, _) = sddmm(&mask, &a, &b);
        let reference = mask.sddmm_reference(&a, &b);
        for (x, y) in out.values().iter().zip(reference.values()) {
            assert!((x - y).abs() < 1e-3);
        }
    }
}
