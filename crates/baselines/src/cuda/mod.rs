//! CUDA-core FP32 baselines.
//!
//! All five SpMM baselines compute the identical mathematical operation
//! (CSR × dense, f32); what distinguishes the published algorithms — and
//! what these implementations reproduce — is the **work decomposition**:
//! how rows are split, ordered and assigned to concurrent units, which
//! determines load balance and redundant traffic. Each module builds its
//! algorithm's actual unit list; the units drive both the (Rayon) parallel
//! execution and the wave scheduling model.

pub mod cusparse_like;
pub mod gespmm;
pub mod gnnadvisor;
pub mod rode;
pub mod sputnik;

use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_tcu::KernelCounters;
use rayon::prelude::*;

/// Row-parallel f32 SpMM — the shared numeric engine (each baseline's
/// decomposition governs scheduling, not values).
pub(crate) fn spmm_rows_f32(csr: &CsrMatrix<f32>, b: &DenseMatrix<f32>) -> DenseMatrix<f32> {
    let n = b.cols();
    let mut out = DenseMatrix::<f32>::zeros(csr.rows(), n);
    out.as_mut_slice().par_chunks_mut(n.max(1)).enumerate().for_each(|(r, orow)| {
        if n == 0 {
            return;
        }
        for (&c, &v) in csr.row_cols(r).iter().zip(csr.row_values(r)) {
            let brow = b.row(c as usize);
            for j in 0..n {
                orow[j] += v * brow[j];
            }
        }
    });
    out
}

/// Edge-parallel f32 SDDMM: `out[i,j] = mask[i,j] · <a_i, b_j>`.
pub(crate) fn sddmm_rows_f32(
    mask: &CsrMatrix<f32>,
    a: &DenseMatrix<f32>,
    b: &DenseMatrix<f32>,
) -> CsrMatrix<f32> {
    let k = a.cols();
    let values: Vec<f32> = (0..mask.rows())
        .into_par_iter()
        .flat_map_iter(|r| {
            let arow = a.row(r);
            mask.row_cols(r)
                .iter()
                .zip(mask.row_values(r))
                .map(|(&c, &m)| {
                    let brow = b.row(c as usize);
                    let mut acc = 0.0f32;
                    for t in 0..k {
                        acc += arow[t] * brow[t];
                    }
                    acc * m
                })
                .collect::<Vec<_>>()
        })
        .collect();
    CsrMatrix::new(
        mask.rows(),
        mask.cols(),
        mask.row_ptr().to_vec(),
        mask.col_idx().to_vec(),
        values,
    )
}

/// Nonzeros per row, as the unit-cost input of the wave model.
pub(crate) fn row_lengths(csr: &CsrMatrix<f32>) -> Vec<u64> {
    (0..csr.rows()).map(|r| csr.row_len(r) as u64).collect()
}

/// Analytic SpMM traffic of a CSR row-traversal kernel.
///
/// * `sparse_passes` — how many times the kernel re-reads the CSR arrays
///   (once per concurrently-scheduled N-tile unless the kernel caches the
///   row, as GE-SpMM's CRC does).
/// * `extra_store_units` — additional partial-result rows written (RoDe's
///   long-row groups, GNNAdvisor's neighbor-group atomics).
pub(crate) fn spmm_counters(
    csr: &CsrMatrix<f32>,
    n: usize,
    sparse_passes: u64,
    extra_store_units: u64,
) -> KernelCounters {
    let nnz = csr.nnz() as u64;
    let rows = csr.rows() as u64;
    let loads = nnz * 8 * sparse_passes // col_idx (4B) + value (4B)
        + nnz * n as u64 * 4; // a B-row segment per nonzero
    let stores = (rows + extra_store_units) * n as u64 * 4;
    KernelCounters {
        cuda_flops: 2 * nnz * n as u64,
        bytes_loaded: loads,
        bytes_stored: stores,
        ideal_bytes_loaded: loads,
        ideal_bytes_stored: stores,
        load_transactions: loads.div_ceil(32),
        store_transactions: stores.div_ceil(32),
        ..Default::default()
    }
}

/// Analytic SDDMM traffic of an edge-traversal kernel.
pub(crate) fn sddmm_counters(mask: &CsrMatrix<f32>, k: usize) -> KernelCounters {
    let nnz = mask.nnz() as u64;
    let loads = nnz * (2 * k as u64 * 4 + 8); // two K-vectors + idx/val per edge
    let stores = nnz * 4;
    KernelCounters {
        cuda_flops: 2 * nnz * k as u64,
        bytes_loaded: loads,
        bytes_stored: stores,
        ideal_bytes_loaded: loads,
        ideal_bytes_stored: stores,
        load_transactions: loads.div_ceil(32),
        store_transactions: stores.div_ceil(32),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_matrix::gen::random_uniform;

    #[test]
    fn shared_spmm_matches_reference() {
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(70, 50, 500, 1));
        let b = DenseMatrix::<f32>::from_fn(50, 24, |r, c| (r as f32 - c as f32) * 0.1);
        let out = spmm_rows_f32(&csr, &b);
        assert!(out.max_abs_diff(&csr.spmm_reference(&b)) < 1e-4);
    }

    #[test]
    fn shared_sddmm_matches_reference() {
        let mask = CsrMatrix::from_coo(&random_uniform::<f32>(40, 40, 300, 2));
        let a = DenseMatrix::<f32>::from_fn(40, 16, |r, c| ((r + c) % 5) as f32 * 0.3);
        let b = DenseMatrix::<f32>::from_fn(40, 16, |r, c| ((r * c) % 7) as f32 * 0.2);
        let out = sddmm_rows_f32(&mask, &a, &b);
        let reference = mask.sddmm_reference(&a, &b);
        for (x, y) in out.values().iter().zip(reference.values()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn counter_arithmetic() {
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(64, 64, 400, 3));
        let k = spmm_counters(&csr, 128, 1, 0);
        assert_eq!(k.cuda_flops, 2 * csr.nnz() as u64 * 128);
        let k2 = spmm_counters(&csr, 128, 4, 0);
        assert!(k2.bytes_loaded > k.bytes_loaded);
        let ks = sddmm_counters(&csr, 32);
        assert_eq!(ks.cuda_flops, 2 * csr.nnz() as u64 * 32);
    }
}
