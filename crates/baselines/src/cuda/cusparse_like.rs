//! cuSPARSE-like CSR SpMM: the vendor-library baseline every speedup in
//! Figure 11 is normalized to.
//!
//! Modelled as the classic `csrmm` scheme: a warp per row per 32-column
//! output tile, rows scheduled in matrix order, the CSR row re-read by
//! every column tile. Robust but generic: no load balancing and redundant
//! sparse traffic on wide dense operands.

use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_tcu::cost::ComputeClass;

use crate::run::BaselineRun;
use crate::wave::{imbalance_factor, DEFAULT_PARALLELISM};

use super::{row_lengths, spmm_counters, spmm_rows_f32};

/// Output columns covered by one scheduled unit.
const TILE_N: usize = 32;

/// cuSPARSE-like SpMM. Returns the product and the modelled run.
pub fn spmm(csr: &CsrMatrix<f32>, b: &DenseMatrix<f32>) -> (DenseMatrix<f32>, BaselineRun) {
    let out = spmm_rows_f32(csr, b);
    let n = b.cols();
    let tiles = n.div_ceil(TILE_N).max(1) as u64;
    let counters = spmm_counters(csr, n, tiles, 0);
    // Each (row, tile) pair is a unit; units of one row are adjacent in
    // the schedule, so the wave distribution equals the row distribution
    // repeated per tile.
    let lens = row_lengths(csr);
    let units: Vec<u64> =
        lens.iter().flat_map(|&l| std::iter::repeat_n(l, tiles as usize)).collect();
    let run = BaselineRun {
        counters,
        imbalance: imbalance_factor(&units, DEFAULT_PARALLELISM),
        class: ComputeClass::CudaFp32,
    };
    (out, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_matrix::gen::{random_uniform, rmat, RmatConfig};

    #[test]
    fn correct_product() {
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(60, 40, 400, 1));
        let b = DenseMatrix::<f32>::from_fn(40, 33, |r, c| ((r * 3 + c) % 9) as f32 * 0.1);
        let (out, run) = spmm(&csr, &b);
        assert!(out.max_abs_diff(&csr.spmm_reference(&b)) < 1e-4);
        assert!(run.imbalance >= 1.0);
        assert!(run.counters.cuda_flops > 0);
    }

    #[test]
    fn skewed_matrices_pay_imbalance() {
        let uniform = CsrMatrix::from_coo(&random_uniform::<f32>(2048, 2048, 16384, 2));
        let skewed = CsrMatrix::from_coo(&rmat::<f32>(11, 8, RmatConfig::GRAPH500, false, 2));
        let b_u = DenseMatrix::<f32>::zeros(2048, 32);
        let (_, run_u) = spmm(&uniform, &b_u);
        let (_, run_s) = spmm(&skewed, &b_u);
        assert!(
            run_s.imbalance > run_u.imbalance,
            "skewed {} vs uniform {}",
            run_s.imbalance,
            run_u.imbalance
        );
    }
}
