//! GNNAdvisor (Wang et al., OSDI'21): 2-D workload management — each
//! row's neighbor list is chopped into fixed-size *neighbor groups*, the
//! scheduling unit, giving good balance at the cost of atomic partial
//! accumulation into the output.

use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_tcu::cost::ComputeClass;

use crate::run::BaselineRun;
use crate::wave::{imbalance_factor, split_rows, DEFAULT_PARALLELISM};

use super::{row_lengths, spmm_counters, spmm_rows_f32};

/// Neighbors per group (GNNAdvisor's neighbor-group size).
pub const NEIGHBOR_GROUP: u64 = 32;

/// GNNAdvisor SpMM.
pub fn spmm(csr: &CsrMatrix<f32>, b: &DenseMatrix<f32>) -> (DenseMatrix<f32>, BaselineRun) {
    let out = spmm_rows_f32(csr, b);
    let lens = row_lengths(csr);
    let units = split_rows(&lens, NEIGHBOR_GROUP);
    // Every group beyond the first of a row accumulates atomically into
    // the output row — extra store traffic.
    let extra_stores = (units.len() - csr.rows()) as u64;
    let counters = spmm_counters(csr, b.cols(), 1, extra_stores);
    let run = BaselineRun {
        counters,
        imbalance: imbalance_factor(&units, DEFAULT_PARALLELISM),
        class: ComputeClass::CudaFp32,
    };
    (out, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_matrix::gen::{random_uniform, rmat, RmatConfig};

    #[test]
    fn correct_product() {
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(48, 48, 300, 8));
        let b = DenseMatrix::<f32>::from_fn(48, 16, |r, c| ((r ^ c) % 9) as f32 * 0.1);
        let (out, run) = spmm(&csr, &b);
        assert!(out.max_abs_diff(&csr.spmm_reference(&b)) < 1e-4);
        assert!(run.imbalance >= 1.0);
    }

    #[test]
    fn small_groups_balance_but_cost_stores() {
        let skewed = CsrMatrix::from_coo(&rmat::<f32>(11, 8, RmatConfig::GRAPH500, false, 4));
        let b = DenseMatrix::<f32>::zeros(2048, 32);
        let (_, adv) = spmm(&skewed, &b);
        let (_, cu) = super::super::cusparse_like::spmm(&skewed, &b);
        assert!(adv.imbalance < cu.imbalance);
        assert!(adv.counters.bytes_stored > cu.counters.bytes_stored);
    }
}
