//! Sputnik (Gale et al., SC'20): one-dimensional tiling with **row
//! swizzle** — rows are sorted by length before scheduling so each wave
//! executes near-homogeneous work, plus vector memory accesses (modelled
//! as single-pass sparse reads).

use fs_matrix::{CsrMatrix, DenseMatrix};
use fs_tcu::cost::ComputeClass;

use crate::run::BaselineRun;
use crate::wave::{imbalance_factor, swizzle, DEFAULT_PARALLELISM};

use super::{row_lengths, sddmm_counters, sddmm_rows_f32, spmm_counters, spmm_rows_f32};

/// Sputnik SpMM (1-D tiling + row swizzle).
pub fn spmm(csr: &CsrMatrix<f32>, b: &DenseMatrix<f32>) -> (DenseMatrix<f32>, BaselineRun) {
    let out = spmm_rows_f32(csr, b);
    let counters = spmm_counters(csr, b.cols(), 1, 0);
    let sorted = swizzle(&row_lengths(csr));
    let run = BaselineRun {
        counters,
        imbalance: imbalance_factor(&sorted, DEFAULT_PARALLELISM),
        class: ComputeClass::CudaFp32,
    };
    (out, run)
}

/// Sputnik SDDMM (edge-parallel with swizzled row scheduling).
pub fn sddmm(
    mask: &CsrMatrix<f32>,
    a: &DenseMatrix<f32>,
    b: &DenseMatrix<f32>,
) -> (CsrMatrix<f32>, BaselineRun) {
    let out = sddmm_rows_f32(mask, a, b);
    let counters = sddmm_counters(mask, a.cols());
    let sorted = swizzle(&row_lengths(mask));
    let run = BaselineRun {
        counters,
        imbalance: imbalance_factor(&sorted, DEFAULT_PARALLELISM),
        class: ComputeClass::CudaFp32,
    };
    (out, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_matrix::gen::{random_uniform, rmat, RmatConfig};

    #[test]
    fn correct_products() {
        let csr = CsrMatrix::from_coo(&random_uniform::<f32>(50, 50, 400, 6));
        let b = DenseMatrix::<f32>::from_fn(50, 16, |r, c| ((r * 2 + c) % 13) as f32 * 0.1);
        let (out, _) = spmm(&csr, &b);
        assert!(out.max_abs_diff(&csr.spmm_reference(&b)) < 1e-4);
        let a = DenseMatrix::<f32>::from_fn(50, 16, |r, c| ((r + 3 * c) % 7) as f32 * 0.2);
        let (sd, run) = sddmm(&csr, &a, &b);
        let reference = csr.sddmm_reference(&a, &b);
        for (x, y) in sd.values().iter().zip(reference.values()) {
            assert!((x - y).abs() < 1e-3);
        }
        assert!(run.imbalance >= 1.0);
    }

    #[test]
    fn swizzle_beats_natural_order_on_skewed_graphs() {
        let skewed = CsrMatrix::from_coo(&rmat::<f32>(11, 8, RmatConfig::GRAPH500, false, 7));
        let b = DenseMatrix::<f32>::zeros(2048, 32);
        let (_, sput) = spmm(&skewed, &b);
        let (_, cu) = super::super::cusparse_like::spmm(&skewed, &b);
        assert!(
            sput.imbalance < cu.imbalance,
            "sputnik {} vs cusparse {}",
            sput.imbalance,
            cu.imbalance
        );
    }
}
