//! The wave scheduling model: how much wall-clock a GPU loses to load
//! imbalance under a given work decomposition.
//!
//! A GPU executes a grid of work units (rows, row chunks, neighbor
//! groups…) in *waves* of `parallelism` concurrent units; each wave lasts
//! as long as its largest unit. The ratio of wave-summed time to perfectly
//! balanced time is the kernel's imbalance factor — ≥ 1, equal to 1 when
//! every unit in a wave is the same size.
//!
//! This is the axis on which the CUDA-core baselines actually differ:
//! cuSPARSE-like kernels schedule whole rows in matrix order; Sputnik
//! sorts rows by length first (row swizzle); GNNAdvisor groups neighbors
//! into fixed-size chunks; RoDe splits long rows into bounded groups.

/// Work units concurrently resident on the GPU (≈ 4 warps × ~128 SMs; the
/// exact value only shifts all baselines together).
pub const DEFAULT_PARALLELISM: usize = 512;

/// Imbalance factor of executing `unit_costs` in scheduling order in waves
/// of `parallelism`: `Σ_wave max(wave) × parallelism / Σ costs` (≥ 1).
///
/// Returns 1.0 for empty work.
///
/// ```
/// use fs_baselines::wave::imbalance_factor;
///
/// // Homogeneous work is perfectly balanced.
/// assert_eq!(imbalance_factor(&[5; 100], 10), 1.0);
/// // One 100-cost unit among 1-cost units dominates its wave.
/// let mut skewed = vec![1u64; 9];
/// skewed.push(100);
/// assert!(imbalance_factor(&skewed, 10) > 5.0);
/// ```
pub fn imbalance_factor(unit_costs: &[u64], parallelism: usize) -> f64 {
    assert!(parallelism > 0);
    let total: u64 = unit_costs.iter().sum();
    if total == 0 {
        return 1.0;
    }
    // Small grids cannot use the whole machine, but the roofline the
    // factor multiplies already assumes full-device throughput; capping
    // the effective parallelism at the grid size keeps the factor a pure
    // *skew* measure (launch tails are covered by the fixed overhead).
    let p_eff = parallelism.min(unit_costs.len());
    let mut wave_time = 0u64;
    for wave in unit_costs.chunks(p_eff) {
        wave_time += wave.iter().copied().max().unwrap_or(0);
    }
    (wave_time as f64 * p_eff as f64 / total as f64).max(1.0)
}

/// Split row lengths into bounded-size chunks (RoDe's decomposition: rows
/// longer than `bound` become several units of ≤ `bound`).
pub fn split_rows(lengths: &[u64], bound: u64) -> Vec<u64> {
    assert!(bound > 0);
    let mut out = Vec::with_capacity(lengths.len());
    for &len in lengths {
        let mut rest = len;
        while rest > bound {
            out.push(bound);
            rest -= bound;
        }
        out.push(rest);
    }
    out
}

/// Sort unit costs descending (Sputnik's row swizzle): waves become
/// near-homogeneous.
pub fn swizzle(lengths: &[u64]) -> Vec<u64> {
    let mut sorted = lengths.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    sorted
}

/// Imbalance factor of a tensor-core kernel whose scheduling unit is one
/// (row window, output tile) pair — a warp per window per `n_tile`-wide
/// slice of the dense operand, the launch shape all the TCU kernels
/// share. The unit cost is the window's TC block count. Applies equally
/// to FlashSparse, DTC-SpMM and TC-GNN so their comparison stays fair.
pub fn tcu_window_imbalance<S: fs_precision::Scalar>(
    me: &fs_format::MeBcrs<S>,
    output_tiles: usize,
) -> f64 {
    let tiles = output_tiles.max(1);
    let units: Vec<u64> = (0..me.num_windows())
        .flat_map(|w| std::iter::repeat_n(me.blocks_in_window(w) as u64, tiles))
        .collect();
    imbalance_factor(&units, DEFAULT_PARALLELISM)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_work_has_factor_one() {
        let costs = vec![10u64; 1000];
        assert!((imbalance_factor(&costs, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_giant_row_dominates() {
        // 1023 rows of 1 plus one row of 10000, parallelism 512:
        // nearly all time is the giant row's wave.
        let mut costs = vec![1u64; 1023];
        costs.push(10_000);
        let f = imbalance_factor(&costs, 512);
        assert!(f > 100.0, "factor={f}");
    }

    #[test]
    fn swizzle_improves_mixed_work() {
        // Alternating long/short rows: natural order pairs a long row into
        // every wave; sorted order segregates them.
        let costs: Vec<u64> = (0..1024).map(|i| if i % 2 == 0 { 100 } else { 1 }).collect();
        let natural = imbalance_factor(&costs, 64);
        let sorted = imbalance_factor(&swizzle(&costs), 64);
        assert!(sorted < natural, "sorted={sorted} natural={natural}");
    }

    #[test]
    fn splitting_bounds_the_worst_case() {
        let mut costs = vec![4u64; 2000];
        costs.push(100_000);
        let unsplit = imbalance_factor(&costs, 512);
        let split = imbalance_factor(&split_rows(&costs, 256), 512);
        assert!(split < unsplit / 5.0, "split={split} unsplit={unsplit}");
        // Splitting preserves total work.
        assert_eq!(split_rows(&costs, 256).iter().sum::<u64>(), costs.iter().sum::<u64>());
    }

    #[test]
    fn split_rows_edge_cases() {
        assert_eq!(split_rows(&[0], 10), vec![0]);
        assert_eq!(split_rows(&[10], 10), vec![10]);
        assert_eq!(split_rows(&[11], 10), vec![10, 1]);
        assert_eq!(split_rows(&[25], 10), vec![10, 10, 5]);
    }

    #[test]
    fn empty_work() {
        assert_eq!(imbalance_factor(&[], 512), 1.0);
        assert_eq!(imbalance_factor(&[0, 0], 512), 1.0);
    }
}
