//! TC-GNN-style kernels (Wang et al., USENIX ATC'23): WMMA `m16n16k8`
//! TF32 over 16×1 nonzero vectors, with the SGT (sparse graph
//! translation) position checks.
//!
//! TC-GNN condenses nonzero columns like the other TCU approaches, but
//! its kernel re-derives each element's position inside the condensed
//! tile on the fly: for every TC block it scans the window's nonzero
//! list, testing membership. That per-element scalar work grows with
//! `window_nnz × blocks_per_window` and starves the tensor cores on
//! large/dense matrices — the reason the paper plots TC-GNN's GFLOPS as
//! ≈0 beyond 5M nonzeros (Figure 11 discussion).

use fs_format::MeBcrs;
use fs_matrix::DenseMatrix;
use fs_precision::{Scalar, Tf32};
use fs_tcu::cost::ComputeClass;
use fs_tcu::{wmma_execute_tf32, KernelCounters, TrafficClass, TransactionCounter};
use rayon::prelude::*;

use super::SPEC16;
use crate::run::BaselineRun;

/// Scalar-op cost per position check. A check is nominally a compare +
/// select, but the SGT scan is branch-divergent and serialized within the
/// warp, so each check occupies the SM for tens of issue slots. We charge
/// 64 flop-equivalents; the paper's "≥50×" Table 5 rows arise at
/// 100M-nonzero scales where the scan term grows quadratically — at our
/// scaled-down sizes the same mechanism yields a milder (but still
/// superlinear) penalty, as EXPERIMENTS.md discusses.
const CHECK_FLOPS: u64 = 64;

/// TC-GNN SpMM: WMMA `m16n16k8`, 16-row windows, 16-column output tiles.
pub fn spmm_tcgnn(a: &MeBcrs<Tf32>, b: &DenseMatrix<Tf32>) -> (DenseMatrix<Tf32>, BaselineRun) {
    assert_eq!(a.spec(), SPEC16, "TC-GNN uses the 16x1 layout");
    assert_eq!(a.cols(), b.rows());
    const V: usize = 16; // window height = WMMA m
    const K: usize = 8; // vectors per block = WMMA k
    const NT: usize = 16; // output tile = WMMA n
    let n = b.cols();
    let rows = a.rows();

    let mut out = DenseMatrix::<Tf32>::zeros(rows, n);
    if n == 0 || rows == 0 {
        return (out, BaselineRun::balanced(KernelCounters::default(), ComputeClass::TcuTf32));
    }

    let counters: KernelCounters = out
        .as_mut_slice()
        .par_chunks_mut(V * n)
        .enumerate()
        .map(|(w, out_window)| {
            let mut counters = KernelCounters::default();
            let num_blocks = a.blocks_in_window(w);
            if num_blocks == 0 {
                return counters;
            }
            let mut tc = TransactionCounter::new();
            let window_rows = (rows - w * V).min(V);
            // Window nonzeros (for the SGT position-check cost).
            let window_nnz: u64 = (0..num_blocks)
                .map(|blk| {
                    let w_b = a.block_width(w, blk);
                    (0..window_rows)
                        .map(|i| {
                            a.block_row(w, blk, i)[..w_b].iter().filter(|v| !v.is_zero()).count()
                                as u64
                        })
                        .sum::<u64>()
                })
                .sum();

            let mut a_tile = vec![0.0f32; V * K];
            let mut b_tile = vec![0.0f32; K * NT];
            for j0 in (0..n).step_by(NT) {
                let tile_cols = (n - j0).min(NT);
                let mut c_tile = vec![0.0f32; V * NT];
                for blk in 0..num_blocks {
                    let w_b = a.block_width(w, blk);
                    let cols = a.block_cols(w, blk);
                    a_tile.iter_mut().for_each(|x| *x = 0.0);
                    for i in 0..window_rows {
                        let row = a.block_row(w, blk, i);
                        for (t, &val) in row.iter().enumerate() {
                            a_tile[i * K + t] = val.to_f32();
                        }
                    }
                    b_tile.iter_mut().for_each(|x| *x = 0.0);
                    for (t, &c) in cols.iter().enumerate() {
                        let brow = b.row(c as usize);
                        for j in 0..tile_cols {
                            b_tile[t * NT + j] = brow[j0 + j].to_f32();
                        }
                    }
                    // Loads: whole tiles (the WMMA API loads full fragments).
                    let sparse: Vec<(u64, u32)> =
                        (0..V).map(|i| (a.value_addr(w, blk, i, 0), (w_b * 4) as u32)).collect();
                    tc.warp_load_as(TrafficClass::SparseValues, sparse, &mut counters);
                    let dense: Vec<(u64, u32)> = cols
                        .iter()
                        .map(|&c| (b.addr_of(c as usize, j0), (tile_cols * 4) as u32))
                        .collect();
                    tc.warp_load_as(TrafficClass::DenseOperand, dense, &mut counters);

                    wmma_execute_tf32(&a_tile, &b_tile, &mut c_tile, &mut counters);
                    // SGT position checks: scan the window's nonzeros per block.
                    counters.cuda_flops += window_nnz * CHECK_FLOPS;
                }
                for i in 0..window_rows {
                    for j in 0..tile_cols {
                        out_window[i * n + j0 + j] = Tf32::from_f32(c_tile[i * NT + j]);
                    }
                }
                let out_base = (w * V) as u64 * n as u64 * 4;
                let stores: Vec<(u64, u32)> = (0..window_rows)
                    .map(|i| (out_base + (i * n + j0) as u64 * 4, (tile_cols * 4) as u32))
                    .collect();
                tc.warp_store(stores, &mut counters);
            }
            counters
        })
        .sum();

    let run = BaselineRun {
        counters,
        imbalance: crate::wave::tcu_window_imbalance(a, b.cols().div_ceil(16)),
        class: ComputeClass::TcuTf32,
    };
    (out, run)
}

/// TC-GNN SDDMM: WMMA-based sampled product with the same SGT overhead.
pub fn sddmm_tcgnn(
    mask: &MeBcrs<Tf32>,
    a: &DenseMatrix<Tf32>,
    b: &DenseMatrix<Tf32>,
) -> (MeBcrs<Tf32>, BaselineRun) {
    // Numerics via the 16×1 MMA path (WMMA and MMA agree bit-for-bit in
    // the simulator); TC-GNN's cost signature is the position checks.
    let (out, mut run) = super::dtc::sddmm_16x1::<Tf32>(mask, a, b);
    let total_nnz: u64 = mask.nnz() as u64;
    let blocks: u64 = mask.num_blocks() as u64;
    let windows = mask.num_windows().max(1) as u64;
    run.counters.cuda_flops += total_nnz * blocks.div_ceil(windows) * CHECK_FLOPS;
    run.class = ComputeClass::TcuTf32;
    (out, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_matrix::gen::{random_uniform, rmat, RmatConfig};
    use fs_matrix::CsrMatrix;
    use fs_tcu::GpuSpec;

    #[test]
    fn spmm_matches_reference() {
        let csr = CsrMatrix::from_coo(&random_uniform::<Tf32>(70, 60, 500, 3));
        let me = MeBcrs::from_csr(&csr, SPEC16);
        let b = DenseMatrix::<Tf32>::from_fn(60, 20, |r, c| (((r + 2 * c) % 9) as f32) * 0.125);
        let (out, run) = spmm_tcgnn(&me, &b);
        assert!(out.max_abs_diff(&csr.spmm_reference(&b)) < 1e-2);
        assert!(run.counters.wmma_count > 0);
        assert!(run.counters.cuda_flops > 0, "position checks must be counted");
    }

    #[test]
    fn position_checks_grow_superlinearly_with_density() {
        // The SGT scan cost is nnz × blocks per window: doubling density
        // grows it faster than the useful work — the mechanism behind
        // TC-GNN's collapse on large matrices.
        let sparse_g = CsrMatrix::from_coo(&rmat::<Tf32>(9, 2, RmatConfig::GRAPH500, false, 1));
        let dense_g = CsrMatrix::from_coo(&rmat::<Tf32>(9, 16, RmatConfig::GRAPH500, false, 1));
        let b = DenseMatrix::<Tf32>::zeros(512, 16);
        let (_, run_s) = spmm_tcgnn(&MeBcrs::from_csr(&sparse_g, SPEC16), &b);
        let (_, run_d) = spmm_tcgnn(&MeBcrs::from_csr(&dense_g, SPEC16), &b);
        let nnz_ratio = dense_g.nnz() as f64 / sparse_g.nnz() as f64;
        let check_ratio = run_d.counters.cuda_flops as f64 / run_s.counters.cuda_flops as f64;
        assert!(
            check_ratio > nnz_ratio,
            "check ratio {check_ratio} must exceed nnz ratio {nnz_ratio}"
        );
        // And on a large dense graph the checks, not the WMMAs, bound time.
        let model = fs_tcu::cost::CostModel::new(GpuSpec::RTX4090);
        let cuda_t = run_d.counters.cuda_flops as f64
            / model.sustained_flops(fs_tcu::cost::ComputeClass::CudaFp32);
        let tcu_t = run_d.counters.tcu_flops as f64
            / model.sustained_flops(fs_tcu::cost::ComputeClass::TcuTf32);
        assert!(cuda_t > tcu_t, "cuda {cuda_t} vs tcu {tcu_t}");
    }

    #[test]
    fn sddmm_runs_and_counts_checks() {
        let mask = CsrMatrix::from_coo(&random_uniform::<Tf32>(32, 32, 150, 5)).with_unit_values();
        let me = MeBcrs::from_csr(&mask, SPEC16);
        let a = DenseMatrix::<Tf32>::from_fn(32, 8, |r, c| (r + c) as f32 * 0.1);
        let b = DenseMatrix::<Tf32>::from_fn(32, 8, |r, c| (r * 2 + c) as f32 * 0.1);
        let (out, run) = sddmm_tcgnn(&me, &a, &b);
        let reference = mask.sddmm_reference(&a, &b);
        let out_dense = out.to_dense();
        for (r, c, v) in reference.iter() {
            // Tolerance: TF32 output rounding is half an ULP, relative 2⁻¹¹.
            let tol = 1e-3 * v.abs().max(1.0);
            assert!(
                (out_dense.get_f32(r, c) - v).abs() < tol,
                "({r},{c}): {} vs {v}",
                out_dense.get_f32(r, c)
            );
        }
        assert!(run.counters.cuda_flops > 0);
    }
}
