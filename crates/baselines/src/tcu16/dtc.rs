//! DTC-SpMM-style kernels: `mma.m16n8k8` in the **direct** orientation.
//!
//! The sparse TC block is the MMA *left* operand (`16×8`: 16-row window ×
//! 8 nonzero vectors), the dense block the right operand (`8×8`), the
//! output `16×8` — so each MMA covers only 8 output columns and the
//! nonzero-vector height is pinned to 16, the granularity whose
//! redundancy FlashSparse eliminates. The FP16 instantiation doubles as
//! the paper's Figure 14 "16×1 FlashSparse" ablation; the TF32
//! instantiation is the DTC-SpMM baseline of Figures 11/12 and Table 5.

use fs_format::MeBcrs;
use fs_matrix::DenseMatrix;
use fs_precision::Scalar;
use fs_tcu::{
    mma_execute, FragKind, Fragment, KernelCounters, Precision, TrafficClass, TransactionCounter,
};
use rayon::prelude::*;

use flashsparse::TcuPrecision;

use super::{shape16, SPEC16};
use crate::run::BaselineRun;

/// Output columns covered by one direct-orientation MMA (`n = 8`).
pub const N_TILE_16: usize = 8;

/// Translate a CSR matrix into the 16×1 ME-BCRS layout these kernels use.
pub fn format16<S: TcuPrecision>(csr: &fs_matrix::CsrMatrix<S>) -> MeBcrs<S> {
    MeBcrs::from_csr(csr, SPEC16)
}

/// 16×1-granularity SpMM (DTC-SpMM style). `a` must be in [`SPEC16`]
/// layout.
pub fn spmm_16x1<S: TcuPrecision>(
    a: &MeBcrs<S>,
    b: &DenseMatrix<S>,
) -> (DenseMatrix<S>, BaselineRun) {
    assert_eq!(a.spec(), SPEC16, "16x1 kernel requires the v=16 layout");
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let shape = shape16::<S>();
    let v = shape.m; // 16
    let n = b.cols();
    let rows = a.rows();

    let mut out = DenseMatrix::<S>::zeros(rows, n);
    if n == 0 || rows == 0 {
        return (out, BaselineRun::balanced(KernelCounters::default(), S::compute_class()));
    }

    let counters: KernelCounters = out
        .as_mut_slice()
        .par_chunks_mut(v * n)
        .enumerate()
        .map(|(w, out_window)| spmm_window::<S>(a, b, w, out_window))
        .sum();

    let run = BaselineRun {
        counters,
        imbalance: crate::wave::tcu_window_imbalance(a, b.cols().div_ceil(N_TILE_16)),
        class: S::compute_class(),
    };
    (out, run)
}

fn spmm_window<S: TcuPrecision>(
    a: &MeBcrs<S>,
    b: &DenseMatrix<S>,
    w: usize,
    out_window: &mut [S],
) -> KernelCounters {
    let shape = shape16::<S>();
    let v = shape.m;
    let k = shape.k;
    let n = b.cols();
    let rows = a.rows();
    let window_rows = (rows - w * v).min(v);

    let mut counters = KernelCounters::default();
    let num_blocks = a.blocks_in_window(w);
    if num_blocks == 0 {
        return counters;
    }
    let mut tc = TransactionCounter::new();

    for blk in 0..num_blocks {
        let w_b = a.block_width(w, blk);
        let base = (a.window_ptr()[w] + blk * k) as u64 * 4;
        let accesses: Vec<(u64, u32)> = (0..w_b).map(|j| (base + j as u64 * 4, 4)).collect();
        tc.warp_load_as(TrafficClass::Indices, accesses, &mut counters);
    }

    let mut a_tile = vec![0.0f32; v * k]; // sparse block, 16×8 row-major
    let mut b_tile = vec![0.0f32; k * N_TILE_16]; // dense block, 8×8

    for j0 in (0..n).step_by(N_TILE_16) {
        let tile_cols = (n - j0).min(N_TILE_16);
        let mut c_frag = Fragment::zeros(shape, FragKind::CD);

        for blk in 0..num_blocks {
            let w_b = a.block_width(w, blk);
            let cols = a.block_cols(w, blk);

            // Sparse TC block → MMA left operand (16×8), zero-padded.
            a_tile.iter_mut().for_each(|x| *x = 0.0);
            for i in 0..window_rows {
                let row = a.block_row(w, blk, i);
                for (t, &val) in row.iter().enumerate() {
                    a_tile[i * k + t] = val.to_f32();
                }
            }
            count_sparse_load_16::<S>(a, w, blk, w_b, &mut tc, &mut counters);

            // Dense TC block → MMA right operand (8×8).
            b_tile.iter_mut().for_each(|x| *x = 0.0);
            for (t, &c) in cols.iter().enumerate() {
                let brow = b.row(c as usize);
                for j in 0..tile_cols {
                    b_tile[t * N_TILE_16 + j] = brow[j0 + j].to_f32();
                }
            }
            count_dense_load_16::<S>(b, cols, w_b, j0, n, &mut tc, &mut counters);

            let a_frag = Fragment::from_tile(shape, FragKind::A, &a_tile);
            let b_frag = Fragment::from_tile(shape, FragKind::B, &b_tile);
            c_frag = mma_execute(shape, &a_frag, &b_frag, &c_frag, &mut counters);
        }

        // Store C (16×8) directly: rows = matrix rows, cols = dense cols.
        let c_tile = c_frag.to_tile();
        for i in 0..window_rows {
            for j in 0..tile_cols {
                out_window[i * n + j0 + j] = S::from_f32(c_tile[i * N_TILE_16 + j]);
            }
        }
        let out_base = (w * v) as u64 * n as u64 * S::BYTES as u64;
        // CD layout: lane stores column pairs (t·2, t·2+1) in rows g, g+8 —
        // adjacent columns coalesce into 2·BYTES accesses, 2 requests.
        for half in 0..2usize {
            let mut accesses: Vec<(u64, u32)> = Vec::with_capacity(32);
            for lane in 0..32usize {
                let g = lane >> 2;
                let t2 = (lane & 3) * 2;
                let i = g + 8 * half;
                if i >= window_rows {
                    continue;
                }
                let sz = match ((j0 + t2) < n, (j0 + t2 + 1) < n) {
                    (true, true) => 2 * S::BYTES as u32,
                    (true, false) => S::BYTES as u32,
                    _ => continue,
                };
                accesses.push((out_base + (i * n + j0 + t2) as u64 * S::BYTES as u64, sz));
            }
            tc.warp_store(accesses, &mut counters);
        }
    }

    counters
}

/// Sparse block load in the direct A-operand layout.
fn count_sparse_load_16<S: TcuPrecision>(
    a: &MeBcrs<S>,
    w: usize,
    blk: usize,
    w_b: usize,
    tc: &mut TransactionCounter,
    counters: &mut KernelCounters,
) {
    match S::PRECISION {
        Precision::Fp16 => {
            // Lane holds (g, t·2..t·2+1) and (g+8, t·2..t·2+1): 2 paired
            // requests of 4-byte accesses.
            for half in 0..2usize {
                let mut accesses: Vec<(u64, u32)> = Vec::with_capacity(32);
                for lane in 0..32usize {
                    let g = (lane >> 2) + 8 * half;
                    let t2 = (lane & 3) * 2;
                    if t2 + 1 < w_b {
                        accesses.push((a.value_addr(w, blk, g, t2), 4));
                    } else if t2 < w_b {
                        accesses.push((a.value_addr(w, blk, g, t2), 2));
                    }
                }
                tc.warp_load_as(TrafficClass::SparseValues, accesses, counters);
            }
        }
        Precision::Tf32 => {
            // 4 scalar registers: (g, t), (g+8, t), (g, t+4), (g+8, t+4).
            for reg in 0..4usize {
                let mut accesses: Vec<(u64, u32)> = Vec::with_capacity(32);
                for lane in 0..32usize {
                    let g = (lane >> 2) + 8 * (reg & 1);
                    let t = (lane & 3) + 4 * (reg >> 1);
                    if t < w_b {
                        accesses.push((a.value_addr(w, blk, g, t), 4));
                    }
                }
                tc.warp_load_as(TrafficClass::SparseValues, accesses, counters);
            }
        }
    }
}

/// Dense 8×8 block load in the direct B-operand layout (strided rows of B
/// — the 16×1 kernels cannot coalesce this the way FlashSparse's 8×16
/// blocks can).
fn count_dense_load_16<S: Scalar>(
    b: &DenseMatrix<S>,
    cols: &[u32],
    w_b: usize,
    j0: usize,
    n: usize,
    tc: &mut TransactionCounter,
    counters: &mut KernelCounters,
) {
    // Both FP16 (m16n8k8) and TF32 (m16n8k8) B fragments hold 2 registers
    // per lane; only the in-fragment position differs below.
    for reg in 0..2 {
        let mut accesses: Vec<(u64, u32)> = Vec::with_capacity(32);
        for lane in 0..32usize {
            let g = lane >> 2;
            let t = if S::BYTES == 2 { (lane & 3) * 2 + reg } else { (lane & 3) + 4 * reg };
            if t < w_b && j0 + g < n {
                accesses.push((b.addr_of(cols[t] as usize, j0 + g), S::BYTES as u32));
            }
        }
        tc.warp_load_as(TrafficClass::DenseOperand, accesses, counters);
    }
}

/// 16×1-granularity SDDMM: output block `16×8` (16 window rows × 8
/// sampled vectors), accumulated over `K` in chunks of 8.
pub fn sddmm_16x1<S: TcuPrecision>(
    mask: &MeBcrs<S>,
    a: &DenseMatrix<S>,
    b: &DenseMatrix<S>,
) -> (MeBcrs<S>, BaselineRun) {
    assert_eq!(mask.spec(), SPEC16, "16x1 kernel requires the v=16 layout");
    assert_eq!(a.rows(), mask.rows());
    assert_eq!(b.rows(), mask.cols());
    assert_eq!(a.cols(), b.cols());
    let shape = shape16::<S>();
    let v = shape.m;
    let k = shape.k;
    let kk = a.cols();
    let rows = mask.rows();

    let mut values = vec![S::ZERO; mask.values().len()];
    let mut slices: Vec<&mut [S]> = Vec::with_capacity(mask.num_windows());
    let mut rest = values.as_mut_slice();
    for w in 0..mask.num_windows() {
        let len = (mask.window_ptr()[w + 1] - mask.window_ptr()[w]) * v;
        let (head, tail) = rest.split_at_mut(len);
        slices.push(head);
        rest = tail;
    }

    let counters: KernelCounters = slices
        .into_par_iter()
        .enumerate()
        .map(|(w, out)| {
            let mut counters = KernelCounters::default();
            let nv = mask.vectors_in_window(w);
            if nv == 0 {
                return counters;
            }
            let mut tc = TransactionCounter::new();
            let window_rows = (rows - w * v).min(v);
            let window_val_base = mask.window_ptr()[w] * v;
            let win_cols = &mask.col_indices()[mask.window_ptr()[w]..mask.window_ptr()[w + 1]];

            let mut a_tile = vec![0.0f32; v * k];
            let mut b_tile = vec![0.0f32; k * 8];

            for blk in 0..mask.blocks_in_window(w) {
                let w_b = mask.block_width(w, blk);
                let mut c_frag = Fragment::zeros(shape, FragKind::CD);

                for k0 in (0..kk).step_by(k) {
                    let kw = (kk - k0).min(k);
                    // Left operand: A window rows × K chunk.
                    a_tile.iter_mut().for_each(|x| *x = 0.0);
                    let mut a_loads: Vec<(u64, u32)> = Vec::with_capacity(window_rows);
                    for i in 0..window_rows {
                        let arow = a.row(w * v + i);
                        for t in 0..kw {
                            a_tile[i * k + t] = arow[k0 + t].to_f32();
                        }
                        a_loads.push((a.addr_of(w * v + i, k0), (kw * S::BYTES) as u32));
                    }
                    tc.warp_load_as(TrafficClass::DenseOperand, a_loads, &mut counters);
                    // Right operand: sampled B rows × K chunk (transposed).
                    b_tile.iter_mut().for_each(|x| *x = 0.0);
                    let mut b_loads: Vec<(u64, u32)> = Vec::with_capacity(w_b);
                    for jj in 0..w_b {
                        let col = win_cols[blk * k + jj] as usize;
                        let brow = b.row(col);
                        for t in 0..kw {
                            b_tile[t * 8 + jj] = brow[k0 + t].to_f32();
                        }
                        b_loads.push((b.addr_of(col, k0), (kw * S::BYTES) as u32));
                    }
                    tc.warp_load_as(TrafficClass::DenseOperand, b_loads, &mut counters);

                    let a_frag = Fragment::from_tile(shape, FragKind::A, &a_tile);
                    let b_frag = Fragment::from_tile(shape, FragKind::B, &b_tile);
                    c_frag = mma_execute(shape, &a_frag, &b_frag, &c_frag, &mut counters);
                }

                // Write back into the 16×1 block layout.
                let c_tile = c_frag.to_tile(); // 16×8: (i, jj)
                let mut stores: Vec<(u64, u32)> = Vec::new();
                for i in 0..window_rows {
                    for jj in 0..w_b {
                        let m = mask.block_row(w, blk, i)[jj];
                        if !m.is_zero() {
                            let idx = mask.value_index(w, blk, i, jj) - window_val_base;
                            out[idx] = S::from_f32(c_tile[i * 8 + jj] * m.to_f32());
                            stores.push((mask.value_addr(w, blk, i, jj), S::BYTES as u32));
                        }
                    }
                }
                tc.warp_store(stores, &mut counters);
            }
            counters
        })
        .sum();

    let run = BaselineRun {
        counters,
        imbalance: crate::wave::tcu_window_imbalance(mask, 1),
        class: S::compute_class(),
    };
    (mask.with_values(values), run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashsparse::{spmm as flash_spmm, ThreadMapping};
    use fs_matrix::gen::{random_uniform, rmat, RmatConfig};
    use fs_matrix::CsrMatrix;
    use fs_precision::{Tf32, F16};

    #[test]
    fn fp16_spmm_matches_reference() {
        for seed in 0..3 {
            let csr = CsrMatrix::from_coo(&random_uniform::<F16>(70, 60, 500, seed));
            let me = format16(&csr);
            let b = DenseMatrix::<F16>::from_fn(60, 24, |r, c| (((r + c) % 9) as f32 - 4.0) * 0.25);
            let (out, run) = spmm_16x1(&me, &b);
            assert!(out.max_abs_diff(&csr.spmm_reference(&b)) < 0.51);
            assert!(run.counters.mma_count > 0);
        }
    }

    #[test]
    fn tf32_spmm_matches_reference() {
        let csr = CsrMatrix::from_coo(&random_uniform::<Tf32>(64, 64, 400, 1));
        let me = format16(&csr);
        let b = DenseMatrix::<Tf32>::from_fn(64, 17, |r, c| (((r * 3 + c) % 7) as f32) * 0.125);
        let (out, _) = spmm_16x1(&me, &b);
        assert!(out.max_abs_diff(&csr.spmm_reference(&b)) < 1e-2);
    }

    #[test]
    fn figure14_8x1_needs_fewer_mmas_and_bytes() {
        // The ablation: same matrix, FlashSparse 8×1 vs this 16×1 kernel.
        let csr = CsrMatrix::from_coo(&rmat::<F16>(9, 4, RmatConfig::GRAPH500, true, 13));
        let n = 128;
        let b = DenseMatrix::<F16>::from_fn(csr.cols(), n, |r, c| ((r + c) % 5) as f32 * 0.25);
        let me8 = MeBcrs::from_csr(&csr, F16::SPEC);
        let (out8, k8) = flash_spmm(&me8, &b, ThreadMapping::MemoryEfficient);
        let me16 = format16(&csr);
        let (out16, run16) = spmm_16x1(&me16, &b);
        assert!(out8.max_abs_diff(&out16) < 0.51, "both must compute the same product");
        assert!(
            (k8.mma_count as f64) < 0.8 * run16.counters.mma_count as f64,
            "8x1 {} vs 16x1 {}",
            k8.mma_count,
            run16.counters.mma_count
        );
        assert!(
            (k8.data_access_bytes() as f64) < 0.8 * run16.counters.data_access_bytes() as f64,
            "8x1 bytes {} vs 16x1 bytes {}",
            k8.data_access_bytes(),
            run16.counters.data_access_bytes()
        );
    }

    #[test]
    fn sddmm_16x1_matches_reference() {
        let mask = CsrMatrix::from_coo(&random_uniform::<F16>(48, 40, 300, 2)).with_unit_values();
        let a = DenseMatrix::<F16>::from_fn(48, 16, |r, c| (((r + c) % 7) as f32 - 3.0) * 0.25);
        let b = DenseMatrix::<F16>::from_fn(40, 16, |r, c| (((r * 2 + c) % 5) as f32 - 2.0) * 0.25);
        let me = format16(&mask);
        let (out, run) = sddmm_16x1(&me, &a, &b);
        let reference = mask.sddmm_reference(&a, &b);
        let out_dense = out.to_dense();
        for (r, c, v) in reference.iter() {
            assert!(
                (out_dense.get_f32(r, c) - v).abs() < 0.51,
                "({r},{c}): {} vs {v}",
                out_dense.get_f32(r, c)
            );
        }
        assert!(run.counters.mma_count > 0);
    }
}
