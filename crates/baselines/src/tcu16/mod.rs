//! Tensor-core baselines with the 16×1 vector granularity — the
//! state-of-the-art FlashSparse improves on.
//!
//! * [`dtc`] — DTC-SpMM-style kernels (ASPLOS'24): `mma.m16n8k8` in the
//!   *direct* orientation, so the sparse block is the left operand and
//!   the vector height is pinned to `m = 16`. The FP16 instantiation is
//!   exactly the paper's Figure 14 ablation ("FlashSparse with 16×1").
//! * [`tcgnn`] — TC-GNN-style kernels (ATC'23): WMMA `m16n16k8` TF32 with
//!   the SGT per-element position checks that dominate its runtime on
//!   large matrices (why Figure 11 reports its GFLOPS as ~0 beyond 5M
//!   nonzeros).

pub mod dtc;
pub mod tcgnn;

use fs_format::TcFormatSpec;
use fs_tcu::{MmaShape, Precision};

use flashsparse::TcuPrecision;

/// The 16×1 format spec (v = 16, k = 8) shared by both baselines.
pub const SPEC16: TcFormatSpec = TcFormatSpec { vector_len: 16, block_k: 8 };

/// The direct-orientation MMA shape for a precision (both use k = 8).
pub fn shape16<S: TcuPrecision>() -> MmaShape {
    match S::PRECISION {
        Precision::Fp16 => MmaShape::M16N8K8_F16,
        Precision::Tf32 => MmaShape::M16N8K8_TF32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_precision::{Tf32, F16};

    #[test]
    fn spec_and_shapes() {
        assert_eq!(SPEC16.vector_len, 16);
        assert_eq!(SPEC16.block_k, 8);
        assert_eq!(shape16::<F16>(), MmaShape::M16N8K8_F16);
        assert_eq!(shape16::<Tf32>(), MmaShape::M16N8K8_TF32);
    }
}
