//! Reference baselines the FlashSparse paper compares against, implemented
//! from their published algorithm descriptions.
//!
//! Two families:
//!
//! * [`cuda`] — CUDA-core FP32 kernels: a cuSPARSE-like row-parallel CSR
//!   SpMM, Sputnik's 1-D tiling with row swizzle, RoDe's row
//!   decomposition, GE-SpMM's coalesced row caching, and GNNAdvisor's
//!   neighbor grouping. These are real (Rayon-parallel) CPU
//!   implementations producing correct results, instrumented with exact
//!   byte/FLOP counts and a *wave scheduling model* ([`wave`]) that
//!   captures each algorithm's load-balancing behaviour — the axis the
//!   respective papers differentiate on.
//! * [`tcu16`] — the 16×1-vector tensor-core kernels of DTC-SpMM (MMA
//!   `m16n8k8`, direct orientation) and TC-GNN (WMMA `m16n16k8` with
//!   SGT position checks), run on the same warp-level simulator as
//!   FlashSparse. The DTC-style kernel doubles as the paper's Figure 14
//!   ablation ("FlashSparse with 16×1 vector size").
//!
//! Every kernel returns a [`BaselineRun`] bundling its counters and
//! imbalance factor; [`BaselineRun::simulated_time`] turns that into
//! roofline time on a given GPU.

pub mod cuda;
pub mod run;
pub mod tcu16;
pub mod wave;

pub use run::BaselineRun;
