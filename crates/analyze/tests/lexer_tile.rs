//! The lexer's one structural invariant, checked exhaustively: token
//! spans exactly tile the input — no gaps, no overlaps, no dropped
//! bytes — for randomly composed Rust-ish sources (proptest) and for
//! every real `.rs` file in the workspace.

use std::path::Path;

use analyze::lexer::{lex, Token};
use proptest::prelude::*;

fn assert_tiles(src: &str, ctx: &str) {
    let tokens: Vec<Token> = lex(src);
    let mut pos = 0usize;
    for t in &tokens {
        assert_eq!(t.start, pos, "{ctx}: gap or overlap before byte {pos}");
        assert!(t.end > t.start, "{ctx}: empty token at byte {pos}");
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "{ctx}: trailing bytes not tokenized");
    if src.is_empty() {
        assert!(tokens.is_empty(), "{ctx}: tokens from empty input");
    }
}

// Fragments chosen to hit the tricky lexer states: raw strings with
// varying hash counts, nested block comments, char-vs-lifetime, escaped
// quotes, byte strings, raw identifiers, multibyte UTF-8, and unclosed
// delimiters (the lexer must still terminate and tile).
const FRAGMENTS: &[&str] = &[
    "fn f() { }",
    "let s = \"a \\\" b\";",
    "let r = r#\"x \" y\"#;",
    "let r2 = r##\"# \"# #\"##;",
    "/* outer /* inner */ still */",
    "// line comment\n",
    "/// doc with `code` and \"quotes\"\n",
    "let c = 'x';",
    "let esc = '\\'';",
    "let nl = '\\n';",
    "&'static str",
    "'label: loop { break 'label; }",
    "let b = b\"bytes\";",
    "let br = br#\"raw bytes\"#;",
    "let r#type = 1;",
    "let emoji = \"héllo → ∎\";",
    "x as u32",
    "0x1f_u64",
    "1.5e-3",
    "0..=9",
    "m.lock()",
    "\"unterminated",
    "/* unterminated",
    "r#\"unterminated",
    "'",
    "#",
    "::<>",
    "\n\t ",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn token_spans_tile_random_sources(
        parts in prop::collection::vec(prop::sample::select(FRAGMENTS.to_vec()), 0..24)
    ) {
        let src = parts.join(" ");
        assert_tiles(&src, "random source");
        // Also without separators, so fragments can fuse mid-token.
        let fused = parts.concat();
        assert_tiles(&fused, "fused source");
    }
}

#[test]
fn token_spans_tile_every_workspace_file() {
    // CARGO_MANIFEST_DIR = <repo>/crates/analyze → repo root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("repo root");
    let files = analyze::model::collect_rs_files(root).expect("workspace walk");
    assert!(files.len() > 100, "expected a real workspace, found {} files", files.len());
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel)).expect("read source");
        assert_tiles(&src, &rel.to_string_lossy());
    }
}
